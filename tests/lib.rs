//! Shared helpers for the cross-crate integration tests.

use mflow_netstack::{NoiseConfig, StackConfig};
use mflow_sim::MS;

/// Shortens and de-noises a config for CI-speed integration runs.
pub fn quick(mut cfg: StackConfig) -> StackConfig {
    cfg.noise = NoiseConfig::off();
    cfg.duration_ns = 16 * MS;
    cfg.warmup_ns = 5 * MS;
    cfg
}

/// Relative comparison helper: `a` within `tol` (fractional) of `b`.
pub fn within(a: f64, b: f64, tol: f64) -> bool {
    if b == 0.0 {
        return a == 0.0;
    }
    (a / b - 1.0).abs() <= tol
}
