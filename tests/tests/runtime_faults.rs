//! Seed-driven stress tests for the threaded pipeline under injected
//! faults: packet loss (including targeted loss of batch-closing
//! packets), duplicated and late micro-flows, worker stalls and a mid-run
//! worker death.
//!
//! The degradation contract under test: every run terminates without
//! panicking or wedging, the output is a strictly ordered duplicate-free
//! subsequence of the serial output, and every missing packet is
//! attributable — it was deleted by the (replayable) dispatch-time fault
//! plan, belongs to a micro-flow the merger reports having flushed, or
//! sits in the bounded in-flight window a dead worker can take with it.

use std::collections::{BTreeMap, BTreeSet};

use mflow_runtime::{
    generate_frames, process_parallel_faulty, process_serial, Frame, PolicyKind, RuntimeConfig,
    RuntimeFaults, Transport, WorkerKill,
};

/// Every scenario runs over both transports: the degradation contract is
/// channel-implementation-blind.
const TRANSPORTS: [Transport; 2] = [Transport::Mpsc, Transport::Ring];

/// Replays the dispatcher's batching walk to predict, from the seed
/// alone, which packets the fault plan deletes at dispatch and which
/// micro-flow every surviving packet is tagged into. Must mirror the
/// dispatcher exactly: drops shift batch boundaries because batches close
/// on *retained* length.
fn replay_dispatch(
    n: usize,
    batch_size: usize,
    faults: &RuntimeFaults,
) -> (BTreeSet<u64>, BTreeMap<u64, u64>) {
    let mut dropped = BTreeSet::new();
    let mut mf_of = BTreeMap::new();
    let mut mf_id = 0u64;
    let mut len = 0usize;
    for i in 0..n {
        let seq = i as u64;
        let last = len + 1 == batch_size || i + 1 == n;
        if faults.drops_packet(mf_id, seq, last) {
            dropped.insert(seq);
        } else {
            len += 1;
            mf_of.insert(seq, mf_id);
        }
        if last {
            mf_id += 1;
            len = 0;
        }
    }
    (dropped, mf_of)
}

/// Runs the faulty pipeline and checks the full degradation contract
/// against the serial reference. Returns the run output for extra,
/// scenario-specific assertions.
fn check_degraded(
    frames: &[Frame],
    cfg: &RuntimeConfig,
    faults: &RuntimeFaults,
) -> mflow_runtime::RunOutput {
    let serial = process_serial(frames);
    let reference: BTreeMap<u64, u64> = serial.digests.iter().map(|r| (r.seq, r.digest)).collect();
    let (dropped, mf_of) = replay_dispatch(frames.len(), cfg.batch_size, faults);

    let out = process_parallel_faulty(frames, cfg, faults).unwrap();

    // Strictly ordered and duplicate-free, every digest correct.
    for pair in out.digests.windows(2) {
        assert!(
            pair[0].seq < pair[1].seq,
            "inversion or duplicate at seq {} -> {}",
            pair[0].seq,
            pair[1].seq
        );
    }
    for r in &out.digests {
        assert_eq!(
            reference.get(&r.seq),
            Some(&r.digest),
            "digest mismatch at seq {}",
            r.seq
        );
    }
    assert_eq!(out.telemetry.residue, 0, "items left parked in the merger");

    // Every missing packet is attributable: planned drop, flushed
    // micro-flow, or (for a killed worker) a batch inside the bounded
    // in-flight window that died with the worker and was never seen by
    // the merger.
    let present: BTreeSet<u64> = out.digests.iter().map(|r| r.seq).collect();
    let flushed: BTreeSet<u64> = out.flushed_mfs.iter().copied().collect();
    let mut unattributed_mfs = BTreeSet::new();
    for seq in 0..frames.len() as u64 {
        if present.contains(&seq) || dropped.contains(&seq) {
            continue;
        }
        let mf = *mf_of.get(&seq).expect("surviving packet must have a tag");
        if !flushed.contains(&mf) {
            unattributed_mfs.insert(mf);
        }
    }
    let window = if out.workers_died > 0 {
        (cfg.queue_depth + 2) * out.workers_died
    } else {
        0
    };
    assert!(
        unattributed_mfs.len() <= window,
        "{} micro-flows lost without attribution ({}-batch death window): {:?}",
        unattributed_mfs.len(),
        window,
        unattributed_mfs
    );
    // Dead or alive, every lane's depth counter must read zero once the
    // run is over: live lanes drained, dead lanes were zeroed when the
    // death was discovered (the stale-counter bugfix under test).
    assert!(
        out.telemetry.lane_depths.iter().all(|&d| d == 0),
        "stale end-of-run lane depths {:?} ({:?})",
        out.telemetry.lane_depths,
        cfg.transport
    );
    out
}

#[test]
fn stress_matrix_survives_loss_dups_lates_stalls_and_a_killed_worker() {
    let frames = generate_frames(2000, 64);
    let matrix = [(2usize, 8usize, 2usize), (3, 16, 4), (4, 32, 2), (2, 64, 8)];
    for (i, &(workers, batch_size, queue_depth)) in matrix.iter().enumerate() {
        for transport in TRANSPORTS {
        let cfg = RuntimeConfig {
            workers,
            batch_size,
            queue_depth,
            transport,
            ..RuntimeConfig::default()
        };
        let faults = RuntimeFaults {
            seed: 0xBEEF ^ i as u64,
            drop_rate: 0.01,
            drop_last_rate: 0.05,
            dup_mf_rate: 0.08,
            late_mf_rate: 0.08,
            late_by: 3,
            stall_rate: 0.1,
            stall_ms: 1,
            kill: Some(WorkerKill {
                worker: 0,
                after_batches: 4,
                incarnation: 0,
            }),
            flush_timeout_ms: Some(40),
            ..RuntimeFaults::none()
        };
        let out = check_degraded(&frames, &cfg, &faults);
        assert!(
            out.workers_died <= 1,
            "config {:?}: only one worker was told to die",
            (workers, batch_size, queue_depth, transport)
        );
        assert!(
            !out.digests.is_empty(),
            "config {:?}: run delivered nothing",
            (workers, batch_size, queue_depth, transport)
        );
        }
    }
}

#[test]
fn killed_worker_is_reported_and_its_queue_redispatched() {
    let frames = generate_frames(1200, 64);
    for transport in TRANSPORTS {
        let cfg = RuntimeConfig {
            workers: 2,
            batch_size: 16,
            queue_depth: 2,
            transport,
            ..RuntimeConfig::default()
        };
        let mut faults = RuntimeFaults::none();
        faults.kill = Some(WorkerKill {
            worker: 1,
            after_batches: 3,
            incarnation: 0,
        });
        faults.flush_timeout_ms = Some(40);
        let out = check_degraded(&frames, &cfg, &faults);
        // With ~37 batches headed at the doomed lane the kill always
        // fires, and the dispatcher always hits the dead channel after.
        assert_eq!(out.workers_died, 1);
        assert!(out.telemetry.redispatched >= 1, "death must trigger redispatch");
    }
}

#[test]
fn losing_every_batch_closer_flushes_every_microflow_exactly() {
    // drop_last_rate = 1.0 deletes precisely the packets the merging
    // counter cannot advance without: no micro-flow ever closes, and the
    // end-of-stream flush must release everything else, in order.
    let frames = generate_frames(640, 64);
    for transport in TRANSPORTS {
        let cfg = RuntimeConfig {
            workers: 3,
            batch_size: 8,
            queue_depth: 4,
            transport,
            ..RuntimeConfig::default()
        };
        let mut faults = RuntimeFaults::none();
        faults.drop_last_rate = 1.0;
        // Long deadline: recovery comes from the end-of-stream flush
        // alone, keeping the run fully deterministic.
        faults.flush_timeout_ms = Some(2000);
        let (dropped, mf_of) = replay_dispatch(frames.len(), cfg.batch_size, &faults);
        let out = check_degraded(&frames, &cfg, &faults);

        // Exactly the batch closers were deleted, nothing else missing.
        let expected: Vec<u64> = (0..frames.len() as u64)
            .filter(|s| !dropped.contains(s))
            .collect();
        let got: Vec<u64> = out.digests.iter().map(|r| r.seq).collect();
        assert_eq!(got, expected);
        assert_eq!(out.telemetry.fault_drops, dropped.len() as u64);

        // Every dispatched micro-flow was force-flushed and reported.
        let n_mfs = mf_of.values().copied().collect::<BTreeSet<_>>().len();
        assert_eq!(out.flushed_mfs.len(), n_mfs);
        assert_eq!(out.workers_died, 0);
    }
}

#[test]
fn duplicated_microflows_are_rejected_and_output_is_exact() {
    // Every micro-flow dispatched twice: whichever copy arrives first
    // wins, the other is rejected packet-for-packet, and the output is
    // bit-identical to the serial run.
    let frames = generate_frames(800, 64);
    let serial = process_serial(&frames);
    for transport in TRANSPORTS {
        let cfg = RuntimeConfig {
            workers: 3,
            batch_size: 10,
            queue_depth: 4,
            transport,
            ..RuntimeConfig::default()
        };
        let mut faults = RuntimeFaults::none();
        faults.dup_mf_rate = 1.0;
        faults.flush_timeout_ms = Some(2000);
        let out = check_degraded(&frames, &cfg, &faults);
        assert_eq!(out.digests, serial.digests);
        assert_eq!(
            out.telemetry.dup + out.telemetry.late,
            frames.len() as u64,
            "each packet's second copy must be rejected exactly once"
        );
        assert!(out.flushed_mfs.is_empty(), "no loss, nothing to flush");
    }
}

#[test]
fn degradation_contract_holds_under_every_policy() {
    // Loss, duplication, late redispatch and a killed worker, under each
    // steering policy: whole-flow pinning concentrates everything on one
    // lane, FALCON chains route it through every worker in sequence, and
    // MFLOW spreads it — the attribution contract must hold regardless.
    let frames = generate_frames(1_500, 64);
    for policy in PolicyKind::ALL {
        for transport in TRANSPORTS {
            let cfg = RuntimeConfig {
                workers: 3,
                batch_size: 16,
                queue_depth: 4,
                policy,
                transport,
                ..RuntimeConfig::default()
            };
            let faults = RuntimeFaults {
                seed: 0xF00D,
                drop_rate: 0.01,
                drop_last_rate: 0.03,
                dup_mf_rate: 0.05,
                late_mf_rate: 0.05,
                late_by: 2,
                kill: Some(WorkerKill {
                    worker: 0,
                    after_batches: 5,
                    incarnation: 0,
                }),
                flush_timeout_ms: Some(40),
                ..RuntimeFaults::none()
            };
            let out = check_degraded(&frames, &cfg, &faults);
            // A pinned policy may leave worker 0 idle, in which case the
            // kill never fires; at most the one doomed worker dies.
            assert!(
                out.workers_died <= 1,
                "{policy}: more deaths than injected ({transport:?})"
            );
        }
    }
}
