//! The paper's headline numbers, asserted as bands: these tests are the
//! repository's contract that the reproduction keeps its shape.
//!
//! Paper (§V-A, 64 KB single flow): MFLOW +81 % TCP / +139 % UDP over the
//! vanilla overlay; MFLOW TCP 29.8 Gbps vs native 26.6; FALCON ~+80 % UDP;
//! MFLOW ~+22 % over FALCON TCP and ~+21 % UDP.

use mflow_netstack::Transport;
use mflow_sim::MS;
use mflow_workloads::sockperf::{throughput, SockperfOpts};
use mflow_workloads::System;

fn opts() -> SockperfOpts {
    SockperfOpts {
        duration_ns: 40 * MS,
        warmup_ns: 10 * MS,
        ..Default::default()
    }
}

fn gbps(sys: System, t: Transport) -> f64 {
    throughput(sys, t, 65536, &opts()).goodput_gbps
}

#[test]
fn tcp_64k_headline_band() {
    let native = gbps(System::Native, Transport::Tcp);
    let vanilla = gbps(System::Vanilla, Transport::Tcp);
    let mflow = gbps(System::Mflow, Transport::Tcp);

    // Paper: 26.6 native / ~16.4 vanilla / 29.8 mflow.
    assert!((24.0..30.0).contains(&native), "native {native:.1}");
    assert!((14.0..19.0).contains(&vanilla), "vanilla {vanilla:.1}");
    assert!((27.0..33.0).contains(&mflow), "mflow {mflow:.1}");

    let gain = mflow / vanilla - 1.0;
    assert!((0.55..1.15).contains(&gain), "mflow gain {:.0}%", gain * 100.0);
    assert!(mflow > native, "mflow {mflow:.1} must beat native {native:.1}");

    let overlay_tax = 1.0 - vanilla / native;
    assert!(
        (0.25..0.50).contains(&overlay_tax),
        "overlay tax {:.0}% (paper ~40%)",
        overlay_tax * 100.0
    );
}

#[test]
fn udp_64k_headline_band() {
    let native = gbps(System::Native, Transport::Udp);
    let vanilla = gbps(System::Vanilla, Transport::Udp);
    let falcon = gbps(System::FalconDev, Transport::Udp);
    let mflow = gbps(System::Mflow, Transport::Udp);

    // Paper: overlay -80 % vs native; FALCON +80 %; MFLOW +139 % and +21 %
    // over FALCON, still below native.
    let tax = 1.0 - vanilla / native;
    assert!((0.6..0.9).contains(&tax), "UDP overlay tax {:.0}%", tax * 100.0);
    let f_gain = falcon / vanilla - 1.0;
    assert!((0.5..1.3).contains(&f_gain), "falcon gain {:.0}%", f_gain * 100.0);
    let m_gain = mflow / vanilla - 1.0;
    assert!((1.0..1.8).contains(&m_gain), "mflow gain {:.0}%", m_gain * 100.0);
    let vs_falcon = mflow / falcon - 1.0;
    assert!((0.05..0.5).contains(&vs_falcon), "mflow vs falcon {:.0}%", vs_falcon * 100.0);
    assert!(mflow < native, "UDP mflow must stay below native");
}

#[test]
fn tcp_system_ordering_matches_figure_8a() {
    let t = Transport::Tcp;
    let vanilla = gbps(System::Vanilla, t);
    let rps = gbps(System::Rps, t);
    let fd = gbps(System::FalconDev, t);
    let ff = gbps(System::FalconFun, t);
    let mflow = gbps(System::Mflow, t);
    assert!(
        vanilla < rps && rps < fd && fd < ff && ff < mflow,
        "ordering broken: {vanilla:.1} {rps:.1} {fd:.1} {ff:.1} {mflow:.1}"
    );
}

#[test]
fn mflow_reduces_median_latency_under_load() {
    use mflow_workloads::sockperf::latency;
    // Paper Figure 9: at 64 KB MFLOW reduces median latency ~46 % vs
    // vanilla; a gap to native remains.
    let o = SockperfOpts {
        noise: true,
        ..opts()
    };
    let vanilla = latency(System::Vanilla, Transport::Tcp, 65536, 0.85, &o);
    let mflow = latency(System::Mflow, Transport::Tcp, 65536, 0.85, &o);
    assert!(vanilla.latency.count() > 200 && mflow.latency.count() > 200);
    let v = vanilla.latency.median() as f64;
    let m = mflow.latency.median() as f64;
    assert!(
        m < 0.8 * v,
        "mflow median {m:.0}ns not clearly below vanilla {v:.0}ns"
    );
}

#[test]
fn new_bottleneck_is_the_user_copy_thread() {
    // Paper Figure 8b: after MFLOW removes the softirq bottleneck, core 0
    // (the single copy thread) becomes the busiest core.
    let r = throughput(System::Mflow, Transport::Tcp, 65536, &opts());
    let copy_core_busy = r.cpu.busy_ns(0);
    for core in 1..=5 {
        assert!(
            copy_core_busy >= r.cpu.busy_ns(core),
            "core {core} busier than the copy core"
        );
    }
    assert!(
        r.cpu.utilization_pct(0, r.duration_ns) > 85.0,
        "copy core should be nearly saturated"
    );
}
