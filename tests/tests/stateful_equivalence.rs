//! Differential proof that state-compute replication is observationally
//! equivalent to merge-before-tcp: the same seed, workload and fault
//! schedule must yield the same delivered stream under both stateful
//! modes, across every steering policy and both transports.
//!
//! The serial reference is [`process_serial_stateful`] — parse, checksum,
//! digest, then the stateful stage applied in flow order. Merge-before-tcp
//! runs that stage serially on the merger after reassembly; replication
//! runs it on whichever lane carries the packet and relies on the
//! seq-watermark reconciler to deduplicate and order the replicated
//! transitions. Equivalence of the two is the paper's correctness claim
//! for moving stateful work off the serial stage.

use std::collections::{BTreeMap, BTreeSet};

use mflow_runtime::{
    generate_frames, process_parallel, process_parallel_faulty, process_serial_stateful, Frame,
    PolicyKind, RunOutput, RuntimeConfig, RuntimeFaults, StatefulMode, Transport, WorkerKill,
};

/// Every scenario runs over both transports: equivalence must be
/// channel-implementation-blind.
const TRANSPORTS: [Transport; 2] = [Transport::Mpsc, Transport::Ring];

/// Enough stateful rounds that a skipped, duplicated or reordered
/// transition would corrupt the digest, while keeping runs CI-fast.
const WORK: u32 = 24;

fn cfg_for(policy: PolicyKind, transport: Transport, mode: StatefulMode) -> RuntimeConfig {
    RuntimeConfig {
        workers: 4,
        batch_size: 16,
        queue_depth: 4,
        policy,
        transport,
        stateful_mode: mode,
        stateful_work: WORK,
        ..RuntimeConfig::default()
    }
}

/// Replays the dispatcher's batching walk (mirrors
/// `tests/tests/runtime_faults.rs`): which packets the fault plan deletes
/// at dispatch, and which micro-flow each survivor is tagged into. The
/// walk is stateful-mode-blind — both modes see the identical plan.
fn replay_dispatch(
    n: usize,
    batch_size: usize,
    faults: &RuntimeFaults,
) -> (BTreeSet<u64>, BTreeMap<u64, u64>) {
    let mut dropped = BTreeSet::new();
    let mut mf_of = BTreeMap::new();
    let mut mf_id = 0u64;
    let mut len = 0usize;
    for i in 0..n {
        let seq = i as u64;
        let last = len + 1 == batch_size || i + 1 == n;
        if faults.drops_packet(mf_id, seq, last) {
            dropped.insert(seq);
        } else {
            len += 1;
            mf_of.insert(seq, mf_id);
        }
        if last {
            mf_id += 1;
            len = 0;
        }
    }
    (dropped, mf_of)
}

/// Core per-mode contract: strictly ordered, duplicate-free, and every
/// delivered digest equals the serial *stateful* reference at that seq.
fn assert_ordered_correct(out: &RunOutput, frames: &[Frame], label: &str) {
    let serial = process_serial_stateful(frames, WORK);
    let reference: BTreeMap<u64, u64> = serial.digests.iter().map(|r| (r.seq, r.digest)).collect();
    for pair in out.digests.windows(2) {
        assert!(
            pair[0].seq < pair[1].seq,
            "{label}: inversion or duplicate at seq {} -> {}",
            pair[0].seq,
            pair[1].seq
        );
    }
    for r in &out.digests {
        assert_eq!(
            reference.get(&r.seq),
            Some(&r.digest),
            "{label}: stateful digest mismatch at seq {}",
            r.seq
        );
    }
    assert_eq!(out.telemetry.residue, 0, "{label}: items left parked");
    assert!(
        out.telemetry.lane_depths.iter().all(|&d| d == 0),
        "{label}: stale end-of-run lane depths {:?}",
        out.telemetry.lane_depths
    );
}

/// Mode-aware attribution: every missing seq is a planned dispatch drop,
/// covered by the merger's flush report (micro-flow IDs under
/// merge-before-tcp, skipped seqs under replication), or inside the
/// bounded in-flight window a killed worker takes with it.
fn assert_attributed(
    out: &RunOutput,
    n: usize,
    cfg: &RuntimeConfig,
    dropped: &BTreeSet<u64>,
    mf_of: &BTreeMap<u64, u64>,
    label: &str,
) {
    let present: BTreeSet<u64> = out.digests.iter().map(|r| r.seq).collect();
    let flushed_raw: BTreeSet<u64> = out.flushed_mfs.iter().copied().collect();
    let scr = cfg.stateful_mode == StatefulMode::StateComputeReplication;
    let mut unattributed_mfs = BTreeSet::new();
    for seq in 0..n as u64 {
        if present.contains(&seq) || dropped.contains(&seq) {
            continue;
        }
        let covered = if scr {
            flushed_raw.contains(&seq)
        } else {
            flushed_raw.contains(mf_of.get(&seq).expect("survivor must have a tag"))
        };
        if !covered {
            unattributed_mfs.insert(*mf_of.get(&seq).expect("survivor must have a tag"));
        }
    }
    let window = if out.workers_died > 0 {
        (cfg.queue_depth + 2) * out.workers_died
    } else {
        0
    };
    assert!(
        unattributed_mfs.len() <= window,
        "{label}: {} micro-flows lost without attribution ({window}-batch death window): {:?}",
        unattributed_mfs.len(),
        unattributed_mfs
    );
}

#[test]
fn both_modes_reproduce_the_serial_stateful_stream() {
    // The headline differential: same workload through every policy,
    // transport and mode; delivered streams must be byte-identical to the
    // serial stateful reference and therefore to each other.
    let frames = generate_frames(1536, 64);
    for work in [0u32, WORK] {
        let reference = process_serial_stateful(&frames, work);
        for policy in PolicyKind::ALL {
            for transport in TRANSPORTS {
                for mode in StatefulMode::ALL {
                    let mut cfg = cfg_for(policy, transport, mode);
                    cfg.stateful_work = work;
                    let out = process_parallel(&frames, &cfg).unwrap();
                    assert_eq!(
                        out.digests, reference.digests,
                        "{policy}/{transport:?}/{mode:?}/work={work}: diverged from serial"
                    );
                    assert_eq!(
                        out.telemetry.stateful_mode,
                        mode.name(),
                        "telemetry must report the active mode"
                    );
                    match mode {
                        StatefulMode::StateComputeReplication => {
                            assert_eq!(
                                out.telemetry.replicated_transitions,
                                frames.len() as u64,
                                "{policy}/{transport:?}: every packet's transition replicates"
                            );
                            assert_eq!(out.telemetry.reconciled_dups, 0, "benign run has no dups");
                        }
                        StatefulMode::MergeBeforeTcp => {
                            assert_eq!(out.telemetry.replicated_transitions, 0);
                            assert_eq!(out.telemetry.reconciled_dups, 0);
                        }
                    }
                }
            }
        }
    }
}

#[test]
fn duplicated_microflows_reconcile_to_the_exact_stream() {
    // Every micro-flow dispatched twice: under replication the stateful
    // transition itself is computed twice, and the reconciler must drop
    // the second copy of every position without disturbing the first.
    let frames = generate_frames(800, 64);
    let reference = process_serial_stateful(&frames, WORK);
    for transport in TRANSPORTS {
        for mode in StatefulMode::ALL {
            let cfg = cfg_for(PolicyKind::Mflow, transport, mode);
            let mut faults = RuntimeFaults::none();
            faults.dup_mf_rate = 1.0;
            faults.flush_timeout_ms = Some(2000);
            let out = process_parallel_faulty(&frames, &cfg, &faults).unwrap();
            assert_eq!(
                out.digests, reference.digests,
                "{transport:?}/{mode:?}: duplication leaked into the stream"
            );
            assert!(out.flushed_mfs.is_empty(), "no loss, nothing to flush");
            if mode == StatefulMode::StateComputeReplication {
                assert_eq!(
                    out.telemetry.replicated_transitions,
                    2 * frames.len() as u64,
                    "{transport:?}: both copies of every transition reach the reconciler"
                );
                assert_eq!(
                    out.telemetry.reconciled_dups,
                    frames.len() as u64,
                    "{transport:?}: exactly the second copy of each position is dropped"
                );
            }
        }
    }
}

#[test]
fn delayed_microflows_deliver_exactly_under_both_modes() {
    // Late redispatch reorders micro-flows without losing anything: the
    // reconciler parks replicated transitions and releases them in order.
    let frames = generate_frames(1000, 64);
    let reference = process_serial_stateful(&frames, WORK);
    for transport in TRANSPORTS {
        for mode in StatefulMode::ALL {
            let cfg = cfg_for(PolicyKind::Mflow, transport, mode);
            let mut faults = RuntimeFaults::none();
            faults.seed = 0x51ED;
            faults.late_mf_rate = 0.25;
            faults.late_by = 3;
            faults.flush_timeout_ms = Some(2000);
            let out = process_parallel_faulty(&frames, &cfg, &faults).unwrap();
            assert_eq!(
                out.digests, reference.digests,
                "{transport:?}/{mode:?}: delay leaked into the stream"
            );
            if mode == StatefulMode::StateComputeReplication {
                // General no-loss invariant: arrivals = deliveries + dups.
                assert_eq!(
                    out.telemetry.replicated_transitions,
                    frames.len() as u64 + out.telemetry.reconciled_dups,
                    "{transport:?}: replicated arrivals must be accounted for"
                );
            }
        }
    }
}

#[test]
fn dispatch_time_loss_degrades_both_modes_to_the_same_stream() {
    // drop_last_rate = 1.0 deletes exactly the batch closers; with only
    // the end-of-stream flush for recovery, both modes must deliver
    // exactly the surviving packets — and replication must additionally
    // report the dropped positions as its skipped seqs.
    let frames = generate_frames(640, 64);
    for transport in TRANSPORTS {
        let mut streams = Vec::new();
        for mode in StatefulMode::ALL {
            let mut cfg = cfg_for(PolicyKind::Mflow, transport, mode);
            cfg.workers = 3;
            cfg.batch_size = 8;
            let mut faults = RuntimeFaults::none();
            faults.drop_last_rate = 1.0;
            faults.flush_timeout_ms = Some(2000);
            let (dropped, mf_of) = replay_dispatch(frames.len(), cfg.batch_size, &faults);
            let out = process_parallel_faulty(&frames, &cfg, &faults).unwrap();
            assert_ordered_correct(&out, &frames, &format!("{transport:?}/{mode:?}"));

            let expected: Vec<u64> = (0..frames.len() as u64)
                .filter(|s| !dropped.contains(s))
                .collect();
            let got: Vec<u64> = out.digests.iter().map(|r| r.seq).collect();
            assert_eq!(got, expected, "{transport:?}/{mode:?}: loss beyond the plan");

            match mode {
                StatefulMode::StateComputeReplication => {
                    // The reconciler's flush report is the dropped seqs it
                    // skipped over. A drop past the last delivered packet
                    // is never skipped *over* — the stream simply ends —
                    // so the report covers exactly the interior gaps.
                    let flushed: BTreeSet<u64> = out.flushed_mfs.iter().copied().collect();
                    let horizon = out.digests.last().map_or(0, |r| r.seq);
                    let interior: BTreeSet<u64> =
                        dropped.iter().copied().filter(|&s| s < horizon).collect();
                    assert_eq!(
                        flushed, interior,
                        "{transport:?}: skipped seqs must be exactly the interior drops"
                    );
                }
                StatefulMode::MergeBeforeTcp => {
                    // The merging counter reports whole flushed micro-flows.
                    let n_mfs = mf_of.values().copied().collect::<BTreeSet<_>>().len();
                    assert_eq!(out.flushed_mfs.len(), n_mfs);
                }
            }
            streams.push(out.digests);
        }
        assert_eq!(
            streams[0], streams[1],
            "{transport:?}: modes diverged under identical loss"
        );
    }
}

#[test]
fn worker_kill_degrades_each_mode_to_an_ordered_correct_subset() {
    // A mid-run worker death plus background loss/dup/delay: each mode
    // must deliver an ordered, duplicate-free, digest-correct subsequence
    // with every gap attributable to the plan, a flush, or the bounded
    // window the dead worker took with it.
    let frames = generate_frames(1500, 64);
    for policy in [PolicyKind::Mflow, PolicyKind::Rss, PolicyKind::FalconFunc] {
        for transport in TRANSPORTS {
            for mode in StatefulMode::ALL {
                let mut cfg = cfg_for(policy, transport, mode);
                cfg.workers = 3;
                let faults = RuntimeFaults {
                    seed: 0xF00D,
                    drop_rate: 0.01,
                    drop_last_rate: 0.03,
                    dup_mf_rate: 0.05,
                    late_mf_rate: 0.05,
                    late_by: 2,
                    kill: Some(WorkerKill {
                        worker: 0,
                        after_batches: 5,
                        incarnation: 0,
                    }),
                    flush_timeout_ms: Some(40),
                    ..RuntimeFaults::none()
                };
                let (dropped, mf_of) = replay_dispatch(frames.len(), cfg.batch_size, &faults);
                let out = process_parallel_faulty(&frames, &cfg, &faults).unwrap();
                let label = format!("{policy}/{transport:?}/{mode:?}");
                assert_ordered_correct(&out, &frames, &label);
                assert_attributed(&out, frames.len(), &cfg, &dropped, &mf_of, &label);
                assert!(out.workers_died <= 1, "{label}: one injected death at most");
            }
        }
    }
}

#[test]
fn simulator_replicates_transitions_on_every_lane() {
    // The netstack engine's side of the tentpole: under replication the
    // merge core reconciles per-lane TCP state advances instead of running
    // the full receive path, and the report says so.
    use integration_tests::quick;
    use mflow::{try_install, MflowConfig};
    use mflow_netstack::{FlowSpec, PathKind, StackConfig, StackSim};

    let mk = || quick(StackConfig::single_flow(PathKind::Overlay, FlowSpec::tcp(65536, 0)));

    let mut scr_cfg = MflowConfig::tcp_full_path();
    scr_cfg.stateful_mode = StatefulMode::StateComputeReplication;
    let (policy, merge) = try_install(scr_cfg).expect("stock config stays valid under scr");
    let scr = StackSim::try_run(mk(), policy, Some(merge)).expect("valid stack config");
    assert_eq!(scr.telemetry.stateful_mode, "scr");
    assert!(scr.telemetry.delivered > 0, "scr run must make progress");
    assert!(
        scr.telemetry.replicated_transitions > 0,
        "lanes must replicate state advances"
    );

    let (policy, merge) = try_install(MflowConfig::tcp_full_path()).expect("stock config");
    let mbt = StackSim::try_run(mk(), policy, Some(merge)).expect("valid stack config");
    assert_eq!(mbt.telemetry.stateful_mode, "merge-before-tcp");
    assert_eq!(mbt.telemetry.replicated_transitions, 0);
    // Hiding splitting from the TCP receiver is merge-before-tcp's
    // defining property; replication instead absorbs the disorder in the
    // per-lane replicas and the receive-side reconciliation.
    assert_eq!(mbt.tcp_ooo_inserts, 0, "reassembly must hide splitting from TCP");
    // Replication exists to relieve the serial stage; it must not wreck
    // goodput on the paper's stock single-flow configuration.
    assert!(
        scr.goodput_gbps > 0.5 * mbt.goodput_gbps,
        "scr goodput collapsed: {:.2} vs {:.2} Gbps",
        scr.goodput_gbps,
        mbt.goodput_gbps
    );
}
