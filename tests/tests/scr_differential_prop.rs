//! Property-based differential proof at the netstack layer: a randomized
//! TCP segment stream — arbitrary arrival permutation, exact-copy
//! retransmits, out-of-window duplicates, and byte offsets straddling the
//! u32 wire-sequence wrap point — delivers the identical byte stream
//! through the strict receive machine (merge-before-tcp's stateful stage)
//! and through per-lane replicated [`FlowState`]s reconciled by the
//! [`ScrReconciler`] watermark.

use mflow::ScrReconciler;
use mflow_netstack::tcp::FlowState;
use mflow_netstack::Skb;
use proptest::prelude::*;

fn seg(wire: u64, byte_seq: u64, len: u32) -> Skb {
    Skb::new(wire, 0, len.saturating_add(66), len, byte_seq, 0)
}

/// Upper bounds used to size the shared priority pool: at most 60 random
/// cells + 1 wrap prefix + 12 duplicates.
const MAX_ARRIVALS: usize = 80;

proptest! {
    #[test]
    fn replicated_lanes_deliver_the_strict_machine_stream(
        lens in prop::collection::vec(1u32..1500, 4..60),
        wrap_start in any::<bool>(),
        dup_picks in prop::collection::vec(0usize..1000, 0..12),
        prios in prop::collection::vec(0u64..u64::MAX, MAX_ARRIVALS),
        n_lanes in 2usize..5,
    ) {
        // Base cells: a contiguous stream on fixed boundaries. With
        // `wrap_start` the first cell carries the stream to just below
        // u32::MAX so the rest straddles the wire-sequence wrap point.
        let mut cells = Vec::with_capacity(lens.len() + 1);
        let mut off = 0u64;
        if wrap_start {
            let prefix = u32::MAX - 2 * 1448;
            cells.push(seg(0, 0, prefix));
            off = prefix as u64;
        }
        for (i, &len) in lens.iter().enumerate() {
            cells.push(seg(1 + i as u64, off, len));
            off += len as u64;
        }
        let total = off;
        let n_cells = cells.len();

        // Arrival schedule: every cell exactly once, plus exact-copy
        // duplicates of random cells, the whole lot shuffled by the
        // priority pool. Late-scheduled duplicates of early cells become
        // out-of-window arrivals once the watermark has passed them.
        let mut arrivals = cells.clone();
        for &d in &dup_picks {
            arrivals.push(cells[d % n_cells].clone());
        }
        let mut order: Vec<usize> = (0..arrivals.len()).collect();
        order.sort_by_key(|&i| (prios[i], i));

        // Reference: the strict machine, as run serially after
        // merge-before-tcp reassembly (or on the raw arrival order — its
        // delivery is permutation-invariant).
        let mut strict = FlowState::new();
        let mut delivered_ref: Vec<(u64, u32)> = Vec::with_capacity(n_cells);
        for &i in &order {
            let (out, _) = strict.receive(arrivals[i].clone());
            delivered_ref.extend(out.iter().map(|s| (s.byte_seq, s.payload_bytes)));
        }

        // Replication: each arrival lands on one of `n_lanes` lane
        // replicas; first-sighting records flow to the reconciler, which
        // must reproduce the strict delivery byte for byte.
        let mut replicas: Vec<FlowState> = (0..n_lanes).map(|_| FlowState::new()).collect();
        let mut rc = ScrReconciler::new();
        let mut released: Vec<Skb> = Vec::with_capacity(n_cells);
        for &i in &order {
            let lane = ((prios[i] >> 32) as usize) % n_lanes;
            if let Some(rec) = replicas[lane].advance_replicated(arrivals[i].clone()) {
                let (start, end) = (rec.byte_seq, rec.byte_end());
                rc.offer(start, end, rec, &mut released);
            }
        }
        let delivered_scr: Vec<(u64, u32)> =
            released.iter().map(|s| (s.byte_seq, s.payload_bytes)).collect();

        prop_assert_eq!(&delivered_scr, &delivered_ref, "modes diverged");

        // Both delivered every byte exactly once, in order.
        let mut next = 0u64;
        for &(start, len) in &delivered_ref {
            prop_assert_eq!(start, next, "gap or overlap in delivery");
            next = start + len as u64;
        }
        prop_assert_eq!(next, total, "bytes lost");
        prop_assert_eq!(strict.expected(), total);

        // Reconciler invariants: every position released exactly once, no
        // residue, no forced skips on a lossless stream, and every
        // replicated duplicate accounted for.
        prop_assert_eq!(rc.released(), n_cells as u64);
        prop_assert_eq!(rc.watermark(), total);
        prop_assert_eq!(rc.parked_len(), 0, "records left parked");
        prop_assert!(rc.skipped_ranges().is_empty(), "lossless stream must not flush");
        prop_assert_eq!(rc.late_drops(), 0);
    }

    #[test]
    fn replica_watermarks_never_outrun_the_strict_machine(
        lens in prop::collection::vec(1u32..600, 3..40),
        prios in prop::collection::vec(0u64..u64::MAX, 40),
        n_lanes in 2usize..4,
    ) {
        // The safety argument for replication: a lane replica's `expected`
        // watermark advances only over bytes whose records already went
        // downstream, so no replica may believe more of the stream exists
        // than the strict machine fed the same arrivals would.
        let mut cells = Vec::with_capacity(lens.len());
        let mut off = 0u64;
        for (i, &len) in lens.iter().enumerate() {
            cells.push(seg(i as u64, off, len));
            off += len as u64;
        }
        let mut order: Vec<usize> = (0..cells.len()).collect();
        order.sort_by_key(|&i| (prios[i], i));

        let mut strict = FlowState::new();
        let mut replicas: Vec<FlowState> = (0..n_lanes).map(|_| FlowState::new()).collect();
        for &i in &order {
            strict.receive(cells[i].clone());
            let lane = ((prios[i] >> 32) as usize) % n_lanes;
            replicas[lane].advance_replicated(cells[i].clone());
            for r in &replicas {
                prop_assert!(
                    r.expected() <= strict.expected(),
                    "replica watermark {} outran strict {}",
                    r.expected(),
                    strict.expected()
                );
            }
        }
    }
}
