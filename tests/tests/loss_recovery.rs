//! TCP loss recovery: with congestion control and RTO retransmission, a
//! flow must survive NIC ring overruns — losing throughput, never
//! correctness. (The paper's experiments stay under the drop cliff; these
//! tests push past it to validate the substrate.)

use integration_tests::quick;
use mflow::{try_install, MflowConfig};
use mflow_netstack::{FlowSpec, LoadModel, PathKind, StackConfig, StackSim};
use mflow_sim::MS;

/// A config whose ring is far too small for the window: drops guaranteed.
fn droppy_config() -> StackConfig {
    let mut flow = FlowSpec::tcp(65536, 0);
    flow.load = LoadModel::Closed {
        window_bytes: 2 << 20,
    };
    let mut cfg = quick(StackConfig::single_flow(PathKind::Overlay, flow));
    cfg.ring_capacity = 256; // 2 MB of window vs ~370 KB of ring
    cfg.duration_ns = 30 * MS;
    cfg.warmup_ns = 8 * MS;
    cfg
}

#[test]
fn vanilla_tcp_survives_ring_overruns() {
    let r = StackSim::try_run(
        droppy_config(),
        Box::new(mflow_netstack::StayLocal::new(1)),
        None,
    ).expect("valid stack config");
    assert!(r.ring_drops > 0, "the scenario must actually drop");
    assert!(r.tcp_retransmits > 0, "drops must trigger RTO recovery");
    // Recovery here is timeout-driven (cumulative ACKs stall completely
    // at a hole, so there is no dup-ACK signal), so throughput collapses
    // — but the flow keeps making forward progress and loses nothing.
    assert!(
        r.goodput_gbps > 0.15,
        "flow must keep making progress: {:.2} Gbps",
        r.goodput_gbps
    );
    assert!(r.telemetry.delivered > 5, "only {} messages completed", r.telemetry.delivered);
}

#[test]
fn mflow_drains_the_ring_too_fast_to_overrun_it() {
    // Under the same adversarial ring, MFLOW's dispatch core does nothing
    // but poll + steer, so it drains descriptors faster than the wire
    // delivers them: the overrun (and the recovery tax) never happens.
    // This is a side benefit of IRQ splitting the paper does not measure.
    let (policy, merge) = try_install(MflowConfig::tcp_full_path()).expect("stock mflow config");
    let r = StackSim::try_run(droppy_config(), policy, Some(merge)).expect("valid stack config");
    assert_eq!(r.ring_drops, 0, "dispatch core fell behind the wire");
    assert_eq!(r.tcp_retransmits, 0);
    assert!(r.goodput_gbps > 20.0, "{:.2} Gbps", r.goodput_gbps);
    assert_eq!(r.sock_push_fail_tcp, 0);
}

#[test]
fn no_spurious_retransmits_without_drops() {
    // The default scenarios never drop; the RTO machinery must stay quiet.
    let cfg = quick(StackConfig::single_flow(
        PathKind::Overlay,
        FlowSpec::tcp(65536, 0),
    ));
    let r = StackSim::try_run(cfg, Box::new(mflow_netstack::StayLocal::new(1)), None).expect("valid stack config");
    assert_eq!(r.ring_drops, 0);
    assert_eq!(r.tcp_retransmits, 0, "spurious RTO");
}

#[test]
fn merge_path_microflow_loss_flushes_within_deadline_and_never_wedges() {
    // Losing an entire micro-flow *after* the split — between the
    // splitting cores and the merge point — is the failure the textbook
    // merging counter cannot survive: the counter waits forever for an ID
    // that will never arrive. The flush deadline must kick in, skip the
    // dead micro-flow, and keep the (open-loop UDP) flow delivering.
    let mut cfg = quick(StackConfig::single_flow(
        PathKind::Overlay,
        FlowSpec::udp(65536, 0),
    ));
    let mut faults = mflow_netstack::FaultConfig::none();
    faults.kill_microflows = vec![(0, 10)];
    cfg.faults = Some(faults);
    // A deadline short enough to trip well inside the CI-length run.
    let mut mcfg = MflowConfig::udp_device_scaling();
    mcfg.flush_after_offers = Some(512);
    let (policy, merge) = try_install(mcfg).expect("stock mflow config");
    let r = StackSim::try_run(cfg, policy, Some(merge)).expect("valid stack config");
    assert!(r.telemetry.fault_drops > 0, "the targeted micro-flow must die");
    assert!(
        r.telemetry.flushed >= 1,
        "merger must flush past the dead micro-flow within the deadline"
    );
    assert!(r.goodput_gbps > 1.0, "flow wedged: {:.3} Gbps", r.goodput_gbps);
    // Parked skbs are bounded by the flush deadline (plus one in-flight
    // batch), not by the run length.
    assert!(r.telemetry.residue < 1600, "merger leak: {}", r.telemetry.residue);
}

#[test]
fn random_closer_loss_at_the_merge_degrades_gracefully() {
    // Randomly deleting batch-closing skbs — each one leaves a micro-flow
    // permanently open — must produce a stream of flushes, not a wedge,
    // and the accounting must see every injected drop.
    let mut cfg = quick(StackConfig::single_flow(
        PathKind::Overlay,
        FlowSpec::udp(65536, 0),
    ));
    let mut faults = mflow_netstack::FaultConfig::none();
    faults.seed = 11;
    // Only ~47 micro-flows close inside a CI-length run; 20% makes the
    // drop deterministic-in-practice while staying sparse.
    faults.drop_rate = 0.2;
    faults.drop_last_only = true;
    cfg.faults = Some(faults);
    let mut mcfg = MflowConfig::udp_device_scaling();
    mcfg.flush_after_offers = Some(512);
    let (policy, merge) = try_install(mcfg).expect("stock mflow config");
    let r = StackSim::try_run(cfg, policy, Some(merge)).expect("valid stack config");
    assert!(r.telemetry.fault_drops > 0, "closer drops must fire at 20%");
    assert!(r.telemetry.flushed >= 1, "open micro-flows must be flushed");
    assert!(r.goodput_gbps > 1.0, "flow wedged: {:.3} Gbps", r.goodput_gbps);
    assert!(r.telemetry.residue < 1600, "merger leak: {}", r.telemetry.residue);
}

#[test]
fn slow_start_converges_to_the_same_throughput()
{
    // Congestion control must not change the steady-state numbers the
    // calibration depends on: a long run with cwnd starts within a few
    // percent of the historical value.
    let cfg = quick(StackConfig::single_flow(
        PathKind::Overlay,
        FlowSpec::tcp(65536, 0),
    ));
    let r = StackSim::try_run(cfg, Box::new(mflow_netstack::StayLocal::new(1)), None).expect("valid stack config");
    assert!(
        (15.0..18.5).contains(&r.goodput_gbps),
        "vanilla overlay drifted: {:.2} Gbps",
        r.goodput_gbps
    );
}
