//! Buffer-pool conservation: every slot handed out by the [`BufPool`]
//! must come back, no matter how the run ends. The pipeline clones
//! frame handles into batches, fault injection clones whole micro-flows
//! onto recovery lanes, killed workers drop their queues on the floor,
//! and backpressure shedding abandons batches mid-dispatch — after all
//! of that, once the run output and the source frames are dropped, the
//! pool must report zero buffers in flight and a completely free slab.
//!
//! The same sweeps double as the packet-request equivalence suite: for
//! every scenario the digests are checked against the serial reference,
//! so IRQ-splitting dispatch proves both ordering and content under the
//! exact conditions that stress the pool.

use std::collections::BTreeMap;

use mflow_runtime::{
    frame_wire_len, generate_frames_into, process_parallel, process_parallel_faulty,
    process_serial, BackpressurePolicy, BufPool, DispatchMode, MergerKill, PolicyKind,
    RuntimeConfig, RuntimeFaults, Transport, WorkerKill,
};

const TRANSPORTS: [Transport; 2] = [Transport::Mpsc, Transport::Ring];
const MODES: [DispatchMode; 2] = [DispatchMode::PostParse, DispatchMode::PacketRequest];
const PAYLOAD: usize = 128;

/// Asserts the pool is fully drained: nothing in flight, every slot
/// back on the free list, and no leaked heap-fallback buffers.
fn assert_pool_drained(pool: &BufPool, ctx: &str) {
    let stats = pool.stats();
    assert_eq!(pool.in_flight(), 0, "{ctx}: buffers still in flight");
    assert_eq!(
        stats.free, stats.slots,
        "{ctx}: free list short ({} of {} slots)",
        stats.free, stats.slots
    );
    assert_eq!(stats.heap_live, 0, "{ctx}: heap-fallback buffers leaked");
}

#[test]
fn clean_runs_conserve_the_pool_and_match_serial() {
    let n = 4096;
    for transport in TRANSPORTS {
        for mode in MODES {
            for policy in [PolicyKind::Mflow, PolicyKind::Rps, PolicyKind::FalconFunc] {
                let ctx = format!("{transport:?}/{mode:?}/{policy:?}");
                let pool = BufPool::for_frames(n, frame_wire_len(PAYLOAD));
                let frames = generate_frames_into(&pool, n, PAYLOAD);
                let serial = process_serial(&frames);
                let cfg = RuntimeConfig {
                    workers: 4,
                    batch_size: 16,
                    queue_depth: 8,
                    transport,
                    dispatch_mode: mode,
                    policy,
                    ..RuntimeConfig::default()
                };
                let out = process_parallel(&frames, &cfg).unwrap();
                assert_eq!(
                    out.digests, serial.digests,
                    "{ctx}: parallel output diverged from serial reference"
                );
                assert!(
                    pool.in_flight() >= n as u64,
                    "{ctx}: frames still alive must hold their slots"
                );
                drop(out);
                drop(frames);
                assert_pool_drained(&pool, &ctx);
            }
        }
    }
}

#[test]
fn chaos_kills_conserve_the_pool_in_both_dispatch_modes() {
    // Kill every worker plus the merger mid-run. Killed threads drop
    // their queued batches (and the merger its parked results) on the
    // floor — each of those held cloned frame handles, and every one
    // must release its slot as the wreckage unwinds.
    //
    // `merger_depth` must cover the whole result stream when a merger
    // kill is injected (the "pump idle" sizing every merger-kill suite
    // uses): the merger watchdog runs from the dispatch loop, so if the
    // worker->merger queue fills while the merger is down, workers block
    // offering, lanes fill, and the dispatcher wedges inside a blocking
    // send before it can tend the watchdog. See ROADMAP.md (open item:
    // watchdog-aware blocking dispatch).
    let n = 12_000;
    let workers = 4usize;
    for transport in TRANSPORTS {
        for mode in MODES {
            let ctx = format!("{transport:?}/{mode:?}");
            let pool = BufPool::for_frames(n, frame_wire_len(PAYLOAD));
            let frames = generate_frames_into(&pool, n, PAYLOAD);
            let cfg = RuntimeConfig {
                workers,
                batch_size: 32,
                queue_depth: 8,
                merger_depth: 16_384,
                transport,
                dispatch_mode: mode,
                heartbeat_interval_ms: Some(25),
                restart_budget: 16,
                restart_backoff_ms: 1,
                ..RuntimeConfig::default()
            };
            let mut faults = RuntimeFaults::none();
            for slot in 0..workers {
                faults.kills.push(WorkerKill {
                    worker: slot,
                    after_batches: 20 + 10 * slot as u64,
                    incarnation: 0,
                });
            }
            faults.merger_kill = Some(MergerKill {
                after_offers: 40,
                incarnation: 0,
            });
            faults.flush_timeout_ms = Some(40);
            let out = process_parallel_faulty(&frames, &cfg, &faults).unwrap();
            assert_eq!(out.workers_died, workers, "{ctx}: every kill must fire");
            for pair in out.digests.windows(2) {
                assert!(
                    pair[0].seq < pair[1].seq,
                    "{ctx}: inversion or duplicate at seq {} -> {}",
                    pair[0].seq,
                    pair[1].seq
                );
            }
            drop(out);
            drop(frames);
            assert_pool_drained(&pool, &ctx);
        }
    }
}

#[test]
fn every_backpressure_policy_conserves_the_pool() {
    // A starved lane exercises each overload reaction: blocking holds
    // handles in the queue, drop-tail abandons whole batches, inline
    // processes them on the dispatcher. All three must return every
    // slot. The tiny queue plus a low watermark forces engagement.
    let n = 8192;
    let policies = [
        BackpressurePolicy::Block,
        BackpressurePolicy::DropTail { budget: 2048 },
        BackpressurePolicy::Inline,
    ];
    for transport in TRANSPORTS {
        for mode in MODES {
            for backpressure in policies {
                let ctx = format!("{transport:?}/{mode:?}/{backpressure:?}");
                let pool = BufPool::for_frames(n, frame_wire_len(PAYLOAD));
                let frames = generate_frames_into(&pool, n, PAYLOAD);
                let cfg = RuntimeConfig {
                    workers: 2,
                    batch_size: 16,
                    queue_depth: 2,
                    high_watermark: Some(1),
                    backpressure,
                    inline_fallback: true,
                    transport,
                    dispatch_mode: mode,
                    ..RuntimeConfig::default()
                };
                let out = process_parallel(&frames, &cfg).unwrap();
                for pair in out.digests.windows(2) {
                    assert!(
                        pair[0].seq < pair[1].seq,
                        "{ctx}: inversion or duplicate at seq {} -> {}",
                        pair[0].seq,
                        pair[1].seq
                    );
                }
                if matches!(backpressure, BackpressurePolicy::Block | BackpressurePolicy::Inline) {
                    assert_eq!(
                        out.digests.len(),
                        n,
                        "{ctx}: lossless policies must deliver every packet"
                    );
                }
                drop(out);
                drop(frames);
                assert_pool_drained(&pool, &ctx);
            }
        }
    }
}

#[test]
fn duplicate_and_late_microflows_conserve_the_pool() {
    // Duplication clones whole micro-flows onto recovery lanes (extra
    // refcounts on the same slots); late release holds batches back in
    // the dispatcher. Both paths must unwind to a fully free slab.
    let n = 10_000;
    for transport in TRANSPORTS {
        for mode in MODES {
            let ctx = format!("{transport:?}/{mode:?}");
            let pool = BufPool::for_frames(n, frame_wire_len(PAYLOAD));
            let frames = generate_frames_into(&pool, n, PAYLOAD);
            let serial = process_serial(&frames);
            let reference: BTreeMap<u64, u64> =
                serial.digests.iter().map(|r| (r.seq, r.digest)).collect();
            let cfg = RuntimeConfig {
                workers: 4,
                batch_size: 32,
                queue_depth: 8,
                transport,
                dispatch_mode: mode,
                ..RuntimeConfig::default()
            };
            let faults = RuntimeFaults {
                seed: 0xD15EA5E,
                dup_mf_rate: 0.05,
                late_mf_rate: 0.05,
                late_by: 3,
                ..RuntimeFaults::none()
            };
            let out = process_parallel_faulty(&frames, &cfg, &faults).unwrap();
            assert_eq!(out.digests.len(), n, "{ctx}: dup/late faults must not lose packets");
            for r in &out.digests {
                assert_eq!(
                    reference.get(&r.seq),
                    Some(&r.digest),
                    "{ctx}: digest mismatch at seq {}",
                    r.seq
                );
            }
            drop(out);
            drop(frames);
            assert_pool_drained(&pool, &ctx);
        }
    }
}

#[test]
fn packet_request_scales_and_keeps_exact_order() {
    // The IRQ-splitting analogue end to end: descriptor round-robin at
    // the dispatcher, parse + flow-hash + steering observation on the
    // workers, merge-counter reassembly at the tail. Output must be
    // byte-identical to serial at every worker count.
    let n = 8192;
    let pool = BufPool::for_frames(n, frame_wire_len(PAYLOAD));
    let frames = generate_frames_into(&pool, n, PAYLOAD);
    let serial = process_serial(&frames);
    for transport in TRANSPORTS {
        for workers in [1, 2, 4, 8] {
            let cfg = RuntimeConfig {
                workers,
                batch_size: 32,
                queue_depth: 8,
                transport,
                dispatch_mode: DispatchMode::PacketRequest,
                ..RuntimeConfig::default()
            };
            let out = process_parallel(&frames, &cfg).unwrap();
            assert_eq!(
                out.digests, serial.digests,
                "{transport:?} w={workers}: packet-request output diverged from serial"
            );
            assert_eq!(
                out.telemetry.dispatch_mode, "packet-request",
                "telemetry must record the dispatch mode"
            );
        }
    }
    drop(frames);
    assert_pool_drained(&pool, "packet-request sweep");
}
