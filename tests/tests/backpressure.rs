//! Overload-control acceptance tests: the dispatcher's backpressure
//! policies against a sustained lane stall.
//!
//! The contract under test (the robustness tentpole): with `DropTail`
//! the run terminates within the flush deadline without panicking and
//! every offered packet is accounted for — delivered, shed (attributed
//! to the saturated lane), or a member of a flushed micro-flow; with
//! `Inline` (and with `Block`) nothing is ever lost and the delivered
//! stream is bit-identical to the serial run.
//!
//! Every scenario runs over both transports (`Mpsc` and `Ring`): the
//! policy semantics are part of the dispatcher, not the channel, so the
//! lock-free rings must uphold the identical contract.

use std::collections::{BTreeMap, BTreeSet};
use std::time::Duration;

use mflow_runtime::{
    generate_frames, process_parallel_faulty, process_serial, BackpressurePolicy, Frame, LaneStall,
    RunOutput, RuntimeConfig, RuntimeFaults, Transport,
};

const TRANSPORTS: [Transport; 2] = [Transport::Mpsc, Transport::Ring];

/// A fault plan that stalls worker 0 before every batch — the sustained
/// slow consumer of the acceptance scenario — and nothing else.
fn stalled_lane(ms: u64) -> RuntimeFaults {
    let mut faults = RuntimeFaults::none();
    faults.lane_stall = Some(LaneStall { worker: 0, ms });
    faults.flush_timeout_ms = Some(250);
    faults
}

/// Checks the universal part of the contract: ordered, duplicate-free,
/// digest-correct output, and every missing sequence number attributed
/// to a shed or flushed micro-flow. Returns the micro-flow ids shed.
fn check_accounting(frames: &[Frame], batch_size: usize, out: &RunOutput) -> BTreeSet<u64> {
    let serial = process_serial(frames);
    let reference: BTreeMap<u64, u64> = serial.digests.iter().map(|r| (r.seq, r.digest)).collect();
    for pair in out.digests.windows(2) {
        assert!(
            pair[0].seq < pair[1].seq,
            "inversion or duplicate at seq {} -> {}",
            pair[0].seq,
            pair[1].seq
        );
    }
    for r in &out.digests {
        assert_eq!(reference.get(&r.seq), Some(&r.digest), "digest mismatch at {}", r.seq);
    }
    assert_eq!(out.telemetry.residue, 0, "items left parked in the merger");
    assert_eq!(
        out.digests.len() as u64 + out.telemetry.shed,
        frames.len() as u64,
        "packets neither delivered nor shed"
    );
    assert!(
        out.telemetry.lane_depths.iter().all(|&d| d == 0),
        "stale end-of-run lane depths: {:?}",
        out.telemetry.lane_depths
    );

    // With no packet-level faults the dispatcher's batching is exact:
    // micro-flow of seq `s` is `s / batch_size`. Every missing packet
    // must belong to a shed micro-flow, and that micro-flow must also be
    // flushed or simply absent from delivery — never half-delivered.
    let shed_mfs: BTreeSet<u64> = out.sheds.iter().map(|&(id, _)| id).collect();
    let present: BTreeSet<u64> = out.digests.iter().map(|r| r.seq).collect();
    for seq in 0..frames.len() as u64 {
        if !present.contains(&seq) {
            let mf = seq / batch_size as u64;
            assert!(
                shed_mfs.contains(&mf),
                "seq {seq} vanished without its micro-flow {mf} being shed"
            );
        }
    }
    // Whole batches only: a shed micro-flow delivers nothing.
    for r in &out.digests {
        let mf = r.seq / batch_size as u64;
        assert!(!shed_mfs.contains(&mf), "micro-flow {mf} was shed yet partially delivered");
    }
    shed_mfs
}

#[test]
fn drop_tail_sheds_on_the_stalled_lane_and_accounts_every_packet() {
    let frames = generate_frames(3000, 64);
    for transport in TRANSPORTS {
        let cfg = RuntimeConfig {
            workers: 3,
            batch_size: 30,
            queue_depth: 2,
            backpressure: BackpressurePolicy::DropTail { budget: u64::MAX },
            high_watermark: Some(1),
            inline_fallback: false,
            transport,
            ..RuntimeConfig::default()
        };
        let out = process_parallel_faulty(&frames, &cfg, &stalled_lane(10)).unwrap();

        let shed_mfs = check_accounting(&frames, cfg.batch_size, &out);
        assert!(out.telemetry.shed > 0, "a 10 ms/batch stall never tripped the watermark");
        assert!(out.backpressure_events > 0);
        assert_eq!(out.block_fallbacks, 0, "unlimited budget must never fall back to blocking");
        assert!(
            out.sheds.iter().any(|&(_, lane)| lane == 0),
            "no shed attributed to the stalled lane: {:?}",
            out.sheds
        );
        for &(_, lane) in &out.sheds {
            assert!(lane < cfg.workers, "shed attributed to non-primary lane {lane}");
        }
        // Shedding decouples the run from the stalled worker: the whole
        // run must finish in a bounded handful of stall periods, not one
        // per batch routed at lane 0.
        assert!(
            out.elapsed < Duration::from_secs(5),
            "run serialized behind the stalled lane ({transport:?}): {:?} for {} sheds",
            out.elapsed,
            shed_mfs.len()
        );
    }
}

#[test]
fn inline_under_sustained_stall_is_exact_in_order_and_dupfree() {
    let frames = generate_frames(2000, 64);
    let serial = process_serial(&frames);
    for transport in TRANSPORTS {
        let cfg = RuntimeConfig {
            workers: 3,
            batch_size: 16,
            queue_depth: 2,
            backpressure: BackpressurePolicy::Inline,
            high_watermark: Some(1),
            inline_fallback: false,
            transport,
            ..RuntimeConfig::default()
        };
        let out = process_parallel_faulty(&frames, &cfg, &stalled_lane(5)).unwrap();
        assert_eq!(out.digests, serial.digests, "inline fallback lost, reordered or duplicated");
        assert_eq!(out.telemetry.shed, 0);
        assert!(out.inline_batches > 0, "the stall never pushed a batch inline");
        assert!(out.telemetry.inline >= out.inline_batches, "inline batches must carry packets");
        assert!(out.flushed_mfs.is_empty(), "nothing was lost, nothing to flush");
    }
}

#[test]
fn drop_tail_budget_exhaustion_falls_back_inline_when_asked() {
    let frames = generate_frames(3000, 64);
    let budget = 60; // exactly two 30-packet batches
    for transport in TRANSPORTS {
        let cfg = RuntimeConfig {
            workers: 3,
            batch_size: 30,
            queue_depth: 2,
            backpressure: BackpressurePolicy::DropTail { budget },
            high_watermark: Some(1),
            inline_fallback: true,
            transport,
            ..RuntimeConfig::default()
        };
        let out = process_parallel_faulty(&frames, &cfg, &stalled_lane(10)).unwrap();
        check_accounting(&frames, cfg.batch_size, &out);
        assert!(out.telemetry.shed <= budget, "shed past the budget");
        assert!(
            out.inline_batches > 0,
            "budget exhausted under a sustained stall but nothing went inline"
        );
        assert_eq!(out.block_fallbacks, 0, "inline fallback was configured");
    }
}

#[test]
fn drop_tail_without_fallback_blocks_after_budget_and_loses_nothing_more() {
    let frames = generate_frames(3000, 64);
    let budget = 60;
    for transport in TRANSPORTS {
        let cfg = RuntimeConfig {
            workers: 3,
            batch_size: 30,
            queue_depth: 2,
            backpressure: BackpressurePolicy::DropTail { budget },
            high_watermark: Some(1),
            inline_fallback: false,
            transport,
            ..RuntimeConfig::default()
        };
        let out = process_parallel_faulty(&frames, &cfg, &stalled_lane(2)).unwrap();
        check_accounting(&frames, cfg.batch_size, &out);
        assert!(out.telemetry.shed <= budget);
        if out.telemetry.shed == budget {
            assert!(out.block_fallbacks > 0, "budget gone, pressure still on, never blocked");
        }
    }
}

#[test]
fn slow_consumer_with_block_policy_stays_lossless() {
    use mflow_runtime::SlowWorker;
    let frames = generate_frames(4000, 64);
    let serial = process_serial(&frames);
    for transport in TRANSPORTS {
        let cfg = RuntimeConfig {
            workers: 4,
            batch_size: 32,
            queue_depth: 2,
            backpressure: BackpressurePolicy::Block,
            high_watermark: Some(2),
            inline_fallback: false,
            transport,
            ..RuntimeConfig::default()
        };
        let mut faults = RuntimeFaults::none();
        faults.slow_worker = Some(SlowWorker { worker: 1, per_batch_us: 200 });
        faults.flush_timeout_ms = Some(250);
        let out = process_parallel_faulty(&frames, &cfg, &faults).unwrap();
        assert_eq!(out.digests, serial.digests);
        assert_eq!(out.telemetry.shed, 0);
        assert_eq!(out.inline_batches, 0);
    }
}
