//! Reproducibility: every figure in EXPERIMENTS.md must regenerate
//! bit-identically from the same seed, for every system and workload.

use integration_tests::quick;
use mflow_netstack::{FlowSpec, PathKind, StackConfig, StackSim, Transport};
use mflow_sim::MS;
use mflow_workloads::datacaching::{self, CachingOpts};
use mflow_workloads::multiflow::{self, MultiFlowOpts};
use mflow_workloads::sockperf::{throughput, SockperfOpts};
use mflow_workloads::System;

#[test]
fn all_systems_are_deterministic_single_flow() {
    let opts = SockperfOpts {
        duration_ns: 12 * MS,
        warmup_ns: 4 * MS,
        noise: true, // determinism must hold even with noise enabled
        ..Default::default()
    };
    for sys in System::ALL {
        for t in [Transport::Tcp, Transport::Udp] {
            let a = throughput(sys, t, 16384, &opts);
            let b = throughput(sys, t, 16384, &opts);
            assert_eq!(a.delivered_bytes, b.delivered_bytes, "{sys:?}/{t:?}");
            assert_eq!(a.telemetry.delivered, b.telemetry.delivered, "{sys:?}/{t:?}");
            assert_eq!(a.events, b.events, "{sys:?}/{t:?}");
            assert_eq!(a.latency.p99(), b.latency.p99(), "{sys:?}/{t:?}");
            assert_eq!(a.ipis, b.ipis, "{sys:?}/{t:?}");
        }
    }
}

#[test]
fn different_seeds_perturb_noisy_runs() {
    let mut cfg = StackConfig::single_flow(PathKind::Overlay, FlowSpec::tcp(65536, 0));
    cfg.duration_ns = 12 * MS;
    cfg.warmup_ns = 4 * MS;
    assert!(cfg.noise.enabled);
    let mut cfg2 = cfg.clone();
    cfg2.seed = cfg.seed + 1;
    let a = StackSim::try_run(cfg, Box::new(mflow_netstack::StayLocal::new(1)), None).expect("valid stack config");
    let b = StackSim::try_run(cfg2, Box::new(mflow_netstack::StayLocal::new(1)), None).expect("valid stack config");
    // Throughput may quantize to the same message count; the fine-grained
    // fingerprint (event count, latency distribution) must differ.
    let same = a.delivered_bytes == b.delivered_bytes
        && a.events == b.events
        && a.latency.p99() == b.latency.p99()
        && a.latency.mean() == b.latency.mean();
    assert!(!same, "noise must actually depend on the seed");
}

#[test]
fn multiflow_and_caching_are_deterministic() {
    let mopts = MultiFlowOpts {
        duration_ns: 12 * MS,
        warmup_ns: 4 * MS,
        ..Default::default()
    };
    let a = multiflow::run(System::Mflow, 8, 65536, &mopts);
    let b = multiflow::run(System::Mflow, 8, 65536, &mopts);
    assert_eq!(a.per_flow_delivered, b.per_flow_delivered);

    let copts = CachingOpts {
        n_clients: 5,
        duration_ns: 12 * MS,
        warmup_ns: 4 * MS,
        ..Default::default()
    };
    let a = datacaching::run(System::Vanilla, &copts);
    let b = datacaching::run(System::Vanilla, &copts);
    assert_eq!(a.report.delivered_bytes, b.report.delivered_bytes);
    assert_eq!(a.p99_ns, b.p99_ns);
}

#[test]
fn throughput_reaches_steady_state_before_measurement() {
    // The calibration depends on warmup covering slow start and queue
    // fill: inside the measurement window the per-millisecond rate must be
    // stable for every system.
    use mflow_workloads::sockperf::{throughput, SockperfOpts};
    let opts = SockperfOpts {
        duration_ns: 20 * MS,
        warmup_ns: 6 * MS,
        ..Default::default()
    };
    for sys in [System::Vanilla, System::Mflow, System::Native] {
        let r = throughput(sys, mflow_netstack::Transport::Tcp, 65536, &opts);
        let cv = r.steady_state_cv();
        assert!(cv < 0.12, "{sys:?} unstable in window: cv {cv:.3}");
    }
}

#[test]
fn quiet_runs_have_zero_noise_cpu() {
    let cfg = quick(StackConfig::single_flow(
        PathKind::Overlay,
        FlowSpec::tcp(65536, 0),
    ));
    let r = StackSim::try_run(cfg, Box::new(mflow_netstack::StayLocal::new(1)), None).expect("valid stack config");
    assert_eq!(r.cpu.tag_total_ns("interference"), 0);
}
