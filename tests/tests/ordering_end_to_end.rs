//! End-to-end ordering and integrity: the same MFLOW mechanisms exercised
//! through the byte-level runtime (real threads, real frames) and through
//! the simulator, asserting the paper's §III-B correctness claims.

use integration_tests::quick;
use mflow::{try_install, MflowConfig};
use mflow_netstack::{FlowSpec, PathKind, StackConfig, StackSim};
use mflow_runtime::{
    generate_frames, process_parallel, process_serial, PolicyKind, RuntimeConfig,
    Transport as RtTransport,
};

#[test]
fn real_threads_preserve_byte_exact_order() {
    let frames = generate_frames(8_192, 700);
    let serial = process_serial(&frames);
    for workers in [2, 4] {
        let out = process_parallel(
            &frames,
            &RuntimeConfig {
                workers,
                batch_size: 256,
                queue_depth: 8,
                ..RuntimeConfig::default()
            },
        )
        .unwrap();
        assert_eq!(out.digests, serial.digests, "{workers} workers diverged");
    }
}

#[test]
fn every_steering_policy_preserves_byte_exact_order() {
    // The policy-pluggable datapath contract: whatever steers the lanes
    // — whole-flow pinning, stage chaining, or micro-flow splitting —
    // the delivered stream on a benign run is byte-identical to the
    // serial one, and policies that never interleave a flow must show a
    // merge path that never engaged.
    let frames = generate_frames(6_000, 256);
    let serial = process_serial(&frames);
    for policy in PolicyKind::ALL {
        for transport in [RtTransport::Mpsc, RtTransport::Ring] {
            let out = process_parallel(
                &frames,
                &RuntimeConfig {
                    workers: 4,
                    batch_size: 64,
                    queue_depth: 8,
                    policy,
                    transport,
                    ..RuntimeConfig::default()
                },
            )
            .unwrap();
            assert_eq!(
                out.digests, serial.digests,
                "{policy} diverged ({transport:?})"
            );
            assert_eq!(out.telemetry.policy, policy.name());
            if !policy.reorders() {
                assert_eq!(out.telemetry.ooo, 0, "{policy} must not reorder");
                assert!(
                    out.flushed_mfs.is_empty(),
                    "{policy} flushed micro-flows on a benign run"
                );
            }
        }
    }
}

#[test]
fn runtime_disorder_grows_as_batches_shrink() {
    // The Figure 7 relationship on real threads: smaller batches produce
    // (statistically) more disorder at the merger input. Compare the
    // extremes, which are deterministic.
    let frames = generate_frames(30_000, 64);
    let one_batch = process_parallel(
        &frames,
        &RuntimeConfig {
            workers: 4,
            batch_size: frames.len(),
            queue_depth: 64,
            ..RuntimeConfig::default()
        },
    )
    .unwrap();
    assert_eq!(one_batch.telemetry.ooo, 0);
    let tiny = process_parallel(
        &frames,
        &RuntimeConfig {
            workers: 4,
            batch_size: 1,
            queue_depth: 64,
            ..RuntimeConfig::default()
        },
    )
    .unwrap();
    assert!(tiny.telemetry.ooo > 0, "1-packet batches over 4 workers never interleaved");
}

#[test]
fn simulator_hides_all_disorder_from_tcp() {
    // Across batch sizes and lane counts, the merge hook must keep TCP's
    // out-of-order queue empty and leave nothing stuck in the merger.
    for batch in [1u32, 32, 256] {
        for lanes in [vec![2, 3], vec![2, 3, 4]] {
            let cfg = quick(StackConfig::single_flow(
                PathKind::Overlay,
                FlowSpec::tcp(65536, 0),
            ));
            let mut mcfg = MflowConfig::tcp_full_path();
            mcfg.batch_size = batch;
            mcfg.split_cores = lanes.clone();
            mcfg.branch_tails = None;
            let (policy, merge) = try_install(mcfg).expect("stock mflow config");
            let r = StackSim::try_run(cfg, policy, Some(merge)).expect("valid stack config");
            assert!(r.goodput_gbps > 1.0, "batch {batch} lanes {lanes:?} stalled");
            assert_eq!(
                r.tcp_ooo_inserts, 0,
                "batch {batch} lanes {lanes:?} leaked disorder into TCP"
            );
            assert_eq!(r.sock_push_fail_tcp, 0);
            // At the simulation deadline a few micro-flows are legitimately
            // still in flight; "residue" must be bounded by that in-flight
            // window, never an accumulating leak.
            let delivered_segs = r.delivered_bytes / 1448;
            assert!(
                (r.telemetry.residue as u64) < 512 + delivered_segs / 100,
                "batch {batch} lanes {lanes:?} leaked {} skbs in the merger",
                r.telemetry.residue
            );
        }
    }
}

#[test]
fn without_reassembly_tcp_pays_for_disorder() {
    // Counterfactual: install the splitter but disable the merge hook;
    // the kernel's per-packet out-of-order queue must light up. This is
    // the overhead the paper's batch reassembly exists to avoid.
    let cfg = quick(StackConfig::single_flow(
        PathKind::Overlay,
        FlowSpec::tcp(65536, 0),
    ));
    let mut mcfg = MflowConfig::tcp_full_path();
    mcfg.batch_size = 4; // tiny batches: heavy interleaving
    let (policy, _merge) = try_install(mcfg).expect("stock mflow config");
    let r = StackSim::try_run(cfg, policy, None).expect("valid stack config");
    assert!(
        r.tcp_ooo_inserts > 100,
        "expected significant TCP OOO work without the merger, saw {}",
        r.tcp_ooo_inserts
    );
    // TCP still reassembles correctly (slowly): nothing is lost.
    assert_eq!(r.sock_push_fail_tcp, 0);
    assert!(r.delivered_bytes > 0);
}

#[test]
fn udp_late_merge_orders_datagram_stream() {
    let mut cfg = quick(StackConfig::single_flow(
        PathKind::Overlay,
        FlowSpec::udp(65536, 0),
    ));
    cfg.flows = vec![FlowSpec::udp(65536, 0); 3];
    let (policy, merge) = try_install(MflowConfig::udp_device_scaling()).expect("stock mflow config");
    let r = StackSim::try_run(cfg, policy, Some(merge)).expect("valid stack config");
    assert!(r.goodput_gbps > 1.0);
    // Disorder happens between the lanes but is repaired before delivery.
    assert!(r.telemetry.ooo > 0, "lanes never raced — split inactive?");
    assert_eq!(r.ooo_transport, 0, "datagrams reached the app out of order");
}
