//! Shape assertions for the figures that are not already covered by the
//! headline tests: Figure 7's batch-size relationship and the §III
//! ablations (splitting-core count, merge placement, split point).

use mflow::{try_install, MflowConfig, ScalingMode};
use mflow_netstack::{FlowSpec, PathKind, StackConfig, StackSim, Stage};
use mflow_sim::MS;

fn noisy_tcp_config() -> StackConfig {
    let mut cfg = StackConfig::single_flow(PathKind::Overlay, FlowSpec::tcp(65536, 0));
    assert!(cfg.noise.enabled);
    cfg.duration_ns = 20 * MS;
    cfg.warmup_ns = 6 * MS;
    cfg
}

fn run_batch(batch: u32) -> (u64, u64, f64) {
    let mut mcfg = MflowConfig::tcp_full_path();
    mcfg.batch_size = batch;
    let (policy, merge) = try_install(mcfg).expect("stock mflow config");
    let r = StackSim::try_run(noisy_tcp_config(), policy, Some(merge)).expect("valid stack config");
    let pkts = (r.delivered_bytes / 1448).max(1);
    (r.telemetry.ooo * 100_000 / pkts, r.telemetry.ooo, r.goodput_gbps)
}

#[test]
fn fig7_shape_ooo_falls_steeply_with_batch_size() {
    let (tiny_rate, _, tiny_tput) = run_batch(1);
    let (paper_rate, _, paper_tput) = run_batch(256);
    // The paper's claim: at 256+ the order-preservation effort is small.
    assert!(
        tiny_rate > 10 * paper_rate,
        "batch=1 rate {tiny_rate} vs batch=256 rate {paper_rate} (per 100k pkts)"
    );
    // And tiny batches wreck throughput (GRO runs + per-batch reassembly).
    assert!(
        paper_tput > tiny_tput * 1.5,
        "batch=256 {paper_tput:.1} Gbps vs batch=1 {tiny_tput:.1}"
    );
}

#[test]
fn ablation_two_splitting_cores_capture_most_of_the_win() {
    // §III-A: "using two cores ... greatly accelerates", diminishing after.
    let run_lanes = |lanes: Vec<usize>| {
        let mut mcfg = MflowConfig::tcp_full_path();
        mcfg.split_cores = lanes;
        mcfg.branch_tails = None;
        let (policy, merge) = try_install(mcfg).expect("stock mflow config");
        StackSim::try_run(noisy_tcp_config(), policy, Some(merge)).expect("valid stack config").goodput_gbps
    };
    let one = run_lanes(vec![2]);
    let two = run_lanes(vec![2, 3]);
    let three = run_lanes(vec![2, 3, 4]);
    assert!(two > one * 1.3, "second core must pay off: {one:.1} -> {two:.1}");
    let marginal = three / two;
    assert!(
        marginal < 1.15,
        "third core should be near-flat, got {marginal:.2}x"
    );
}

#[test]
fn ablation_late_merge_beats_early_merge_for_udp() {
    // §III-B: merge "as late as possible" along the stateless path.
    let run_merge_at = |before: Stage| {
        let mut cfg = StackConfig::single_flow(PathKind::Overlay, FlowSpec::udp(65536, 0));
        cfg.flows = vec![FlowSpec::udp(65536, 0); 3];
        cfg.duration_ns = 20 * MS;
        cfg.warmup_ns = 6 * MS;
        let (policy, mut merge) = try_install(MflowConfig::udp_device_scaling()).expect("stock mflow config");
        merge.before = before;
        StackSim::try_run(cfg, policy, Some(merge)).expect("valid stack config").goodput_gbps
    };
    let early = run_merge_at(Stage::UdpRx);
    let late = run_merge_at(Stage::UserCopy);
    assert!(
        late > early * 1.2,
        "late merge {late:.1} Gbps must beat early {early:.1}"
    );
}

#[test]
fn ablation_irq_split_beats_flow_split_for_tcp() {
    // §III-A: only splitting before skb allocation unblocks the first core.
    let run_mode = |mode: ScalingMode, tails: Option<Vec<usize>>| {
        let mut mcfg = MflowConfig::tcp_full_path();
        mcfg.mode = mode;
        mcfg.branch_tails = tails;
        let (policy, merge) = try_install(mcfg).expect("stock mflow config");
        StackSim::try_run(noisy_tcp_config(), policy, Some(merge)).expect("valid stack config").goodput_gbps
    };
    let flow_split = run_mode(
        ScalingMode::Device {
            split_into: Stage::OuterIp,
        },
        None,
    );
    let irq_split = run_mode(ScalingMode::FullPath, Some(vec![4, 5]));
    assert!(
        irq_split > flow_split * 1.2,
        "irq split {irq_split:.1} Gbps vs flow split {flow_split:.1}"
    );
}
