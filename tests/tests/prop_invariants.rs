//! Property-based invariants across the crates: the reassembler never
//! loses, duplicates or reorders under arbitrary adversarial arrival
//! interleavings, and the simulator conserves packets for arbitrary
//! configurations.

use mflow::{MergeCounter, MfTag};
use proptest::prelude::*;

/// Tags `n` items into micro-flows of size `batch` over `lanes` lanes.
fn tag(n: u64, batch: u64, lanes: usize) -> Vec<(MfTag, u64)> {
    (0..n)
        .map(|i| {
            let id = i / batch;
            (
                MfTag {
                    id,
                    lane: (id as usize) % lanes,
                    last: i % batch == batch - 1 || i == n - 1,
                },
                i,
            )
        })
        .collect()
}

/// Interleaves the lanes in an arbitrary (seeded) way while preserving
/// per-lane FIFO order — the only ordering the hardware guarantees.
fn lane_preserving_shuffle(stream: Vec<(MfTag, u64)>, lanes: usize, seed: u64) -> Vec<(MfTag, u64)> {
    let mut queues: Vec<std::collections::VecDeque<(MfTag, u64)>> =
        vec![std::collections::VecDeque::new(); lanes];
    for (tag, v) in stream {
        queues[tag.lane].push_back((tag, v));
    }
    let mut out = Vec::new();
    let mut s = seed | 1;
    loop {
        let nonempty: Vec<usize> = (0..lanes).filter(|&l| !queues[l].is_empty()).collect();
        if nonempty.is_empty() {
            break;
        }
        s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let pick = nonempty[(s >> 33) as usize % nonempty.len()];
        out.push(queues[pick].pop_front().unwrap());
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn merge_counter_restores_order_under_any_interleaving(
        n in 1u64..3000,
        batch in 1u64..512,
        lanes in 1usize..6,
        seed in any::<u64>(),
    ) {
        let stream = lane_preserving_shuffle(tag(n, batch, lanes), lanes, seed);
        let mut mc = MergeCounter::new();
        let mut out = Vec::with_capacity(n as usize);
        for (t, v) in stream {
            mc.offer(t, v, &mut out);
        }
        prop_assert_eq!(out, (0..n).collect::<Vec<_>>());
        prop_assert_eq!(mc.buffered(), 0);
        prop_assert_eq!(mc.released(), n);
    }

    #[test]
    fn merge_counter_never_loses_items_even_when_incomplete(
        n in 10u64..1000,
        batch in 2u64..128,
        lanes in 2usize..5,
        drop_from in 0.2f64..0.9,
        seed in any::<u64>(),
    ) {
        // Truncate the stream mid-flight (e.g. end of a run): released +
        // buffered must always equal offered, and released items are a
        // prefix of the original order.
        let full = lane_preserving_shuffle(tag(n, batch, lanes), lanes, seed);
        let keep = ((full.len() as f64) * drop_from) as usize;
        let mut mc = MergeCounter::new();
        let mut out = Vec::new();
        for (t, v) in full.into_iter().take(keep) {
            mc.offer(t, v, &mut out);
        }
        prop_assert_eq!(out.len() + mc.buffered(), keep);
        for (i, pair) in out.windows(2).enumerate() {
            prop_assert!(pair[0] < pair[1], "inversion at {i}");
        }
        let buffered = mc.drain_all();
        prop_assert_eq!(buffered.len() + out.len(), keep);
    }
}

mod sim_conservation {
    use super::*;
    use integration_tests::quick;
    use mflow::{install, MflowConfig};
    use mflow_netstack::{FlowSpec, PathKind, StackConfig, StackSim};

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn tcp_runs_never_lose_data_for_any_batch_and_window(
            batch in 1u32..600,
            window_kb in 64u64..4096,
            msg_kb in 1u64..64,
            seed in any::<u64>(),
        ) {
            let mut flow = FlowSpec::tcp(msg_kb * 1024, 0);
            flow.load = mflow_netstack::LoadModel::Closed {
                window_bytes: window_kb * 1024,
            };
            let mut cfg = quick(StackConfig::single_flow(PathKind::Overlay, flow));
            cfg.seed = seed;
            let mut mcfg = MflowConfig::tcp_full_path();
            mcfg.batch_size = batch;
            let (policy, merge) = install(mcfg);
            let r = StackSim::run(cfg, policy, Some(merge));
            prop_assert_eq!(r.ring_drops, 0);
            prop_assert_eq!(r.sock_push_fail_tcp, 0);
            prop_assert_eq!(r.tcp_ooo_inserts, 0);
            // A handful of skbs may sit in the merger when the simulation
            // deadline cuts the run mid-micro-flow; anything larger is a
            // leak.
            prop_assert!(r.merge_residue < 520, "merger leak: {}", r.merge_residue);
            prop_assert!(r.delivered_bytes > 0);
        }
    }
}
