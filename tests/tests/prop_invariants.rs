//! Property-based invariants across the crates: the reassembler never
//! loses, duplicates or reorders under arbitrary adversarial arrival
//! interleavings, and the simulator conserves packets for arbitrary
//! configurations.

use mflow::{MergeCounter, MfTag};
use proptest::prelude::*;

/// Tags `n` items into micro-flows of size `batch` over `lanes` lanes.
fn tag(n: u64, batch: u64, lanes: usize) -> Vec<(MfTag, u64)> {
    (0..n)
        .map(|i| {
            let id = i / batch;
            (
                MfTag {
                    id,
                    lane: (id as usize) % lanes,
                    last: i % batch == batch - 1 || i == n - 1,
                },
                i,
            )
        })
        .collect()
}

/// Interleaves the lanes in an arbitrary (seeded) way while preserving
/// per-lane FIFO order — the only ordering the hardware guarantees.
fn lane_preserving_shuffle(stream: Vec<(MfTag, u64)>, lanes: usize, seed: u64) -> Vec<(MfTag, u64)> {
    let mut queues: Vec<std::collections::VecDeque<(MfTag, u64)>> =
        vec![std::collections::VecDeque::new(); lanes];
    for (tag, v) in stream {
        queues[tag.lane].push_back((tag, v));
    }
    let mut out = Vec::new();
    let mut s = seed | 1;
    loop {
        let nonempty: Vec<usize> = (0..lanes).filter(|&l| !queues[l].is_empty()).collect();
        if nonempty.is_empty() {
            break;
        }
        s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let pick = nonempty[(s >> 33) as usize % nonempty.len()];
        out.push(queues[pick].pop_front().unwrap());
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn merge_counter_restores_order_under_any_interleaving(
        n in 1u64..3000,
        batch in 1u64..512,
        lanes in 1usize..6,
        seed in any::<u64>(),
    ) {
        let stream = lane_preserving_shuffle(tag(n, batch, lanes), lanes, seed);
        let mut mc = MergeCounter::new();
        let mut out = Vec::with_capacity(n as usize);
        for (t, v) in stream {
            mc.offer(t, v, &mut out);
        }
        prop_assert_eq!(out, (0..n).collect::<Vec<_>>());
        prop_assert_eq!(mc.buffered(), 0);
        prop_assert_eq!(mc.released(), n);
    }

    #[test]
    fn merge_counter_never_loses_items_even_when_incomplete(
        n in 10u64..1000,
        batch in 2u64..128,
        lanes in 2usize..5,
        drop_from in 0.2f64..0.9,
        seed in any::<u64>(),
    ) {
        // Truncate the stream mid-flight (e.g. end of a run): released +
        // buffered must always equal offered, and released items are a
        // prefix of the original order.
        let full = lane_preserving_shuffle(tag(n, batch, lanes), lanes, seed);
        let keep = ((full.len() as f64) * drop_from) as usize;
        let mut mc = MergeCounter::new();
        let mut out = Vec::new();
        for (t, v) in full.into_iter().take(keep) {
            mc.offer(t, v, &mut out);
        }
        prop_assert_eq!(out.len() + mc.buffered(), keep);
        for (i, pair) in out.windows(2).enumerate() {
            prop_assert!(pair[0] < pair[1], "inversion at {i}");
        }
        let buffered = mc.drain_all();
        prop_assert_eq!(buffered.len() + out.len(), keep);
    }

    #[test]
    fn faulted_merge_output_is_an_ordered_dupfree_accounted_subsequence(
        n in 10u64..2000,
        batch in 1u64..128,
        lanes in 1usize..5,
        deadline in 1u64..64,
        drop_millis in 0u64..300,
        dup_millis in 0u64..300,
        seed in any::<u64>(),
    ) {
        // Arbitrary loss + duplication against a flush-deadline merger:
        // the output must stay strictly ordered and duplicate-free, and
        // every missing item must be accounted for — either dropped at
        // injection or a member of a flushed micro-flow.
        let stream = lane_preserving_shuffle(tag(n, batch, lanes), lanes, seed);
        // Duplicate some micro-flows wholesale on unique recovery lanes,
        // appended behind the stream (the shape redispatch produces).
        let mut dup_tail: Vec<(MfTag, u64)> = Vec::new();
        let mut next_recovery = lanes;
        let n_mfs = n.div_ceil(batch);
        for id in 0..n_mfs {
            if splitmix(seed ^ 0xD0B1, id) % 1000 < dup_millis {
                let lane = next_recovery;
                next_recovery += 1;
                dup_tail.extend(
                    stream
                        .iter()
                        .filter(|(t, _)| t.id == id)
                        .map(|&(t, v)| (MfTag { lane, ..t }, v)),
                );
            }
        }
        let mut mc = MergeCounter::with_flush_deadline(deadline);
        let mut out = Vec::new();
        let mut dropped = std::collections::BTreeSet::new();
        let mut offered = 0u64;
        for (t, v) in stream.into_iter().chain(dup_tail) {
            if splitmix(seed ^ 0xD709, v) % 1000 < drop_millis {
                dropped.insert(v);
                continue;
            }
            offered += 1;
            mc.offer(t, v, &mut out);
        }
        mc.flush_stalled(&mut out);
        // Flush releases every parked item: nothing stays buffered.
        prop_assert_eq!(mc.buffered(), 0);
        // Full accounting: every offer was released, rejected late, or
        // rejected duplicate.
        prop_assert_eq!(
            out.len() as u64 + mc.late_drops() + mc.dup_drops(),
            offered
        );
        // Ordered and duplicate-free.
        for pair in out.windows(2) {
            prop_assert!(pair[0] < pair[1], "inversion or duplicate: {:?}", pair);
        }
        // Every missing item is accounted for.
        let present: std::collections::BTreeSet<u64> = out.iter().copied().collect();
        for v in 0..n {
            if !present.contains(&v) {
                let mf = v / batch;
                prop_assert!(
                    dropped.contains(&v) || mc.flushed_ids().contains(&mf),
                    "item {v} vanished without being dropped or flushed (mf {mf})"
                );
            }
        }
    }

    #[test]
    fn flush_stalled_releases_every_parked_item_for_any_prefix(
        n in 10u64..1500,
        batch in 2u64..128,
        lanes in 2usize..5,
        keep_frac in 0.1f64..0.95,
        seed in any::<u64>(),
    ) {
        // Cut the stream at an arbitrary point (a crashed run): the
        // end-of-stream flush must release every parked item, in order,
        // with the skipped micro-flows reported.
        let full = lane_preserving_shuffle(tag(n, batch, lanes), lanes, seed);
        let keep = (((full.len() as f64) * keep_frac) as usize).max(1);
        let mut mc = MergeCounter::new();
        let mut out = Vec::new();
        for (t, v) in full.into_iter().take(keep) {
            mc.offer(t, v, &mut out);
        }
        let parked = mc.buffered();
        mc.flush_stalled(&mut out);
        prop_assert_eq!(mc.buffered(), 0, "flush left items parked");
        prop_assert_eq!(out.len(), keep, "offered {} released {}", keep, out.len());
        for pair in out.windows(2) {
            prop_assert!(pair[0] < pair[1]);
        }
        // If anything was parked, the flush must have skipped some ID.
        if parked > 0 {
            prop_assert!(mc.flushed() > 0);
        }
    }
}

mod backpressure_accounting {
    use super::*;
    use mflow_runtime::{
        generate_frames, process_parallel_faulty, BackpressurePolicy, LaneStall, PolicyKind,
        RuntimeConfig, RuntimeFaults, Transport,
    };

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(10))]

        #[test]
        fn shed_plus_delivered_plus_flushed_equals_offered_under_every_policy(
            n in 50usize..600,
            workers in 2usize..5,
            batch in 1usize..48,
            depth in 1usize..4,
            watermark in 1usize..4,
            policy_sel in 0usize..3,
            transport_sel in 0usize..2,
            steer_sel in 0usize..6,
        ) {
            // Pressure a lane with a sustained stall and check the
            // conservation law of the overload model: every offered
            // packet ends up delivered, shed (whole micro-flows, with a
            // lane attributed), or inside a flushed micro-flow — under
            // Block, DropTail and Inline alike, over both transports and
            // every steering policy (pinned, chained, or splitting).
            let policy = match policy_sel {
                0 => BackpressurePolicy::Block,
                1 => BackpressurePolicy::DropTail { budget: u64::MAX },
                _ => BackpressurePolicy::Inline,
            };
            let steering = PolicyKind::ALL[steer_sel];
            let transport = match transport_sel {
                0 => Transport::Mpsc,
                _ => Transport::Ring,
            };
            let frames = generate_frames(n, 32);
            let cfg = RuntimeConfig {
                workers,
                batch_size: batch,
                queue_depth: depth,
                backpressure: policy,
                high_watermark: Some(watermark.min(depth)),
                inline_fallback: false,
                transport,
                policy: steering,
                ..RuntimeConfig::default()
            };
            let mut faults = RuntimeFaults::none();
            faults.lane_stall = Some(LaneStall { worker: 0, ms: 1 });
            faults.flush_timeout_ms = Some(100);
            let out = process_parallel_faulty(&frames, &cfg, &faults).unwrap();

            // Conservation: nothing vanishes unaccounted.
            prop_assert_eq!(
                out.digests.len() as u64 + out.telemetry.shed,
                n as u64,
                "delivered + shed != offered"
            );
            let shed_mfs: std::collections::BTreeSet<u64> =
                out.sheds.iter().map(|&(id, _)| id).collect();
            let present: std::collections::BTreeSet<u64> =
                out.digests.iter().map(|r| r.seq).collect();
            for seq in 0..n as u64 {
                if !present.contains(&seq) {
                    let mf = seq / batch as u64;
                    prop_assert!(
                        shed_mfs.contains(&mf),
                        "seq {} missing but micro-flow {} never shed",
                        seq, mf
                    );
                }
            }
            for pair in out.digests.windows(2) {
                prop_assert!(pair[0].seq < pair[1].seq, "inversion or duplicate");
            }
            // Lossless policies must not shed, period.
            if !matches!(policy, BackpressurePolicy::DropTail { .. }) {
                prop_assert_eq!(out.telemetry.shed, 0);
                prop_assert_eq!(out.digests.len(), n);
            }
            for &(_, lane) in &out.sheds {
                prop_assert!(lane < workers, "shed attributed to non-primary lane {}", lane);
            }
            // Non-splitting policies never interleave one flow across
            // lanes on the primary path; any merge-input disorder must
            // come from recovery/inline lanes, which only exist when the
            // run could shed or go inline.
            if !steering.reorders()
                && matches!(policy, BackpressurePolicy::Block)
            {
                prop_assert_eq!(out.telemetry.ooo, 0, "pinned policy raced at merge");
            }
            // No phantom load left behind in the occupancy counters.
            for (i, &d) in out.telemetry.lane_depths.iter().enumerate() {
                prop_assert_eq!(d, 0, "stale end-of-run depth on lane {}", i);
            }
        }
    }
}

/// SplitMix64 over one key (deterministic, order-independent draws).
fn splitmix(seed: u64, k: u64) -> u64 {
    let mut x = seed
        .wrapping_add(k)
        .wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

mod sim_conservation {
    use super::*;
    use integration_tests::quick;
    use mflow::{try_install, MflowConfig};
    use mflow_netstack::{FlowSpec, PathKind, StackConfig, StackSim};

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn tcp_runs_never_lose_data_for_any_batch_and_window(
            batch in 1u32..600,
            window_kb in 64u64..4096,
            msg_kb in 1u64..64,
            seed in any::<u64>(),
        ) {
            let mut flow = FlowSpec::tcp(msg_kb * 1024, 0);
            flow.load = mflow_netstack::LoadModel::Closed {
                window_bytes: window_kb * 1024,
            };
            let mut cfg = quick(StackConfig::single_flow(PathKind::Overlay, flow));
            cfg.seed = seed;
            let mut mcfg = MflowConfig::tcp_full_path();
            mcfg.batch_size = batch;
            let (policy, merge) = try_install(mcfg).expect("stock mflow config");
            let r = StackSim::try_run(cfg, policy, Some(merge)).expect("valid stack config");
            prop_assert_eq!(r.ring_drops, 0);
            prop_assert_eq!(r.sock_push_fail_tcp, 0);
            prop_assert_eq!(r.tcp_ooo_inserts, 0);
            // A handful of skbs may sit in the merger when the simulation
            // deadline cuts the run mid-micro-flow; anything larger is a
            // leak.
            prop_assert!(r.telemetry.residue < 520, "merger leak: {}", r.telemetry.residue);
            prop_assert!(r.delivered_bytes > 0);
        }
    }
}
