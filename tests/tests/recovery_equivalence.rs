//! Recovery equivalence: the merger failure domain's correctness proof.
//!
//! The contract under test: a fixed-seed run whose merger is killed (and
//! killed again on its replacement) must deliver a stream byte-identical
//! to the benign run of the same configuration — across every steering
//! policy, both transports and both stateful modes — with every restore
//! replaying at most one inter-checkpoint window, conservation balanced
//! through every respawn, and the fault log recording the full
//! death/respawn/restore lifecycle.
//!
//! The strict replay bound only holds while the dispatcher's backlog
//! pump stays idle (an engaged pump legitimately journals an unbounded
//! burst while a respawn backs off), so every config here sizes
//! `merger_depth` far above the frame count: the in-flight window can
//! never cross the pump's high-water mark.

use std::collections::{BTreeMap, BTreeSet};

use mflow_runtime::{
    generate_frames, process_parallel_faulty, process_serial_stateful, FaultEvent, FaultLog,
    MergerKill, PolicyKind, RuntimeConfig, RuntimeFaults, ScrReconciler, StatefulMode, Transport,
    WorkerKill,
};
use proptest::prelude::*;

const TRANSPORTS: [Transport; 2] = [Transport::Mpsc, Transport::Ring];
const MODES: [StatefulMode; 2] = [
    StatefulMode::MergeBeforeTcp,
    StatefulMode::StateComputeReplication,
];

/// Checkpoint interval small enough that the kill points land several
/// windows in, so a restore that replayed more than one window would be
/// caught with room to spare.
const CHECKPOINT_EVERY: u64 = 32;

/// Enough stateful rounds that a lost, duplicated or reordered
/// transition would corrupt a digest.
const WORK: u32 = 8;

/// Supervised config whose backlog pump provably never engages:
/// `merger_depth / 2 = 4096` exceeds any frame count used here, so
/// `sent - recvd` cannot reach the pump's threshold and every journaled
/// offer is attributable to a merger incarnation's write-ahead append.
fn pump_idle_cfg(policy: PolicyKind, transport: Transport, mode: StatefulMode) -> RuntimeConfig {
    RuntimeConfig {
        workers: 4,
        batch_size: 16,
        queue_depth: 4,
        merger_depth: 8192,
        policy,
        transport,
        stateful_mode: mode,
        stateful_work: WORK,
        heartbeat_interval_ms: Some(25),
        restart_budget: 32,
        restart_backoff_ms: 1,
        checkpoint_every: CHECKPOINT_EVERY,
        ..RuntimeConfig::default()
    }
}

/// The two-generation kill schedule: the original merger dies
/// mid-stream, and so does its replacement.
fn double_kill() -> RuntimeFaults {
    let mut faults = RuntimeFaults::none();
    faults.merger_kills = vec![
        MergerKill {
            after_offers: 100,
            incarnation: 0,
        },
        MergerKill {
            after_offers: 300,
            incarnation: 1,
        },
    ];
    faults
}

#[test]
fn killed_runs_match_benign_runs_across_the_full_matrix() {
    // 6 policies x 2 transports x 2 stateful modes: byte-identical
    // ordered delivery with and without the merger kills, both deaths
    // healed, and every restore inside one checkpoint window.
    let frames = generate_frames(2_000, 64);
    let serial = process_serial_stateful(&frames, WORK);
    for mode in MODES {
        for transport in TRANSPORTS {
            for policy in PolicyKind::ALL {
                let cfg = pump_idle_cfg(policy, transport, mode);
                let benign = process_parallel_faulty(&frames, &cfg, &RuntimeFaults::none())
                    .unwrap_or_else(|e| panic!("benign {policy}/{transport:?}/{mode:?}: {e}"));
                let killed = process_parallel_faulty(&frames, &cfg, &double_kill())
                    .unwrap_or_else(|e| panic!("killed {policy}/{transport:?}/{mode:?}: {e}"));
                assert_eq!(
                    killed.digests, benign.digests,
                    "delivery diverged after merger kills ({policy}/{transport:?}/{mode:?})"
                );
                assert_eq!(
                    benign.digests, serial.digests,
                    "benign run diverged from the serial reference \
                     ({policy}/{transport:?}/{mode:?})"
                );
                assert_eq!(killed.merger_deaths, 2, "{policy}/{transport:?}/{mode:?}");
                assert!(
                    killed.telemetry.merger_restarts >= 2,
                    "both deaths must be healed ({policy}/{transport:?}/{mode:?})"
                );
                assert_eq!(killed.telemetry.residue, 0);
                // The strict recovery bound: each restore replays at most
                // the one window journaled since the last checkpoint.
                let bound = CHECKPOINT_EVERY * (killed.telemetry.merger_restarts + 1);
                assert!(
                    killed.telemetry.restore_replayed_offers <= bound,
                    "replayed {} offers, bound {bound} ({policy}/{transport:?}/{mode:?})",
                    killed.telemetry.restore_replayed_offers
                );
                assert!(
                    killed.telemetry.restore_replayed_offers >= 2,
                    "each journaled fatal offer must be replayed \
                     ({policy}/{transport:?}/{mode:?})"
                );
                assert!(killed.checkpoints > 0, "{policy}/{transport:?}/{mode:?}");
                // Benign supervised runs pay checkpoints but never restore.
                assert_eq!(benign.telemetry.restore_replayed_offers, 0);
                assert_eq!(benign.merger_deaths, 0);
            }
        }
    }
}

#[test]
fn fault_log_records_the_merger_lifecycle() {
    let frames = generate_frames(2_000, 64);
    for transport in TRANSPORTS {
        let cfg = pump_idle_cfg(PolicyKind::Mflow, transport, StatefulMode::MergeBeforeTcp);
        let log = FaultLog::new();
        let mut faults = double_kill();
        faults.log = Some(log.clone());
        let out = process_parallel_faulty(&frames, &cfg, &faults).unwrap();
        assert_eq!(out.merger_deaths, 2);
        let events = log.sorted();
        let deaths: Vec<u64> = events
            .iter()
            .filter_map(|e| match e {
                FaultEvent::MergerDeath { incarnation } => Some(*incarnation),
                _ => None,
            })
            .collect();
        let respawns: Vec<u64> = events
            .iter()
            .filter_map(|e| match e {
                FaultEvent::MergerRespawn { incarnation } => Some(*incarnation),
                _ => None,
            })
            .collect();
        let restores: Vec<u64> = events
            .iter()
            .filter_map(|e| match e {
                FaultEvent::SnapshotRestore { incarnation } => Some(*incarnation),
                _ => None,
            })
            .collect();
        assert_eq!(deaths, vec![0, 1], "{transport:?}: both scheduled kills fire");
        assert!(
            respawns.len() >= 2,
            "{transport:?}: each death must log a respawn ({respawns:?})"
        );
        // Every successor (incarnation > 0) that took the lease restored
        // from the checkpoint layer and said so.
        assert!(
            restores.len() >= 2,
            "{transport:?}: each respawn must log its restore ({restores:?})"
        );
        assert!(
            restores.iter().all(|&i| i >= 1),
            "{transport:?}: incarnation 0 must never claim a restore"
        );
    }
}

/// Mirrors the dispatcher's batching walk so lost packets can be
/// attributed (same helper as `supervision.rs`).
fn replay_dispatch(
    n: usize,
    batch_size: usize,
    faults: &RuntimeFaults,
) -> (BTreeSet<u64>, BTreeMap<u64, u64>) {
    let mut dropped = BTreeSet::new();
    let mut mf_of = BTreeMap::new();
    let mut mf_id = 0u64;
    let mut len = 0usize;
    for i in 0..n {
        let seq = i as u64;
        let last = len + 1 == batch_size || i + 1 == n;
        if faults.drops_packet(mf_id, seq, last) {
            dropped.insert(seq);
        } else {
            len += 1;
            mf_of.insert(seq, mf_id);
        }
        if last {
            mf_id += 1;
            len = 0;
        }
    }
    (dropped, mf_of)
}

#[test]
fn conservation_balances_through_simultaneous_worker_and_merger_deaths() {
    // Worker kills (which genuinely lose in-flight packets, bounded by
    // the death window) and merger kills (which must lose nothing) in
    // the same run: the ledger has to balance across both domains.
    let frames = generate_frames(3_000, 64);
    for transport in TRANSPORTS {
        let cfg = pump_idle_cfg(PolicyKind::Mflow, transport, StatefulMode::MergeBeforeTcp);
        let mut faults = double_kill();
        for worker in [0usize, 2] {
            faults.kills.push(WorkerKill {
                worker,
                after_batches: 3,
                incarnation: 0,
            });
        }
        faults.flush_timeout_ms = Some(40);
        let (dropped, mf_of) = replay_dispatch(frames.len(), cfg.batch_size, &faults);
        let serial = process_serial_stateful(&frames, WORK);
        let reference: BTreeMap<u64, u64> =
            serial.digests.iter().map(|r| (r.seq, r.digest)).collect();

        let out = process_parallel_faulty(&frames, &cfg, &faults).unwrap();
        assert_eq!(out.merger_deaths, 2, "{transport:?}");
        assert_eq!(out.workers_died, 2, "{transport:?}");

        for pair in out.digests.windows(2) {
            assert!(
                pair[0].seq < pair[1].seq,
                "{transport:?}: inversion or duplicate at {} -> {}",
                pair[0].seq,
                pair[1].seq
            );
        }
        for r in &out.digests {
            assert_eq!(
                reference.get(&r.seq),
                Some(&r.digest),
                "{transport:?}: digest mismatch at seq {}",
                r.seq
            );
        }
        assert_eq!(out.telemetry.residue, 0, "{transport:?}");

        let present: BTreeSet<u64> = out.digests.iter().map(|r| r.seq).collect();
        let flushed: BTreeSet<u64> = out.flushed_mfs.iter().copied().collect();
        let mut unattributed = BTreeSet::new();
        for seq in 0..frames.len() as u64 {
            if present.contains(&seq) || dropped.contains(&seq) {
                continue;
            }
            if !flushed.contains(&mf_of[&seq]) {
                unattributed.insert(mf_of[&seq]);
            }
        }
        let window = (cfg.queue_depth + 2) * out.workers_died;
        assert!(
            unattributed.len() <= window,
            "{transport:?}: {} micro-flows lost without attribution \
             ({window}-batch death window): {unattributed:?}",
            unattributed.len()
        );
    }
}

#[test]
fn degraded_paths_still_deliver_the_benign_stream() {
    // No supervision at all, and supervision with a zero respawn budget:
    // both degradations (dispatcher-side WAL pumping, final-assembly
    // serial merge) must still deliver byte-identically — a merger death
    // never costs packets, only parallelism.
    let frames = generate_frames(2_000, 64);
    for mode in MODES {
        for transport in TRANSPORTS {
            let supervised = pump_idle_cfg(PolicyKind::Mflow, transport, mode);
            let benign =
                process_parallel_faulty(&frames, &supervised, &RuntimeFaults::none()).unwrap();

            let mut one_kill = RuntimeFaults::none();
            one_kill.merger_kill = Some(MergerKill {
                after_offers: 100,
                incarnation: 0,
            });

            let unsupervised = RuntimeConfig {
                heartbeat_interval_ms: None,
                restart_budget: 0,
                ..supervised
            };
            let out = process_parallel_faulty(&frames, &unsupervised, &one_kill).unwrap();
            assert_eq!(
                out.digests, benign.digests,
                "unsupervised degradation diverged ({transport:?}/{mode:?})"
            );
            assert_eq!(out.merger_deaths, 1);
            assert_eq!(out.telemetry.merger_restarts, 0);

            let no_budget = RuntimeConfig {
                restart_budget: 0,
                ..supervised
            };
            let out = process_parallel_faulty(&frames, &no_budget, &one_kill).unwrap();
            assert_eq!(
                out.digests, benign.digests,
                "budget-exhausted degradation diverged ({transport:?}/{mode:?})"
            );
            assert_eq!(out.merger_deaths, 1);
            assert_eq!(out.telemetry.merger_restarts, 0);
        }
    }
}

// ---------------------------------------------------------------------
// Snapshot round-trip: the state-layer invariant the runtime's restore
// path is built on, proven over arbitrary offer streams.
// ---------------------------------------------------------------------

use mflow::reassembly::{MergeCounter, MfTag};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Checkpointing a [`MergeCounter`] at *every* prefix of an
    /// arbitrary offer stream and feeding the restored snapshot the
    /// remaining suffix must reproduce the uninterrupted run exactly:
    /// same releases in the same order, same outcome tally.
    #[test]
    fn merge_counter_snapshot_round_trips_at_every_prefix(
        offers in prop::collection::vec((0u64..12, 0usize..4, any::<bool>()), 1..40),
        deadline in 0u64..6,
    ) {
        // 0 means no flush deadline; otherwise the stall clock runs.
        let fresh = || match deadline {
            0 => MergeCounter::new(),
            d => MergeCounter::with_flush_deadline(d),
        };
        // The uninterrupted reference run.
        let mut reference = fresh();
        let mut ref_out = Vec::new();
        for (i, &(id, lane, last)) in offers.iter().enumerate() {
            reference.offer(MfTag { id, lane, last }, i as u64, &mut ref_out);
        }
        for split in 0..=offers.len() {
            let mut original = fresh();
            let mut out = Vec::new();
            for (i, &(id, lane, last)) in offers[..split].iter().enumerate() {
                original.offer(MfTag { id, lane, last }, i as u64, &mut out);
            }
            // Checkpoint, then continue on the restored copy only.
            let mut restored = original.snapshot();
            for (i, &(id, lane, last)) in offers[split..].iter().enumerate() {
                restored.offer(MfTag { id, lane, last }, (split + i) as u64, &mut out);
            }
            prop_assert_eq!(
                &out, &ref_out,
                "split at {} diverged the release stream", split
            );
            prop_assert_eq!(restored.stats(), reference.stats(), "split at {}", split);
        }
    }

    /// Same invariant for the SCR reconciler: watermark, parked records
    /// and drop counters all survive the checkpoint boundary.
    #[test]
    fn reconciler_snapshot_round_trips_at_every_prefix(
        seqs in prop::collection::vec(0u64..24, 1..40),
    ) {
        let mut reference = ScrReconciler::new();
        let mut ref_out = Vec::new();
        for &s in &seqs {
            reference.offer(s, s + 1, s, &mut ref_out);
        }
        for split in 0..=seqs.len() {
            let mut original = ScrReconciler::new();
            let mut out = Vec::new();
            for &s in &seqs[..split] {
                original.offer(s, s + 1, s, &mut out);
            }
            let mut restored = original.snapshot();
            for &s in &seqs[split..] {
                restored.offer(s, s + 1, s, &mut out);
            }
            prop_assert_eq!(&out, &ref_out, "split at {} diverged", split);
            prop_assert_eq!(restored.stats(), reference.stats(), "split at {}", split);
        }
    }
}
