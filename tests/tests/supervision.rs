//! Supervised self-healing: heartbeat-driven death detection, respawn
//! with backoff, FALCON stage re-homing, graceful degradation to
//! dispatcher-inline processing when the restart budget is exhausted,
//! and the transport-invariance of the injected fault schedule.
//!
//! The healing contract under test: a supervised run survives every
//! scheduled worker death without wedging, the output stays a strictly
//! ordered duplicate-free subsequence of the serial output, every
//! missing packet is attributable, and the supervisor's accounting
//! (restarts, respawned vs abandoned) matches what actually happened.

use std::collections::{BTreeMap, BTreeSet};
use std::time::Duration;

use mflow_runtime::{
    generate_frames, process_parallel_faulty, process_serial, FaultLog, Frame, MergerKill,
    PolicyKind, RuntimeConfig, RuntimeFaults, Transport, WorkerKill,
};
use proptest::prelude::*;

const TRANSPORTS: [Transport; 2] = [Transport::Mpsc, Transport::Ring];

/// A supervised baseline: heartbeats on, respawns allowed, short
/// backoff so recovery happens well inside a test-sized run.
fn supervised_cfg(policy: PolicyKind, transport: Transport) -> RuntimeConfig {
    RuntimeConfig {
        workers: 4,
        batch_size: 16,
        queue_depth: 4,
        policy,
        transport,
        heartbeat_interval_ms: Some(25),
        restart_budget: 16,
        restart_backoff_ms: 1,
        ..RuntimeConfig::default()
    }
}

/// Replays the dispatcher's batching walk to predict which packets the
/// fault plan deletes at dispatch and which micro-flow every surviving
/// packet is tagged into (mirrors `tests/runtime_faults.rs`).
fn replay_dispatch(
    n: usize,
    batch_size: usize,
    faults: &RuntimeFaults,
) -> (BTreeSet<u64>, BTreeMap<u64, u64>) {
    let mut dropped = BTreeSet::new();
    let mut mf_of = BTreeMap::new();
    let mut mf_id = 0u64;
    let mut len = 0usize;
    for i in 0..n {
        let seq = i as u64;
        let last = len + 1 == batch_size || i + 1 == n;
        if faults.drops_packet(mf_id, seq, last) {
            dropped.insert(seq);
        } else {
            len += 1;
            mf_of.insert(seq, mf_id);
        }
        if last {
            mf_id += 1;
            len = 0;
        }
    }
    (dropped, mf_of)
}

/// Runs the supervised pipeline and checks the full degradation
/// contract against the serial reference, plus supervisor bookkeeping:
/// every death is classified as either respawned or abandoned, and the
/// restart counter equals the respawn count.
fn check_supervised(
    frames: &[Frame],
    cfg: &RuntimeConfig,
    faults: &RuntimeFaults,
) -> mflow_runtime::RunOutput {
    let serial = process_serial(frames);
    let reference: BTreeMap<u64, u64> = serial.digests.iter().map(|r| (r.seq, r.digest)).collect();
    let (dropped, mf_of) = replay_dispatch(frames.len(), cfg.batch_size, faults);

    let out = process_parallel_faulty(frames, cfg, faults).unwrap();

    for pair in out.digests.windows(2) {
        assert!(
            pair[0].seq < pair[1].seq,
            "inversion or duplicate at seq {} -> {}",
            pair[0].seq,
            pair[1].seq
        );
    }
    for r in &out.digests {
        assert_eq!(
            reference.get(&r.seq),
            Some(&r.digest),
            "digest mismatch at seq {}",
            r.seq
        );
    }
    assert_eq!(out.telemetry.residue, 0, "items left parked in the merger");

    let present: BTreeSet<u64> = out.digests.iter().map(|r| r.seq).collect();
    let flushed: BTreeSet<u64> = out.flushed_mfs.iter().copied().collect();
    let mut unattributed = BTreeSet::new();
    for seq in 0..frames.len() as u64 {
        if present.contains(&seq) || dropped.contains(&seq) {
            continue;
        }
        let mf = *mf_of.get(&seq).expect("surviving packet must have a tag");
        if !flushed.contains(&mf) {
            unattributed.insert(mf);
        }
    }
    let window = (cfg.queue_depth + 2) * out.workers_died;
    assert!(
        unattributed.len() <= window,
        "{} micro-flows lost without attribution ({}-batch death window): {:?}",
        unattributed.len(),
        window,
        unattributed
    );
    assert!(
        out.telemetry.lane_depths.iter().all(|&d| d == 0),
        "stale end-of-run lane depths {:?} ({:?})",
        out.telemetry.lane_depths,
        cfg.transport
    );

    // Supervisor bookkeeping: every death has exactly one disposition,
    // and `restarts` counts the respawns.
    assert_eq!(
        out.workers_respawned + out.workers_abandoned,
        out.workers_died,
        "every death must be classified respawned or abandoned"
    );
    assert_eq!(
        out.telemetry.restarts, out.workers_respawned as u64,
        "restart counter must equal the respawn count"
    );
    out
}

#[test]
fn killed_fanout_worker_is_respawned_and_the_run_stays_whole() {
    let frames = generate_frames(2_000, 64);
    for transport in TRANSPORTS {
        let cfg = supervised_cfg(PolicyKind::Mflow, transport);
        let mut faults = RuntimeFaults::none();
        faults.kills.push(WorkerKill {
            worker: 0,
            after_batches: 3,
            incarnation: 0,
        });
        faults.flush_timeout_ms = Some(40);
        let out = check_supervised(&frames, &cfg, &faults);
        assert_eq!(out.workers_died, 1, "{transport:?}: exactly one scheduled death");
        assert_eq!(
            out.workers_respawned, 1,
            "{transport:?}: the supervisor must heal the slot"
        );
        assert!(
            !out.digests.is_empty(),
            "{transport:?}: run delivered nothing"
        );
    }
}

#[test]
fn falcon_chain_rehomes_a_killed_interior_stage() {
    // FALCON pipelines every batch through each stage, so an interior
    // stage death severs the chain; the supervisor must splice in a
    // replacement worker and re-link the stage, not just observe it.
    let frames = generate_frames(2_000, 64);
    for policy in [PolicyKind::FalconDev, PolicyKind::FalconFunc] {
        for transport in TRANSPORTS {
            let cfg = supervised_cfg(policy, transport);
            let mut faults = RuntimeFaults::none();
            faults.kills.push(WorkerKill {
                worker: 1, // interior stage for both chain shapes
                after_batches: 2,
                incarnation: 0,
            });
            faults.flush_timeout_ms = Some(40);
            let out = check_supervised(&frames, &cfg, &faults);
            assert_eq!(
                out.workers_died, 1,
                "{policy}/{transport:?}: exactly one scheduled death"
            );
            assert_eq!(
                out.workers_respawned, 1,
                "{policy}/{transport:?}: the chain stage must be re-homed"
            );
            assert!(
                !out.digests.is_empty(),
                "{policy}/{transport:?}: run delivered nothing"
            );
        }
    }
}

#[test]
fn respawned_incarnation_can_be_killed_again() {
    // A chaos schedule targeting incarnation 1 kills the *replacement*:
    // the supervisor must heal the slot twice, with the second respawn
    // backed off but still inside the budget.
    let frames = generate_frames(3_000, 64);
    for transport in TRANSPORTS {
        let cfg = supervised_cfg(PolicyKind::Mflow, transport);
        let mut faults = RuntimeFaults::none();
        for incarnation in [0, 1] {
            faults.kills.push(WorkerKill {
                worker: 0,
                after_batches: 2,
                incarnation,
            });
        }
        faults.flush_timeout_ms = Some(40);
        let out = check_supervised(&frames, &cfg, &faults);
        assert_eq!(out.workers_died, 2, "{transport:?}: both incarnations die");
        assert!(
            out.workers_respawned >= 1,
            "{transport:?}: at least the first death must be healed"
        );
    }
}

#[test]
fn exhausted_budget_degrades_to_dispatcher_inline() {
    // Supervision on (heartbeats run) but the restart budget is zero:
    // when every worker dies the run must not abort with NoLiveWorkers —
    // the degradation ladder ends at dispatcher-inline processing, and
    // every death is accounted as abandoned.
    let frames = generate_frames(1_500, 64);
    for transport in TRANSPORTS {
        let cfg = RuntimeConfig {
            workers: 2,
            batch_size: 16,
            queue_depth: 2,
            policy: PolicyKind::Mflow,
            transport,
            heartbeat_interval_ms: Some(25),
            restart_budget: 0,
            restart_backoff_ms: 1,
            ..RuntimeConfig::default()
        };
        let mut faults = RuntimeFaults::none();
        for worker in 0..cfg.workers {
            faults.kills.push(WorkerKill {
                worker,
                after_batches: 2,
                incarnation: 0,
            });
        }
        faults.flush_timeout_ms = Some(40);
        let out = check_supervised(&frames, &cfg, &faults);
        assert_eq!(out.workers_died, 2, "{transport:?}: both workers die");
        assert_eq!(out.workers_respawned, 0, "{transport:?}: no budget, no respawn");
        assert_eq!(out.workers_abandoned, 2, "{transport:?}: both abandoned");
        assert!(
            !out.digests.is_empty(),
            "{transport:?}: inline degradation must still deliver"
        );
        // The tail of the stream has no workers left; it can only have
        // arrived via the dispatcher's inline path.
        assert!(
            out.telemetry.inline > 0,
            "{transport:?}: tail frames must be processed inline"
        );
    }
}

#[test]
fn post_respawn_batches_merge_promptly_on_the_ring() {
    // A parked ring merger must observe a respawned producer without
    // waiting out its flush deadline. Single worker, per-batch stalls
    // pacing dispatch so the respawn happens mid-stream, and a flush
    // deadline far above the run's natural length: if the merger missed
    // the re-wired producer's wakeup it would sleep out the 2 s deadline
    // at least once, which the elapsed-time bound catches.
    let frames = generate_frames(800, 64);
    let cfg = RuntimeConfig {
        workers: 1,
        batch_size: 16,
        queue_depth: 2,
        policy: PolicyKind::Mflow,
        transport: Transport::Ring,
        heartbeat_interval_ms: Some(25),
        restart_budget: 16,
        restart_backoff_ms: 1,
        ..RuntimeConfig::default()
    };
    let mut faults = RuntimeFaults::none();
    faults.kills.push(WorkerKill {
        worker: 0,
        after_batches: 2,
        incarnation: 0,
    });
    faults.stall_rate = 1.0; // every batch sleeps, pacing the dispatcher
    faults.stall_ms = 3;
    faults.flush_timeout_ms = Some(2_000);
    let out = check_supervised(&frames, &cfg, &faults);
    assert!(
        out.workers_respawned >= 1,
        "the paced run must respawn mid-stream"
    );
    assert!(
        out.elapsed < Duration::from_millis(1_500),
        "post-respawn batches took {:?} — the merger slept out its flush \
         deadline instead of waking on the re-wired producer",
        out.elapsed
    );
}

#[test]
fn fault_schedule_is_transport_invariant() {
    // Same seed, same schedule: the canonically sorted fault-event log
    // must be identical under Mpsc and Ring. Dispatch-time decisions
    // (drops, dups, lates) are checked under MFLOW steering; worker-side
    // stalls under RPS, whose single-flow pin makes the stalling worker
    // schedule-determined too.
    let frames = generate_frames(1_200, 64);
    let cases = [
        // (policy, drop, drop_last, dup, late, stall)
        (PolicyKind::Mflow, 0.05, 0.05, 0.1, 0.1, 0.0),
        (PolicyKind::Rps, 0.0, 0.0, 0.0, 0.0, 0.3),
    ];
    for (policy, drop_rate, drop_last_rate, dup_mf_rate, late_mf_rate, stall_rate) in cases {
        let mut logs = Vec::new();
        for transport in TRANSPORTS {
            let cfg = supervised_cfg(policy, transport);
            let log = FaultLog::new();
            let faults = RuntimeFaults {
                seed: 0xC0FFEE,
                drop_rate,
                drop_last_rate,
                dup_mf_rate,
                late_mf_rate,
                late_by: 2,
                stall_rate,
                stall_ms: 1,
                flush_timeout_ms: Some(40),
                log: Some(log.clone()),
                ..RuntimeFaults::none()
            };
            process_parallel_faulty(&frames, &cfg, &faults).unwrap();
            logs.push(log.sorted());
        }
        assert!(
            !logs[0].is_empty(),
            "{policy}: the schedule must fire something for the comparison to mean anything"
        );
        assert_eq!(
            logs[0], logs[1],
            "{policy}: same seed produced different fault schedules across transports"
        );
    }
}

#[test]
fn merger_fault_schedule_is_transport_invariant() {
    // Merger kills are keyed to absolute applied-offer counts, so the
    // full death/respawn/restore lifecycle — which incarnations died,
    // which replaced them, which restored — must come out identical
    // under Mpsc and Ring. Kills only: wedge (stall) healing is
    // wall-clock-driven and legitimately timing-dependent. The stall
    // watchdog stays off (budget-only supervision) so a loaded host
    // cannot inject spurious supersede events, and `merger_depth` keeps
    // the dispatcher's backlog pump idle so every consumed offer is a
    // merger incarnation's.
    let frames = generate_frames(1_200, 64);
    let mut logs = Vec::new();
    for transport in TRANSPORTS {
        let cfg = RuntimeConfig {
            merger_depth: 8192,
            heartbeat_interval_ms: None,
            ..supervised_cfg(PolicyKind::Mflow, transport)
        };
        let log = FaultLog::new();
        let mut faults = RuntimeFaults::none();
        faults.merger_kills = vec![
            MergerKill {
                after_offers: 150,
                incarnation: 0,
            },
            MergerKill {
                after_offers: 500,
                incarnation: 1,
            },
        ];
        faults.log = Some(log.clone());
        process_parallel_faulty(&frames, &cfg, &faults).unwrap();
        logs.push(log.sorted());
    }
    assert!(
        logs[0].len() >= 6,
        "two kills must log two deaths, two respawns and two restores: {:?}",
        logs[0]
    );
    assert_eq!(
        logs[0], logs[1],
        "merger lifecycle diverged across transports"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Conservation and per-lane FIFO survive arbitrary restart
    /// schedules: any mix of kills across slots and incarnations, under
    /// any policy, transport and restart budget (including zero — the
    /// budget-exhausted inline-degradation path).
    #[test]
    fn conservation_holds_under_random_restart_schedules(
        seed in any::<u64>(),
        policy_ix in 0usize..PolicyKind::ALL.len(),
        transport_ix in 0usize..2,
        workers in 2usize..=4,
        batch_size in 8usize..=24,
        budget_ix in 0usize..4,
        kill_points in prop::collection::vec((0usize..4, 2u64..8, 0u64..2), 1..5),
    ) {
        let policy = PolicyKind::ALL[policy_ix];
        let transport = TRANSPORTS[transport_ix];
        let budget = [0u32, 1, 2, 16][budget_ix];
        let cfg = RuntimeConfig {
            workers,
            batch_size,
            queue_depth: 4,
            policy,
            transport,
            heartbeat_interval_ms: Some(25),
            restart_budget: budget,
            restart_backoff_ms: 1,
            ..RuntimeConfig::default()
        };
        let slots = policy.worker_slots(workers);
        let mut faults = RuntimeFaults::none();
        for (slot, after_batches, incarnation) in kill_points {
            faults.kills.push(WorkerKill {
                worker: slot % slots,
                after_batches,
                incarnation,
            });
        }
        faults.flush_timeout_ms = Some(40);
        let frames = generate_frames(600, 64);
        check_supervised(&frames, &cfg, &faults);
    }
}
