//! Fixed-seed chaos soak, test-harness edition: the same seed-derived
//! fault schedules the `mflow_cli --chaos-soak` harness runs, asserted
//! as a tier-1 test. The headline scenario is the issue's acceptance
//! criterion: a run that kills *every* worker completes with
//! conservation intact, `restarts >= n_workers`, and post-recovery
//! dispatch throughput within 20% of the pre-fault rate.

use std::collections::{BTreeMap, BTreeSet};

use mflow_runtime::{
    generate_frames, process_parallel_faulty, process_serial, Frame, PolicyKind, RuntimeConfig,
    RuntimeFaults, Transport, WorkerKill,
};

const TRANSPORTS: [Transport; 2] = [Transport::Mpsc, Transport::Ring];

/// SplitMix64, matching the CLI harness's per-cell seed derivation.
fn splitmix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Replays the dispatcher's batching walk (mirrors
/// `tests/runtime_faults.rs`).
fn replay_dispatch(
    n: usize,
    batch_size: usize,
    faults: &RuntimeFaults,
) -> (BTreeSet<u64>, BTreeMap<u64, u64>) {
    let mut dropped = BTreeSet::new();
    let mut mf_of = BTreeMap::new();
    let mut mf_id = 0u64;
    let mut len = 0usize;
    for i in 0..n {
        let seq = i as u64;
        let last = len + 1 == batch_size || i + 1 == n;
        if faults.drops_packet(mf_id, seq, last) {
            dropped.insert(seq);
        } else {
            len += 1;
            mf_of.insert(seq, mf_id);
        }
        if last {
            mf_id += 1;
            len = 0;
        }
    }
    (dropped, mf_of)
}

/// The conservation check: strictly ordered duplicate-free output,
/// digests matching the serial reference, every missing packet
/// attributable, no residue, no stale lane depths.
fn check_conservation(
    frames: &[Frame],
    cfg: &RuntimeConfig,
    faults: &RuntimeFaults,
) -> mflow_runtime::RunOutput {
    let serial = process_serial(frames);
    let reference: BTreeMap<u64, u64> = serial.digests.iter().map(|r| (r.seq, r.digest)).collect();
    let (dropped, mf_of) = replay_dispatch(frames.len(), cfg.batch_size, faults);
    let out = process_parallel_faulty(frames, cfg, faults).unwrap();

    for pair in out.digests.windows(2) {
        assert!(
            pair[0].seq < pair[1].seq,
            "inversion or duplicate at seq {} -> {}",
            pair[0].seq,
            pair[1].seq
        );
    }
    for r in &out.digests {
        assert_eq!(reference.get(&r.seq), Some(&r.digest), "digest mismatch at seq {}", r.seq);
    }
    assert_eq!(out.telemetry.residue, 0, "items left parked in the merger");

    let present: BTreeSet<u64> = out.digests.iter().map(|r| r.seq).collect();
    let flushed: BTreeSet<u64> = out.flushed_mfs.iter().copied().collect();
    let mut unattributed = BTreeSet::new();
    for seq in 0..frames.len() as u64 {
        if present.contains(&seq) || dropped.contains(&seq) {
            continue;
        }
        let mf = *mf_of.get(&seq).expect("surviving packet must have a tag");
        if !flushed.contains(&mf) {
            unattributed.insert(mf);
        }
    }
    let window = (cfg.queue_depth + 2) * out.workers_died;
    assert!(
        unattributed.len() <= window,
        "{} micro-flows lost without attribution ({}-batch death window): {:?}",
        unattributed.len(),
        window,
        unattributed
    );
    assert!(
        out.telemetry.lane_depths.iter().all(|&d| d == 0),
        "stale end-of-run lane depths {:?} ({:?})",
        out.telemetry.lane_depths,
        cfg.transport
    );
    out
}

#[test]
fn killing_every_worker_heals_conserves_and_recovers_throughput() {
    // The acceptance scenario: every fan-out worker is killed, staggered
    // so a pre-fault dispatch window exists. The supervisor must heal
    // all of them, the conservation contract must hold, and the
    // post-respawn dispatch rate must land within 20% of pre-fault.
    //
    // Sizing note: both rate windows must measure *steady-state*
    // dispatch. The pre-fault window runs from start to the first
    // observed death, so it includes the startup burst where the
    // dispatcher fills every empty lane queue without blocking — pooled
    // zero-copy dispatch made that burst several times faster than the
    // Vec-per-frame datapath this test was first sized for, and with
    // kills at ~30 batches the burst dominated the window and inflated
    // the pre-fault rate past what any steady post-recovery rate could
    // match. Kills land late enough that steady-state dispatch
    // dominates the pre window, and the frame count keeps the
    // post-respawn window long enough to amortize respawn backoff.
    let workers = 4usize;
    let frames = generate_frames(60_000, 64);
    for transport in TRANSPORTS {
        let cfg = RuntimeConfig {
            workers,
            batch_size: 32,
            queue_depth: 8,
            policy: PolicyKind::Mflow,
            transport,
            heartbeat_interval_ms: Some(25),
            restart_budget: 16,
            restart_backoff_ms: 1,
            ..RuntimeConfig::default()
        };
        let mut faults = RuntimeFaults::none();
        for slot in 0..workers {
            faults.kills.push(WorkerKill {
                worker: slot,
                after_batches: 100 + 50 * slot as u64,
                incarnation: 0,
            });
        }
        faults.flush_timeout_ms = Some(40);
        // Conservation, healing and window existence are strict on every
        // attempt. The 20% throughput bound is a wall-clock assertion:
        // under full-suite CPU contention either window can be deflated
        // by whatever else the scheduler interleaves, so it gets a small
        // retry budget — a real post-recovery bottleneck fails every
        // attempt, a scheduler artifact does not repeat.
        let mut rates = Vec::new();
        let recovered = (0..3).any(|_| {
            let out = check_conservation(&frames, &cfg, &faults);
            assert_eq!(
                out.workers_died, workers,
                "{transport:?}: every scheduled kill must fire"
            );
            assert!(
                out.telemetry.restarts >= workers as u64,
                "{transport:?}: supervisor healed {} of {workers} deaths",
                out.telemetry.restarts
            );
            let pre = out.recovery.prefault_rate();
            let post = out.recovery.recovered_rate();
            assert!(
                pre > 0.0 && post > 0.0,
                "{transport:?}: both rate windows must be measured (pre {pre}, post {post})"
            );
            rates.push((pre, post));
            post >= 0.8 * pre
        });
        assert!(
            recovered,
            "{transport:?}: post-recovery dispatch rate fell more than 20% below \
             the pre-fault rate on every attempt: {rates:?}"
        );
    }
}

#[test]
fn fixed_seed_soak_over_every_policy_and_transport() {
    // The CLI harness's schedule, in miniature: one seed-derived kill
    // per materialised worker slot plus background drops, dups, lates
    // and stalls, over every policy x transport cell.
    let soak_seed = 42u64;
    let frames = generate_frames(1_500, 64);
    for policy in PolicyKind::ALL {
        for transport in TRANSPORTS {
            let cfg = RuntimeConfig {
                workers: 4,
                batch_size: 32,
                queue_depth: 8,
                policy,
                transport,
                heartbeat_interval_ms: Some(25),
                restart_budget: 32,
                restart_backoff_ms: 1,
                ..RuntimeConfig::default()
            };
            let seed = splitmix(soak_seed ^ policy.name().len() as u64);
            let kills = (0..policy.worker_slots(cfg.workers))
                .map(|slot| WorkerKill {
                    worker: slot,
                    after_batches: 2 + splitmix(seed ^ slot as u64) % 6,
                    incarnation: 0,
                })
                .collect();
            let faults = RuntimeFaults {
                seed,
                drop_rate: 0.01,
                drop_last_rate: 0.02,
                dup_mf_rate: 0.03,
                late_mf_rate: 0.03,
                late_by: 3,
                stall_rate: 0.01,
                stall_ms: 1,
                kills,
                flush_timeout_ms: Some(40),
                ..RuntimeFaults::none()
            };
            let out = check_conservation(&frames, &cfg, &faults);
            // Traffic-bearing slots must have died and been healed:
            // MFLOW spreads over every lane, FALCON chains pipe through
            // every stage, pinned policies concentrate on one lane.
            let expected = match policy {
                PolicyKind::Mflow => cfg.workers as u64,
                PolicyKind::FalconDev | PolicyKind::FalconFunc => {
                    policy.worker_slots(cfg.workers) as u64
                }
                _ => 1,
            };
            assert!(
                out.telemetry.restarts >= expected,
                "{policy}/{transport:?}: healed {} slots, expected at least {expected}",
                out.telemetry.restarts
            );
        }
    }
}
