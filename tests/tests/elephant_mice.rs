//! Mixed traffic: MFLOW must split the elephants and leave the mice alone
//! (§III-A "any identified (elephant) flow"), and mice must not be hurt by
//! sharing the host with split elephants.

use integration_tests::quick;
use mflow::{try_install, ElephantConfig, MflowConfig};
use mflow_netstack::{FlowSpec, LoadModel, PathKind, StackConfig, StackSim};
use mflow_sim::MS;

/// One 64 KB elephant plus several slow mice into separate sockets.
fn mixed_config() -> StackConfig {
    let elephant = FlowSpec::tcp(65536, 0);
    let mut mouse = FlowSpec::tcp(1024, 1);
    mouse.load = LoadModel::Paced {
        interval_ns: 200_000, // 5k msg/s: ~40 Mbps, clearly a mouse
    };
    let mut cfg = quick(StackConfig::single_flow(PathKind::Overlay, elephant));
    cfg.flows.push(mouse.clone());
    let mut mouse2 = mouse;
    mouse2.sock = 2;
    cfg.flows.push(mouse2);
    cfg.n_socks = 3;
    cfg.duration_ns = 24 * MS;
    cfg.warmup_ns = 8 * MS;
    cfg
}

fn detecting_config() -> MflowConfig {
    let mut mcfg = MflowConfig::tcp_full_path();
    mcfg.elephant = ElephantConfig::default(); // real detection, not always-on
    mcfg
}

#[test]
fn only_the_elephant_is_split() {
    let (policy, merge) = try_install(detecting_config()).expect("stock mflow config");
    let r = StackSim::try_run(mixed_config(), policy, Some(merge)).expect("valid stack config");
    // The elephant raced across lanes; reassembly hid it from TCP.
    assert!(r.telemetry.ooo > 0, "elephant never split");
    assert_eq!(r.tcp_ooo_inserts, 0);
    // Everyone made progress.
    assert!(r.per_flow_delivered[0] > 10 * r.per_flow_delivered[1]);
    assert!(r.per_flow_delivered[1] > 0 && r.per_flow_delivered[2] > 0);
}

#[test]
fn detection_loses_little_vs_always_split() {
    let (p_detect, m_detect) = try_install(detecting_config()).expect("stock mflow config");
    let detected = StackSim::try_run(mixed_config(), p_detect, Some(m_detect)).expect("valid stack config");
    let (p_always, m_always) = try_install(MflowConfig::tcp_full_path()).expect("stock mflow config");
    let always = StackSim::try_run(mixed_config(), p_always, Some(m_always)).expect("valid stack config");
    let ratio = detected.goodput_gbps / always.goodput_gbps;
    assert!(
        ratio > 0.9,
        "detection cost too high: {:.2} vs {:.2} Gbps",
        detected.goodput_gbps,
        always.goodput_gbps
    );
}

#[test]
fn mice_latency_stays_reasonable_next_to_a_split_elephant() {
    let (policy, merge) = try_install(detecting_config()).expect("stock mflow config");
    let r = StackSim::try_run(mixed_config(), policy, Some(merge)).expect("valid stack config");
    // The mice land in the same latency histogram; with the elephant
    // saturating the copy core their p99 grows, but the median must stay
    // in interactive territory (sub-millisecond).
    assert!(r.latency.count() > 100);
    assert!(
        r.latency.median() < 1_000_000,
        "median {} ns",
        r.latency.median()
    );
}
