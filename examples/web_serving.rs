//! Web serving on an overlay network: the Elgg-like multi-tier workload of
//! Figure 11, at a reduced user count for a fast demonstration.
//!
//! ```text
//! cargo run -p mflow-examples --release --bin web_serving
//! ```

use mflow_sim::MS;
use mflow_workloads::datacaching::CachingOpts;
use mflow_workloads::webserving::{run, WebOpts};
use mflow_workloads::{StackProfile, System};

fn main() {
    let profile_opts = CachingOpts {
        n_clients: 10,
        duration_ns: 30 * MS,
        warmup_ns: 8 * MS,
        ..Default::default()
    };
    let web_opts = WebOpts {
        users: 100,
        duration_ns: 6_000 * MS,
        ..Default::default()
    };
    println!("web serving, {} users, Elgg-like operation mix\n", web_opts.users);
    for sys in [System::Vanilla, System::FalconDev, System::Mflow] {
        let profile = StackProfile::measure(sys, &profile_opts);
        let result = run(&profile, &web_opts);
        println!(
            "{:<11} success {:>6.0} ops/min   mean response {:>7.2} ms   (exchange p50 {:>5.1}us)",
            sys.name(),
            result.total_success_per_min(),
            result.mean_response_ns() / 1e6,
            profile.p50_ns as f64 / 1e3,
        );
        for op in result.per_op.iter().take(3) {
            println!(
                "    {:<16} {:>5}/{:<5} ok  resp {:>7.2} ms",
                op.name,
                op.successes,
                op.attempts,
                op.response.mean() / 1e6
            );
        }
    }
    println!("\nFaster per-exchange processing under MFLOW compounds over the dozens of");
    println!("cache/db round trips inside each operation — the paper measures up to 7.5x");
    println!("more successful operations than the vanilla overlay.");
}
