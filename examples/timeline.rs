//! Visualize MFLOW's packet-level parallelism: an ASCII Gantt chart of
//! which core runs which stage, vanilla vs MFLOW, over the same 300 µs of
//! a 64 KB TCP flow through the overlay network.
//!
//! ```text
//! cargo run -p mflow-examples --release --bin timeline
//! ```

use mflow::{try_install, MflowConfig};
use mflow_netstack::{FlowSpec, PathKind, StackConfig, StackSim, StayLocal};
use mflow_sim::MS;

fn config() -> StackConfig {
    let mut cfg = StackConfig::single_flow(PathKind::Overlay, FlowSpec::tcp(65536, 0));
    cfg.trace = true;
    cfg.duration_ns = 12 * MS;
    cfg.warmup_ns = 4 * MS;
    cfg
}

fn show(label: &str, report: &mflow_netstack::RunReport) {
    let trace = report.trace.as_ref().expect("trace enabled");
    println!("\n== {label}: {:.1} Gbps ==", report.goodput_gbps);
    println!("(p = pNIC poll/alloc/gro, v = vxlan, u = user copy, t = tcp, m = mflow, i = ipi/interference)\n");
    let from = 10 * MS;
    print!("{}", trace.render_gantt(6, from, from + 300_000, 100));
}

fn main() {
    let vanilla = StackSim::try_run(config(), Box::new(StayLocal::new(1)), None).expect("valid stack config");
    show("vanilla overlay (everything on core 1)", &vanilla);

    let (policy, merge) = try_install(MflowConfig::tcp_full_path()).expect("stock mflow config");
    let mflow = StackSim::try_run(config(), policy, Some(merge)).expect("valid stack config");
    show("mflow full-path scaling", &mflow);

    println!("\nVanilla serializes the whole pipeline on one core; MFLOW keeps six cores");
    println!("concurrently busy on the same flow and the copy thread (core 0) saturated.");
}
