//! The paper's motivation in one binary: how much does the container
//! overlay network cost versus the native host network, and how much of
//! that do RPS / FALCON / MFLOW claw back?
//!
//! ```text
//! cargo run -p mflow-examples --release --bin overlay_vs_native
//! ```

use mflow_netstack::Transport;
use mflow_sim::MS;
use mflow_workloads::sockperf::{throughput, SockperfOpts};
use mflow_workloads::System;

fn main() {
    let opts = SockperfOpts {
        duration_ns: 40 * MS,
        warmup_ns: 10 * MS,
        ..Default::default()
    };
    for transport in [Transport::Tcp, Transport::Udp] {
        let tname = match transport {
            Transport::Tcp => "TCP",
            Transport::Udp => "UDP (3 clients)",
        };
        println!("\n=== single 64 KB flow, {tname} ===");
        let native = throughput(System::Native, transport, 65536, &opts).goodput_gbps;
        println!("  {:<11} {:>6.2} Gbps", "native", native);
        let vanilla = throughput(System::Vanilla, transport, 65536, &opts).goodput_gbps;
        println!(
            "  {:<11} {:>6.2} Gbps  ({:-.0}% vs native — the overlay tax)",
            "vanilla",
            vanilla,
            (vanilla / native - 1.0) * 100.0
        );
        for sys in [System::Rps, System::FalconDev, System::FalconFun, System::Mflow] {
            let g = throughput(sys, transport, 65536, &opts).goodput_gbps;
            println!(
                "  {:<11} {:>6.2} Gbps  ({:+.0}% vs vanilla)",
                sys.name(),
                g,
                (g / vanilla - 1.0) * 100.0
            );
        }
    }
    println!(
        "\nThe overlay's longer pipeline (pNIC -> VXLAN -> bridge -> veth) overloads \
         one core; only MFLOW parallelizes a single flow's packets across cores."
    );
}
