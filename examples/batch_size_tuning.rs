//! Tuning the micro-flow batch size: the trade-off of §III-A.
//!
//! Small batches interleave heavily across the splitting cores (lots of
//! out-of-order arrivals to fix, broken GRO runs); large batches amortize
//! reassembly to almost nothing but delay lane rotation. 256 packets is
//! the paper's sweet spot.
//!
//! ```text
//! cargo run -p mflow-examples --release --bin batch_size_tuning
//! ```

use mflow::{try_install, MflowConfig};
use mflow_netstack::{FlowSpec, PathKind, StackConfig, StackSim};
use mflow_sim::MS;

fn main() {
    println!("single TCP flow, 64 KB messages, 2 splitting cores, noise on\n");
    println!("{:>10} {:>12} {:>16} {:>14}", "batch", "Gbps", "ooo @ merge", "tcp ooo work");
    for batch in [1u32, 8, 32, 128, 256, 512] {
        let mut cfg = StackConfig::single_flow(PathKind::Overlay, FlowSpec::tcp(65536, 0));
        cfg.duration_ns = 40 * MS;
        cfg.warmup_ns = 10 * MS;
        let mut mcfg = MflowConfig::tcp_full_path();
        mcfg.batch_size = batch;
        let (policy, merge) = try_install(mcfg).expect("stock mflow config");
        let r = StackSim::try_run(cfg, policy, Some(merge)).expect("valid stack config");
        println!(
            "{:>10} {:>12.2} {:>16} {:>14}",
            batch, r.goodput_gbps, r.telemetry.ooo, r.tcp_ooo_inserts
        );
    }
    println!(
        "\nThe merge hook hides every inversion from TCP (last column stays 0); \
         what batch size buys is fewer inversions to hide and intact GRO runs."
    );
}
