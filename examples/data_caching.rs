//! Data caching (memcached-style) behind the overlay: Figure 13's workload
//! — 550-byte objects, 4 server threads, 1 vs 10 clients.
//!
//! ```text
//! cargo run -p mflow-examples --release --bin data_caching
//! ```

use mflow_sim::MS;
use mflow_workloads::datacaching::{run, CachingOpts};
use mflow_workloads::System;

fn main() {
    println!("memcached-style data caching, 550 B objects, 4 server threads\n");
    for clients in [1usize, 10] {
        println!("--- {clients} client(s) ---");
        let opts = CachingOpts {
            n_clients: clients,
            duration_ns: 30 * MS,
            warmup_ns: 8 * MS,
            ..Default::default()
        };
        let mut vanilla_p99 = 0.0;
        for sys in [System::Vanilla, System::FalconDev, System::Mflow] {
            let r = run(sys, &opts);
            if sys == System::Vanilla {
                vanilla_p99 = r.p99_ns as f64;
            }
            println!(
                "  {:<11} avg {:>7.1} us   p99 {:>7.1} us ({:+.0}% vs vanilla)   {:>9.0} req/s",
                sys.name(),
                r.avg_ns / 1e3,
                r.p99_ns as f64 / 1e3,
                (r.p99_ns as f64 / vanilla_p99 - 1.0) * 100.0,
                r.rps
            );
        }
    }
    println!("\nWith 10 clients the server's kernel stack saturates; MFLOW's packet-level");
    println!("parallelism cuts the tail — the paper reports -47% p99 latency.");
}
