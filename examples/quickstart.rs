//! Quickstart: accelerate a single container-overlay TCP flow with MFLOW.
//!
//! Builds the simulated overlay receive path twice — once with the vanilla
//! kernel behaviour (the whole pipeline on one core) and once with MFLOW's
//! packet-level parallelism — and compares throughput, latency and
//! ordering guarantees.
//!
//! ```text
//! cargo run -p mflow-examples --release --bin quickstart
//! ```

use mflow::{try_install, MflowConfig};
use mflow_netstack::{FlowSpec, PathKind, StackConfig, StackSim, StayLocal};

fn main() {
    // A single "elephant" TCP flow of 64 KB messages into a container
    // behind a VXLAN overlay network.
    let config = || StackConfig::single_flow(PathKind::Overlay, FlowSpec::tcp(65536, 0));

    // 1. Vanilla: the kernel squeezes every stage onto the IRQ core.
    let vanilla = StackSim::try_run(config(), Box::new(StayLocal::new(1)), None).expect("valid stack config");

    // 2. MFLOW: split the flow into 256-packet micro-flows at the first
    //    softirq, process them on cores 2-5 in parallel, and reassemble
    //    in order before TCP (the paper's full-path scaling).
    let (policy, merge) = try_install(MflowConfig::tcp_full_path()).expect("stock mflow config");
    let mflow = StackSim::try_run(config(), policy, Some(merge)).expect("valid stack config");

    println!("container overlay network, single TCP flow, 64 KB messages\n");
    println!("  {}", vanilla.summary());
    println!("  {}", mflow.summary());
    println!(
        "\nMFLOW speedup: {:.0}%  (paper reports +81% and 29.8 Gbps)",
        (mflow.goodput_gbps / vanilla.goodput_gbps - 1.0) * 100.0
    );
    println!(
        "order preserved: {} packets raced across cores, {} reached TCP out of order",
        mflow.telemetry.ooo, mflow.tcp_ooo_inserts
    );
    assert_eq!(mflow.tcp_ooo_inserts, 0, "reassembly must hide all disorder");
}
