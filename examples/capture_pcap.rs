//! Write a sample of the overlay traffic this library generates to a pcap
//! file, ready for Wireshark/tcpdump — handy for convincing yourself the
//! VXLAN encapsulation is byte-exact.
//!
//! ```text
//! cargo run -p mflow-examples --release --bin capture_pcap [out.pcap]
//! ```

use mflow_net::pcap::PcapWriter;
use mflow_runtime::generate_frames;

fn main() -> std::io::Result<()> {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "mflow_sample.pcap".to_string());
    let frames = generate_frames(64, 1400);
    let file = std::fs::File::create(&path)?;
    let mut w = PcapWriter::new(std::io::BufWriter::new(file))?;
    // Space the frames at 100 Gbps wire pacing for a realistic timeline.
    let mut ts = 0u64;
    for f in &frames {
        ts += (f.bytes().len() as u64 * 8) / 100 + 1; // ns at 100 Gbps
        w.write_frame(ts, f.bytes())?;
    }
    let n = w.frames();
    w.finish()?;
    println!(
        "wrote {n} VXLAN-encapsulated TCP frames ({} bytes each) to {path}",
        frames[0].bytes().len()
    );
    println!("inspect with: tshark -r {path} -V | head -60");
    Ok(())
}
