//! `mflow-workloads` — the traffic generators and application models of
//! the paper's evaluation (§V):
//!
//! * [`systems`] — the five systems under test (native, vanilla overlay,
//!   RPS, FALCON, MFLOW) as ready-to-run configurations;
//! * [`sockperf`] — single-flow throughput and under-load latency runs
//!   (Figures 4, 8, 9);
//! * [`multiflow`] — concurrent-flow scaling on a 10-kernel-core host
//!   (Figures 10 and 12);
//! * [`webserving`] — a CloudSuite-Web-Serving-like closed-loop multi-tier
//!   model (Figure 11);
//! * [`datacaching`] — a CloudSuite-Data-Caching (memcached) model
//!   (Figure 13);
//! * [`zipf`] — Zipfian key popularity for the caching workload.

pub mod datacaching;
pub mod multiflow;
pub mod profile;
pub mod sockperf;
pub mod systems;
pub mod webserving;
pub mod zipf;

pub use profile::StackProfile;
pub use systems::System;
