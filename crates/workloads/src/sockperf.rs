//! sockperf-like single-flow runs: throughput mode (closed-loop TCP /
//! saturating multi-client UDP) and under-load latency mode (windowed TCP
//! at each system's own maximum rate; UDP paced at a common safe load),
//! as the paper's Figures 4, 8 and 9 use.

use mflow_netstack::{
    FlowSpec, LoadModel, NoiseConfig, PathKind, RunReport, StackConfig, StackSim, Transport,
};
use mflow_sim::MS;

use crate::systems::System;

/// Message sizes the paper sweeps (16 B .. 64 KB).
pub const MSG_SIZES: [u64; 5] = [16, 1024, 4096, 16384, 65536];

/// Number of UDP clients used to stress the receiver (paper §V-A).
pub const UDP_CLIENTS: usize = 3;

/// Scenario knobs shared by throughput and latency runs.
#[derive(Clone, Copy, Debug)]
pub struct SockperfOpts {
    pub duration_ns: u64,
    pub warmup_ns: u64,
    pub seed: u64,
    /// Enable background noise (on for latency realism, off for clean
    /// capacity calibration).
    pub noise: bool,
}

impl Default for SockperfOpts {
    fn default() -> Self {
        Self {
            duration_ns: 60 * MS,
            warmup_ns: 15 * MS,
            seed: 42,
            noise: false,
        }
    }
}

fn base_config(system: System, transport: Transport, msg_bytes: u64, opts: &SockperfOpts) -> StackConfig {
    let flow = match transport {
        Transport::Tcp => FlowSpec::tcp(msg_bytes, 0),
        Transport::Udp => FlowSpec::udp(msg_bytes, 0),
    };
    let mut cfg = StackConfig::single_flow(system.path(), flow.clone());
    if transport == Transport::Udp {
        cfg.flows = vec![flow; UDP_CLIENTS];
    }
    cfg.noise = if opts.noise {
        NoiseConfig::default()
    } else {
        NoiseConfig::off()
    };
    cfg.duration_ns = opts.duration_ns;
    cfg.warmup_ns = opts.warmup_ns;
    cfg.seed = opts.seed;
    cfg
}

/// Runs sockperf throughput mode for one (system, transport, size) cell of
/// Figure 4a / 8a.
pub fn throughput(system: System, transport: Transport, msg_bytes: u64, opts: &SockperfOpts) -> RunReport {
    let cfg = base_config(system, transport, msg_bytes, opts);
    let (policy, merge) = system.build_single_flow(transport);
    StackSim::try_run(cfg, policy, merge).expect("valid stack config")
}

/// In-flight data for the TCP latency-under-load runs: sockperf's
/// under-load mode keeps a fixed amount of data outstanding while the
/// stack runs at its maximum rate, so measured latency is dominated by
/// how fast each system drains the standing queue.
pub const LATENCY_WINDOW_BYTES: u64 = 256 << 10;

/// Runs sockperf under-load latency mode (Figure 9).
///
/// TCP: closed loop with a fixed 256 KB in-flight window, driving each
/// system to its own maximum throughput (the paper's "maximum throughput
/// before drops") — per-message latency then directly reflects each
/// system's drain rate plus its path length.
///
/// UDP (open loop, no backpressure): all overlay systems are paced at
/// `load_fraction` of the *vanilla overlay's* capacity — the highest load
/// every compared system can carry without drops — and the native path at
/// `load_fraction` of its own.
pub fn latency(
    system: System,
    transport: Transport,
    msg_bytes: u64,
    load_fraction: f64,
    opts: &SockperfOpts,
) -> RunReport {
    assert!((0.0..1.0).contains(&load_fraction));
    let mut cfg = base_config(system, transport, msg_bytes, opts);
    match transport {
        Transport::Tcp => {
            for f in &mut cfg.flows {
                f.load = LoadModel::Closed {
                    window_bytes: LATENCY_WINDOW_BYTES,
                };
            }
        }
        Transport::Udp => {
            let reference = if system == System::Native {
                System::Native
            } else {
                System::Vanilla
            };
            let cap = throughput(
                reference,
                transport,
                msg_bytes,
                &SockperfOpts { noise: false, ..*opts },
            );
            let msgs_per_sec = cap.msgs_per_sec.max(1.0) * load_fraction;
            let n_clients = cfg.flows.len() as f64;
            let interval_ns = (1e9 * n_clients / msgs_per_sec).max(1.0) as u64;
            for f in &mut cfg.flows {
                f.load = LoadModel::Paced { interval_ns };
            }
        }
    }
    let (policy, merge) = system.build_single_flow(transport);
    StackSim::try_run(cfg, policy, merge).expect("valid stack config")
}

/// The motivation experiment of Figure 4 needs the native path under every
/// policy-capable layout; this helper simply exposes whether a system is
/// meaningful on a path (FALCON/MFLOW only exist for the overlay).
pub fn applicable(system: System, path: PathKind) -> bool {
    match system {
        System::Native => path == PathKind::Native,
        _ => path == PathKind::Overlay,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> SockperfOpts {
        SockperfOpts {
            duration_ns: 16 * MS,
            warmup_ns: 4 * MS,
            seed: 7,
            noise: false,
        }
    }

    #[test]
    fn headline_tcp_ordering_holds() {
        // The paper's Figure 8a TCP 64 KB ordering:
        // vanilla < rps < falcon-dev < falcon-fun < mflow, native < mflow.
        let o = quick();
        let g = |s| throughput(s, Transport::Tcp, 65536, &o).goodput_gbps;
        let native = g(System::Native);
        let vanilla = g(System::Vanilla);
        let rps = g(System::Rps);
        let fd = g(System::FalconDev);
        let ff = g(System::FalconFun);
        let mflow = g(System::Mflow);
        assert!(vanilla < rps && rps < fd && fd < ff, "{vanilla} {rps} {fd} {ff}");
        assert!(ff < mflow, "falcon-fun {ff} vs mflow {mflow}");
        assert!(mflow > native, "mflow {mflow} must beat native {native}");
        assert!(native > vanilla * 1.4);
    }

    #[test]
    fn headline_udp_gains_hold() {
        let o = quick();
        let g = |s| throughput(s, Transport::Udp, 65536, &o).goodput_gbps;
        let native = g(System::Native);
        let vanilla = g(System::Vanilla);
        let falcon = g(System::FalconDev);
        let mflow = g(System::Mflow);
        // Paper: +139 % for MFLOW, +80 % for FALCON, far below native.
        assert!(mflow / vanilla > 1.9, "mflow {mflow} vanilla {vanilla}");
        assert!(falcon / vanilla > 1.5);
        assert!(mflow > falcon * 1.05);
        assert!(mflow < native);
    }

    #[test]
    fn latency_mode_records_a_distribution() {
        let o = quick();
        let r = latency(System::Vanilla, Transport::Tcp, 4096, 0.7, &o);
        assert!(r.latency.count() > 100, "messages measured: {}", r.latency.count());
        assert!(r.latency.p99() >= r.latency.median());
        assert_eq!(r.ring_drops, 0, "windowed TCP must not drop");
    }

    #[test]
    fn udp_latency_mode_stays_below_drops() {
        let o = quick();
        let r = latency(System::Mflow, Transport::Udp, 4096, 0.8, &o);
        assert!(r.latency.count() > 100);
        assert_eq!(r.ring_drops, 0, "paced at 80% of vanilla must not drop anywhere");
    }

    #[test]
    fn tiny_messages_level_the_field() {
        // At 16 B the client is the bottleneck: paper Figure 8a shows all
        // TCP systems within noise of each other.
        let o = quick();
        let vanilla = throughput(System::Vanilla, Transport::Tcp, 16, &o).goodput_gbps;
        let mflow = throughput(System::Mflow, Transport::Tcp, 16, &o).goodput_gbps;
        let ratio = mflow / vanilla;
        assert!((0.8..1.25).contains(&ratio), "16B ratio {ratio}");
    }

    #[test]
    fn mflow_has_no_ooo_at_transport_and_no_residue() {
        let o = quick();
        let r = throughput(System::Mflow, Transport::Tcp, 65536, &o);
        assert_eq!(r.tcp_ooo_inserts, 0, "reassembly must prevent TCP OOO work");
        assert_eq!(r.telemetry.residue, 0);
        assert!(r.telemetry.ooo > 0, "parallel lanes must actually race");
    }
}
