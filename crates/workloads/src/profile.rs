//! Exchange profiles: per-system network characteristics measured on the
//! packet-level simulator and consumed by the layered application model
//! (web serving).
//!
//! A profile captures the latency distribution of one request/response
//! exchange through the loaded stack plus the stack's aggregate capacity.
//! Sampling uses a lognormal fitted to the measured p50/p99, which
//! reproduces the heavy right tail that kernel queueing produces.

use mflow_sim::Rng;

use crate::datacaching::{run as caching_run, CachingOpts};
use crate::systems::System;

/// Measured network-exchange characteristics of one system under load.
#[derive(Clone, Debug)]
pub struct StackProfile {
    pub system: System,
    /// Median exchange latency.
    pub p50_ns: u64,
    /// Tail exchange latency.
    pub p99_ns: u64,
    /// Aggregate message capacity of the loaded stack.
    pub msgs_per_sec: f64,
    /// Payload bytes of the messages the capacity was measured with, so
    /// consumers can convert capacity into bytes/s for heavier exchanges.
    pub unit_bytes: u64,
    /// Lognormal sigma fitted from (p50, p99).
    sigma: f64,
}

impl StackProfile {
    /// Builds a profile from explicit quantiles (tests, what-if studies).
    pub fn from_quantiles(system: System, p50_ns: u64, p99_ns: u64, msgs_per_sec: f64) -> Self {
        assert!(p50_ns > 0 && p99_ns >= p50_ns);
        // For a lognormal, p99/p50 = exp(2.326 * sigma).
        let sigma = ((p99_ns as f64 / p50_ns as f64).ln() / 2.326).max(0.01);
        Self {
            system,
            p50_ns,
            p99_ns,
            msgs_per_sec,
            unit_bytes: 550,
            sigma,
        }
    }

    /// Measures a profile by loading the stack with the data-caching
    /// scenario (many interleaved small-message connections — the traffic
    /// shape a multi-tier web app generates).
    pub fn measure(system: System, opts: &CachingOpts) -> Self {
        let r = caching_run(system, opts);
        let mut p = Self::from_quantiles(
            system,
            r.report.latency.median().max(1),
            r.report.latency.p99().max(1),
            r.rps,
        );
        p.unit_bytes = opts.object_bytes;
        p
    }

    /// Time the stack needs to move one exchange of `bytes` payload,
    /// derived from the measured per-message capacity.
    pub fn exchange_service_ns(&self, bytes: u64) -> u64 {
        let units = (bytes as f64 / self.unit_bytes as f64).max(1.0);
        (units * 1e9 / self.msgs_per_sec.max(1.0)).round() as u64
    }

    /// Samples one exchange latency.
    pub fn sample_ns(&self, rng: &mut Rng) -> u64 {
        let z = rng.normal(0.0, 1.0);
        (self.p50_ns as f64 * (self.sigma * z).exp()).max(1.0) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_distribution_matches_quantiles() {
        let p = StackProfile::from_quantiles(System::Vanilla, 100_000, 400_000, 1e5);
        let mut rng = Rng::new(5);
        let mut xs: Vec<u64> = (0..50_000).map(|_| p.sample_ns(&mut rng)).collect();
        xs.sort_unstable();
        let p50 = xs[xs.len() / 2];
        let p99 = xs[xs.len() * 99 / 100];
        assert!((p50 as f64 / 100_000.0 - 1.0).abs() < 0.05, "p50 {p50}");
        assert!((p99 as f64 / 400_000.0 - 1.0).abs() < 0.15, "p99 {p99}");
    }

    #[test]
    fn degenerate_tail_still_samples() {
        let p = StackProfile::from_quantiles(System::Mflow, 1000, 1000, 1.0);
        let mut rng = Rng::new(6);
        for _ in 0..100 {
            assert!(p.sample_ns(&mut rng) >= 1);
        }
    }

    #[test]
    #[should_panic]
    fn inverted_quantiles_rejected() {
        StackProfile::from_quantiles(System::Vanilla, 2000, 1000, 1.0);
    }
}
