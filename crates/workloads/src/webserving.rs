//! CloudSuite Web Serving analogue (Figure 11): an Elgg-like social-network
//! application on a multi-tier container deployment (nginx + memcached +
//! mysql behind one overlay), driven by closed-loop users.
//!
//! Layered model: every operation is a sequence of network *exchanges*
//! (client↔web, web↔cache, web↔db) whose latency is sampled from the
//! per-system [`StackProfile`] measured on the packet-level simulator,
//! plus PHP compute on the web server's cores, plus FIFO occupancy of the
//! stack's aggregate message capacity. The benchmark reports, per
//! operation type: successful operations (completed within the pacing
//! target), response time and delay time — the same three metrics as the
//! paper's Figures 11a–11c.

use mflow_metrics::LatencyHistogram;
use mflow_sim::{Ctx, Engine, Model, Rng, Time, MS, US};

use crate::profile::StackProfile;

/// One Elgg operation type.
#[derive(Clone, Copy, Debug)]
pub struct WebOpType {
    pub name: &'static str,
    /// Sequential network exchanges per operation (requests to the web
    /// tier plus its cache/db round trips).
    pub exchanges: u32,
    /// Average payload per exchange (page fragments, query results).
    pub bytes_per_exchange: u64,
    /// PHP/app compute per operation on the web server.
    pub server_cpu_ns: u64,
    /// Pacing target: the operation succeeds when it finishes within this.
    pub deadline_ns: u64,
    /// Relative frequency in the mix.
    pub weight: u32,
}

/// The Elgg-like operation mix (types follow the CloudSuite/Faban driver).
pub fn elgg_mix() -> Vec<WebOpType> {
    vec![
        WebOpType { name: "BrowseToElgg", exchanges: 8, bytes_per_exchange: 36_000, server_cpu_ns: 400 * US, deadline_ns: 6_100 * US, weight: 18 },
        WebOpType { name: "Login", exchanges: 24, bytes_per_exchange: 30_000, server_cpu_ns: 1_200 * US, deadline_ns: 21_000 * US, weight: 8 },
        WebOpType { name: "CheckActivity", exchanges: 16, bytes_per_exchange: 28_000, server_cpu_ns: 700 * US, deadline_ns: 11_500 * US, weight: 16 },
        WebOpType { name: "Chat", exchanges: 10, bytes_per_exchange: 18_000, server_cpu_ns: 350 * US, deadline_ns: 3_700 * US, weight: 14 },
        WebOpType { name: "AddFriend", exchanges: 12, bytes_per_exchange: 16_000, server_cpu_ns: 500 * US, deadline_ns: 8_400 * US, weight: 10 },
        WebOpType { name: "PostSelfWall", exchanges: 14, bytes_per_exchange: 22_000, server_cpu_ns: 600 * US, deadline_ns: 9_700 * US, weight: 10 },
        WebOpType { name: "SendChatMessage", exchanges: 10, bytes_per_exchange: 12_000, server_cpu_ns: 300 * US, deadline_ns: 3_600 * US, weight: 14 },
        WebOpType { name: "UpdateActivity", exchanges: 18, bytes_per_exchange: 26_000, server_cpu_ns: 800 * US, deadline_ns: 15_500 * US, weight: 10 },
    ]
}

/// Web-serving scenario parameters (paper: 200 users).
#[derive(Clone, Debug)]
pub struct WebOpts {
    pub users: usize,
    /// Mean think time between a user's operations.
    pub think_ns: u64,
    pub duration_ns: u64,
    pub seed: u64,
    pub ops: Vec<WebOpType>,
    /// Web-tier worker cores (PHP).
    pub server_cores: usize,
}

impl Default for WebOpts {
    fn default() -> Self {
        Self {
            users: 200,
            think_ns: 80 * MS,
            duration_ns: 20_000 * MS,
            seed: 42,
            ops: elgg_mix(),
            server_cores: 8,
        }
    }
}

/// Per-operation-type statistics.
#[derive(Debug)]
pub struct OpStats {
    pub name: &'static str,
    pub attempts: u64,
    pub successes: u64,
    pub response: LatencyHistogram,
    pub delay: LatencyHistogram,
}

impl OpStats {
    /// Successful operations per minute of simulated time.
    pub fn success_per_min(&self, duration_ns: u64) -> f64 {
        self.successes as f64 * 60e9 / duration_ns as f64
    }
}

/// Result of one web-serving run.
#[derive(Debug)]
pub struct WebResult {
    pub per_op: Vec<OpStats>,
    pub duration_ns: u64,
}

impl WebResult {
    /// Total successful operations per minute.
    pub fn total_success_per_min(&self) -> f64 {
        self.per_op
            .iter()
            .map(|o| o.success_per_min(self.duration_ns))
            .sum()
    }

    /// Mean response time across all operations (ns).
    pub fn mean_response_ns(&self) -> f64 {
        let (sum, n) = self.per_op.iter().fold((0.0, 0u64), |(s, n), o| {
            (s + o.response.mean() * o.response.count() as f64, n + o.response.count())
        });
        if n == 0 {
            0.0
        } else {
            sum / n as f64
        }
    }
}

enum Ev {
    OpStart { user: usize },
    ExchangeDone { user: usize },
    ComputeDone { user: usize },
}

struct UserState {
    op_idx: usize,
    exchanges_left: u32,
    op_start: Time,
}

struct WebSim {
    opts: WebOpts,
    profile: StackProfile,
    users: Vec<UserState>,
    stack_free_at: Time,
    core_free_at: Vec<Time>,
    rng: Rng,
    stats: Vec<OpStats>,
    weight_total: u32,
}

impl WebSim {
    fn pick_op(&mut self) -> usize {
        let mut w = self.rng.below(self.weight_total as u64) as u32;
        for (i, op) in self.opts.ops.iter().enumerate() {
            if w < op.weight {
                return i;
            }
            w -= op.weight;
        }
        self.opts.ops.len() - 1
    }

    fn start_exchange(&mut self, user: usize, ctx: &mut Ctx<Ev>) {
        // FIFO occupancy of the stack's aggregate byte capacity for this
        // op's exchange size, then the sampled per-message latency.
        let now = ctx.now();
        let op = &self.opts.ops[self.users[user].op_idx];
        // Payload sizes vary per fragment/query as well.
        let bytes = (op.bytes_per_exchange as f64 * (0.5 + self.rng.f64())) as u64;
        let service = self.profile.exchange_service_ns(bytes);
        let start = self.stack_free_at.max(now);
        self.stack_free_at = start + service;
        let latency = self.profile.sample_ns(&mut self.rng);
        ctx.schedule_at(start + service + latency, Ev::ExchangeDone { user });
    }
}

impl Model for WebSim {
    type Event = Ev;

    fn handle(&mut self, ev: Ev, ctx: &mut Ctx<Ev>) {
        match ev {
            Ev::OpStart { user } => {
                let op_idx = self.pick_op();
                // Real pages vary in asset count: draw the exchange count
                // uniformly in [0.5, 1.5] x the type's nominal value.
                let nominal = self.opts.ops[op_idx].exchanges as f64;
                let factor = 0.5 + self.rng.f64();
                let exchanges = (nominal * factor).round().max(1.0) as u32;
                self.users[user] = UserState {
                    op_idx,
                    exchanges_left: exchanges,
                    op_start: ctx.now(),
                };
                self.stats[op_idx].attempts += 1;
                self.start_exchange(user, ctx);
            }
            Ev::ExchangeDone { user } => {
                self.users[user].exchanges_left -= 1;
                if self.users[user].exchanges_left > 0 {
                    self.start_exchange(user, ctx);
                } else {
                    // PHP compute on the least-loaded web core.
                    let op = &self.opts.ops[self.users[user].op_idx];
                    let (core, &free) = self
                        .core_free_at
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, &f)| f)
                        .unwrap();
                    let start = free.max(ctx.now());
                    let end = start + op.server_cpu_ns;
                    self.core_free_at[core] = end;
                    ctx.schedule_at(end, Ev::ComputeDone { user });
                }
            }
            Ev::ComputeDone { user } => {
                let st = &self.users[user];
                let op = &self.opts.ops[st.op_idx];
                let resp = ctx.now() - st.op_start;
                let stats = &mut self.stats[st.op_idx];
                stats.response.record(resp);
                stats.delay.record(resp.saturating_sub(op.deadline_ns));
                if resp <= op.deadline_ns {
                    stats.successes += 1;
                }
                let think = self.rng.exp(self.opts.think_ns as f64) as u64;
                ctx.schedule(think.max(1), Ev::OpStart { user });
            }
        }
    }
}

/// Runs the web-serving benchmark against one system's profile.
pub fn run(profile: &StackProfile, opts: &WebOpts) -> WebResult {
    let stats = opts
        .ops
        .iter()
        .map(|op| OpStats {
            name: op.name,
            attempts: 0,
            successes: 0,
            response: LatencyHistogram::new(),
            delay: LatencyHistogram::new(),
        })
        .collect();
    let weight_total = opts.ops.iter().map(|o| o.weight).sum();
    let mut sim = WebSim {
        users: (0..opts.users)
            .map(|_| UserState {
                op_idx: 0,
                exchanges_left: 0,
                op_start: 0,
            })
            .collect(),
        stack_free_at: 0,
        core_free_at: vec![0; opts.server_cores],
        rng: Rng::new(opts.seed),
        stats,
        weight_total,
        profile: profile.clone(),
        opts: opts.clone(),
    };
    let mut engine = Engine::new();
    for user in 0..sim.opts.users {
        let jitter = sim.rng.below(sim.opts.think_ns.max(1)) ;
        engine.schedule_at(jitter, Ev::OpStart { user });
    }
    let duration = sim.opts.duration_ns;
    engine.run_until(&mut sim, duration);
    WebResult {
        per_op: sim.stats,
        duration_ns: duration,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::systems::System;

    fn quick_opts() -> WebOpts {
        WebOpts {
            users: 60,
            duration_ns: 3_000 * MS,
            think_ns: 300 * MS,
            ..Default::default()
        }
    }

    fn profile(p50_us: u64, p99_us: u64) -> StackProfile {
        StackProfile::from_quantiles(System::Vanilla, p50_us * US, p99_us * US, 300_000.0)
    }

    #[test]
    fn all_op_types_get_exercised() {
        let r = run(&profile(120, 600), &quick_opts());
        for op in &r.per_op {
            assert!(op.attempts > 0, "{} never sampled", op.name);
        }
    }

    #[test]
    fn faster_network_means_more_successes_and_lower_response() {
        let slow = run(&profile(300, 1800), &quick_opts());
        let fast = run(&profile(120, 500), &quick_opts());
        assert!(
            fast.total_success_per_min() > slow.total_success_per_min() * 1.2,
            "fast {} vs slow {}",
            fast.total_success_per_min(),
            slow.total_success_per_min()
        );
        assert!(fast.mean_response_ns() < slow.mean_response_ns());
    }

    #[test]
    fn successes_never_exceed_attempts() {
        let r = run(&profile(150, 900), &quick_opts());
        for op in &r.per_op {
            assert!(op.successes <= op.attempts);
            assert_eq!(op.response.count(), op.delay.count());
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a = run(&profile(150, 900), &quick_opts());
        let b = run(&profile(150, 900), &quick_opts());
        assert_eq!(a.total_success_per_min(), b.total_success_per_min());
        assert_eq!(a.mean_response_ns(), b.mean_response_ns());
    }

    #[test]
    fn capacity_saturation_degrades_service() {
        // Tiny message capacity: FIFO queueing dominates and successes drop.
        let starved = StackProfile::from_quantiles(System::Vanilla, 120 * US, 500 * US, 3_000.0);
        let ok = StackProfile::from_quantiles(System::Vanilla, 120 * US, 500 * US, 500_000.0);
        let r_starved = run(&starved, &quick_opts());
        let r_ok = run(&ok, &quick_opts());
        assert!(r_starved.total_success_per_min() < r_ok.total_success_per_min() * 0.8);
    }
}
