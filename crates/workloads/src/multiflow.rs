//! Multi-flow TCP scaling (Figures 10 and 12): 1–20 concurrent flows on a
//! host with 10 dedicated kernel cores and 5 application cores, exactly
//! the paper's controlled layout.

use mflow_netstack::{FlowSpec, NoiseConfig, RunReport, StackConfig, StackSim};
use mflow_sim::{CoreId, MS};

use crate::systems::System;

/// The paper's multi-flow core layout.
#[derive(Clone, Debug)]
pub struct MultiFlowLayout {
    pub kernel_cores: Vec<CoreId>,
    pub app_cores: Vec<CoreId>,
}

impl Default for MultiFlowLayout {
    fn default() -> Self {
        Self {
            // 5 cores for application threads, 10 for in-kernel processing.
            app_cores: (0..5).collect(),
            kernel_cores: (5..15).collect(),
        }
    }
}

/// Options for one multi-flow run.
#[derive(Clone, Debug)]
pub struct MultiFlowOpts {
    pub layout: MultiFlowLayout,
    pub duration_ns: u64,
    pub warmup_ns: u64,
    pub seed: u64,
    pub noise: bool,
    /// MFLOW lanes per flow.
    pub lanes: usize,
    /// Per-flow TCP window. Real receivers autotune windows up to cover
    /// the path's bandwidth-delay product, so the multi-flow default is
    /// large enough that no flow is window-bound even across MFLOW's
    /// longer multi-hop pipeline.
    pub window_bytes: u64,
}

impl Default for MultiFlowOpts {
    fn default() -> Self {
        Self {
            layout: MultiFlowLayout::default(),
            duration_ns: 50 * MS,
            warmup_ns: 15 * MS,
            seed: 42,
            noise: false,
            lanes: 2,
            window_bytes: 2 << 20,
        }
    }
}

/// Runs `n_flows` concurrent TCP flows of `msg_bytes` messages under
/// `system`. Each flow gets its own socket, spread over the app cores.
pub fn run(system: System, n_flows: usize, msg_bytes: u64, opts: &MultiFlowOpts) -> RunReport {
    assert!(n_flows >= 1);
    let mut flow = FlowSpec::tcp(msg_bytes, 0);
    flow.load = mflow_netstack::LoadModel::Closed {
        window_bytes: opts.window_bytes,
    };
    let mut cfg = StackConfig::single_flow(system.path(), flow.clone());
    cfg.kernel_cores = opts.layout.kernel_cores.clone();
    cfg.app_cores = opts.layout.app_cores.clone();
    cfg.flows = (0..n_flows)
        .map(|i| {
            let mut f = flow.clone();
            f.sock = i;
            f
        })
        .collect();
    cfg.n_socks = n_flows;
    // 20 windows of in-flight data must fit the rings comfortably: TCP
    // retransmission is out of scope, so overload lives in backlogs.
    cfg.ring_capacity = 65_536;
    cfg.sock_capacity_bytes = 16 << 20;
    cfg.noise = if opts.noise {
        NoiseConfig::default()
    } else {
        NoiseConfig::off()
    };
    cfg.duration_ns = opts.duration_ns;
    cfg.warmup_ns = opts.warmup_ns;
    cfg.seed = opts.seed;
    let (policy, merge) = system.build_multi_flow(&opts.layout.kernel_cores, opts.lanes);
    StackSim::try_run(cfg, policy, merge).expect("valid stack config")
}

/// Aggregate throughput plus the per-kernel-core utilization spread the
/// paper reports in Figure 12.
pub struct MultiFlowResult {
    pub report: RunReport,
    pub util_stddev: f64,
    pub util_mean: f64,
}

/// Runs and computes Figure 12's load-balance statistics.
pub fn run_with_balance(
    system: System,
    n_flows: usize,
    msg_bytes: u64,
    opts: &MultiFlowOpts,
) -> MultiFlowResult {
    let report = run(system, n_flows, msg_bytes, opts);
    let utils = report.core_utilization(&opts.layout.kernel_cores);
    let util_mean = mflow_metrics::mean(&utils);
    let util_stddev = mflow_metrics::stddev(&utils);
    MultiFlowResult {
        report,
        util_stddev,
        util_mean,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> MultiFlowOpts {
        MultiFlowOpts {
            duration_ns: 16 * MS,
            warmup_ns: 5 * MS,
            ..Default::default()
        }
    }

    #[test]
    fn throughput_grows_with_flows_until_saturation() {
        let o = quick();
        let one = run(System::Vanilla, 1, 65536, &o).goodput_gbps;
        let five = run(System::Vanilla, 5, 65536, &o).goodput_gbps;
        assert!(five > one * 2.0, "5 flows {five} vs 1 flow {one}");
    }

    #[test]
    fn no_tcp_loss_under_20_flows() {
        let o = quick();
        for sys in [System::Vanilla, System::Mflow] {
            let r = run(sys, 20, 65536, &o);
            assert_eq!(r.ring_drops, 0, "{sys:?} dropped at the ring");
            assert_eq!(r.sock_push_fail_tcp, 0);
            assert_eq!(r.tcp_ooo_inserts, 0, "{sys:?} broke ordering");
        }
    }

    #[test]
    fn mflow_beats_vanilla_at_low_flow_counts() {
        let o = quick();
        let v = run(System::Vanilla, 5, 4096, &o).goodput_gbps;
        let m = run(System::Mflow, 5, 4096, &o).goodput_gbps;
        assert!(m > v * 1.05, "mflow {m} vanilla {v}");
    }

    #[test]
    fn benefit_shrinks_when_cpu_saturates() {
        // Paper: +24 % at 5 flows decaying to ~5 % at 20 flows.
        let o = quick();
        let gain = |n| {
            let v = run(System::Vanilla, n, 65536, &o).goodput_gbps;
            let m = run(System::Mflow, n, 65536, &o).goodput_gbps;
            m / v
        };
        let g5 = gain(5);
        let g20 = gain(20);
        assert!(g5 > g20 - 0.02, "gain must not grow with saturation: {g5} vs {g20}");
    }

    #[test]
    fn mflow_balances_load_better_than_falcon() {
        // Figure 12: stddev of per-core utilization 20.5 (FALCON) vs 11.6
        // (MFLOW).
        let o = quick();
        let f = run_with_balance(System::FalconDev, 10, 65536, &o);
        let m = run_with_balance(System::Mflow, 10, 65536, &o);
        assert!(
            m.util_stddev < f.util_stddev,
            "mflow stddev {:.1} vs falcon {:.1}",
            m.util_stddev,
            f.util_stddev
        );
    }

    #[test]
    fn every_flow_makes_progress() {
        let o = quick();
        let r = run(System::Mflow, 10, 65536, &o);
        for (i, bytes) in r.per_flow_delivered.iter().enumerate() {
            assert!(*bytes > 0, "flow {i} starved");
        }
    }
}
