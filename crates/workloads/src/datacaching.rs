//! CloudSuite Data Caching analogue (Figure 13): a memcached-style server
//! behind the container overlay, loaded by 1–10 clients issuing 550-byte
//! object requests over many persistent TCP connections.
//!
//! This runs *directly on the packet-level simulator*: every request is a
//! real simulated message through the server's receive stack. Because the
//! connections interleave on each core, GRO gets no runs to merge — the
//! full per-packet overlay cost applies, which is exactly why the paper's
//! memcached numbers stress the kernel stack. Each connection keeps a
//! small window of requests outstanding (closed loop), so measured
//! latency directly reflects stack queueing under the chosen client count.

use mflow::{try_install, MflowConfig};
use mflow_netstack::{FlowSpec, LoadModel, NoiseConfig, RunReport, StackConfig, StackSim};
use mflow_sim::{MS, US};

use crate::systems::System;

/// Data-caching scenario parameters (defaults follow the paper: 550-byte
/// objects, a 4-thread server).
#[derive(Clone, Debug)]
pub struct CachingOpts {
    pub n_clients: usize,
    /// Persistent connections per client.
    pub conns_per_client: usize,
    /// Object (response/request payload) size — 550 B in the paper.
    pub object_bytes: u64,
    /// Outstanding requests per connection (closed loop).
    pub window_msgs: u64,
    pub duration_ns: u64,
    pub warmup_ns: u64,
    pub seed: u64,
    pub noise: bool,
}

impl Default for CachingOpts {
    fn default() -> Self {
        Self {
            n_clients: 1,
            conns_per_client: 1,
            object_bytes: 550,
            window_msgs: 64,
            duration_ns: 40 * MS,
            warmup_ns: 10 * MS,
            seed: 42,
            noise: false,
        }
    }
}

/// Result of one data-caching run.
#[derive(Debug)]
pub struct CachingResult {
    pub report: RunReport,
    /// Mean request latency (ns).
    pub avg_ns: f64,
    /// 99th-percentile request latency (ns).
    pub p99_ns: u64,
    /// Served requests per second.
    pub rps: f64,
}

/// Runs the data-caching scenario for one system.
///
/// The server uses the paper's memcached configuration: 4 worker threads
/// (4 app cores) and 4 kernel cores for packet processing.
pub fn run(system: System, opts: &CachingOpts) -> CachingResult {
    let n_flows = opts.n_clients * opts.conns_per_client;
    let mut flow = FlowSpec::tcp(opts.object_bytes, 0);
    flow.load = LoadModel::Closed {
        window_bytes: opts.window_msgs * opts.object_bytes,
    };
    let mut cfg = StackConfig::single_flow(system.path(), flow.clone());
    // 4 memcached threads on cores 0..4. The NIC is configured with 4 RX
    // queues affinitized to cores 4..8 (queues = app threads, the usual
    // memcached tuning), so RSS-based systems process packets there;
    // FALCON and MFLOW additionally recruit helper cores 8..12 — exactly
    // the extra parallelism the paper's mechanisms exist to unlock.
    cfg.app_cores = (0..4).collect();
    cfg.kernel_cores = (4..12).collect();
    cfg.flows = (0..n_flows)
        .map(|i| {
            let mut f = flow.clone();
            f.sock = i % 4;
            f
        })
        .collect();
    cfg.n_socks = 4;
    cfg.ring_capacity = 16_384;
    cfg.noise = if opts.noise {
        NoiseConfig::default()
    } else {
        NoiseConfig::off()
    };
    cfg.duration_ns = opts.duration_ns;
    cfg.warmup_ns = opts.warmup_ns;
    cfg.seed = opts.seed;
    let rss_queues: Vec<usize> = (4..8).collect();
    let (policy, merge) = match system {
        System::Native | System::Vanilla | System::Rps => {
            system.build_multi_flow(&rss_queues, 2)
        }
        System::Mflow => {
            // Small request/response messages mean each connection keeps
            // only a few dozen packets outstanding; a 64-packet batch
            // (still above the GRO window) lets micro-flows rotate lanes
            // and the flow actually parallelize.
            let mut mcfg = MflowConfig::try_multi_flow(cfg.kernel_cores.clone(), 2, 0).expect("valid multi-flow config");
            mcfg.batch_size = 64;
            let (p, m) = try_install(mcfg).expect("stock mflow config");
            (p, Some(m))
        }
        _ => system.build_multi_flow(&cfg.kernel_cores.clone(), 2),
    };
    let report = StackSim::try_run(cfg, policy, merge).expect("valid stack config");
    // A memcached worker adds a fixed service cost per request on top of
    // the measured stack latency (hash lookup + response formatting).
    let service_ns = 6 * US;
    CachingResult {
        avg_ns: report.latency.mean() + service_ns as f64,
        p99_ns: report.latency.p99() + service_ns,
        rps: report.msgs_per_sec,
        report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(n_clients: usize) -> CachingOpts {
        CachingOpts {
            n_clients,
            duration_ns: 16 * MS,
            warmup_ns: 5 * MS,
            ..Default::default()
        }
    }

    #[test]
    fn requests_flow_and_latency_is_positive() {
        let r = run(System::Vanilla, &quick(1));
        assert!(r.rps > 1000.0, "rps {}", r.rps);
        assert!(r.avg_ns > 0.0);
        assert!(r.p99_ns as f64 >= r.avg_ns * 0.5);
    }

    #[test]
    fn ten_clients_stress_harder_than_one() {
        let one = run(System::Vanilla, &quick(1));
        let ten = run(System::Vanilla, &quick(10));
        assert!(ten.rps > one.rps, "closed loop must scale with clients");
        assert!(
            ten.p99_ns > one.p99_ns,
            "more clients must increase tail latency"
        );
    }

    #[test]
    fn mflow_cuts_tail_latency_under_load() {
        // Figure 13's headline: at 10 clients MFLOW reduces p99 vs vanilla.
        let v = run(System::Vanilla, &quick(10));
        let m = run(System::Mflow, &quick(10));
        assert!(
            (m.p99_ns as f64) < v.p99_ns as f64 * 0.95,
            "mflow p99 {} vs vanilla {}",
            m.p99_ns,
            v.p99_ns
        );
    }

    #[test]
    fn no_losses_in_closed_loop() {
        let r = run(System::Mflow, &quick(10));
        assert_eq!(r.report.ring_drops, 0);
        assert_eq!(r.report.tcp_ooo_inserts, 0);
    }
}
