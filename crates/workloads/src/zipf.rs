//! Zipfian key popularity, as in the Twitter dataset that CloudSuite's
//! data-caching benchmark replays against memcached.

use mflow_sim::Rng;

/// A Zipf(s) sampler over `n` ranks using the classic rejection-inversion
/// free approach: precomputed CDF (fine for the cache-sized `n` used here).
#[derive(Clone, Debug)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds a sampler over ranks `0..n` with exponent `s` (~0.99 for the
    /// Twitter-like distribution).
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0);
        let mut weights: Vec<f64> = (1..=n).map(|k| 1.0 / (k as f64).powf(s)).collect();
        let total: f64 = weights.iter().sum();
        let mut acc = 0.0;
        for w in weights.iter_mut() {
            acc += *w / total;
            *w = acc;
        }
        Self { cdf: weights }
    }

    /// Samples a rank in `0..n`; rank 0 is the most popular key.
    pub fn sample(&self, rng: &mut Rng) -> usize {
        let u = rng.f64();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Always false: the constructor rejects `n == 0`.
    pub fn is_empty(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn most_popular_rank_dominates() {
        let z = Zipf::new(10_000, 0.99);
        let mut rng = Rng::new(1);
        let mut counts = vec![0u32; 10_000];
        for _ in 0..100_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[10] * 2);
        assert!(counts[0] > counts[1000].max(1) * 50);
    }

    #[test]
    fn samples_stay_in_range() {
        let z = Zipf::new(7, 1.2);
        let mut rng = Rng::new(2);
        for _ in 0..10_000 {
            assert!(z.sample(&mut rng) < 7);
        }
    }

    #[test]
    fn single_rank_always_sampled() {
        let z = Zipf::new(1, 0.99);
        let mut rng = Rng::new(3);
        assert_eq!(z.sample(&mut rng), 0);
    }

    #[test]
    fn cdf_reaches_one() {
        let z = Zipf::new(100, 0.5);
        assert!((z.cdf.last().unwrap() - 1.0).abs() < 1e-9);
    }
}
