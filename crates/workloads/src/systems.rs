//! The systems under test, as one enum that builds the right steering
//! policy, merge hook and path for any scenario — the single place that
//! encodes the paper's five experimental configurations.

use mflow::{try_install, MflowConfig};
use mflow_netstack::{MergeSetup, PacketSteering, PathKind, Transport};
use mflow_sim::CoreId;
use mflow_steering::{Falcon, FalconLevel, Rps, Rss};

/// One of the paper's evaluated configurations.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum System {
    /// Physical host network, no containers.
    Native,
    /// Docker overlay (VXLAN) with default kernel behaviour.
    Vanilla,
    /// Overlay + Linux Receive Packet Steering.
    Rps,
    /// Overlay + FALCON device-level pipelining.
    FalconDev,
    /// Overlay + FALCON function-level pipelining.
    FalconFun,
    /// Overlay + MFLOW packet-level parallelism.
    Mflow,
}

impl System {
    /// All systems, in the paper's presentation order.
    pub const ALL: [System; 6] = [
        System::Native,
        System::Vanilla,
        System::Rps,
        System::FalconDev,
        System::FalconFun,
        System::Mflow,
    ];

    /// Display name matching the paper's legends.
    pub fn name(&self) -> &'static str {
        match self {
            System::Native => "native",
            System::Vanilla => "vanilla",
            System::Rps => "rps",
            System::FalconDev => "falcon-dev",
            System::FalconFun => "falcon-fun",
            System::Mflow => "mflow",
        }
    }

    /// Network path this system runs on.
    pub fn path(&self) -> PathKind {
        match self {
            System::Native => PathKind::Native,
            _ => PathKind::Overlay,
        }
    }

    /// Builds the policy (and MFLOW's merge hook) for the paper's
    /// *single-flow* core layout: IRQ pinned to kernel core 1, helper cores
    /// 2..=5, app core 0.
    pub fn build_single_flow(
        &self,
        transport: Transport,
    ) -> (Box<dyn PacketSteering>, Option<MergeSetup>) {
        match self {
            System::Native | System::Vanilla => (Box::new(Rss::new(vec![1])), None),
            System::Rps => (
                Box::new(Rps::for_path(self.path(), vec![1], vec![2])),
                None,
            ),
            System::FalconDev => (
                Box::new(Falcon::new(FalconLevel::Device, vec![1, 2, 3])),
                None,
            ),
            System::FalconFun => (
                Box::new(Falcon::new(FalconLevel::Function, vec![1, 2, 3, 4])),
                None,
            ),
            System::Mflow => {
                let cfg = match transport {
                    Transport::Tcp => MflowConfig::tcp_full_path(),
                    Transport::Udp => MflowConfig::udp_device_scaling(),
                };
                let (p, m) = try_install(cfg).expect("stock mflow config");
                (p, Some(m))
            }
        }
    }

    /// Builds the policy for a *multi-flow* run over a kernel-core pool
    /// (Figures 10 and 12): flows spread by hash; MFLOW splits each flow
    /// across `lanes` neighbouring cores.
    pub fn build_multi_flow(
        &self,
        kernel_cores: &[CoreId],
        lanes: usize,
    ) -> (Box<dyn PacketSteering>, Option<MergeSetup>) {
        let cores = kernel_cores.to_vec();
        match self {
            System::Native | System::Vanilla => (Box::new(Rss::new(cores)), None),
            System::Rps => {
                let half = cores.len() / 2;
                let (irq, tgt) = cores.split_at(half.max(1));
                (
                    Box::new(Rps::for_path(self.path(), irq.to_vec(), tgt.to_vec())),
                    None,
                )
            }
            System::FalconDev => (
                Box::new(Falcon::new(FalconLevel::Device, cores).spread_flows()),
                None,
            ),
            System::FalconFun => (
                Box::new(Falcon::new(FalconLevel::Function, cores).spread_flows()),
                None,
            ),
            System::Mflow => {
                let cfg = MflowConfig::try_multi_flow(cores, lanes, 0).expect("valid multi-flow config");
                let (p, m) = try_install(cfg).expect("stock mflow config");
                (p, Some(m))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn six_systems_with_unique_names() {
        let names: std::collections::BTreeSet<_> =
            System::ALL.iter().map(|s| s.name()).collect();
        assert_eq!(names.len(), 6);
    }

    #[test]
    fn only_native_uses_the_native_path() {
        for s in System::ALL {
            assert_eq!(s.path() == PathKind::Native, s == System::Native);
        }
    }

    #[test]
    fn only_mflow_installs_a_merger() {
        for s in System::ALL {
            let (_, merge) = s.build_single_flow(Transport::Tcp);
            assert_eq!(merge.is_some(), s == System::Mflow, "{s:?}");
        }
    }

    #[test]
    fn mflow_transport_selects_scaling_mode() {
        let (p_tcp, _) = System::Mflow.build_single_flow(Transport::Tcp);
        let (p_udp, _) = System::Mflow.build_single_flow(Transport::Udp);
        assert_eq!(p_tcp.name(), "mflow");
        assert_eq!(p_udp.name(), "mflow-dev");
    }

    #[test]
    fn multi_flow_builders_cover_all_systems() {
        let cores: Vec<usize> = (5..15).collect();
        for s in System::ALL {
            let (p, _) = s.build_multi_flow(&cores, 2);
            assert!(!p.name().is_empty());
        }
    }
}
