//! A small, dependency-free property-testing shim exposing the subset of
//! the `proptest` crate API this workspace uses, so the test suite builds
//! and runs in offline environments.
//!
//! Differences from real proptest: cases are generated from a fixed
//! deterministic seed schedule (per test-function name and case index),
//! and failing inputs are printed but not shrunk. A failing case also
//! prints a one-line replay command (`PROPTEST_SEED=0x… cargo test …`);
//! with `PROPTEST_SEED` set, a property runs exactly that one case
//! instead of its schedule. The strategy surface —
//! `any::<T>()`, integer/float ranges, tuples, `prop_map`,
//! `prop::collection::vec` — matches the upstream semantics closely
//! enough for the invariant tests in this repository.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Runner configuration (`ProptestConfig::with_cases(n)` upstream).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }

    /// The case count actually run: a `PROPTEST_CASES` environment
    /// variable, when set to a positive integer, overrides the
    /// per-property count (mirroring upstream; this is how the CI stress
    /// job deepens every property without editing the tests).
    pub fn resolved_cases(&self) -> u32 {
        match std::env::var("PROPTEST_CASES") {
            Ok(v) => v.parse().ok().filter(|&n| n > 0).unwrap_or(self.cases),
            Err(_) => self.cases,
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; 64 keeps offline CI fast while still
        // exercising a meaningful slice of the input space.
        Self { cases: 64 }
    }
}

/// Deterministic generator driving strategies (SplitMix64 core).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds a generator from a test identity and case index.
    pub fn for_case(test_hash: u64, case: u64) -> Self {
        Self {
            state: test_hash ^ case.wrapping_mul(0x9E3779B97F4A7C15) ^ 0xD1B54A32D192ED03,
        }
    }

    /// Rebuilds a generator from a raw state, as printed in a failing
    /// case's replay command.
    pub fn from_state(state: u64) -> Self {
        Self { state }
    }

    /// The current raw state. Captured *before* any values are drawn, it
    /// is the replay seed for everything drawn afterwards.
    pub fn state(&self) -> u64 {
        self.state
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform integer in `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Uniform in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// The `PROPTEST_SEED` replay override: hex (with or without a `0x`
/// prefix) or decimal. When set, every property in the filtered run
/// executes exactly the one case this seed generates — pair it with a
/// `cargo test <name>` filter, as the printed replay command does.
pub fn replay_seed() -> Option<u64> {
    let v = std::env::var("PROPTEST_SEED").ok()?;
    let v = v.trim();
    if let Some(hex) = v.strip_prefix("0x").or_else(|| v.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        v.parse().ok()
    }
}

/// FNV-1a of a test identity string, used to decorrelate seed schedules
/// between properties.
pub fn test_name_hash(name: &str) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// A value generator (upstream `proptest::strategy::Strategy`, minus
/// shrinking).
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy producing one fixed value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical full-range strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Generates an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Strategy for the full range of `T` (upstream `proptest::arbitrary::any`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// The result of [`any`].
#[derive(Clone, Copy, Debug)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arbitrary_ints {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Arbitrary for i128 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        u128::arbitrary(rng) as i128
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.f64()
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.f64() as f32
    }
}

impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
    fn arbitrary(rng: &mut TestRng) -> Self {
        std::array::from_fn(|_| T::arbitrary(rng))
    }
}

macro_rules! range_strategy_ints {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full u64 domain.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}

range_strategy_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.f64() * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($($s:ident / $v:ident),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($v,)+) = self;
                ($($v.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(S1 / a);
tuple_strategy!(S1 / a, S2 / b);
tuple_strategy!(S1 / a, S2 / b, S3 / c);
tuple_strategy!(S1 / a, S2 / b, S3 / c, S4 / d);
tuple_strategy!(S1 / a, S2 / b, S3 / c, S4 / d, S5 / e);
tuple_strategy!(S1 / a, S2 / b, S3 / c, S4 / d, S5 / e, S6 / f);
tuple_strategy!(S1 / a, S2 / b, S3 / c, S4 / d, S5 / e, S6 / f, S7 / g);
tuple_strategy!(S1 / a, S2 / b, S3 / c, S4 / d, S5 / e, S6 / f, S7 / g, S8 / h);
tuple_strategy!(S1 / a, S2 / b, S3 / c, S4 / d, S5 / e, S6 / f, S7 / g, S8 / h, S9 / i);
tuple_strategy!(
    S1 / a,
    S2 / b,
    S3 / c,
    S4 / d,
    S5 / e,
    S6 / f,
    S7 / g,
    S8 / h,
    S9 / i,
    S10 / j
);

/// Collection strategies (upstream `proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Length bounds for generated collections.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        /// Exclusive upper bound.
        hi: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            Self { lo: r.start, hi: r.end.max(r.start + 1) }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            Self { lo: *r.start(), hi: r.end().saturating_add(1) }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n + 1 }
        }
    }

    /// `Vec<T>` strategy with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// The result of [`vec`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo).max(1) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything the tests import via `use proptest::prelude::*`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{Arbitrary, Just, ProptestConfig, Strategy};
}

/// Asserts a condition inside a property, reporting the failing inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*);
    };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*);
    };
}

/// Declares property test functions (`proptest! { ... }` upstream).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let __cases = __cfg.resolved_cases();
            let __hash = $crate::test_name_hash(concat!(module_path!(), "::", stringify!($name)));
            if let Some(__seed) = $crate::replay_seed() {
                // Replay mode: exactly the one failing case, regenerated
                // from its printed seed.
                let mut __rng = $crate::TestRng::from_state(__seed);
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                eprintln!(
                    concat!(
                        "proptest: {} replaying PROPTEST_SEED={:#018x} with inputs: ",
                        $(stringify!($arg), " = {:?}; "),+
                    ),
                    stringify!($name),
                    __seed,
                    $(&$arg),+
                );
                $body
                return;
            }
            for __case in 0..__cases {
                let mut __rng = $crate::TestRng::for_case(__hash, __case as u64);
                let __seed = __rng.state();
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                let __inputs = format!(
                    concat!($(stringify!($arg), " = {:?}; "),+),
                    $(&$arg),+
                );
                let __result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| {
                    $body
                }));
                if let Err(__e) = __result {
                    eprintln!(
                        "proptest: {} failed on case {}/{} with inputs: {}",
                        stringify!($name),
                        __case,
                        __cases,
                        __inputs
                    );
                    eprintln!(
                        "proptest: replay exactly this case with: PROPTEST_SEED={:#018x} cargo test {}",
                        __seed,
                        stringify!($name)
                    );
                    ::std::panic::resume_unwind(__e);
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic_per_case() {
        let mut a = crate::TestRng::for_case(1, 2);
        let mut b = crate::TestRng::for_case(1, 2);
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn seed_round_trips_through_state() {
        // A replayed generator (state captured pre-draw) reproduces the
        // original draw sequence exactly — the contract behind the
        // `PROPTEST_SEED=…` replay command printed on failure.
        let mut original = crate::TestRng::for_case(0xfeed, 41);
        let mut replay = crate::TestRng::from_state(original.state());
        for _ in 0..64 {
            assert_eq!(original.next_u64(), replay.next_u64());
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = crate::TestRng::for_case(7, 0);
        for _ in 0..1000 {
            let v = (3u64..17).generate(&mut rng);
            assert!((3..17).contains(&v));
            let f = (0.25f64..0.75).generate(&mut rng);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn env_override_parses_positive_integers_only() {
        // Exercises only the parse/fallback logic; the variable is not
        // normally set under `cargo test`, so explicit counts win.
        let cfg = ProptestConfig::with_cases(24);
        match std::env::var("PROPTEST_CASES") {
            Ok(v) => {
                let expect = v.parse().ok().filter(|&n: &u32| n > 0).unwrap_or(24);
                assert_eq!(cfg.resolved_cases(), expect);
            }
            Err(_) => assert_eq!(cfg.resolved_cases(), 24),
        }
    }

    #[test]
    fn vec_strategy_respects_length() {
        let mut rng = crate::TestRng::for_case(9, 0);
        for _ in 0..200 {
            let v = prop::collection::vec(any::<u8>(), 2..5).generate(&mut rng);
            assert!((2..5).contains(&v.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_generates_and_runs(
            n in 1u64..100,
            flag in any::<bool>(),
            bytes in prop::collection::vec(any::<u8>(), 0..8),
        ) {
            prop_assert!((1..100).contains(&n));
            prop_assert_eq!(flag as u64 * 2 / 2, flag as u64);
            prop_assert!(bytes.len() < 8);
        }

        #[test]
        fn tuples_and_prop_map_compose(pair in (1u32..10, 1u32..10).prop_map(|(a, b)| a * b)) {
            prop_assert!((1..100).contains(&pair));
        }
    }
}
