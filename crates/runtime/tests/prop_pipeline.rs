//! Property-based tests of the threaded pipeline: for arbitrary frame
//! counts, payload sizes, worker counts, batch sizes and transports, the
//! parallel pipeline must emit exactly the serial result.

use mflow_runtime::{
    generate_frames, process_parallel, process_serial, BackpressurePolicy, RuntimeConfig, Transport,
};
use proptest::prelude::*;

fn pick_transport(sel: usize) -> Transport {
    if sel == 1 {
        Transport::Ring
    } else {
        Transport::Mpsc
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn parallel_equals_serial(
        n in 1usize..1200,
        payload in 0usize..800,
        workers in 1usize..6,
        batch in 1usize..512,
        depth in 1usize..8,
        transport_sel in 0usize..2,
    ) {
        let frames = generate_frames(n, payload);
        let serial = process_serial(&frames);
        let parallel = process_parallel(
            &frames,
            &RuntimeConfig {
                workers,
                batch_size: batch,
                queue_depth: depth,
                transport: pick_transport(transport_sel),
                ..RuntimeConfig::default()
            },
        ).unwrap();
        prop_assert_eq!(serial.digests, parallel.digests);
    }

    #[test]
    fn every_sequence_number_appears_exactly_once(
        n in 1usize..1500,
        workers in 2usize..5,
        batch in 1usize..64,
        transport_sel in 0usize..2,
    ) {
        let frames = generate_frames(n, 32);
        let out = process_parallel(
            &frames,
            &RuntimeConfig {
                workers,
                batch_size: batch,
                queue_depth: 4,
                transport: pick_transport(transport_sel),
                ..RuntimeConfig::default()
            },
        ).unwrap();
        prop_assert_eq!(out.digests.len(), n);
        for (i, r) in out.digests.iter().enumerate() {
            prop_assert_eq!(r.seq, i as u64, "wrong seq at position {}", i);
        }
    }

    #[test]
    fn lossless_policies_stay_exact_at_any_watermark(
        n in 1usize..900,
        workers in 1usize..4,
        batch in 1usize..64,
        depth in 1usize..5,
        watermark in 1usize..5,
        policy_sel in 0usize..2,
        transport_sel in 0usize..2,
    ) {
        // Block and Inline never lose packets, whatever the watermark
        // does — the output must equal the serial run bit for bit.
        let frames = generate_frames(n, 32);
        let serial = process_serial(&frames);
        let out = process_parallel(
            &frames,
            &RuntimeConfig {
                workers,
                batch_size: batch,
                queue_depth: depth,
                backpressure: if policy_sel == 1 {
                    BackpressurePolicy::Inline
                } else {
                    BackpressurePolicy::Block
                },
                high_watermark: Some(watermark.min(depth)),
                inline_fallback: false,
                transport: pick_transport(transport_sel),
                ..RuntimeConfig::default()
            },
        ).unwrap();
        prop_assert_eq!(serial.digests, out.digests);
        prop_assert_eq!(out.telemetry.shed, 0);
    }

    #[test]
    fn ring_transport_honours_any_valid_merger_depth(
        n in 1usize..600,
        workers in 1usize..4,
        batch in 1usize..48,
        depth_exp in 0u32..10,
    ) {
        // merger_depth sweeps the powers of two from 1 to 512: tiny
        // rings force producer-side waiting, large ones free-run; output
        // must be exact either way.
        let frames = generate_frames(n, 32);
        let serial = process_serial(&frames);
        let out = process_parallel(
            &frames,
            &RuntimeConfig {
                workers,
                batch_size: batch,
                queue_depth: 2,
                merger_depth: 1usize << depth_exp,
                transport: Transport::Ring,
                ..RuntimeConfig::default()
            },
        ).unwrap();
        prop_assert_eq!(serial.digests, out.digests);
    }
}
