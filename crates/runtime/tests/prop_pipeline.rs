//! Property-based tests of the threaded pipeline: for arbitrary frame
//! counts, payload sizes, worker counts and batch sizes, the parallel
//! pipeline must emit exactly the serial result.

use mflow_runtime::{generate_frames, process_parallel, process_serial, RuntimeConfig};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn parallel_equals_serial(
        n in 1usize..1200,
        payload in 0usize..800,
        workers in 1usize..6,
        batch in 1usize..512,
        depth in 1usize..8,
    ) {
        let frames = generate_frames(n, payload);
        let serial = process_serial(&frames);
        let parallel = process_parallel(
            &frames,
            &RuntimeConfig {
                workers,
                batch_size: batch,
                queue_depth: depth,
            },
        );
        prop_assert_eq!(serial.digests, parallel.digests);
    }

    #[test]
    fn every_sequence_number_appears_exactly_once(
        n in 1usize..1500,
        workers in 2usize..5,
        batch in 1usize..64,
    ) {
        let frames = generate_frames(n, 32);
        let out = process_parallel(
            &frames,
            &RuntimeConfig {
                workers,
                batch_size: batch,
                queue_depth: 4,
            },
        );
        prop_assert_eq!(out.digests.len(), n);
        for (i, r) in out.digests.iter().enumerate() {
            prop_assert_eq!(r.seq, i as u64, "wrong seq at position {}", i);
        }
    }
}
