//! The per-packet work a worker thread performs: everything the overlay
//! receive path would do in software — parse and checksum-verify both
//! header stacks, decapsulate, and digest the payload (standing in for the
//! copy to user space).

use mflow_net::checksum::ones_complement_sum;
use mflow_net::frame::parse_overlay_frame;

use crate::packet::Frame;

/// Result of processing one frame.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PacketResult {
    /// Original position in the flow.
    pub seq: u64,
    /// FNV-1a digest of the decapsulated payload.
    pub digest: u64,
    /// Payload bytes.
    pub len: u32,
}

/// Fully processes one frame: parse + verify + decap + digest.
///
/// # Panics
/// Panics on a malformed frame — the runtime generates its own valid
/// traffic, so corruption here is a bug, not an input error.
pub fn process_frame(frame: &Frame) -> PacketResult {
    let parsed = parse_overlay_frame(&frame.bytes).expect("generated frame must parse");
    // One more pass over the payload models the user-space copy cost and
    // produces an order-independent identity check.
    let _csum = ones_complement_sum(&parsed.payload, 0);
    let mut digest = 0xcbf29ce484222325u64;
    for &b in &parsed.payload {
        digest ^= b as u64;
        digest = digest.wrapping_mul(0x100000001b3);
    }
    PacketResult {
        seq: frame.seq,
        digest,
        len: parsed.payload.len() as u32,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::generate_frames;

    #[test]
    fn digest_is_deterministic() {
        let frames = generate_frames(4, 128);
        let a = process_frame(&frames[2]);
        let b = process_frame(&frames[2]);
        assert_eq!(a, b);
    }

    #[test]
    fn digests_differ_across_packets() {
        let frames = generate_frames(16, 128);
        let mut seen = std::collections::BTreeSet::new();
        for f in &frames {
            seen.insert(process_frame(f).digest);
        }
        assert_eq!(seen.len(), 16);
    }

    #[test]
    fn result_carries_seq_and_len() {
        let frames = generate_frames(2, 99);
        let r = process_frame(&frames[1]);
        assert_eq!(r.seq, 1);
        assert_eq!(r.len, 99);
    }
}
