//! The per-packet work a worker thread performs: everything the overlay
//! receive path would do in software — parse and checksum-verify both
//! header stacks, decapsulate, and digest the payload (standing in for the
//! copy to user space).

use mflow_net::checksum::ones_complement_sum;
use mflow_net::frame::parse_overlay_frame;

use crate::packet::Frame;

/// Result of processing one frame.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PacketResult {
    /// Original position in the flow.
    pub seq: u64,
    /// FNV-1a digest of the decapsulated payload.
    pub digest: u64,
    /// Payload bytes.
    pub len: u32,
}

/// Fully processes one frame: parse + verify + decap + digest.
///
/// # Panics
/// Panics on a malformed frame — the runtime generates its own valid
/// traffic, so corruption here is a bug, not an input error.
pub fn process_frame(frame: &Frame) -> PacketResult {
    let (seq, payload) = parse_stage(frame);
    let payload = csum_stage(payload);
    digest_stage(seq, payload)
}

/// How many pipelined stages [`process_frame`] decomposes into: parse,
/// checksum, digest. FALCON chains contiguous groups of these across
/// workers instead of fanning batches out.
pub const STAGES: usize = 3;

/// Stage 0: parse + decapsulate, keeping the payload and flow position.
fn parse_stage(frame: &Frame) -> (u64, Vec<u8>) {
    let parsed = parse_overlay_frame(&frame.bytes).expect("generated frame must parse");
    (frame.seq, parsed.payload)
}

/// Stage 1: checksum verification over the decapsulated payload.
fn csum_stage(payload: Vec<u8>) -> Vec<u8> {
    let _csum = ones_complement_sum(&payload, 0);
    payload
}

/// Stage 2: digest, modelling the user-space copy and producing an
/// order-independent identity check.
fn digest_stage(seq: u64, payload: Vec<u8>) -> PacketResult {
    let mut digest = 0xcbf29ce484222325u64;
    for &b in &payload {
        digest ^= b as u64;
        digest = digest.wrapping_mul(0x100000001b3);
    }
    PacketResult {
        seq,
        digest,
        len: payload.len() as u32,
    }
}

/// The stateful stage: `units` rounds of FNV mixing over the packet's
/// digest, standing in for the per-packet share of TCP receive
/// processing. A pure function of the packet result, so it computes the
/// same value no matter which thread runs it — the property that lets
/// state-compute replication move it from the serial merge stage onto
/// the parallel lanes without changing the delivered stream
/// ([`crate::pipeline::RuntimeConfig::stateful_mode`]).
///
/// `units == 0` is the identity: no stateful work configured.
pub fn stateful_stage(r: PacketResult, units: u32) -> PacketResult {
    if units == 0 {
        return r;
    }
    let mut digest = r.digest ^ r.seq.wrapping_mul(0x9e3779b97f4a7c15);
    for round in 0..units as u64 {
        digest ^= round.wrapping_add(r.len as u64);
        digest = digest.wrapping_mul(0x100000001b3);
    }
    PacketResult { digest, ..r }
}

/// A packet part-way through the staged pipeline — the unit FALCON chain
/// workers hand to the next hop after applying their stage group.
#[derive(Debug)]
pub enum StagedWork {
    /// Untouched wire frame.
    Raw(Frame),
    /// After parse: decapsulated payload plus flow position.
    Parsed {
        /// Position in the original flow.
        seq: u64,
        /// Decapsulated payload bytes.
        payload: Vec<u8>,
    },
    /// After checksum verification.
    Summed {
        /// Position in the original flow.
        seq: u64,
        /// Decapsulated payload bytes.
        payload: Vec<u8>,
    },
    /// Fully processed.
    Done(PacketResult),
}

impl StagedWork {
    /// Applies the next pipeline stage; `Done` is a fixed point.
    pub fn advance(self) -> StagedWork {
        match self {
            StagedWork::Raw(frame) => {
                let (seq, payload) = parse_stage(&frame);
                StagedWork::Parsed { seq, payload }
            }
            StagedWork::Parsed { seq, payload } => StagedWork::Summed {
                seq,
                payload: csum_stage(payload),
            },
            StagedWork::Summed { seq, payload } => StagedWork::Done(digest_stage(seq, payload)),
            done @ StagedWork::Done(_) => done,
        }
    }

    /// Applies the next `n` stages.
    pub fn advance_n(self, n: usize) -> StagedWork {
        (0..n).fold(self, |w, _| w.advance())
    }

    /// Applies every remaining stage. Equivalent to [`process_frame`]
    /// from any intermediate state.
    pub fn complete(self) -> PacketResult {
        match self.advance_n(STAGES) {
            StagedWork::Done(r) => r,
            _ => unreachable!("STAGES advances always reach Done"),
        }
    }
}

/// Splits the [`STAGES`] pipeline stages into `groups` contiguous,
/// front-loaded groups: FALCON's device level (2 groups) gets
/// `[parse+checksum | digest]`, the function level (3 groups) one stage
/// per worker.
pub fn stage_group_sizes(groups: usize) -> Vec<usize> {
    let groups = groups.clamp(1, STAGES);
    (0..groups)
        .map(|i| STAGES / groups + usize::from(i < STAGES % groups))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::generate_frames;

    #[test]
    fn digest_is_deterministic() {
        let frames = generate_frames(4, 128);
        let a = process_frame(&frames[2]);
        let b = process_frame(&frames[2]);
        assert_eq!(a, b);
    }

    #[test]
    fn digests_differ_across_packets() {
        let frames = generate_frames(16, 128);
        let mut seen = std::collections::BTreeSet::new();
        for f in &frames {
            seen.insert(process_frame(f).digest);
        }
        assert_eq!(seen.len(), 16);
    }

    #[test]
    fn result_carries_seq_and_len() {
        let frames = generate_frames(2, 99);
        let r = process_frame(&frames[1]);
        assert_eq!(r.seq, 1);
        assert_eq!(r.len, 99);
    }

    #[test]
    fn staged_pipeline_equals_process_frame() {
        let frames = generate_frames(6, 200);
        for f in &frames {
            let whole = process_frame(f);
            // From every intermediate depth, completing must agree.
            for head in 0..=STAGES {
                let staged = StagedWork::Raw(f.clone()).advance_n(head).complete();
                assert_eq!(staged, whole, "diverged after {head} staged steps");
            }
        }
    }

    #[test]
    fn stateful_stage_is_pure_and_thread_independent() {
        let frames = generate_frames(4, 96);
        let r = process_frame(&frames[1]);
        let a = stateful_stage(r, 17);
        let b = stateful_stage(r, 17);
        assert_eq!(a, b, "same input must give the same transition");
        assert_eq!(a.seq, r.seq);
        assert_eq!(a.len, r.len);
        assert_ne!(a.digest, r.digest, "17 rounds must transform the digest");
    }

    #[test]
    fn stateful_stage_zero_units_is_identity() {
        let frames = generate_frames(1, 64);
        let r = process_frame(&frames[0]);
        assert_eq!(stateful_stage(r, 0), r);
    }

    #[test]
    fn stateful_stage_units_change_the_digest() {
        let frames = generate_frames(1, 64);
        let r = process_frame(&frames[0]);
        assert_ne!(stateful_stage(r, 1).digest, stateful_stage(r, 2).digest);
    }

    #[test]
    fn stage_groups_partition_the_pipeline() {
        assert_eq!(stage_group_sizes(1), vec![3]);
        assert_eq!(stage_group_sizes(2), vec![2, 1], "device level front-loads");
        assert_eq!(stage_group_sizes(3), vec![1, 1, 1]);
        // Clamped: more groups than stages degenerate to one per stage.
        assert_eq!(stage_group_sizes(9), vec![1, 1, 1]);
        for g in 1..=3 {
            assert_eq!(stage_group_sizes(g).iter().sum::<usize>(), STAGES);
        }
    }
}
