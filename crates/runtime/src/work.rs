//! The per-packet work a worker thread performs: everything the overlay
//! receive path would do in software — parse and checksum-verify both
//! header stacks, decapsulate, and digest the payload (standing in for the
//! copy to user space).
//!
//! All three stages run zero-copy over the frame's pooled bytes: the
//! parse stage yields the payload as an offset range into the frame
//! buffer ([`mflow_net::frame::parse_overlay_frame_ref`]), and checksum
//! and digest read that slice in place. No stage allocates.

use mflow_net::checksum::ones_complement_sum;
use mflow_net::frame::parse_overlay_frame_ref;

use crate::packet::Frame;

/// Result of processing one frame.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PacketResult {
    /// Original position in the flow.
    pub seq: u64,
    /// FNV-1a digest of the decapsulated payload.
    pub digest: u64,
    /// Payload bytes.
    pub len: u32,
}

/// Fully processes one frame: parse + verify + decap + digest.
///
/// # Panics
/// Panics on a malformed frame — the runtime generates its own valid
/// traffic, so corruption here is a bug, not an input error.
pub fn process_frame(frame: &Frame) -> PacketResult {
    let (off, len) = parse_stage(frame);
    let payload = &frame.bytes()[off..off + len];
    csum_stage(payload);
    digest_stage(frame.seq, payload)
}

/// How many pipelined stages [`process_frame`] decomposes into: parse,
/// checksum, digest. FALCON chains contiguous groups of these across
/// workers instead of fanning batches out.
pub const STAGES: usize = 3;

/// Stage 0: parse + decapsulate. Returns the payload as `(offset, len)`
/// into the frame's bytes — a borrowed view, not a copy.
fn parse_stage(frame: &Frame) -> (usize, usize) {
    let bytes = frame.bytes();
    let parsed = parse_overlay_frame_ref(bytes).expect("generated frame must parse");
    let off = parsed.payload.as_ptr() as usize - bytes.as_ptr() as usize;
    (off, parsed.payload.len())
}

/// Stage 1: checksum verification over the decapsulated payload.
fn csum_stage(payload: &[u8]) {
    let _csum = ones_complement_sum(payload, 0);
}

/// Stage 2: digest, modelling the user-space copy and producing an
/// order-independent identity check.
///
/// FNV-1a at word width: the stage stands in for the copy out of the
/// pooled buffer, and a copy moves words, not bytes — so the mix
/// consumes the payload 8 bytes at a time (byte-at-a-time tail), still
/// touching every byte and still position-sensitive. Both the serial
/// reference and every parallel engine share this definition, so the
/// differential suites are unaffected by the width.
fn digest_stage(seq: u64, payload: &[u8]) -> PacketResult {
    let mut digest = 0xcbf29ce484222325u64;
    let mut chunks = payload.chunks_exact(8);
    for c in &mut chunks {
        digest ^= u64::from_le_bytes(c.try_into().expect("8-byte chunk"));
        digest = digest.wrapping_mul(0x100000001b3);
    }
    for &b in chunks.remainder() {
        digest ^= b as u64;
        digest = digest.wrapping_mul(0x100000001b3);
    }
    PacketResult {
        seq,
        digest,
        len: payload.len() as u32,
    }
}

/// The stateful stage: `units` rounds of FNV mixing over the packet's
/// digest, standing in for the per-packet share of TCP receive
/// processing. A pure function of the packet result, so it computes the
/// same value no matter which thread runs it — the property that lets
/// state-compute replication move it from the serial merge stage onto
/// the parallel lanes without changing the delivered stream
/// ([`crate::pipeline::RuntimeConfig::stateful_mode`]).
///
/// `units == 0` is the identity: no stateful work configured.
pub fn stateful_stage(r: PacketResult, units: u32) -> PacketResult {
    if units == 0 {
        return r;
    }
    let mut digest = r.digest ^ r.seq.wrapping_mul(0x9e3779b97f4a7c15);
    for round in 0..units as u64 {
        digest ^= round.wrapping_add(r.len as u64);
        digest = digest.wrapping_mul(0x100000001b3);
    }
    PacketResult { digest, ..r }
}

/// A packet part-way through the staged pipeline — the unit FALCON chain
/// workers hand to the next hop after applying their stage group.
///
/// Intermediate states keep the pooled frame handle and address the
/// payload by range, so forwarding a batch down the chain moves
/// descriptors, never payload bytes.
#[derive(Debug)]
pub enum StagedWork {
    /// Untouched wire frame.
    Raw(Frame),
    /// After parse: the payload located inside the frame's buffer.
    Parsed {
        /// The frame whose buffer holds the payload.
        frame: Frame,
        /// Payload offset into the frame bytes.
        off: u32,
        /// Payload length in bytes.
        len: u32,
    },
    /// After checksum verification.
    Summed {
        /// The frame whose buffer holds the payload.
        frame: Frame,
        /// Payload offset into the frame bytes.
        off: u32,
        /// Payload length in bytes.
        len: u32,
    },
    /// Fully processed.
    Done(PacketResult),
}

impl StagedWork {
    /// Applies the next pipeline stage; `Done` is a fixed point.
    pub fn advance(self) -> StagedWork {
        match self {
            StagedWork::Raw(frame) => {
                let (off, len) = parse_stage(&frame);
                StagedWork::Parsed {
                    frame,
                    off: off as u32,
                    len: len as u32,
                }
            }
            StagedWork::Parsed { frame, off, len } => {
                csum_stage(&frame.bytes()[off as usize..(off + len) as usize]);
                StagedWork::Summed { frame, off, len }
            }
            StagedWork::Summed { frame, off, len } => {
                let payload = &frame.bytes()[off as usize..(off + len) as usize];
                StagedWork::Done(digest_stage(frame.seq, payload))
            }
            done @ StagedWork::Done(_) => done,
        }
    }

    /// Applies the next `n` stages.
    pub fn advance_n(self, n: usize) -> StagedWork {
        (0..n).fold(self, |w, _| w.advance())
    }

    /// Applies every remaining stage. Equivalent to [`process_frame`]
    /// from any intermediate state.
    pub fn complete(self) -> PacketResult {
        match self.advance_n(STAGES) {
            StagedWork::Done(r) => r,
            _ => unreachable!("STAGES advances always reach Done"),
        }
    }
}

/// Splits the [`STAGES`] pipeline stages into `groups` contiguous,
/// front-loaded groups: FALCON's device level (2 groups) gets
/// `[parse+checksum | digest]`, the function level (3 groups) one stage
/// per worker.
pub fn stage_group_sizes(groups: usize) -> Vec<usize> {
    let groups = groups.clamp(1, STAGES);
    (0..groups)
        .map(|i| STAGES / groups + usize::from(i < STAGES % groups))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::generate_frames;

    #[test]
    fn digest_is_deterministic() {
        let frames = generate_frames(4, 128);
        let a = process_frame(&frames[2]);
        let b = process_frame(&frames[2]);
        assert_eq!(a, b);
    }

    #[test]
    fn digests_differ_across_packets() {
        let frames = generate_frames(16, 128);
        let mut seen = std::collections::BTreeSet::new();
        for f in &frames {
            seen.insert(process_frame(f).digest);
        }
        assert_eq!(seen.len(), 16);
    }

    #[test]
    fn result_carries_seq_and_len() {
        let frames = generate_frames(2, 99);
        let r = process_frame(&frames[1]);
        assert_eq!(r.seq, 1);
        assert_eq!(r.len, 99);
    }

    #[test]
    fn staged_pipeline_equals_process_frame() {
        let frames = generate_frames(6, 200);
        for f in &frames {
            let whole = process_frame(f);
            // From every intermediate depth, completing must agree.
            for head in 0..=STAGES {
                let staged = StagedWork::Raw(f.clone()).advance_n(head).complete();
                assert_eq!(staged, whole, "diverged after {head} staged steps");
            }
        }
    }

    #[test]
    fn staged_work_shares_the_pooled_buffer() {
        let frames = generate_frames(1, 64);
        let pool = frames[0].buf().pool().unwrap();
        let staged = StagedWork::Raw(frames[0].clone()).advance();
        // Raw -> Parsed kept the same slot alive: no new allocation.
        assert_eq!(pool.stats().misses, 0);
        match &staged {
            StagedWork::Parsed { frame, len, .. } => {
                assert_eq!(*len, 64);
                assert_eq!(frame.buf().slot(), frames[0].buf().slot());
            }
            other => panic!("expected Parsed, got {other:?}"),
        }
        drop(staged);
        drop(frames);
        assert_eq!(pool.in_flight(), 0);
    }

    #[test]
    fn stateful_stage_is_pure_and_thread_independent() {
        let frames = generate_frames(4, 96);
        let r = process_frame(&frames[1]);
        let a = stateful_stage(r, 17);
        let b = stateful_stage(r, 17);
        assert_eq!(a, b, "same input must give the same transition");
        assert_eq!(a.seq, r.seq);
        assert_eq!(a.len, r.len);
        assert_ne!(a.digest, r.digest, "17 rounds must transform the digest");
    }

    #[test]
    fn stateful_stage_zero_units_is_identity() {
        let frames = generate_frames(1, 64);
        let r = process_frame(&frames[0]);
        assert_eq!(stateful_stage(r, 0), r);
    }

    #[test]
    fn stateful_stage_units_change_the_digest() {
        let frames = generate_frames(1, 64);
        let r = process_frame(&frames[0]);
        assert_ne!(stateful_stage(r, 1).digest, stateful_stage(r, 2).digest);
    }

    #[test]
    fn stage_groups_partition_the_pipeline() {
        assert_eq!(stage_group_sizes(1), vec![3]);
        assert_eq!(stage_group_sizes(2), vec![2, 1], "device level front-loads");
        assert_eq!(stage_group_sizes(3), vec![1, 1, 1]);
        // Clamped: more groups than stages degenerate to one per stage.
        assert_eq!(stage_group_sizes(9), vec![1, 1, 1]);
        for g in 1..=3 {
            assert_eq!(stage_group_sizes(g).iter().sum::<usize>(), STAGES);
        }
    }
}
