//! Deterministic fault injection for the real-thread pipeline.
//!
//! The simulator's fault plan (`mflow_netstack::faults`) perturbs skbs in
//! virtual time; this is its counterpart for actual OS threads, where the
//! interesting failures are scheduling-shaped: a worker stalls mid-stream,
//! a worker dies outright, a micro-flow is redispatched twice or arrives
//! a few batches late. Packet-level loss is injected too, including the
//! targeted loss of batch-closing packets — the single packet the merging
//! counter cannot advance without.
//!
//! Per-micro-flow and per-packet decisions are pure hashes of
//! `(seed, micro-flow id, packet seq)`, so a given seed faults the same
//! micro-flows on every run regardless of thread interleaving — what the
//! scheduler *does* with the faults varies, which is exactly the space
//! the stress tests explore.

use std::sync::{Arc, Mutex};

/// Kill one worker thread mid-run.
#[derive(Clone, Copy, Debug)]
pub struct WorkerKill {
    /// Worker (lane) index to kill.
    pub worker: usize,
    /// The worker panics after processing this many batches.
    pub after_batches: u64,
    /// Which incarnation of the slot to kill: 0 is the originally spawned
    /// worker, 1 the first supervised respawn, and so on. Without a
    /// supervisor only incarnation 0 ever exists.
    pub incarnation: u64,
}

/// Kill one merger incarnation mid-run. The trigger counts *offers* —
/// results the merger has received — rather than wall-clock or batches:
/// both transports deliver the same total offer count, so the schedule
/// fires identically under `Mpsc` and `Ring` even though arrival
/// interleavings differ.
#[derive(Clone, Copy, Debug)]
pub struct MergerKill {
    /// The merger panics once it has received this many offers.
    pub after_offers: u64,
    /// Which merger incarnation to kill: 0 is the originally spawned
    /// merger, 1 the first supervised respawn, and so on.
    pub incarnation: u64,
}

/// Wedge (rather than kill) the merger: one long sleep when its offer
/// count crosses the trigger, modelling a merger thread pinned off-CPU.
/// The dispatch watchdog detects the stale merger heartbeat with results
/// outstanding, supersedes the wedged incarnation by generation, and
/// respawns from the latest checkpoint.
#[derive(Clone, Copy, Debug)]
pub struct MergerStall {
    /// The sleep fires when the merger's offer count reaches this value.
    pub after_offers: u64,
    /// Sleep duration in milliseconds.
    pub ms: u64,
}

/// One injected fault, as recorded by [`FaultLog`]. The variants carry
/// only schedule-determined data (micro-flow ids, packet seqs, slots) —
/// never timing — so two runs of the same seed produce the same multiset
/// of events regardless of transport or thread interleaving.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum FaultEvent {
    /// A packet was deleted at dispatch.
    Drop { mf_id: u64, seq: u64 },
    /// A whole micro-flow was dispatched twice.
    DupMf { mf_id: u64 },
    /// A whole micro-flow was held back and dispatched late.
    LateMf { mf_id: u64 },
    /// A worker stalled before a batch of this micro-flow.
    Stall { worker: usize, mf_id: u64 },
    /// A worker incarnation was killed.
    Kill { worker: usize, incarnation: u64 },
    /// A merger incarnation was killed (after WAL-logging the offer that
    /// triggered it, so the in-flight item is never lost).
    MergerDeath { incarnation: u64 },
    /// The supervisor respawned the merger; `incarnation` is the
    /// replacement's number.
    MergerRespawn { incarnation: u64 },
    /// A respawned merger incarnation restored state from the latest
    /// checkpoint and replayed the delta log.
    SnapshotRestore { incarnation: u64 },
    /// The merger wedged (injected stall) at this offer count.
    MergerStall { offers: u64 },
}

/// Shared log of injected fault events, filled in by the pipeline as the
/// schedule fires. Clone it, hand the clone to [`RuntimeFaults::log`],
/// and read it back after the run — the canonically sorted event list is
/// the transport-invariance witness the chaos tests compare across
/// `Mpsc` and `Ring`.
#[derive(Clone, Debug, Default)]
pub struct FaultLog(Arc<Mutex<Vec<FaultEvent>>>);

impl FaultLog {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one fired event.
    pub fn record(&self, event: FaultEvent) {
        self.0.lock().expect("fault log poisoned").push(event);
    }

    /// All recorded events, canonically sorted (schedule order, not
    /// arrival order) so logs from different transports compare equal.
    pub fn sorted(&self) -> Vec<FaultEvent> {
        let mut events = self.0.lock().expect("fault log poisoned").clone();
        events.sort_unstable();
        events
    }
}

/// Sustained stall of one lane: the worker sleeps before *every* batch,
/// modelling a splitting core pinned to an overcommitted CPU. Unlike the
/// probabilistic [`RuntimeFaults::stall_rate`], the pressure never lets
/// up, so the lane's queue sits at its watermark for the whole run — the
/// scenario backpressure policies exist for.
#[derive(Clone, Copy, Debug)]
pub struct LaneStall {
    /// Worker (lane) index to stall.
    pub worker: usize,
    /// Sleep before each batch, in milliseconds.
    pub ms: u64,
}

/// Slow-consumer worker: a milder, microsecond-scale per-batch slowdown.
/// Enough to keep one queue consistently deeper than the others (engaging
/// watermark-based policies) without freezing the lane outright.
#[derive(Clone, Copy, Debug)]
pub struct SlowWorker {
    /// Worker (lane) index to slow down.
    pub worker: usize,
    /// Extra processing time per batch, in microseconds.
    pub per_batch_us: u64,
}

/// Fault mix for [`process_parallel_faulty`].
///
/// [`process_parallel_faulty`]: crate::pipeline::process_parallel_faulty
#[derive(Clone, Debug)]
pub struct RuntimeFaults {
    /// Seed for all hash-based decisions.
    pub seed: u64,
    /// Probability a packet is dropped at dispatch (never reaches any
    /// worker).
    pub drop_rate: f64,
    /// Probability the *closing* packet of a micro-flow is dropped —
    /// leaves the micro-flow permanently open at the merger.
    pub drop_last_rate: f64,
    /// Probability a whole micro-flow is dispatched twice (the copy rides
    /// a recovery lane to a different worker).
    pub dup_mf_rate: f64,
    /// Probability a whole micro-flow is held back and dispatched
    /// [`RuntimeFaults::late_by`] batches later on a recovery lane.
    pub late_mf_rate: f64,
    /// How many batches a late micro-flow is held for.
    pub late_by: u64,
    /// Probability a worker stalls before processing a batch.
    pub stall_rate: f64,
    /// Stall duration in milliseconds.
    pub stall_ms: u64,
    /// Kill a worker mid-run.
    pub kill: Option<WorkerKill>,
    /// Additional kills beyond [`RuntimeFaults::kill`] — a chaos schedule
    /// can target every slot (and respawned incarnations) in one run.
    pub kills: Vec<WorkerKill>,
    /// Kill the merger mid-run.
    pub merger_kill: Option<MergerKill>,
    /// Additional merger kills — a multi-kill schedule can take down
    /// successive incarnations (0, then 1, ...) in one run.
    pub merger_kills: Vec<MergerKill>,
    /// Wedge the merger with one long sleep at an offer count.
    pub merger_stall: Option<MergerStall>,
    /// Sustained stall of one lane (sleep before every batch).
    pub lane_stall: Option<LaneStall>,
    /// Slow-consumer worker (per-batch microsecond slowdown).
    pub slow_worker: Option<SlowWorker>,
    /// Merger flush deadline: with no arrivals for this long, the merger
    /// force-advances past the micro-flow it is stuck on. `None` waits
    /// forever (only safe without loss faults).
    pub flush_timeout_ms: Option<u64>,
    /// Optional shared log of fired events (see [`FaultLog`]). `None`
    /// skips recording entirely.
    pub log: Option<FaultLog>,
}

impl RuntimeFaults {
    /// No faults; the pipeline behaves exactly like [`process_parallel`].
    ///
    /// [`process_parallel`]: crate::pipeline::process_parallel
    pub fn none() -> Self {
        Self {
            seed: 0,
            drop_rate: 0.0,
            drop_last_rate: 0.0,
            dup_mf_rate: 0.0,
            late_mf_rate: 0.0,
            late_by: 2,
            stall_rate: 0.0,
            stall_ms: 1,
            kill: None,
            kills: Vec::new(),
            merger_kill: None,
            merger_kills: Vec::new(),
            merger_stall: None,
            lane_stall: None,
            slow_worker: None,
            flush_timeout_ms: Some(100),
            log: None,
        }
    }

    /// Whether any fault can ever fire.
    pub fn is_active(&self) -> bool {
        self.drop_rate > 0.0
            || self.drop_last_rate > 0.0
            || self.dup_mf_rate > 0.0
            || self.late_mf_rate > 0.0
            || self.stall_rate > 0.0
            || self.kill.is_some()
            || !self.kills.is_empty()
            || self.lane_stall.is_some()
            || self.slow_worker.is_some()
            || self.merger_faults_active()
    }

    /// Whether any merger-domain fault is scheduled. Gates the merger's
    /// write-ahead logging on otherwise-unsupervised runs: a run that can
    /// lose its merger must journal offers even without a supervisor, so
    /// the degraded dispatcher-side merge can reconstruct the stream.
    pub fn merger_faults_active(&self) -> bool {
        self.merger_kill.is_some() || !self.merger_kills.is_empty() || self.merger_stall.is_some()
    }

    /// Whether a kill is scheduled to fire for this `(worker, incarnation)`
    /// once it has processed `processed` batches. Checks both the single
    /// [`RuntimeFaults::kill`] slot and the [`RuntimeFaults::kills`] list.
    pub fn kill_fires(&self, worker: usize, incarnation: u64, processed: u64) -> bool {
        self.kill
            .iter()
            .chain(self.kills.iter())
            .any(|k| k.worker == worker && k.incarnation == incarnation && processed >= k.after_batches)
    }

    /// Whether a merger kill is scheduled to fire for `incarnation` once
    /// it has received `offers` results. Like [`RuntimeFaults::kill_fires`],
    /// the trigger is `>=`: a kill point that lands inside a window the
    /// incarnation replayed from the delta log (replay performs no fault
    /// checks) fires on its first fresh offer instead of being lost.
    pub fn merger_kill_fires(&self, incarnation: u64, offers: u64) -> bool {
        self.merger_kill
            .iter()
            .chain(self.merger_kills.iter())
            .any(|k| k.incarnation == incarnation && offers >= k.after_offers)
    }

    /// Whether the injected merger wedge fires at exactly this offer
    /// count. Exact equality: the sleep happens once, on the fresh offer
    /// that crosses the trigger (never during delta replay), so the
    /// recorded [`FaultEvent::MergerStall`] is schedule-determined.
    pub fn merger_stall_fires(&self, offers: u64) -> Option<u64> {
        self.merger_stall
            .filter(|s| s.after_offers == offers)
            .map(|s| s.ms)
    }

    /// Records `event` into the attached [`FaultLog`], if any.
    pub(crate) fn note(&self, event: FaultEvent) {
        if let Some(log) = &self.log {
            log.record(event);
        }
    }

    /// True with probability `rate`, as a pure function of the key.
    pub(crate) fn decide(&self, salt: u64, mf_id: u64, seq: u64, rate: f64) -> bool {
        if rate <= 0.0 {
            return false;
        }
        if rate >= 1.0 {
            return true;
        }
        let mut x = self.seed ^ salt;
        for v in [mf_id, seq] {
            // SplitMix64 finalizer over the accumulated key.
            x = x.wrapping_add(v).wrapping_add(0x9E37_79B9_7F4A_7C15);
            x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            x ^= x >> 31;
        }
        ((x >> 11) as f64) / ((1u64 << 53) as f64) < rate
    }

    /// Whether dispatch drops this packet (`drop_rate`, or
    /// `drop_last_rate` when it closes its micro-flow). Recomputable by
    /// tests to predict exactly which packets never entered the pipeline.
    pub fn drops_packet(&self, mf_id: u64, seq: u64, closes_batch: bool) -> bool {
        self.decide(0xD709, mf_id, seq, self.drop_rate)
            || (closes_batch && self.decide(0x1A57, mf_id, seq, self.drop_last_rate))
    }

    /// Whether this micro-flow is dispatched twice.
    pub fn duplicates_mf(&self, mf_id: u64) -> bool {
        self.decide(0xD0B1, mf_id, 0, self.dup_mf_rate)
    }

    /// Whether this micro-flow is held back and dispatched late.
    pub fn delays_mf(&self, mf_id: u64) -> bool {
        self.decide(0xDE1A, mf_id, 0, self.late_mf_rate)
    }

    /// Whether a worker stalls before processing this micro-flow's batch.
    pub fn stalls_on(&self, mf_id: u64) -> bool {
        self.decide(0x57A1, mf_id, 0, self.stall_rate)
    }
}

impl Default for RuntimeFaults {
    fn default() -> Self {
        Self::none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inactive_by_default() {
        assert!(!RuntimeFaults::none().is_active());
        assert!(!RuntimeFaults::none().drops_packet(3, 17, true));
    }

    #[test]
    fn kill_alone_makes_it_active() {
        let mut f = RuntimeFaults::none();
        f.kill = Some(WorkerKill {
            worker: 0,
            after_batches: 5,
            incarnation: 0,
        });
        assert!(f.is_active());
        let mut f = RuntimeFaults::none();
        f.kills.push(WorkerKill {
            worker: 1,
            after_batches: 3,
            incarnation: 1,
        });
        assert!(f.is_active());
    }

    #[test]
    fn kill_fires_matches_slot_and_incarnation() {
        let mut f = RuntimeFaults::none();
        f.kills.push(WorkerKill {
            worker: 2,
            after_batches: 4,
            incarnation: 1,
        });
        assert!(!f.kill_fires(2, 1, 3), "not enough batches yet");
        assert!(f.kill_fires(2, 1, 4));
        assert!(!f.kill_fires(2, 0, 100), "wrong incarnation");
        assert!(!f.kill_fires(1, 1, 100), "wrong slot");
    }

    #[test]
    fn fault_log_sorts_canonically() {
        let log = FaultLog::new();
        log.record(FaultEvent::Kill {
            worker: 1,
            incarnation: 0,
        });
        log.record(FaultEvent::Drop { mf_id: 3, seq: 9 });
        log.record(FaultEvent::Drop { mf_id: 1, seq: 2 });
        let a = log.sorted();
        // A clone shares the same backing log.
        let b = log.clone().sorted();
        assert_eq!(a, b);
        assert_eq!(a[0], FaultEvent::Drop { mf_id: 1, seq: 2 });
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn merger_faults_make_it_active() {
        let mut f = RuntimeFaults::none();
        assert!(!f.merger_faults_active());
        f.merger_kill = Some(MergerKill {
            after_offers: 10,
            incarnation: 0,
        });
        assert!(f.merger_faults_active());
        assert!(f.is_active());
        let mut f = RuntimeFaults::none();
        f.merger_stall = Some(MergerStall {
            after_offers: 5,
            ms: 1,
        });
        assert!(f.merger_faults_active());
        assert!(f.is_active());
    }

    #[test]
    fn merger_kill_fires_matches_incarnation_and_offer_count() {
        let mut f = RuntimeFaults::none();
        f.merger_kills.push(MergerKill {
            after_offers: 40,
            incarnation: 1,
        });
        assert!(!f.merger_kill_fires(1, 39), "not enough offers yet");
        assert!(f.merger_kill_fires(1, 40));
        assert!(f.merger_kill_fires(1, 1000), ">= trigger survives replay skips");
        assert!(!f.merger_kill_fires(0, 1000), "wrong incarnation");
    }

    #[test]
    fn merger_stall_fires_exactly_once_at_the_trigger() {
        let mut f = RuntimeFaults::none();
        f.merger_stall = Some(MergerStall {
            after_offers: 7,
            ms: 3,
        });
        assert_eq!(f.merger_stall_fires(6), None);
        assert_eq!(f.merger_stall_fires(7), Some(3));
        assert_eq!(f.merger_stall_fires(8), None);
    }

    #[test]
    fn merger_events_sort_canonically_with_worker_events() {
        let log = FaultLog::new();
        log.record(FaultEvent::MergerRespawn { incarnation: 1 });
        log.record(FaultEvent::MergerDeath { incarnation: 0 });
        log.record(FaultEvent::SnapshotRestore { incarnation: 1 });
        log.record(FaultEvent::Kill {
            worker: 0,
            incarnation: 0,
        });
        let sorted = log.sorted();
        assert_eq!(sorted.len(), 4);
        assert!(sorted.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn lane_stall_and_slow_worker_make_it_active() {
        let mut f = RuntimeFaults::none();
        f.lane_stall = Some(LaneStall { worker: 0, ms: 2 });
        assert!(f.is_active());
        let mut f = RuntimeFaults::none();
        f.slow_worker = Some(SlowWorker {
            worker: 1,
            per_batch_us: 50,
        });
        assert!(f.is_active());
    }

    #[test]
    fn decisions_depend_on_seed_and_key() {
        let mut f = RuntimeFaults::none();
        f.drop_rate = 0.5;
        let picks: Vec<bool> = (0..64).map(|s| f.drops_packet(0, s, false)).collect();
        assert_eq!(
            picks,
            (0..64).map(|s| f.drops_packet(0, s, false)).collect::<Vec<_>>(),
            "same seed, same picks"
        );
        assert!(picks.iter().any(|&b| b) && picks.iter().any(|&b| !b));
        f.seed = 1;
        assert_ne!(
            picks,
            (0..64).map(|s| f.drops_packet(0, s, false)).collect::<Vec<_>>()
        );
    }

    #[test]
    fn drop_last_only_fires_on_closing_packets() {
        let mut f = RuntimeFaults::none();
        f.drop_last_rate = 1.0;
        assert!(f.drops_packet(2, 9, true));
        assert!(!f.drops_packet(2, 9, false));
    }
}
