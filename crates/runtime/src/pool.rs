//! Slab-backed packet buffer pool: the runtime's answer to per-hop
//! `Vec<u8>` traffic on the hot path.
//!
//! A [`BufPool`] owns one contiguous slab carved into fixed-size slots.
//! [`BufPool::alloc`] copies a wire frame into a free slot once, at
//! generation time, and hands back a [`PktBuf`] — a reference-counted
//! handle of `(pool, slot index, length)`, which is exactly the
//! descriptor shape an IRQ core would enqueue for a splitting core.
//! Every subsequent hop (dispatcher clone into a batch, retained-window
//! copy for redispatch, duplicate-fault copy) is a refcount bump, not a
//! byte copy; the final drop pushes the slot back on the free list.
//!
//! Ownership rules (DESIGN.md §14):
//!
//! * A slot is written only between free-list pop and first share, while
//!   its refcount is the allocator's exclusive 1. From then on the bytes
//!   are immutable until the count returns to 0.
//! * Clones may happen on any thread; the slot is released to the free
//!   list exactly once, by whichever handle drops the count to zero —
//!   batch copies held for retransmission therefore cannot double-free.
//! * When the pool is exhausted or a frame exceeds the slot size, the
//!   allocation falls back to a heap buffer (counted as a `miss`), so
//!   sizing the pool is a performance decision, never a correctness one.

use std::cell::UnsafeCell;
use std::ops::Deref;
use std::sync::atomic::{fence, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A fixed-capacity slab of packet buffers. Cloning the handle shares
/// the pool (it is internally an `Arc`).
#[derive(Clone)]
pub struct BufPool {
    inner: Arc<PoolInner>,
}

struct PoolInner {
    /// Bytes per slot.
    slot_len: usize,
    /// Slot count.
    slots: usize,
    /// The slab. `UnsafeCell` because slot bytes are written through a
    /// shared reference at acquire time; the refcount protocol above is
    /// what makes that sound.
    storage: Box<[UnsafeCell<u8>]>,
    /// Per-slot reference counts; 0 means the slot is on the free list.
    refs: Box<[AtomicU32]>,
    /// Indices of slots with refcount 0.
    free: Mutex<Vec<u32>>,
    /// Allocations served from the slab.
    hits: AtomicU64,
    /// Allocations that fell back to the heap (pool empty or oversize).
    misses: AtomicU64,
    /// Slots returned to the free list (release events).
    recycled: AtomicU64,
    /// Live heap-fallback buffers.
    heap_live: AtomicU64,
}

// SAFETY: the `UnsafeCell` slab is only written while the writer holds
// the slot exclusively (refcount 0 -> 1 via free-list pop) and only read
// while a handle keeps the refcount >= 1; the free-list mutex and the
// release/acquire refcount edges order those phases.
unsafe impl Send for PoolInner {}
unsafe impl Sync for PoolInner {}

/// A point-in-time counter snapshot of a [`BufPool`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Total slot count.
    pub slots: u64,
    /// Bytes per slot.
    pub slot_len: u64,
    /// Slots currently on the free list.
    pub free: u64,
    /// Allocations served from the slab.
    pub hits: u64,
    /// Heap-fallback allocations (pool empty or frame oversize).
    pub misses: u64,
    /// Slot release events (returns to the free list).
    pub recycled: u64,
    /// Heap-fallback buffers still alive.
    pub heap_live: u64,
}

impl PoolStats {
    /// Fraction of allocations served from the slab; 1.0 for an
    /// untouched pool.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            1.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

impl BufPool {
    /// A pool of `slots` buffers of `slot_len` bytes each.
    pub fn new(slots: usize, slot_len: usize) -> Self {
        assert!(slots >= 1, "pool needs at least one slot");
        assert!(slot_len >= 1, "slots need at least one byte");
        let storage: Box<[UnsafeCell<u8>]> =
            (0..slots * slot_len).map(|_| UnsafeCell::new(0)).collect();
        let refs: Box<[AtomicU32]> = (0..slots).map(|_| AtomicU32::new(0)).collect();
        // LIFO free list: hand the most recently released (cache-warm)
        // slot out first.
        let free = (0..slots as u32).rev().collect();
        Self {
            inner: Arc::new(PoolInner {
                slot_len,
                slots,
                storage,
                refs,
                free: Mutex::new(free),
                hits: AtomicU64::new(0),
                misses: AtomicU64::new(0),
                recycled: AtomicU64::new(0),
                heap_live: AtomicU64::new(0),
            }),
        }
    }

    /// Pool sized to hold `n` frames of up to `frame_len` bytes.
    pub fn for_frames(n: usize, frame_len: usize) -> Self {
        Self::new(n.max(1), frame_len.max(1))
    }

    /// Copies `bytes` into a free slot and returns the handle; falls
    /// back to a heap buffer (a `miss`) when the pool is empty or the
    /// frame does not fit a slot.
    pub fn alloc(&self, bytes: &[u8]) -> PktBuf {
        let inner = &self.inner;
        if bytes.len() <= inner.slot_len {
            let slot = lock(&inner.free).pop();
            if let Some(idx) = slot {
                let prev = inner.refs[idx as usize].swap(1, Ordering::Acquire);
                debug_assert_eq!(prev, 0, "free-listed slot had live references");
                // SAFETY: the slot came off the free list with refcount
                // 0, so this thread holds it exclusively; the region is
                // in bounds by construction (idx < slots, len <= slot_len).
                unsafe {
                    let base = (inner.storage.as_ptr() as *mut u8)
                        .add(idx as usize * inner.slot_len);
                    std::ptr::copy_nonoverlapping(bytes.as_ptr(), base, bytes.len());
                }
                inner.hits.fetch_add(1, Ordering::Relaxed);
                return PktBuf(Repr::Pooled {
                    pool: Arc::clone(inner),
                    idx,
                    len: bytes.len() as u32,
                });
            }
        }
        inner.misses.fetch_add(1, Ordering::Relaxed);
        inner.heap_live.fetch_add(1, Ordering::Relaxed);
        PktBuf(Repr::Heap(Arc::new(HeapBuf {
            bytes: bytes.to_vec().into_boxed_slice(),
            pool: Some(Arc::clone(inner)),
        })))
    }

    /// Counter snapshot.
    pub fn stats(&self) -> PoolStats {
        let inner = &self.inner;
        PoolStats {
            slots: inner.slots as u64,
            slot_len: inner.slot_len as u64,
            free: lock(&inner.free).len() as u64,
            hits: inner.hits.load(Ordering::Relaxed),
            misses: inner.misses.load(Ordering::Relaxed),
            recycled: inner.recycled.load(Ordering::Relaxed),
            heap_live: inner.heap_live.load(Ordering::Relaxed),
        }
    }

    /// Buffers currently held by live handles: slab slots off the free
    /// list plus live heap fallbacks. Zero once every [`PktBuf`] from
    /// this pool has been dropped — the conservation invariant the
    /// chaos suite asserts.
    pub fn in_flight(&self) -> u64 {
        let s = self.stats();
        (s.slots - s.free) + s.heap_live
    }

    fn ptr_eq(&self, other: &Arc<PoolInner>) -> bool {
        Arc::ptr_eq(&self.inner, other)
    }
}

impl std::fmt::Debug for BufPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.stats();
        f.debug_struct("BufPool")
            .field("slots", &s.slots)
            .field("slot_len", &s.slot_len)
            .field("free", &s.free)
            .finish()
    }
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    // A panicking worker can poison the free list mid-push; the list
    // itself is always structurally valid, so poisoning is ignorable.
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// A reference-counted handle to one packet's wire bytes: a slot in a
/// [`BufPool`] (the common case) or a heap fallback. Dereferences to
/// `&[u8]`. Clone is a refcount bump; the last drop recycles the slot.
pub struct PktBuf(Repr);

enum Repr {
    Pooled {
        pool: Arc<PoolInner>,
        idx: u32,
        len: u32,
    },
    Heap(Arc<HeapBuf>),
}

struct HeapBuf {
    bytes: Box<[u8]>,
    /// The pool whose `heap_live` gauge tracks this buffer; `None` for
    /// buffers created without a pool ([`PktBuf::from_vec`]).
    pool: Option<Arc<PoolInner>>,
}

impl Drop for HeapBuf {
    fn drop(&mut self) {
        if let Some(pool) = &self.pool {
            pool.heap_live.fetch_sub(1, Ordering::Relaxed);
        }
    }
}

impl PktBuf {
    /// Wraps an owned byte vector without a pool — for tests and
    /// ad-hoc frames; counted by no pool gauge.
    pub fn from_vec(bytes: Vec<u8>) -> Self {
        PktBuf(Repr::Heap(Arc::new(HeapBuf {
            bytes: bytes.into_boxed_slice(),
            pool: None,
        })))
    }

    /// The wire bytes.
    pub fn as_slice(&self) -> &[u8] {
        match &self.0 {
            Repr::Pooled { pool, idx, len } => {
                // SAFETY: this handle keeps the slot's refcount >= 1, so
                // no writer can touch the region; bounds as in `alloc`.
                unsafe {
                    std::slice::from_raw_parts(
                        (pool.storage.as_ptr() as *const u8)
                            .add(*idx as usize * pool.slot_len),
                        *len as usize,
                    )
                }
            }
            Repr::Heap(buf) => &buf.bytes,
        }
    }

    /// The owning pool, when this handle is pooled or a pool-tracked
    /// heap fallback.
    pub fn pool(&self) -> Option<BufPool> {
        match &self.0 {
            Repr::Pooled { pool, .. } => Some(BufPool {
                inner: Arc::clone(pool),
            }),
            Repr::Heap(buf) => buf.pool.as_ref().map(|p| BufPool {
                inner: Arc::clone(p),
            }),
        }
    }

    /// The slot index — the "pool index" half of the packet-request
    /// descriptor; `None` for heap fallbacks.
    pub fn slot(&self) -> Option<u32> {
        match &self.0 {
            Repr::Pooled { idx, .. } => Some(*idx),
            Repr::Heap(_) => None,
        }
    }

    /// True when this handle belongs to `pool`'s slab or heap gauge.
    pub fn belongs_to(&self, pool: &BufPool) -> bool {
        match &self.0 {
            Repr::Pooled { pool: p, .. } => pool.ptr_eq(p),
            Repr::Heap(buf) => buf.pool.as_ref().is_some_and(|p| pool.ptr_eq(p)),
        }
    }
}

impl Clone for PktBuf {
    fn clone(&self) -> Self {
        match &self.0 {
            Repr::Pooled { pool, idx, len } => {
                pool.refs[*idx as usize].fetch_add(1, Ordering::Relaxed);
                PktBuf(Repr::Pooled {
                    pool: Arc::clone(pool),
                    idx: *idx,
                    len: *len,
                })
            }
            Repr::Heap(buf) => PktBuf(Repr::Heap(Arc::clone(buf))),
        }
    }
}

impl Drop for PktBuf {
    fn drop(&mut self) {
        if let Repr::Pooled { pool, idx, .. } = &self.0 {
            let prev = pool.refs[*idx as usize].fetch_sub(1, Ordering::Release);
            assert!(prev >= 1, "PktBuf slot {idx} released below zero");
            if prev == 1 {
                // Synchronize with every reader that just released, so
                // the next writer of this slot sees their reads retired.
                fence(Ordering::Acquire);
                lock(&pool.free).push(*idx);
                pool.recycled.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

impl Deref for PktBuf {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl std::fmt::Debug for PktBuf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.0 {
            Repr::Pooled { idx, len, .. } => {
                write!(f, "PktBuf(slot {idx}, {len} bytes)")
            }
            Repr::Heap(buf) => write!(f, "PktBuf(heap, {} bytes)", buf.bytes.len()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_roundtrips_bytes() {
        let pool = BufPool::new(4, 64);
        let buf = pool.alloc(b"hello pool");
        assert_eq!(&*buf, b"hello pool");
        assert_eq!(buf.slot(), Some(0));
        assert_eq!(pool.stats().hits, 1);
    }

    #[test]
    fn last_drop_recycles_the_slot() {
        let pool = BufPool::new(1, 16);
        let a = pool.alloc(b"one");
        assert_eq!(pool.in_flight(), 1);
        let b = a.clone();
        drop(a);
        assert_eq!(pool.in_flight(), 1, "clone still holds the slot");
        drop(b);
        assert_eq!(pool.in_flight(), 0);
        assert_eq!(pool.stats().recycled, 1);
        // The recycled slot serves the next alloc.
        let c = pool.alloc(b"two");
        assert_eq!(&*c, b"two");
        assert_eq!(pool.stats().hits, 2);
        assert_eq!(pool.stats().misses, 0);
    }

    #[test]
    fn exhaustion_and_oversize_fall_back_to_heap() {
        let pool = BufPool::new(1, 8);
        let held = pool.alloc(b"resident");
        let spill = pool.alloc(b"spill");
        assert_eq!(&*spill, b"spill");
        assert_eq!(spill.slot(), None);
        let big = pool.alloc(&[7u8; 64]);
        assert_eq!(big.len(), 64);
        let s = pool.stats();
        assert_eq!((s.hits, s.misses, s.heap_live), (1, 2, 2));
        assert_eq!(pool.in_flight(), 3);
        drop((held, spill, big));
        assert_eq!(pool.in_flight(), 0);
    }

    #[test]
    fn clones_share_bytes_without_copying() {
        let pool = BufPool::new(2, 32);
        let a = pool.alloc(b"shared");
        let b = a.clone();
        assert_eq!(a.as_slice().as_ptr(), b.as_slice().as_ptr());
    }

    #[test]
    fn cross_thread_release_is_conserved() {
        let pool = BufPool::new(64, 32);
        let bufs: Vec<PktBuf> = (0..64u8).map(|i| pool.alloc(&[i; 32])).collect();
        let clones: Vec<PktBuf> = bufs.iter().map(PktBuf::clone).collect();
        let t = std::thread::spawn(move || drop(clones));
        drop(bufs);
        t.join().unwrap();
        assert_eq!(pool.in_flight(), 0);
        assert_eq!(pool.stats().free, 64);
    }

    #[test]
    fn hit_rate_reflects_misses() {
        let pool = BufPool::new(1, 8);
        let _a = pool.alloc(b"a");
        let _b = pool.alloc(b"b");
        assert!((pool.stats().hit_rate() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn from_vec_is_untracked() {
        let buf = PktBuf::from_vec(vec![1, 2, 3]);
        assert_eq!(&*buf, &[1, 2, 3]);
        assert!(buf.pool().is_none());
        assert_eq!(buf.slot(), None);
    }
}
