//! The threaded split/merge pipeline.
//!
//! Topology (mirroring Figure 6 of the paper on real cores):
//!
//! ```text
//!             +-> worker 0 --\
//! dispatcher -+-> worker 1 ---+-> merger (MergeCounter) -> ordered output
//!             +-> worker N-1-/
//! ```
//!
//! The dispatcher assigns micro-flows of `batch_size` consecutive frames
//! round-robin to workers over bounded SPSC channels; each worker performs
//! the full per-packet work; the merger restores the original order with
//! the merging-counter algorithm. Workers run genuinely concurrently, so
//! the merger sees every interleaving a real kernel would.
//!
//! # Degradation under faults
//!
//! [`process_parallel_faulty`] runs the same pipeline with an injected
//! [`RuntimeFaults`] mix and never panics or wedges:
//!
//! * **Worker death** — each send failure marks the lane dead; the batch
//!   that bounced plus a retained window of recently-sent batches are
//!   redispatched to surviving workers. Redispatched copies ride fresh
//!   *recovery lanes* (`n_workers + k`) so the merger's per-lane FIFO
//!   assumption is never violated; copies of already-merged batches are
//!   rejected as duplicates.
//! * **Loss** — a micro-flow that never completes stalls the merging
//!   counter; the merger flushes past it after
//!   [`RuntimeFaults::flush_timeout_ms`] without arrivals, and again at
//!   end of stream, releasing every parked successor. Skipped IDs are
//!   reported in [`RunOutput::flushed_mfs`].
//! * **Duplication / late arrival** — rejected by the merge counter and
//!   reported in [`RunOutput::merge_dup_drops`] /
//!   [`RunOutput::merge_late_drops`].
//!
//! The output is always an ordered, duplicate-free subsequence of the
//! serial output; what is missing is exactly accounted for by the
//! dispatcher's planned drops plus the flushed micro-flows.

use std::collections::VecDeque;
use std::sync::mpsc::{self, RecvTimeoutError, SyncSender};
use std::thread;
use std::time::{Duration, Instant};

use mflow::{MergeCounter, MfTag};

use crate::faults::RuntimeFaults;
use crate::packet::Frame;
use crate::work::{process_frame, PacketResult};

/// Parallel-pipeline parameters.
#[derive(Clone, Copy, Debug)]
pub struct RuntimeConfig {
    /// Worker (splitting-core) count.
    pub workers: usize,
    /// Micro-flow batch size in packets.
    pub batch_size: usize,
    /// Bounded channel depth between dispatcher and each worker, in
    /// batches.
    pub queue_depth: usize,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        Self {
            workers: 2,
            batch_size: 256,
            queue_depth: 8,
        }
    }
}

/// The outcome of a pipeline run.
#[derive(Clone, Debug)]
pub struct RunOutput {
    /// Results in emission order.
    pub digests: Vec<PacketResult>,
    /// Wall-clock processing time.
    pub elapsed: Duration,
    /// Inversions observed at the merger input (before reassembly) — the
    /// runtime analogue of the paper's Figure 7 y-axis.
    pub ooo_at_merge: u64,
    /// Micro-flow IDs the merger flushed past instead of waiting forever.
    pub flushed_mfs: Vec<u64>,
    /// Results the merger rejected for arriving after their micro-flow
    /// was already passed.
    pub merge_late_drops: u64,
    /// Results the merger rejected as duplicate copies.
    pub merge_dup_drops: u64,
    /// Packets the fault injector deleted at dispatch.
    pub fault_drops: u64,
    /// Batches redispatched onto recovery lanes after a worker died.
    pub redispatched: u64,
    /// Worker threads that panicked during the run.
    pub workers_died: usize,
    /// Results still parked in the merger after the final flush (always 0
    /// unless flushing was disabled).
    pub merge_residue: usize,
}

impl RunOutput {
    fn new(digests: Vec<PacketResult>, elapsed: Duration, ooo_at_merge: u64) -> Self {
        Self {
            digests,
            elapsed,
            ooo_at_merge,
            flushed_mfs: Vec::new(),
            merge_late_drops: 0,
            merge_dup_drops: 0,
            fault_drops: 0,
            redispatched: 0,
            workers_died: 0,
            merge_residue: 0,
        }
    }
}

/// Baseline: one thread processes every frame in order.
pub fn process_serial(frames: &[Frame]) -> RunOutput {
    let start = Instant::now();
    let digests = frames.iter().map(process_frame).collect();
    RunOutput::new(digests, start.elapsed(), 0)
}

/// One micro-flow's tagged frames, as sent to a worker.
type Batch = Vec<(MfTag, Frame)>;

/// Dispatcher-side view of one worker queue.
struct Lane {
    tx: Option<SyncSender<Batch>>,
    /// Copies of the most recently sent batches (faulty runs only): the
    /// batches that may still sit unprocessed in the queue when the
    /// worker dies, and must be redispatched. Capacity `queue_depth + 2`
    /// covers the full queue, the batch in the worker's hands, and the
    /// one that bounced.
    recent: VecDeque<Batch>,
}

/// Everything the dispatcher tracks while the stream is in flight.
struct Dispatcher {
    lanes: Vec<Lane>,
    retain: usize,
    /// Next recovery lane ID (tag lanes above the worker count are unique
    /// per redispatched batch).
    recovery_lane: usize,
    /// Physical worker round-robin cursor for recovery sends.
    next_worker: usize,
    redispatched: u64,
}

impl Dispatcher {
    fn new(lanes: Vec<Lane>, faults: &RuntimeFaults, queue_depth: usize) -> Self {
        let n = lanes.len();
        Self {
            lanes,
            retain: if faults.is_active() { queue_depth + 2 } else { 0 },
            recovery_lane: n,
            next_worker: 0,
            redispatched: 0,
        }
    }

    /// Sends `batch` to worker `lane`, redispatching on failure. Pending
    /// work is processed iteratively: a redispatch target may itself be
    /// dead, bouncing the batch again.
    fn send(&mut self, lane: usize, batch: Batch) {
        let mut pending: Vec<(usize, Batch, bool)> = vec![(lane, batch, false)];
        while let Some((lane, batch, is_recovery)) = pending.pop() {
            let Some(tx) = &self.lanes[lane].tx else {
                // Known-dead lane: reroute to a live worker directly.
                if let Some(b) = self.reroute(batch, is_recovery) {
                    pending.push(b);
                }
                continue;
            };
            match tx.send(batch) {
                Ok(()) => {}
                Err(mpsc::SendError(batch)) => {
                    // The worker died: everything it still held is lost.
                    // Redispatch its retained window plus this batch.
                    self.lanes[lane].tx = None;
                    let window = std::mem::take(&mut self.lanes[lane].recent);
                    for lost in window.into_iter().chain(std::iter::once(batch)) {
                        if let Some(b) = self.reroute(lost, is_recovery) {
                            pending.push(b);
                        }
                    }
                }
            }
        }
    }

    /// Sends a batch, keeping a copy in the lane's retained window first
    /// (faulty runs only).
    fn send_retained(&mut self, lane: usize, batch: Batch) {
        if self.retain > 0 && self.lanes[lane].tx.is_some() {
            let recent = &mut self.lanes[lane].recent;
            if recent.len() == self.retain {
                recent.pop_front();
            }
            recent.push_back(batch.clone());
        }
        self.send(lane, batch);
    }

    /// Retags a lost batch onto a fresh recovery lane and targets the
    /// next live worker. Returns `None` when no workers are left.
    fn reroute(&mut self, batch: Batch, was_recovery: bool) -> Option<(usize, Batch, bool)> {
        let target = self.pick_live_worker()?;
        let batch = if was_recovery {
            // Already on a unique recovery lane; keep its tags.
            batch
        } else {
            self.retag(batch)
        };
        self.redispatched += 1;
        Some((target, batch, true))
    }

    /// Clones a batch onto a fresh recovery lane.
    fn retag(&mut self, batch: Batch) -> Batch {
        let lane = self.recovery_lane;
        self.recovery_lane += 1;
        batch
            .into_iter()
            .map(|(tag, frame)| (MfTag { lane, ..tag }, frame))
            .collect()
    }

    fn pick_live_worker(&mut self) -> Option<usize> {
        let n = self.lanes.len();
        for _ in 0..n {
            let w = self.next_worker % n;
            self.next_worker = (self.next_worker + 1) % n;
            if self.lanes[w].tx.is_some() {
                return Some(w);
            }
        }
        None
    }

    /// Sends a recovery-tagged copy of `batch` to the next live worker.
    fn send_recovery(&mut self, batch: Batch) {
        let retagged = self.retag(batch);
        if let Some(target) = self.pick_live_worker() {
            self.send(target, retagged);
        }
    }

    fn finish(self) -> u64 {
        // Dropping the senders lets workers drain and exit.
        self.redispatched
    }
}

/// MFLOW pipeline: split into micro-flows, process on `workers` threads,
/// merge back in order. Equivalent to [`process_parallel_faulty`] with
/// [`RuntimeFaults::none`].
pub fn process_parallel(frames: &[Frame], cfg: &RuntimeConfig) -> RunOutput {
    process_parallel_faulty(frames, cfg, &RuntimeFaults::none())
}

/// The pipeline under an injected fault mix. Guaranteed not to panic and
/// not to wedge for any fault combination; see the module docs for the
/// degradation contract.
pub fn process_parallel_faulty(
    frames: &[Frame],
    cfg: &RuntimeConfig,
    faults: &RuntimeFaults,
) -> RunOutput {
    assert!(cfg.workers >= 1 && cfg.batch_size >= 1 && cfg.queue_depth >= 1);
    let start = Instant::now();
    let n_workers = cfg.workers;
    let flush_timeout = if faults.is_active() {
        faults.flush_timeout_ms.map(Duration::from_millis)
    } else {
        None
    };

    // Dispatcher -> worker lanes (SPSC: one producer, one consumer each).
    let mut lanes = Vec::with_capacity(n_workers);
    let mut lane_rx = Vec::with_capacity(n_workers);
    for _ in 0..n_workers {
        let (tx, rx) = mpsc::sync_channel::<Batch>(cfg.queue_depth);
        lanes.push(Lane {
            tx: Some(tx),
            recent: VecDeque::new(),
        });
        lane_rx.push(rx);
    }
    // Workers -> merger (MPSC).
    let (merge_tx, merge_rx) = mpsc::sync_channel::<(MfTag, PacketResult)>(n_workers * 1024);

    let (out, fault_drops, redispatched, workers_died) = thread::scope(|s| {
        // Workers: the "splitting cores".
        let mut handles = Vec::with_capacity(n_workers);
        for (worker, rx) in lane_rx.into_iter().enumerate() {
            let tx = merge_tx.clone();
            handles.push(s.spawn(move || {
                for (processed, batch) in rx.into_iter().enumerate() {
                    let processed = processed as u64;
                    if let Some(kill) = faults.kill {
                        if kill.worker == worker && processed >= kill.after_batches {
                            // The injected death: an abrupt panic that
                            // drops the queue and the merger sender.
                            panic!("injected worker death");
                        }
                    }
                    if let Some((tag, _)) = batch.first() {
                        if faults.stalls_on(tag.id) {
                            thread::sleep(Duration::from_millis(faults.stall_ms));
                        }
                    }
                    for (tag, frame) in batch {
                        let result = process_frame(&frame);
                        if tx.send((tag, result)).is_err() {
                            // Merger gone; nothing useful left to do.
                            return;
                        }
                    }
                }
            }));
        }
        drop(merge_tx);

        // Merger thread: merging-counter reassembly with flush recovery.
        let merger = s.spawn(move || {
            let mut mc: MergeCounter<PacketResult> = MergeCounter::new();
            let mut out = Vec::new();
            let mut max_seen: Option<u64> = None;
            let mut ooo = 0u64;
            loop {
                let (tag, result) = match flush_timeout {
                    Some(t) => match merge_rx.recv_timeout(t) {
                        Ok(msg) => msg,
                        Err(RecvTimeoutError::Timeout) => {
                            // No arrivals for a full deadline: stop
                            // waiting for whatever the counter is stuck
                            // on and release parked successors.
                            mc.flush_one(&mut out);
                            continue;
                        }
                        Err(RecvTimeoutError::Disconnected) => break,
                    },
                    None => match merge_rx.recv() {
                        Ok(msg) => msg,
                        Err(_) => break,
                    },
                };
                if let Some(m) = max_seen {
                    if result.seq < m {
                        ooo += 1;
                    }
                }
                max_seen = Some(max_seen.map_or(result.seq, |m| m.max(result.seq)));
                mc.offer(tag, result, &mut out);
            }
            // End of stream: flush whatever loss left stuck so nothing
            // stays parked forever.
            if flush_timeout.is_some() || faults.is_active() {
                mc.flush_stalled(&mut out);
            }
            let flushed: Vec<u64> = mc.flushed_ids().iter().copied().collect();
            (out, mc.buffered(), ooo, flushed, mc.late_drops(), mc.dup_drops())
        });

        // Dispatcher: this thread plays the IRQ core's first half.
        let mut d = Dispatcher::new(lanes, faults, cfg.queue_depth);
        let mut fault_drops = 0u64;
        let mut mf_id = 0u64;
        let mut lane = 0usize;
        let mut batch: Batch = Vec::with_capacity(cfg.batch_size);
        let mut delayed: Vec<(u64, Batch)> = Vec::new();
        let n = frames.len();
        for (i, frame) in frames.iter().enumerate() {
            let last = batch.len() + 1 == cfg.batch_size || i + 1 == n;
            if faults.drops_packet(mf_id, frame.seq, last) {
                fault_drops += 1;
            } else {
                batch.push((MfTag { id: mf_id, lane, last }, frame.clone()));
            }
            if last {
                let full = std::mem::take(&mut batch);
                batch.reserve(cfg.batch_size);
                if !full.is_empty() {
                    if !faults.is_active() {
                        d.send(lane, full);
                    } else if faults.delays_mf(mf_id) {
                        // Held back: will be redispatched on a recovery
                        // lane `late_by` batches from now.
                        delayed.push((mf_id + faults.late_by.max(1), full));
                    } else {
                        let dup = faults.duplicates_mf(mf_id);
                        if dup {
                            d.send_retained(lane, full.clone());
                            d.send_recovery(full);
                        } else {
                            d.send_retained(lane, full);
                        }
                    }
                }
                let due: Vec<Batch> = {
                    let mut rest = Vec::new();
                    let mut ready = Vec::new();
                    for (at, b) in delayed.drain(..) {
                        if at <= mf_id {
                            ready.push(b);
                        } else {
                            rest.push((at, b));
                        }
                    }
                    delayed = rest;
                    ready
                };
                for b in due {
                    d.send_recovery(b);
                }
                mf_id += 1;
                lane = (lane + 1) % n_workers;
            }
        }
        // Anything still held back goes out now, late but present.
        for (_, b) in delayed {
            d.send_recovery(b);
        }
        let redispatched = d.finish();

        // Join workers first (they feed the merger); injected deaths
        // surface here as panics and are counted, not propagated.
        let workers_died = handles
            .into_iter()
            .filter_map(|h| h.join().err())
            .count();
        let merged = match merger.join() {
            Ok(r) => r,
            // The merger has no injected faults: a panic there is a real
            // bug and must stay loud.
            Err(payload) => std::panic::resume_unwind(payload),
        };
        (merged, fault_drops, redispatched, workers_died)
    });

    let (digests, residue, ooo, flushed_mfs, late_drops, dup_drops) = out;
    RunOutput {
        digests,
        elapsed: start.elapsed(),
        ooo_at_merge: ooo,
        flushed_mfs,
        merge_late_drops: late_drops,
        merge_dup_drops: dup_drops,
        fault_drops,
        redispatched,
        workers_died,
        merge_residue: residue,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::WorkerKill;
    use crate::packet::generate_frames;

    fn run(n: usize, payload: usize, cfg: RuntimeConfig) {
        let frames = generate_frames(n, payload);
        let serial = process_serial(&frames);
        let parallel = process_parallel(&frames, &cfg);
        assert_eq!(
            serial.digests, parallel.digests,
            "order or content diverged with {cfg:?}"
        );
    }

    #[test]
    fn two_workers_preserve_order_and_content() {
        run(2_000, 128, RuntimeConfig::default());
    }

    #[test]
    fn many_workers_tiny_batches() {
        run(
            1_000,
            64,
            RuntimeConfig {
                workers: 8,
                batch_size: 1,
                queue_depth: 4,
            },
        );
    }

    #[test]
    fn batch_larger_than_input() {
        run(
            10,
            32,
            RuntimeConfig {
                workers: 3,
                batch_size: 1_000,
                queue_depth: 2,
            },
        );
    }

    #[test]
    fn single_worker_degenerates_to_serial() {
        run(
            500,
            16,
            RuntimeConfig {
                workers: 1,
                batch_size: 64,
                queue_depth: 2,
            },
        );
    }

    #[test]
    fn empty_input() {
        let out = process_parallel(&[], &RuntimeConfig::default());
        assert!(out.digests.is_empty());
        assert_eq!(out.ooo_at_merge, 0);
    }

    #[test]
    fn exact_batch_multiple() {
        run(
            512,
            8,
            RuntimeConfig {
                workers: 2,
                batch_size: 256,
                queue_depth: 2,
            },
        );
    }

    #[test]
    fn small_batches_cause_more_merge_input_disorder_than_large() {
        // The real-thread analogue of Figure 7: with more lanes than one
        // and tiny batches, the merger input interleaves heavily; with one
        // giant batch everything arrives in order. This is statistical on
        // real threads, so only the extreme ends are asserted.
        let frames = generate_frames(20_000, 64);
        let small = process_parallel(
            &frames,
            &RuntimeConfig {
                workers: 4,
                batch_size: 1,
                queue_depth: 64,
            },
        );
        let large = process_parallel(
            &frames,
            &RuntimeConfig {
                workers: 4,
                batch_size: 20_000,
                queue_depth: 64,
            },
        );
        assert_eq!(large.ooo_at_merge, 0, "single batch cannot interleave");
        assert!(
            small.ooo_at_merge > 0,
            "1-packet batches over 4 threads should interleave at least once"
        );
    }

    #[test]
    fn stress_repeated_runs_stay_correct() {
        let frames = generate_frames(3_000, 32);
        let reference = process_serial(&frames);
        for workers in [2, 3, 5] {
            for batch in [7, 97, 1024] {
                let out = process_parallel(
                    &frames,
                    &RuntimeConfig {
                        workers,
                        batch_size: batch,
                        queue_depth: 3,
                    },
                );
                assert_eq!(out.digests, reference.digests, "w={workers} b={batch}");
            }
        }
    }

    #[test]
    fn faultless_fault_path_is_exact() {
        // The faulty entry point with an inert mix must behave like the
        // plain pipeline: exact digests, no degradation counters.
        let frames = generate_frames(1_500, 64);
        let serial = process_serial(&frames);
        let out = process_parallel_faulty(
            &frames,
            &RuntimeConfig::default(),
            &RuntimeFaults::none(),
        );
        assert_eq!(out.digests, serial.digests);
        assert!(out.flushed_mfs.is_empty());
        assert_eq!(out.fault_drops, 0);
        assert_eq!(out.workers_died, 0);
        assert_eq!(out.merge_residue, 0);
    }

    #[test]
    fn killed_worker_does_not_panic_or_wedge_the_run() {
        let frames = generate_frames(4_000, 32);
        let mut faults = RuntimeFaults::none();
        faults.kill = Some(WorkerKill {
            worker: 1,
            after_batches: 3,
        });
        faults.flush_timeout_ms = Some(50);
        let out = process_parallel_faulty(
            &frames,
            &RuntimeConfig {
                workers: 3,
                batch_size: 64,
                queue_depth: 4,
            },
            &faults,
        );
        assert_eq!(out.workers_died, 1);
        assert!(!out.digests.is_empty());
        assert_eq!(out.merge_residue, 0, "end flush must empty the merger");
        // Output must be a strictly ordered, duplicate-free subsequence.
        for pair in out.digests.windows(2) {
            assert!(pair[0].seq < pair[1].seq);
        }
    }
}
