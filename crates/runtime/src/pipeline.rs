//! The threaded split/merge pipeline, steered by a pluggable policy.
//!
//! Topology (mirroring Figure 6 of the paper on real cores):
//!
//! ```text
//!             +-> worker 0 --\
//! dispatcher -+-> worker 1 ---+-> merger (MergeCounter) -> ordered output
//!             +-> worker N-1-/
//! ```
//!
//! The dispatcher groups micro-flows of `batch_size` consecutive frames
//! and asks the configured [`SteeringPolicy`]
//! ([`RuntimeConfig::policy`]) for a lane per batch; each worker performs
//! the per-packet work; the merger restores the original order with the
//! merging-counter algorithm. Workers run genuinely concurrently, so the
//! merger sees every interleaving a real kernel would.
//!
//! # Steering policies
//!
//! * **mflow** (default) — micro-flows of an elephant flow round-robin
//!   across every lane, the paper's packet-level parallelism. The only
//!   policy that interleaves one flow, so the only one that *needs* the
//!   merge counter on a fault-free run.
//! * **rps / rss / rfs** — whole-flow steering: every batch of a flow
//!   lands on one pinned lane, so per-lane FIFO alone preserves order
//!   and the merger degenerates to passthrough (zero `ooo`, zero
//!   `flushed`).
//! * **falcon-dev / falcon-func** — FALCON's softirq pipelining: batches
//!   enter a *chain* of workers (2 or 3 stage groups of
//!   [`crate::work::STAGES`]); each worker applies its group and
//!   forwards to the next, the tail feeds the merger. Order is FIFO
//!   along the chain. If a downstream worker dies, the upstream one
//!   finishes batches locally; if the chain head dies, the dispatcher
//!   processes inline — degraded but never wedged.
//!
//! The merge counter is engaged for reordering policies and whenever
//! faults, shedding or recovery lanes are possible; otherwise results
//! stream through unbuffered.
//!
//! # Transports
//!
//! Every lane — dispatcher→worker and worker→merger — runs over one of
//! two interchangeable transports ([`RuntimeConfig::transport`]):
//!
//! * [`Transport::Mpsc`] — `std::sync::mpsc::sync_channel`, i.e.
//!   mutex+condvar handoff. The original implementation, kept as the
//!   differential-testing baseline.
//! * [`Transport::Ring`] — the in-tree lock-free SPSC rings of
//!   [`crate::ring`], the userspace analogue of the paper's per-core
//!   packet-request ring buffers: atomic head/tail, batch-granular
//!   publishes, spin-then-park waiting. The merge path becomes one ring
//!   per producer (each worker plus the dispatcher's inline lane) fanned
//!   into a round-robin mux.
//!
//! Both transports preserve the same per-lane FIFO and disconnect
//! semantics, so the fault-recovery machinery below is transport-blind.
//!
//! # Stateful modes
//!
//! The per-packet *stateful* stage ([`crate::work::stateful_stage`],
//! [`RuntimeConfig::stateful_work`] rounds) can run in two places
//! ([`RuntimeConfig::stateful_mode`]):
//!
//! * **merge-before-tcp** (default, the paper's design) — the merger
//!   applies it serially after reassembly, so it stays a single-core
//!   bottleneck exactly like the kernel's in-order TCP receive.
//! * **scr** (state-compute replication) — every lane applies it to the
//!   packets it processes, and the merger becomes a *reconciler*
//!   ([`mflow::ScrReconciler`]): a per-stream seq watermark that emits
//!   each position exactly once, in order, discarding replicated or
//!   redispatched duplicates. Because the stage is a pure function of
//!   the packet, both modes deliver byte-identical streams — the
//!   differential suite in `tests/` proves it across every policy,
//!   transport and fault mix.
//!
//! # Degradation under faults
//!
//! [`process_parallel_faulty`] runs the same pipeline with an injected
//! [`RuntimeFaults`] mix and never panics or wedges:
//!
//! * **Worker death** — each send failure marks the lane dead; the batch
//!   that bounced plus a retained window of recently-sent batches are
//!   redispatched to surviving workers. Redispatched copies ride fresh
//!   *recovery lanes* (`n_workers + k`) so the merger's per-lane FIFO
//!   assumption is never violated; copies of already-merged batches are
//!   rejected as duplicates. A dead lane's queue-depth counter is zeroed
//!   the moment the death is discovered (and again at join for deaths the
//!   dispatcher never observed), so occupancy signals never count batches
//!   nobody will dequeue.
//! * **Loss** — a micro-flow that never completes stalls the merging
//!   counter; the merger flushes past it after
//!   [`RuntimeFaults::flush_timeout_ms`] without arrivals, and again at
//!   end of stream, releasing every parked successor. Skipped IDs are
//!   reported in [`RunOutput::flushed_mfs`].
//! * **Duplication / late arrival** — rejected by the merge counter and
//!   reported in the [`Telemetry`] `dup` / `late` counters.
//!
//! The output is always an ordered, duplicate-free subsequence of the
//! serial output; what is missing is exactly accounted for by the
//! dispatcher's planned drops plus the flushed micro-flows.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{self, RecvTimeoutError, SyncSender};
use std::sync::Mutex;
use std::thread;
use std::time::{Duration, Instant};

use mflow::{ElephantConfig, MergeCounter, MergeStats, MflowLanes, MfTag, ScrReconciler, StatefulMode};
use mflow_error::MflowError;
use mflow_metrics::Telemetry;
use mflow_steering::{build_baseline, PolicyKind, SteeringPolicy};

use crate::faults::{FaultEvent, RuntimeFaults};
use crate::packet::Frame;
use crate::ring::{self, MuxRecvError, MuxRegistrar, RingConsumer, RingMux, RingProducer, RingSendError};
use crate::supervise::{HeartbeatBoard, Supervisor};
use crate::work::{process_frame, stage_group_sizes, stateful_stage, PacketResult, StagedWork};

/// Which cross-core handoff primitive carries batches and results.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Transport {
    /// `std::sync::mpsc::sync_channel` — mutex+condvar (the baseline).
    #[default]
    Mpsc,
    /// Lock-free SPSC request rings ([`crate::ring`]), per the paper's
    /// IRQ-splitting design.
    Ring,
}

/// When in the packet's life the dispatcher reads its bytes — MFLOW's
/// two softirq-splitting designs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum DispatchMode {
    /// The dispatcher parses every frame itself (computes the real flow
    /// hash before steering), then hands parsed-context batches to the
    /// workers — today's behavior, analogous to splitting after the
    /// protocol demux.
    #[default]
    PostParse,
    /// IRQ splitting: the dispatcher never touches frame bytes. It
    /// round-robins lightweight packet *requests* (pooled-buffer
    /// descriptors) across lanes, and each worker performs the parse,
    /// flow-hash, and steering-feedback work in parallel. Steering sees
    /// a constant surrogate hash at dispatch time, so flow-affine
    /// policies pin the stream to one lane (per-lane FIFO holds) while
    /// the hash-indifferent MFLOW policy still spreads every batch.
    PacketRequest,
}

impl DispatchMode {
    /// Stable lowercase name, as reported in [`Telemetry`] and accepted
    /// by [`Self::parse`].
    pub fn name(self) -> &'static str {
        match self {
            DispatchMode::PostParse => "post-parse",
            DispatchMode::PacketRequest => "packet-request",
        }
    }

    /// Parses a CLI spelling of the mode.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "post-parse" | "postparse" | "post_parse" => Some(DispatchMode::PostParse),
            "packet-request" | "pktreq" | "packet_request" => Some(DispatchMode::PacketRequest),
            _ => None,
        }
    }
}

/// What the dispatcher does when a lane is at its watermark (or its queue
/// is outright full).
///
/// `Block` reproduces the kernel's default: the dispatching core waits on
/// the splitting queue, which is safe but lets one slow lane stall the
/// whole stream. The other two bound dispatcher latency under overload:
/// `DropTail` sheds whole micro-flows (never a partial batch, so the
/// merge counter is only ever missing complete micro-flows it can flush
/// past), and `Inline` processes the batch on the dispatching core
/// itself, trading its cycles for zero loss and exact order.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum BackpressurePolicy {
    /// Wait for the lane to drain (today's behavior).
    #[default]
    Block,
    /// Shed whole batches, up to `budget` packets for the run; once the
    /// budget is exhausted the dispatcher falls back to blocking (or to
    /// inline processing with [`RuntimeConfig::inline_fallback`]).
    DropTail {
        /// Maximum packets the run may shed.
        budget: u64,
    },
    /// Process the batch on the dispatcher thread. The batch rides a
    /// fresh recovery lane, so the merger's per-lane FIFO assumption
    /// holds and ordering is preserved via the merge counter.
    Inline,
}

/// Parallel-pipeline parameters.
#[derive(Clone, Copy, Debug)]
pub struct RuntimeConfig {
    /// Worker (splitting-core) count.
    pub workers: usize,
    /// Micro-flow batch size in packets.
    pub batch_size: usize,
    /// Bounded channel depth between dispatcher and each worker, in
    /// batches.
    pub queue_depth: usize,
    /// What to do when a lane is saturated.
    pub backpressure: BackpressurePolicy,
    /// Queue depth (in batches) at which the policy engages, before the
    /// channel is even full. `None` engages only when a `try_send`
    /// reports the queue full.
    pub high_watermark: Option<usize>,
    /// With `DropTail`: once the shed budget is exhausted, process
    /// overflow batches inline instead of blocking.
    pub inline_fallback: bool,
    /// Cross-core handoff primitive for every lane.
    pub transport: Transport,
    /// Where per-packet parsing happens: on the dispatcher before
    /// steering (`PostParse`) or on the workers, with the dispatcher
    /// reduced to descriptor round-robin (`PacketRequest`).
    pub dispatch_mode: DispatchMode,
    /// Worker→merger queue capacity in results. Power of two (the ring
    /// transport masks indices with it); under `Mpsc` it is the shared
    /// channel's bound, under `Ring` each producer's ring holds this
    /// many.
    pub merger_depth: usize,
    /// Which steering policy drives dispatch (lane choice, chain
    /// topology, merger engagement).
    pub policy: PolicyKind,
    /// Missed-heartbeat deadline in milliseconds: a worker whose
    /// heartbeat epoch has not moved for this long *while it has work
    /// queued* is declared stalled and replaced. `None` disables the
    /// stall watchdog (deaths are then only observed through lane
    /// disconnects).
    pub heartbeat_interval_ms: Option<u64>,
    /// Total worker respawns the supervisor may perform across the run;
    /// 0 disables respawning (today's single-recovery behavior).
    pub restart_budget: u32,
    /// Base respawn backoff in milliseconds; doubles per respawn of the
    /// same slot.
    pub restart_backoff_ms: u64,
    /// Where the stateful stage runs: serially on the merger after
    /// reassembly (`MergeBeforeTcp`, the paper's design) or replicated
    /// on every lane with the merger reduced to a seq-watermark
    /// reconciler (`StateComputeReplication`).
    pub stateful_mode: StatefulMode,
    /// Rounds of per-packet stateful work ([`crate::work::stateful_stage`]);
    /// 0 disables the stage (both modes then deliver the plain digests).
    pub stateful_work: u32,
    /// Merger checkpoint interval in accepted offers: every this many
    /// offers the merger folds its write-ahead delta log into a fresh
    /// [`MergerState`] snapshot, bounding crash-recovery replay to one
    /// inter-checkpoint window. Only paid when the merger failure domain
    /// is armed (supervision on, or merger faults injected).
    pub checkpoint_every: u64,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        Self {
            workers: 2,
            batch_size: 256,
            queue_depth: 8,
            backpressure: BackpressurePolicy::Block,
            high_watermark: None,
            inline_fallback: false,
            transport: Transport::Mpsc,
            dispatch_mode: DispatchMode::PostParse,
            merger_depth: 4096,
            policy: PolicyKind::Mflow,
            heartbeat_interval_ms: None,
            restart_budget: 0,
            restart_backoff_ms: 8,
            stateful_mode: StatefulMode::MergeBeforeTcp,
            stateful_work: 0,
            checkpoint_every: 1024,
        }
    }
}

impl RuntimeConfig {
    /// Checks the structural invariants; every fallible pipeline entry
    /// point calls this instead of asserting.
    pub fn validate(&self) -> Result<(), MflowError> {
        if self.workers < 1 {
            return Err(MflowError::invalid("workers", "must be at least 1"));
        }
        if self.batch_size < 1 {
            return Err(MflowError::invalid("batch_size", "must be at least 1"));
        }
        if self.queue_depth < 1 {
            return Err(MflowError::invalid("queue_depth", "must be at least 1"));
        }
        if let Some(w) = self.high_watermark {
            if w < 1 || w > self.queue_depth {
                return Err(MflowError::invalid(
                    "high_watermark",
                    "must be between 1 and queue_depth",
                ));
            }
        }
        if self.merger_depth < 1 || !self.merger_depth.is_power_of_two() {
            return Err(MflowError::invalid(
                "merger_depth",
                "must be a nonzero power of two",
            ));
        }
        if self.heartbeat_interval_ms == Some(0) {
            return Err(MflowError::invalid(
                "heartbeat_interval_ms",
                "must be at least 1 (or None to disable)",
            ));
        }
        if self.checkpoint_every < 1 {
            return Err(MflowError::invalid(
                "checkpoint_every",
                "must be at least 1",
            ));
        }
        Ok(())
    }

    /// Whether the supervision layer is engaged: either the stall
    /// watchdog or the respawn machinery (or both) is on.
    pub fn supervised(&self) -> bool {
        self.restart_budget > 0 || self.heartbeat_interval_ms.is_some()
    }
}

/// Dispatch-side throughput windows around the fault interval, for
/// time-to-recovery assertions: how fast frames moved before the first
/// observed worker death, and again after the last supervisor respawn.
/// Zeroes when the window does not exist (no deaths, or no respawn).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RecoveryRates {
    /// Frames dispatched before the first observed death.
    pub prefault_frames: u64,
    /// Wall-clock nanoseconds of the pre-fault window.
    pub prefault_ns: u64,
    /// Frames dispatched after the last respawn.
    pub recovered_frames: u64,
    /// Wall-clock nanoseconds of the post-recovery window.
    pub recovered_ns: u64,
}

impl RecoveryRates {
    /// Pre-fault dispatch rate in frames per second (0 when unmeasured).
    pub fn prefault_rate(&self) -> f64 {
        if self.prefault_ns == 0 {
            0.0
        } else {
            self.prefault_frames as f64 * 1e9 / self.prefault_ns as f64
        }
    }

    /// Post-recovery dispatch rate in frames per second (0 when
    /// unmeasured).
    pub fn recovered_rate(&self) -> f64 {
        if self.recovered_ns == 0 {
            0.0
        } else {
            self.recovered_frames as f64 * 1e9 / self.recovered_ns as f64
        }
    }
}

/// The outcome of a pipeline run: the shared [`Telemetry`] counter block
/// plus the runtime engine's extension fields. All the cross-engine
/// counters (delivered, ooo, flushed, late, dup, shed, inline, desplits,
/// redispatched, fault drops, residue, lane depths) live in
/// [`RunOutput::telemetry`]; only runtime-specific detail stays here.
#[derive(Clone, Debug)]
pub struct RunOutput {
    /// Results in emission order.
    pub digests: Vec<PacketResult>,
    /// Wall-clock processing time.
    pub elapsed: Duration,
    /// Busy time of the merger thread's serial stage: per-arrival merge
    /// or reconcile bookkeeping plus, under merge-before-tcp, the serial
    /// stateful pass. This is the quantity state-compute replication
    /// exists to shrink, and unlike wall-clock it reads the same no
    /// matter how many host cores the worker threads actually share.
    /// (Zero for serial runs, which have no merge stage.)
    pub stateful_serial_ns: u64,
    /// What the merger flushed past instead of waiting forever (the
    /// `flushed` counter is this list's length): micro-flow IDs under
    /// merge-before-tcp, skipped packet seqs under SCR (the reconciler
    /// tracks stream positions, not batch structure).
    pub flushed_mfs: Vec<u64>,
    /// Worker threads that panicked during the run (every incarnation).
    pub workers_died: usize,
    /// Merger incarnations that panicked during the run. Unlike worker
    /// deaths these never shrink the pool: the supervisor respawns the
    /// merger from its last checkpoint, or the dispatcher degrades to
    /// serial merging when the budget is spent.
    pub merger_deaths: usize,
    /// Checkpoints the merger's write-ahead layer folded during the run
    /// (0 when the failure domain was not armed).
    pub checkpoints: u64,
    /// Panicked workers whose slot received a supervisor replacement.
    pub workers_respawned: usize,
    /// Panicked workers whose slot stayed empty (no budget, or backoff
    /// never cleared before end of stream) — the pool shrank for good.
    pub workers_abandoned: usize,
    /// Dispatch throughput before the first death and after the last
    /// respawn (zeroes when supervision is off or nothing died).
    pub recovery: RecoveryRates,
    /// Each shed batch as `(micro-flow id, lane)` — the lane whose
    /// saturation caused the shed.
    pub sheds: Vec<(u64, usize)>,
    /// Batches processed inline on the dispatcher thread (the packet
    /// count is the telemetry `inline` counter).
    pub inline_batches: u64,
    /// Times a `DropTail` dispatcher exhausted its budget and fell back
    /// to blocking.
    pub block_fallbacks: u64,
    /// Times the backpressure policy engaged (watermark hit or queue
    /// full), regardless of what it then did.
    pub backpressure_events: u64,
    /// The shared counter block. `lane_depths` are end-of-run per-lane
    /// queue depths — all zero for every completed parallel run: live
    /// lanes drain to empty, dead lanes are zeroed when the death is
    /// discovered. (Empty for serial runs, which have no lanes.)
    pub telemetry: Telemetry,
}

impl RunOutput {
    fn new(digests: Vec<PacketResult>, elapsed: Duration, policy: &str) -> Self {
        let telemetry = Telemetry {
            delivered: digests.len() as u64,
            ..Telemetry::new(policy)
        };
        Self {
            digests,
            elapsed,
            stateful_serial_ns: 0,
            flushed_mfs: Vec::new(),
            workers_died: 0,
            merger_deaths: 0,
            checkpoints: 0,
            workers_respawned: 0,
            workers_abandoned: 0,
            recovery: RecoveryRates::default(),
            sheds: Vec::new(),
            inline_batches: 0,
            block_fallbacks: 0,
            backpressure_events: 0,
            telemetry,
        }
    }
}

/// Baseline: one thread processes every frame in order.
pub fn process_serial(frames: &[Frame]) -> RunOutput {
    process_serial_stateful(frames, 0)
}

/// Baseline with the stateful stage applied in order after the
/// per-packet work — the reference stream both
/// [`RuntimeConfig::stateful_mode`]s must reproduce exactly.
pub fn process_serial_stateful(frames: &[Frame], stateful_work: u32) -> RunOutput {
    let start = Instant::now();
    let digests = frames
        .iter()
        .map(|f| stateful_stage(process_frame(f), stateful_work))
        .collect();
    RunOutput::new(digests, start.elapsed(), "serial")
}

/// Instantiates the [`SteeringPolicy`] for a [`PolicyKind`]: baselines
/// come from `mflow-steering`, MFLOW itself from the `mflow` crate
/// (always-split elephant detection, as in the paper's single-flow
/// experiments).
fn build_policy(kind: PolicyKind) -> Result<Box<dyn SteeringPolicy>, MflowError> {
    match build_baseline(kind) {
        Some(p) => Ok(p),
        None => Ok(Box::new(MflowLanes::try_new(ElephantConfig::always())?)),
    }
}

/// The shared steering-policy cell: the dispatcher steers through it,
/// and in packet-request mode the workers feed observations back through
/// it after parsing.
type PolicyCell = Mutex<Box<dyn SteeringPolicy>>;

/// Locks the policy cell, ignoring poisoning — a worker panicking
/// between observe calls leaves the policy structurally valid.
fn lock_policy(cell: &PolicyCell) -> std::sync::MutexGuard<'_, Box<dyn SteeringPolicy>> {
    cell.lock().unwrap_or_else(|e| e.into_inner())
}

/// One micro-flow's tagged frames, as sent to a worker.
type Batch = Vec<(MfTag, Frame)>;
/// One micro-flow part-way through the staged pipeline, as forwarded
/// between FALCON chain workers.
type StageBatch = Vec<(MfTag, StagedWork)>;
/// One processed packet, as sent to the merger.
type Merged = (MfTag, PacketResult);

/// Sending half of one SPSC lane (dispatcher→worker batches, or
/// worker→worker staged batches along a FALCON chain).
enum LaneTx<B> {
    Mpsc(SyncSender<B>),
    Ring(RingProducer<B>),
}

/// Outcome of a transport-level non-blocking send.
enum LaneTrySend<B> {
    Sent,
    Full(B),
    Closed(B),
}

impl<B> LaneTx<B> {
    /// Blocking send; hands the batch back when the consumer is gone.
    fn send(&mut self, batch: B) -> Result<(), B> {
        match self {
            LaneTx::Mpsc(tx) => tx.send(batch).map_err(|mpsc::SendError(b)| b),
            LaneTx::Ring(tx) => tx.push(batch),
        }
    }

    /// Non-blocking send.
    fn try_send(&mut self, batch: B) -> LaneTrySend<B> {
        match self {
            LaneTx::Mpsc(tx) => match tx.try_send(batch) {
                Ok(()) => LaneTrySend::Sent,
                Err(mpsc::TrySendError::Full(b)) => LaneTrySend::Full(b),
                Err(mpsc::TrySendError::Disconnected(b)) => LaneTrySend::Closed(b),
            },
            LaneTx::Ring(tx) => match tx.try_push(batch) {
                Ok(()) => LaneTrySend::Sent,
                Err(RingSendError::Full(b)) => LaneTrySend::Full(b),
                Err(RingSendError::Closed(b)) => LaneTrySend::Closed(b),
            },
        }
    }
}

/// Receiving half of one lane.
enum LaneRx<B> {
    Mpsc(mpsc::Receiver<B>),
    Ring(RingConsumer<B>),
}

impl<B> LaneRx<B> {
    /// Blocking receive; `None` once the producer dropped its half and
    /// the queue is drained.
    fn recv(&mut self) -> Option<B> {
        match self {
            LaneRx::Mpsc(rx) => rx.recv().ok(),
            LaneRx::Ring(rx) => rx.pop(),
        }
    }
}

/// Creates one SPSC lane over the configured transport.
fn spsc_lane<B: Send>(transport: Transport, depth: usize) -> (LaneTx<B>, LaneRx<B>) {
    match transport {
        Transport::Mpsc => {
            let (tx, rx) = mpsc::sync_channel::<B>(depth);
            (LaneTx::Mpsc(tx), LaneRx::Mpsc(rx))
        }
        Transport::Ring => {
            let (tx, rx) = ring::spsc::<B>(depth);
            (LaneTx::Ring(tx), LaneRx::Ring(rx))
        }
    }
}

/// A producer's (worker or dispatcher) half of the merge path.
enum MergeTx {
    Mpsc(SyncSender<Merged>),
    Ring(RingProducer<Merged>),
}

impl MergeTx {
    /// Sends one batch of results; `Err` when the merger is gone. The
    /// ring publishes once per claimed stretch; mpsc once per item.
    fn send_all(&mut self, results: Vec<Merged>) -> Result<(), ()> {
        match self {
            MergeTx::Mpsc(tx) => {
                for item in results {
                    tx.send(item).map_err(|_| ())?;
                }
                Ok(())
            }
            MergeTx::Ring(tx) => tx.push_all(results).map_err(|_| ()),
        }
    }
}

/// The merger's receiving end.
enum MergeRx {
    Mpsc(mpsc::Receiver<Merged>),
    Ring(RingMux<Merged>),
}

/// Outcome of one merger receive.
enum MergeRecv {
    Item(Merged),
    Timeout,
    Disconnected,
}

impl MergeRx {
    /// Receives one result, waiting at most `timeout` (forever if
    /// `None`).
    fn recv(&mut self, timeout: Option<Duration>) -> MergeRecv {
        match self {
            MergeRx::Mpsc(rx) => match timeout {
                Some(t) => match rx.recv_timeout(t) {
                    Ok(msg) => MergeRecv::Item(msg),
                    Err(RecvTimeoutError::Timeout) => MergeRecv::Timeout,
                    Err(RecvTimeoutError::Disconnected) => MergeRecv::Disconnected,
                },
                None => match rx.recv() {
                    Ok(msg) => MergeRecv::Item(msg),
                    Err(_) => MergeRecv::Disconnected,
                },
            },
            MergeRx::Ring(mux) => {
                let deadline = timeout.map(|t| Instant::now() + t);
                match mux.recv_deadline(deadline) {
                    Ok(msg) => MergeRecv::Item(msg),
                    Err(MuxRecvError::Timeout) => MergeRecv::Timeout,
                    Err(MuxRecvError::Disconnected) => MergeRecv::Disconnected,
                }
            }
        }
    }
}

/// Sampling interval for the merger's serial-stage busy clock: one in
/// this many offers is timed and weighted by the interval (see
/// [`MergerState::apply`]).
const SERIAL_NS_SAMPLE: u64 = 64;

/// The merger's ordering engine. The variant is fixed for the whole run
/// (it is part of the policy/fault configuration, not of the mutable
/// state), but the bookkeeping inside is exactly what a crash must not
/// lose — so the engine lives inside [`MergerState`] and is cloned whole
/// into every checkpoint.
#[derive(Clone)]
enum MergeEngine {
    /// Per-lane FIFO already is global order (pinned-lane policies on
    /// benign runs): results stream through unbuffered.
    Passthrough,
    /// Merge-before-tcp: the paper's merging counter.
    Counter(MergeCounter<PacketResult>),
    /// State-compute replication: seq-watermark reconciler.
    Reconciler(ScrReconciler<PacketResult>),
}

/// Everything the merger mutates while the stream is in flight, as one
/// cloneable snapshot object: the engine (per-lane queues, counter,
/// flush/dedup windows, SCR watermark and parked set) plus the scalar
/// counters the merger owns. Restoring a [`MergerState`] and replaying
/// the delta log reproduces the dead incarnation's trajectory exactly.
#[derive(Clone)]
struct MergerState {
    engine: MergeEngine,
    /// Stateful mode is SCR (lanes did the stateful stage; arrivals are
    /// counted as replicated transitions).
    scr: bool,
    /// Highest packet seq seen so far, for the `ooo` arrival counter.
    max_seen: Option<u64>,
    /// Arrivals that carried a seq below `max_seen`.
    ooo: u64,
    /// Replicated stateful transitions observed (SCR only).
    replicated: u64,
    /// Busy nanoseconds of the serial merge/reconcile stage.
    serial_ns: u64,
    /// Offers applied so far — the WAL's logical clock: checkpoint
    /// boundaries and injected merger faults are expressed in it.
    offers: u64,
}

impl MergerState {
    fn new(use_counter: bool, scr: bool) -> Self {
        let engine = if !use_counter {
            MergeEngine::Passthrough
        } else if scr {
            MergeEngine::Reconciler(ScrReconciler::new())
        } else {
            MergeEngine::Counter(MergeCounter::new())
        };
        Self {
            engine,
            scr,
            max_seen: None,
            ooo: 0,
            replicated: 0,
            serial_ns: 0,
            offers: 0,
        }
    }

    /// Applies one received offer: counters, then the engine. Identical
    /// whether the offer arrives live or replays from the delta log.
    ///
    /// `serial_ns` is sampled, not exhaustively timed: clocking every
    /// offer puts two clock reads on the per-packet merge path, which at
    /// pooled zero-copy rates costs more than the engine work it
    /// measures. Every [`SERIAL_NS_SAMPLE`]th offer is timed and
    /// weighted by the interval — the busy-time comparisons that
    /// consume `serial_ns` (scr vs merge-before-tcp) aggregate
    /// thousands of uniform offers per point, where the sampled
    /// estimate converges on the exhaustive one.
    fn apply(&mut self, tag: MfTag, result: PacketResult, out: &mut Vec<PacketResult>) {
        self.offers += 1;
        if self.scr {
            self.replicated += 1;
        }
        if let Some(max) = self.max_seen {
            if result.seq < max {
                self.ooo += 1;
            }
        }
        self.max_seen = Some(self.max_seen.map_or(result.seq, |m| m.max(result.seq)));
        let t = self.offers.is_multiple_of(SERIAL_NS_SAMPLE).then(Instant::now);
        match &mut self.engine {
            MergeEngine::Passthrough => out.push(result),
            MergeEngine::Counter(mc) => {
                mc.offer(tag, result, out);
            }
            MergeEngine::Reconciler(rc) => {
                rc.offer(result.seq, result.seq + 1, result, out);
            }
        }
        if let Some(t) = t {
            if !matches!(self.engine, MergeEngine::Passthrough) {
                self.serial_ns += t.elapsed().as_nanos() as u64 * SERIAL_NS_SAMPLE;
            }
        }
    }

    /// Flushes the single most-stalled head (receive-timeout path).
    fn flush_one(&mut self, out: &mut Vec<PacketResult>) {
        let t = Instant::now();
        match &mut self.engine {
            MergeEngine::Passthrough => {}
            MergeEngine::Counter(mc) => {
                mc.flush_one(out);
            }
            MergeEngine::Reconciler(rc) => {
                rc.flush_one(out);
            }
        }
        self.serial_ns += t.elapsed().as_nanos() as u64;
    }

    /// End-of-stream flush of everything still parked.
    fn flush_stalled(&mut self, out: &mut Vec<PacketResult>) {
        let t = Instant::now();
        match &mut self.engine {
            MergeEngine::Passthrough => {}
            MergeEngine::Counter(mc) => {
                mc.flush_stalled(out);
            }
            MergeEngine::Reconciler(rc) => {
                rc.flush_stalled(out);
            }
        }
        self.serial_ns += t.elapsed().as_nanos() as u64;
    }

    fn stats(&self) -> MergeStats {
        match &self.engine {
            MergeEngine::Passthrough => MergeStats::default(),
            MergeEngine::Counter(mc) => mc.stats(),
            MergeEngine::Reconciler(rc) => rc.stats(),
        }
    }

    /// What the engine flushed past: micro-flow IDs (counter) or skipped
    /// packet seqs (reconciler).
    fn flushed_list(&self) -> Vec<u64> {
        match &self.engine {
            MergeEngine::Passthrough => Vec::new(),
            MergeEngine::Counter(mc) => mc.flushed_ids().iter().copied().collect(),
            MergeEngine::Reconciler(rc) => rc
                .skipped_ranges()
                .iter()
                .flat_map(|&(s, e)| s..e)
                .collect(),
        }
    }

    /// Approximate heap footprint of one snapshot, for the
    /// `snapshot_bytes` telemetry counter.
    fn approx_bytes(&self) -> u64 {
        let engine = match &self.engine {
            MergeEngine::Passthrough => 0,
            MergeEngine::Counter(mc) => mc.approx_bytes(),
            MergeEngine::Reconciler(rc) => rc.approx_bytes(),
        };
        std::mem::size_of::<Self>() as u64 + engine
    }
}

/// The crash-consistent half of the merger failure domain: the last
/// checkpoint ([`MergerState`] snapshot plus the delivered-output prefix
/// it corresponds to) and the write-ahead delta log of offers accepted
/// since. A successor incarnation — or the dispatcher's final serial
/// merge — reconstructs the exact live state by cloning the snapshot and
/// replaying the delta, so a crash loses at most nothing: every received
/// offer is journaled *before* the (possibly fatal) processing step.
struct MergerDurable {
    snapshot: MergerState,
    /// Delivered results as of the last checkpoint — always a strict
    /// prefix of the live incarnation's output, extended (never cloned)
    /// at each checkpoint so the whole run costs O(delivered) total.
    out: Vec<PacketResult>,
    /// Offers received since the last checkpoint, in arrival order.
    delta: Vec<Merged>,
    snapshot_bytes: u64,
    checkpoints: u64,
    restores: u64,
    replayed: u64,
}

/// Shared coordination block between merger incarnations, the
/// dispatcher's watchdog, and final assembly.
struct MergerShared {
    /// The single receiving end of the merge transport. It must survive
    /// merger deaths — dropping it would disconnect every producer for
    /// good — so incarnations *lease* it from this slot and a panic
    /// returns it on unwind. Possession of the lease is the exclusive
    /// right to append to the WAL, mutate durable state, or checkpoint.
    rx_slot: Mutex<Option<MergeRx>>,
    durable: Mutex<MergerDurable>,
    /// Incarnation generation: bumped by the watchdog to supersede a
    /// wedged incarnation, which then exits cleanly at its next check.
    gen: AtomicU64,
    /// A (non-superseded) incarnation died holding the lease; cleared
    /// when the supervisor respawns one.
    down: AtomicBool,
    /// The stream was fully consumed and folded into `durable`.
    eos: AtomicBool,
    /// Results producers have pushed toward the merge transport.
    sent: AtomicU64,
    /// Results the merger side has popped from it.
    recvd: AtomicU64,
}

impl MergerShared {
    fn new(rx: MergeRx, use_counter: bool, scr: bool) -> Self {
        Self {
            rx_slot: Mutex::new(Some(rx)),
            durable: Mutex::new(MergerDurable {
                snapshot: MergerState::new(use_counter, scr),
                out: Vec::new(),
                delta: Vec::new(),
                snapshot_bytes: 0,
                checkpoints: 0,
                restores: 0,
                replayed: 0,
            }),
            gen: AtomicU64::new(0),
            down: AtomicBool::new(false),
            eos: AtomicBool::new(false),
            sent: AtomicU64::new(0),
            recvd: AtomicU64::new(0),
        }
    }

    /// Locks the durable block, recovering from a poisoned mutex: the
    /// WAL protocol keeps `durable` consistent at every instruction
    /// boundary (the injected kill even panics while holding it), so the
    /// poison flag carries no information here.
    fn durable(&self) -> std::sync::MutexGuard<'_, MergerDurable> {
        self.durable.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// RAII lease on the merge receiver. Dropping the lease — normally or on
/// panic unwind — returns the receiver to the shared slot; unless the
/// holder marked the exit `clean` (end of stream, supersession, or a
/// dispatcher pump), the drop also reports the incarnation dead.
struct RxLease<'a> {
    shared: &'a MergerShared,
    rx: Option<MergeRx>,
    clean: bool,
}

impl<'a> RxLease<'a> {
    fn try_take(shared: &'a MergerShared) -> Option<Self> {
        let rx = shared
            .rx_slot
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .take()?;
        Some(Self {
            shared,
            rx: Some(rx),
            clean: false,
        })
    }

    fn rx(&mut self) -> &mut MergeRx {
        self.rx.as_mut().expect("leased receiver present until drop")
    }
}

impl Drop for RxLease<'_> {
    fn drop(&mut self) {
        *self
            .shared
            .rx_slot
            .lock()
            .unwrap_or_else(|e| e.into_inner()) = self.rx.take();
        if !self.clean {
            self.shared.down.store(true, Ordering::Release);
        }
    }
}

/// Folds the live state into the durable block: extend the delivered
/// prefix, replace the snapshot, clear the WAL.
fn merger_checkpoint(shared: &MergerShared, state: &MergerState, out: &[PacketResult]) {
    let mut d = shared.durable();
    let done = d.out.len();
    d.out.extend_from_slice(&out[done..]);
    d.snapshot = state.clone();
    d.delta.clear();
    d.checkpoints += 1;
    d.snapshot_bytes += state.approx_bytes();
}

/// The body of one merger incarnation. Waits for the receiver lease,
/// restores from the durable block (snapshot + delta replay), then runs
/// the receive loop: journal, fault checks, apply, periodic checkpoint.
#[allow(clippy::too_many_arguments)]
fn merger_loop(
    shared: &MergerShared,
    faults: &RuntimeFaults,
    beats: &HeartbeatBoard,
    merger_slot: usize,
    incarnation: u64,
    my_gen: u64,
    flush_timeout: Option<Duration>,
    wal_on: bool,
    checkpoint_every: u64,
) {
    let mut lease = loop {
        if shared.gen.load(Ordering::Acquire) != my_gen {
            return; // superseded before acquiring the lease
        }
        if let Some(lease) = RxLease::try_take(shared) {
            break lease;
        }
        // Predecessor still unwinding (or a pump holds the lease): stay
        // visibly alive while waiting.
        beats.bump(merger_slot);
        thread::sleep(Duration::from_micros(50));
    };
    // Restore strictly *after* taking the lease: only then is the delta
    // log guaranteed quiescent (a superseded-but-running predecessor may
    // journal one more offer right up to releasing the receiver).
    let (mut state, mut out) = {
        let mut d = shared.durable();
        let mut state = d.snapshot.clone();
        let mut out = d.out.clone();
        for i in 0..d.delta.len() {
            let (tag, result) = d.delta[i];
            state.apply(tag, result, &mut out);
        }
        if incarnation > 0 {
            d.restores += 1;
            d.replayed += d.delta.len() as u64;
            faults.note(FaultEvent::SnapshotRestore { incarnation });
        }
        (state, out)
    };
    loop {
        if shared.gen.load(Ordering::Acquire) != my_gen {
            lease.clean = true; // superseded: hand over, not a death
            return;
        }
        match lease.rx().recv(flush_timeout) {
            MergeRecv::Item((tag, result)) => {
                beats.bump(merger_slot);
                shared.recvd.fetch_add(1, Ordering::Relaxed);
                // Journal before any processing: once in the WAL the
                // offer survives this incarnation's death — including
                // the injected one two lines down.
                if wal_on {
                    shared.durable().delta.push((tag, result));
                }
                let offer_no = state.offers + 1;
                if faults.merger_kill_fires(incarnation, offer_no) {
                    faults.note(FaultEvent::MergerDeath { incarnation });
                    panic!("injected merger death (incarnation {incarnation})");
                }
                if let Some(ms) = faults.merger_stall_fires(offer_no) {
                    faults.note(FaultEvent::MergerStall { offers: offer_no });
                    thread::sleep(Duration::from_millis(ms));
                    if shared.gen.load(Ordering::Acquire) != my_gen {
                        // Superseded while wedged. The offer is already
                        // journaled; the successor replays it.
                        lease.clean = true;
                        return;
                    }
                }
                state.apply(tag, result, &mut out);
                if wal_on && state.offers % checkpoint_every == 0 {
                    merger_checkpoint(shared, &state, &out);
                }
            }
            MergeRecv::Timeout => {
                // An expired recv deadline proves this incarnation is
                // alive and scheduled — keep the epoch fresh so an
                // increment-before-send discrepancy from a mid-send
                // worker death (sent > recvd with an empty transport)
                // cannot read as a wedge and supersede a healthy
                // merger once per heartbeat deadline until the shared
                // restart budget is gone.
                beats.bump(merger_slot);
                state.flush_one(&mut out);
            }
            MergeRecv::Disconnected => break,
        }
    }
    // End of stream: fold everything into the durable block so final
    // assembly starts from a clean snapshot with an empty delta.
    {
        let mut d = shared.durable();
        let done = d.out.len();
        d.out.extend_from_slice(&out[done..]);
        d.snapshot = state;
        d.delta.clear();
    }
    shared.eos.store(true, Ordering::Release);
    lease.clean = true;
}

/// Dispatcher-side non-blocking drain of the merge transport into the
/// WAL, for when no merger incarnation holds the lease (respawn backed
/// off, budget exhausted, or supervision disabled entirely): producers
/// keep moving, and whichever consumer comes next — a respawned merger
/// or final assembly's serial merge — replays the journaled backlog.
fn pump_merge_backlog(shared: &MergerShared) {
    let Some(mut lease) = RxLease::try_take(shared) else {
        return; // someone else is consuming; nothing to do
    };
    lease.clean = true; // a pump exit is never a merger death
    loop {
        match lease.rx().recv(Some(Duration::ZERO)) {
            MergeRecv::Item(item) => {
                shared.recvd.fetch_add(1, Ordering::Relaxed);
                shared.durable().delta.push(item);
            }
            MergeRecv::Timeout => break,
            MergeRecv::Disconnected => {
                // Every producer is gone and the backlog is journaled:
                // the stream is fully consumed.
                shared.eos.store(true, Ordering::Release);
                break;
            }
        }
    }
}

/// The read-only half of the merger watchdog's context, bundled so the
/// dispatch loop and the teardown joins can run supervision passes
/// without a dozen-argument call at every site. `Copy`, so call sites
/// borrow nothing.
#[derive(Clone, Copy)]
struct MergerWatch<'scope, 'env> {
    s: &'scope thread::Scope<'scope, 'env>,
    shared: &'env MergerShared,
    faults: &'env RuntimeFaults,
    beats: &'env HeartbeatBoard,
    merger_slot: usize,
    flush_timeout: Option<Duration>,
    wal_on: bool,
    checkpoint_every: u64,
    merger_depth: usize,
    supervised: bool,
    /// Whole watchdog disarmed (benign unsupervised run): every method
    /// is a no-op and the single merger incarnation runs to EOS exactly
    /// as the unsupervised pipeline always has.
    armed: bool,
}

impl<'scope, 'env> MergerWatch<'scope, 'env> {
    /// One non-blocking pass: respawn a dead merger from its last
    /// checkpoint (budget and backoff permitting), degrade to WAL
    /// pumping when respawn is off the table, supersede a wedged
    /// incarnation. Called between micro-flows and while joining
    /// workers, so a merger death can never wedge the pipeline.
    fn tend(
        &self,
        sup: &mut Supervisor,
        merger_handles: &mut Vec<thread::ScopedJoinHandle<'scope, ()>>,
        frames_done: u64,
    ) {
        if !self.armed || self.shared.eos.load(Ordering::Acquire) {
            return;
        }
        let shared = self.shared;
        let now = Instant::now();
        if shared.down.load(Ordering::Acquire) {
            sup.note_death(self.merger_slot, now, frames_done);
            if self.supervised && sup.allow_respawn(self.merger_slot, now) {
                let incarnation = sup.on_respawn(self.merger_slot, now, frames_done);
                self.faults.note(FaultEvent::MergerRespawn { incarnation });
                shared.down.store(false, Ordering::Release);
                let my_gen = shared.gen.load(Ordering::Acquire);
                let (faults, beats) = (self.faults, self.beats);
                let (merger_slot, flush_timeout) = (self.merger_slot, self.flush_timeout);
                let (wal_on, checkpoint_every) = (self.wal_on, self.checkpoint_every);
                merger_handles.push(self.s.spawn(move || {
                    merger_loop(
                        shared,
                        faults,
                        beats,
                        merger_slot,
                        incarnation,
                        my_gen,
                        flush_timeout,
                        wal_on,
                        checkpoint_every,
                    )
                }));
            } else if !self.supervised || sup.budget_exhausted() {
                // Terminal degradation: no respawn is coming. Journal
                // the backlog so producers never block on a
                // consumerless transport; final assembly performs the
                // serial merge from the WAL.
                pump_merge_backlog(shared);
            } else if shared
                .sent
                .load(Ordering::Relaxed)
                .saturating_sub(shared.recvd.load(Ordering::Relaxed))
                > (self.merger_depth / 2) as u64
            {
                // Respawn is backed off but the backlog is approaching
                // transport capacity: drain into the WAL so producers
                // keep moving. The respawned merger replays the
                // (larger) delta.
                pump_merge_backlog(shared);
            }
        } else if self.supervised
            && sup.stale(self.merger_slot, self.beats.read(self.merger_slot), now)
            && shared.sent.load(Ordering::Relaxed) > shared.recvd.load(Ordering::Relaxed)
        {
            // Wedge: results are queued but the merger's heartbeat has
            // not moved for a full deadline. Supersede the incarnation
            // (it exits cleanly at its next generation check — every
            // journaled offer is safe) and let the next pass respawn
            // from the checkpoint.
            sup.heartbeat_misses += 1;
            shared.gen.fetch_add(1, Ordering::AcqRel);
            shared.down.store(true, Ordering::Release);
        }
    }

    /// Joins one worker handle while keeping the merge stream consumed:
    /// a worker blocked on a full merge transport whose consumer just
    /// died would otherwise deadlock the join.
    fn join_tended(
        &self,
        h: thread::ScopedJoinHandle<'scope, ()>,
        sup: &mut Supervisor,
        merger_handles: &mut Vec<thread::ScopedJoinHandle<'scope, ()>>,
        frames_done: u64,
    ) -> thread::Result<()> {
        while self.armed && !h.is_finished() {
            self.tend(sup, merger_handles, frames_done);
            thread::sleep(Duration::from_micros(50));
        }
        h.join()
    }

    /// Runs supervision passes until the stream is fully consumed and
    /// folded into the durable block. Called after every producer has
    /// exited, so each pass makes progress: a live merger drains to
    /// Disconnected, a dead one is respawned or pumped, a wedged one is
    /// superseded — all of which terminate in `eos`.
    fn drain_to_eos(
        &self,
        sup: &mut Supervisor,
        merger_handles: &mut Vec<thread::ScopedJoinHandle<'scope, ()>>,
        frames_done: u64,
    ) {
        while self.armed && !self.shared.eos.load(Ordering::Acquire) {
            self.tend(sup, merger_handles, frames_done);
            thread::sleep(Duration::from_micros(50));
        }
    }
}

/// Dispatcher-side view of one worker queue.
struct Lane {
    tx: Option<LaneTx<Batch>>,
    /// Copies of the most recently sent batches (faulty runs only): the
    /// batches that may still sit unprocessed in the queue when the
    /// worker dies, and must be redispatched. Capacity `queue_depth + 2`
    /// covers the full queue, the batch in the worker's hands, and the
    /// one that bounced.
    recent: VecDeque<Batch>,
    /// Merge-counter lane id stamped on batches routed here. Initially
    /// the slot index; a supervisor respawn moves it to a fresh id so
    /// results a replaced (but still draining) incarnation emits can
    /// never interleave with the new incarnation's on one tag lane —
    /// the merger's per-lane FIFO assumption holds by construction.
    tag_lane: usize,
}

/// Outcome of a non-blocking send attempt.
enum SendAttempt {
    /// Enqueued (or rerouted through the dead-lane machinery).
    Sent,
    /// The queue was full; the batch comes back untouched.
    Full(Batch),
}

/// Everything the dispatcher tracks while the stream is in flight.
struct Dispatcher<'a> {
    lanes: Vec<Lane>,
    retain: usize,
    /// Next recovery lane ID (tag lanes above the worker count are unique
    /// per redispatched batch).
    recovery_lane: usize,
    /// Physical worker round-robin cursor for recovery sends.
    next_worker: usize,
    redispatched: u64,
    /// Per-lane queue depth in batches: incremented here on every
    /// successful send, decremented by the worker as it dequeues. The
    /// watermark signal backpressure decisions read.
    depths: &'a [AtomicUsize],
    policy: BackpressurePolicy,
    high_watermark: Option<usize>,
    inline_fallback: bool,
    /// Packets `DropTail` may still shed.
    shed_budget_left: u64,
    shed_packets: u64,
    sheds: Vec<(u64, usize)>,
    inline_batches: u64,
    inline_packets: u64,
    block_fallbacks: u64,
    backpressure_events: u64,
    /// Chain mode: batches that lost their only reachable worker are
    /// handed back for inline processing instead of being dropped (the
    /// chain has exactly one entry lane, so "no live worker" does not
    /// mean the pipeline is dead — the dispatcher itself still is).
    orphan_inline: bool,
    orphans: Vec<Batch>,
}

impl<'a> Dispatcher<'a> {
    fn new(
        lanes: Vec<Lane>,
        faults: &RuntimeFaults,
        cfg: &RuntimeConfig,
        depths: &'a [AtomicUsize],
        orphan_inline: bool,
    ) -> Self {
        let n = lanes.len();
        Self {
            lanes,
            // Supervised runs retain too: a stall-respawn needs the
            // window to redispatch even when no fault injector is wired.
            retain: if faults.is_active() || cfg.supervised() {
                cfg.queue_depth + 2
            } else {
                0
            },
            recovery_lane: n,
            next_worker: 0,
            redispatched: 0,
            depths,
            policy: cfg.backpressure,
            high_watermark: cfg.high_watermark,
            inline_fallback: cfg.inline_fallback,
            shed_budget_left: match cfg.backpressure {
                BackpressurePolicy::DropTail { budget } => budget,
                _ => 0,
            },
            shed_packets: 0,
            sheds: Vec::new(),
            inline_batches: 0,
            inline_packets: 0,
            block_fallbacks: 0,
            backpressure_events: 0,
            orphan_inline,
            orphans: Vec::new(),
        }
    }

    /// Batches with no reachable worker, handed back for inline
    /// processing (chain mode only; empty otherwise).
    fn take_orphans(&mut self) -> Vec<Batch> {
        std::mem::take(&mut self.orphans)
    }

    /// Marks a lane dead and zeroes its depth counter: batches still
    /// queued there will never be dequeued, so leaving the count in
    /// place would feed phantom load into every aggregate-occupancy
    /// signal (watermarks, engagement counters) for the rest of the run.
    fn mark_dead(&mut self, lane: usize) -> VecDeque<Batch> {
        self.lanes[lane].tx = None;
        self.depths[lane].store(0, Ordering::Relaxed);
        std::mem::take(&mut self.lanes[lane].recent)
    }

    /// Whether the lane currently has no live worker attached.
    fn lane_dead(&self, lane: usize) -> bool {
        self.lanes[lane].tx.is_none()
    }

    /// The merge-counter lane id for batches routed to `lane`.
    fn tag_lane(&self, lane: usize) -> usize {
        self.lanes[lane].tag_lane
    }

    /// Fails a lane the watchdog declared stalled: marks it dead and
    /// redispatches its retained window, exactly as a bounced send
    /// would. The stalled worker may still be alive and drain its queue
    /// later — the merge counter rejects those re-deliveries as
    /// duplicates.
    fn fail_lane(&mut self, lane: usize) {
        let window = self.mark_dead(lane);
        let mut pending = Vec::new();
        for lost in window {
            if let Some(p) = self.reroute(lost, false) {
                pending.push(p);
            }
        }
        self.pump(pending);
    }

    /// Re-occupies a dead slot with a freshly spawned worker's lane:
    /// installs the new sender, clears the retained window (the old one
    /// was redispatched at death), resets the depth counter, and moves
    /// the tag lane to a fresh id (see [`Lane::tag_lane`]).
    fn revive(&mut self, lane: usize, tx: LaneTx<Batch>) {
        self.lanes[lane].tx = Some(tx);
        self.lanes[lane].recent.clear();
        self.lanes[lane].tag_lane = self.recovery_lane;
        self.recovery_lane += 1;
        self.depths[lane].store(0, Ordering::Relaxed);
    }

    /// Sends `batch` to worker `lane`, redispatching on failure.
    fn send(&mut self, lane: usize, batch: Batch) {
        self.pump(vec![(lane, batch, false)]);
    }

    /// Drains a pending send list iteratively: a redispatch target may
    /// itself be dead, bouncing the batch again.
    fn pump(&mut self, mut pending: Vec<(usize, Batch, bool)>) {
        while let Some((lane, batch, is_recovery)) = pending.pop() {
            let Some(tx) = self.lanes[lane].tx.as_mut() else {
                // Known-dead lane: reroute to a live worker directly.
                if let Some(b) = self.reroute(batch, is_recovery) {
                    pending.push(b);
                }
                continue;
            };
            // Count the batch as queued *before* publishing it: worker
            // decrements are saturating, so one observed before its
            // increment would be lost for good. (A bounced send leaves
            // the counter inflated only until `mark_dead` zeroes it.)
            self.depths[lane].fetch_add(1, Ordering::Relaxed);
            match tx.send(batch) {
                Ok(()) => {}
                Err(batch) => {
                    // The worker died: everything it still held is lost.
                    // Redispatch its retained window plus this batch.
                    let window = self.mark_dead(lane);
                    for lost in window.into_iter().chain(std::iter::once(batch)) {
                        if let Some(b) = self.reroute(lost, is_recovery) {
                            pending.push(b);
                        }
                    }
                }
            }
        }
    }

    /// Sends a batch, keeping a copy in the lane's retained window first
    /// (faulty runs only).
    fn send_retained(&mut self, lane: usize, batch: Batch) {
        if self.retain > 0 && self.lanes[lane].tx.is_some() {
            self.remember(lane, batch.clone());
        }
        self.send(lane, batch);
    }

    fn remember(&mut self, lane: usize, batch: Batch) {
        let recent = &mut self.lanes[lane].recent;
        if recent.len() == self.retain {
            recent.pop_front();
        }
        recent.push_back(batch);
    }

    /// Offers `batch` to worker `lane` under the backpressure policy.
    /// Returns the batch when the policy decided the *caller* must
    /// process it inline on the dispatcher thread.
    fn offer(&mut self, lane: usize, batch: Batch) -> Option<Batch> {
        if self.lanes[lane].tx.is_some() {
            if let Some(w) = self.high_watermark {
                if self.depths[lane].load(Ordering::Relaxed) >= w {
                    self.backpressure_events += 1;
                    return self.apply_policy(lane, batch);
                }
            }
        }
        match self.try_send_now(lane, batch) {
            SendAttempt::Sent => None,
            SendAttempt::Full(batch) => {
                self.backpressure_events += 1;
                self.apply_policy(lane, batch)
            }
        }
    }

    /// Non-blocking send with the same dead-lane recovery as [`send`].
    ///
    /// [`send`]: Dispatcher::send
    fn try_send_now(&mut self, lane: usize, batch: Batch) -> SendAttempt {
        if self.lanes[lane].tx.is_none() {
            // Known-dead lane: the blocking path already reroutes without
            // ever waiting.
            self.send(lane, batch);
            return SendAttempt::Sent;
        }
        let copy = if self.retain > 0 { Some(batch.clone()) } else { None };
        let tx = self.lanes[lane].tx.as_mut().expect("lane checked live");
        // Increment-before-send, as in `pump`: saturating worker-side
        // decrements must never race ahead of the increment.
        self.depths[lane].fetch_add(1, Ordering::Relaxed);
        match tx.try_send(batch) {
            LaneTrySend::Sent => {
                if let Some(c) = copy {
                    self.remember(lane, c);
                }
                SendAttempt::Sent
            }
            LaneTrySend::Full(b) => {
                // Nothing was enqueued; take the provisional count back.
                depth_dec(&self.depths[lane]);
                SendAttempt::Full(b)
            }
            LaneTrySend::Closed(b) => {
                // Route through the blocking path: its send error handler
                // marks the lane dead and redispatches the retained
                // window plus this batch.
                self.send(lane, b);
                SendAttempt::Sent
            }
        }
    }

    /// The policy decision for a saturated lane. `None` means the batch
    /// was handled (sent, blocked-and-sent, or shed); `Some` hands it
    /// back for inline processing.
    fn apply_policy(&mut self, lane: usize, batch: Batch) -> Option<Batch> {
        match self.policy {
            BackpressurePolicy::Block => {
                self.send_retained(lane, batch);
                None
            }
            BackpressurePolicy::DropTail { .. } => {
                let n = batch.len() as u64;
                if self.shed_budget_left >= n && n > 0 {
                    self.shed_budget_left -= n;
                    self.shed_packets += n;
                    if let Some((tag, _)) = batch.first() {
                        self.sheds.push((tag.id, lane));
                    }
                    None
                } else if self.inline_fallback {
                    Some(batch)
                } else {
                    self.block_fallbacks += 1;
                    self.send_retained(lane, batch);
                    None
                }
            }
            BackpressurePolicy::Inline => Some(batch),
        }
    }

    /// Retags a lost batch onto a fresh recovery lane and targets the
    /// next live worker. Returns `None` when no workers are left — in
    /// chain mode the batch is parked for inline processing instead of
    /// being dropped.
    fn reroute(&mut self, batch: Batch, was_recovery: bool) -> Option<(usize, Batch, bool)> {
        let Some(target) = self.pick_live_worker() else {
            if self.orphan_inline {
                self.orphans.push(batch);
            }
            return None;
        };
        let batch = if was_recovery {
            // Already on a unique recovery lane; keep its tags.
            batch
        } else {
            self.retag(batch)
        };
        self.redispatched += 1;
        Some((target, batch, true))
    }

    /// Clones a batch onto a fresh recovery lane.
    fn retag(&mut self, batch: Batch) -> Batch {
        let lane = self.recovery_lane;
        self.recovery_lane += 1;
        batch
            .into_iter()
            .map(|(tag, frame)| (MfTag { lane, ..tag }, frame))
            .collect()
    }

    fn pick_live_worker(&mut self) -> Option<usize> {
        let n = self.lanes.len();
        for _ in 0..n {
            let w = self.next_worker % n;
            self.next_worker = (self.next_worker + 1) % n;
            if self.lanes[w].tx.is_some() {
                return Some(w);
            }
        }
        None
    }

    /// Sends a recovery-tagged copy of `batch` to the next live worker
    /// (parked for inline processing in chain mode when none is left).
    fn send_recovery(&mut self, batch: Batch) {
        let retagged = self.retag(batch);
        if let Some(target) = self.pick_live_worker() {
            self.send(target, retagged);
        } else if self.orphan_inline {
            self.orphans.push(retagged);
        }
    }

    fn finish(self) -> u64 {
        // Dropping the senders lets workers drain and exit.
        self.redispatched
    }
}

/// Applies the injected per-worker faults for one received batch;
/// panics for an injected death (caught and counted at join).
fn apply_worker_faults(
    faults: &RuntimeFaults,
    worker: usize,
    incarnation: u64,
    processed: u64,
    first_mf: Option<u64>,
) {
    if faults.kill_fires(worker, incarnation, processed) {
        faults.note(FaultEvent::Kill {
            worker,
            incarnation,
        });
        // The injected death: an abrupt panic that drops the queues.
        panic!("injected worker death");
    }
    if let Some(stall) = faults.lane_stall {
        if stall.worker == worker {
            // Sustained pressure: every batch pays.
            thread::sleep(Duration::from_millis(stall.ms));
        }
    }
    if let Some(slow) = faults.slow_worker {
        if slow.worker == worker {
            thread::sleep(Duration::from_micros(slow.per_batch_us));
        }
    }
    if let Some(id) = first_mf {
        if faults.stalls_on(id) {
            faults.note(FaultEvent::Stall { worker, mf_id: id });
            thread::sleep(Duration::from_millis(faults.stall_ms));
        }
    }
}

/// Completes every remaining stage of a staged batch and publishes the
/// results, applying the replicated stateful stage when SCR is on
/// (`scr_work`). `Err` when the merger is gone.
fn complete_to_merger(
    merge: &mut MergeTx,
    sent: &AtomicU64,
    staged: StageBatch,
    scr_work: Option<u32>,
) -> Result<(), ()> {
    let results: Vec<Merged> = staged
        .into_iter()
        .map(|(tag, w)| {
            let r = w.complete();
            (tag, apply_scr(r, scr_work))
        })
        .collect();
    // Count before publishing, so the merger watchdog's backlog signal
    // (`sent - recvd`) can never under-report queued results.
    sent.fetch_add(results.len() as u64, Ordering::Relaxed);
    merge.send_all(results)
}

/// Applies the lane-replicated stateful stage under SCR; identity under
/// merge-before-tcp (the merger runs the stage there instead).
fn apply_scr(r: PacketResult, scr_work: Option<u32>) -> PacketResult {
    match scr_work {
        Some(units) => stateful_stage(r, units),
        None => r,
    }
}

/// Cloneable factory for merger senders, so the supervisor can wire a
/// respawned worker into the merge fan-in mid-run: another `SyncSender`
/// clone under `Mpsc`, a freshly registered ring under `Ring` (the
/// registrar explicitly wakes a parked mux). Held by the dispatcher and
/// dropped with its own sender so merger disconnect semantics are
/// unchanged.
enum MergeWiring {
    Mpsc(SyncSender<Merged>),
    Ring(MuxRegistrar<Merged>),
}

impl MergeWiring {
    fn new_tx(&self) -> MergeTx {
        match self {
            MergeWiring::Mpsc(tx) => MergeTx::Mpsc(tx.clone()),
            MergeWiring::Ring(reg) => MergeTx::Ring(reg.add_producer()),
        }
    }
}

/// One re-wireable FALCON chain link: the sender feeding the next stage.
/// Lives in a shared slot (instead of being owned by the upstream
/// worker) so the watchdog can swap in a fresh link when the downstream
/// stage is respawned — re-homing the stage onto the new worker. The
/// generation counter invalidates senders taken out before a re-wire.
struct ChainSlot {
    gen: u64,
    tx: Option<LaneTx<StageBatch>>,
}

/// Shared chain state every stage worker (and the watchdog) sees.
/// `slots[i]` / `dead_gens[i+1]` / `link_depths[i+1]` describe the link
/// from stage `i` to stage `i+1`; the tail's slot stays empty forever.
#[derive(Clone, Copy)]
struct ChainCtx<'a> {
    /// `slots[i]`: sender into stage `i + 1` (tail: always `None`).
    slots: &'a [Mutex<ChainSlot>],
    /// `link_depths[i]`: staged batches queued into stage `i` (index 0
    /// unused — the head's backlog is the dispatcher lane depth).
    link_depths: &'a [AtomicUsize],
    /// `dead_gens[i]`: generation at which stage `i`'s upstream observed
    /// it dead (`u64::MAX` = no pending death signal). The watchdog only
    /// honors a signal matching the link's current generation, so stale
    /// discoveries of an already-replaced link are ignored.
    dead_gens: &'a [AtomicU64],
}

/// Saturating depth decrement: a replaced-but-still-draining incarnation
/// may decrement after the watchdog reset the counter to zero; clamping
/// keeps the occupancy signal from wrapping to a phantom huge backlog.
fn depth_dec(depth: &AtomicUsize) {
    let _ = depth.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
        Some(v.saturating_sub(1))
    });
}

/// Forwards a staged batch down the chain through the shared link slot.
/// When the next hop has died, the remaining stages are completed
/// locally and the results go straight to the merger — this worker's
/// merger sends stay FIFO, so order survives the degradation. A death
/// discovery is flagged (keyed by link generation) for the watchdog to
/// respawn. `Err` when the merger itself is gone.
fn forward_shared(
    chain: ChainCtx<'_>,
    slot: usize,
    merge: &mut MergeTx,
    sent: &AtomicU64,
    staged: StageBatch,
    scr_work: Option<u32>,
) -> Result<(), ()> {
    let (gen, tx) = {
        let mut s = chain.slots[slot].lock().expect("chain slot lock");
        (s.gen, s.tx.take())
    };
    let Some(mut tx) = tx else {
        return complete_to_merger(merge, sent, staged, scr_work);
    };
    // Count the batch as queued before publishing it, so the downstream
    // decrement can never observe the counter early.
    chain.link_depths[slot + 1].fetch_add(1, Ordering::Relaxed);
    match tx.send(staged) {
        Ok(()) => {
            let mut s = chain.slots[slot].lock().expect("chain slot lock");
            if s.gen == gen {
                s.tx = Some(tx);
            }
            // Generation moved: the watchdog re-wired this link while the
            // send was in flight; the taken-out sender fed the replaced
            // ring and is dropped here. The batch it carried is lost with
            // that ring and flushed by the merge counter.
            Ok(())
        }
        Err(bounced) => {
            depth_dec(&chain.link_depths[slot + 1]);
            // Downstream death discovered: flag it for the watchdog and
            // finish this batch locally.
            chain.dead_gens[slot + 1].store(gen, Ordering::Release);
            {
                let mut s = chain.slots[slot].lock().expect("chain slot lock");
                if s.gen == gen {
                    s.tx = None;
                }
            }
            complete_to_merger(merge, sent, bounced, scr_work)
        }
    }
}

/// One fan-out worker incarnation: dequeue, heartbeat, full per-packet
/// work, publish to the merger.
#[allow(clippy::too_many_arguments)]
fn fanout_worker_loop(
    slot: usize,
    incarnation: u64,
    mut rx: LaneRx<Batch>,
    mut tx: MergeTx,
    sent: &AtomicU64,
    faults: &RuntimeFaults,
    depths: &[AtomicUsize],
    beats: &HeartbeatBoard,
    scr_work: Option<u32>,
    observe: Option<&PolicyCell>,
) {
    let mut processed = 0u64;
    while let Some(batch) = rx.recv() {
        depth_dec(&depths[slot]);
        beats.bump(slot);
        apply_worker_faults(faults, slot, incarnation, processed, batch.first().map(|(t, _)| t.id));
        if let Some(cell) = observe {
            // Packet-request dispatch: this worker is the first thread
            // to read the frame bytes, so it performs the flow-hash and
            // steering feedback the dispatcher deferred. Every policy
            // ignores the lane argument, so the physical slot is fine.
            if let Some((tag, frame)) = batch.first() {
                let hash = frame.try_flow_hash().unwrap_or(0);
                lock_policy(cell).observe(tag.id, hash, slot, batch.len());
            }
        }
        // Whole-batch processing, whole-batch publish: one merge-side
        // handoff per micro-flow, not per packet.
        let mut results = Vec::with_capacity(batch.len());
        for (tag, frame) in batch {
            results.push((tag, apply_scr(process_frame(&frame), scr_work)));
        }
        sent.fetch_add(results.len() as u64, Ordering::Relaxed);
        if tx.send_all(results).is_err() {
            // Merger gone; nothing useful left to do.
            return;
        }
        processed += 1;
    }
}

/// The chain-head incarnation: consumes dispatcher batches, applies the
/// first stage group, forwards down the chain.
#[allow(clippy::too_many_arguments)]
fn chain_head_loop(
    incarnation: u64,
    head_group: usize,
    mut rx: LaneRx<Batch>,
    mut merge: MergeTx,
    sent: &AtomicU64,
    faults: &RuntimeFaults,
    depths: &[AtomicUsize],
    beats: &HeartbeatBoard,
    chain: ChainCtx<'_>,
    scr_work: Option<u32>,
) {
    let mut processed = 0u64;
    while let Some(batch) = rx.recv() {
        depth_dec(&depths[0]);
        beats.bump(0);
        apply_worker_faults(faults, 0, incarnation, processed, batch.first().map(|(t, _)| t.id));
        let staged: StageBatch = batch
            .into_iter()
            .map(|(tag, frame)| (tag, StagedWork::Raw(frame).advance_n(head_group)))
            .collect();
        if forward_shared(chain, 0, &mut merge, sent, staged, scr_work).is_err() {
            return;
        }
        processed += 1;
    }
}

/// An interior or tail chain-stage incarnation: applies its stage group
/// and forwards (the tail's shared slot is always empty, so it completes
/// to the merger).
#[allow(clippy::too_many_arguments)]
fn chain_worker_loop(
    slot: usize,
    incarnation: u64,
    my_group: usize,
    mut rx: LaneRx<StageBatch>,
    mut merge: MergeTx,
    sent: &AtomicU64,
    faults: &RuntimeFaults,
    beats: &HeartbeatBoard,
    chain: ChainCtx<'_>,
    scr_work: Option<u32>,
) {
    let mut processed = 0u64;
    while let Some(staged) = rx.recv() {
        depth_dec(&chain.link_depths[slot]);
        beats.bump(slot);
        apply_worker_faults(faults, slot, incarnation, processed, staged.first().map(|(t, _)| t.id));
        let staged: StageBatch = staged
            .into_iter()
            .map(|(tag, w)| (tag, w.advance_n(my_group)))
            .collect();
        if forward_shared(chain, slot, &mut merge, sent, staged, scr_work).is_err() {
            return;
        }
        processed += 1;
    }
}

/// MFLOW pipeline: split into micro-flows, process on `workers` threads,
/// merge back in order. Equivalent to [`process_parallel_faulty`] with
/// [`RuntimeFaults::none`].
///
/// Returns [`MflowError::InvalidConfig`] for a malformed configuration,
/// [`MflowError::MergerPoisoned`] if the merge stage panics, and
/// [`MflowError::NoLiveWorkers`] when every fan-out worker died with
/// input still pending (chain policies instead fall back to inline
/// processing on the dispatcher).
pub fn process_parallel(frames: &[Frame], cfg: &RuntimeConfig) -> Result<RunOutput, MflowError> {
    process_parallel_faulty(frames, cfg, &RuntimeFaults::none())
}

/// The pipeline under an injected fault mix. Guaranteed not to panic and
/// not to wedge for any fault combination; see the module docs for the
/// degradation contract.
pub fn process_parallel_faulty(
    frames: &[Frame],
    cfg: &RuntimeConfig,
    faults: &RuntimeFaults,
) -> Result<RunOutput, MflowError> {
    cfg.validate()?;
    let policy = build_policy(cfg.policy)?;
    let start = Instant::now();
    let n_workers = cfg.workers;
    // FALCON pipelines stages across a worker chain instead of fanning
    // batches out: one entry lane, min(stage groups, workers) workers.
    let chain_len = if policy.stage_groups() >= 2 {
        policy.stage_groups().min(n_workers)
    } else {
        0
    };
    let n_lanes = if chain_len > 0 { 1 } else { n_workers };
    let n_threads = if chain_len > 0 { chain_len } else { n_workers };
    // DropTail removes whole micro-flows from the stream, which stalls
    // the merge counter exactly like injected loss does, and any policy
    // that can go inline (Inline itself, DropTail's inline fallback)
    // retags batches onto recovery lanes whose arrivals may trail the
    // primary lanes indefinitely — so every policy that sheds or creates
    // recovery lanes gets the flush deadline even in otherwise faultless
    // runs, not just DropTail. Supervision counts too: a stall-respawn
    // redispatches the retained window while the stalled worker may still
    // drain its copy, so recovery lanes and duplicates become possible.
    let supervised = cfg.supervised();
    let can_shed_or_recover =
        !matches!(cfg.backpressure, BackpressurePolicy::Block) || supervised;
    let flush_timeout = if faults.is_active() || can_shed_or_recover {
        faults.flush_timeout_ms.map(Duration::from_millis)
    } else {
        None
    };
    // The merge counter is only needed when arrivals can leave original
    // order: a policy that interleaves one flow across lanes, or any run
    // where faults / shedding / recovery lanes can perturb the stream.
    // Otherwise per-lane FIFO carries order end to end and the merger
    // streams results through unbuffered.
    let use_counter = policy.reorders() || faults.is_active() || can_shed_or_recover;
    // Stateful-stage placement: under SCR the lanes (and every degraded
    // path that stands in for a lane — chain-local completion, inline
    // processing) apply the stage; under merge-before-tcp the merger
    // does, serially, after reassembly.
    let scr = cfg.stateful_mode == StatefulMode::StateComputeReplication;
    let sw = cfg.stateful_work;
    let scr_work = if scr { Some(sw) } else { None };

    // Dispatcher -> worker lanes (SPSC: one producer, one consumer each).
    let mut lanes = Vec::with_capacity(n_lanes);
    let mut lane_rx = Vec::with_capacity(n_lanes);
    for i in 0..n_lanes {
        let (tx, rx) = spsc_lane::<Batch>(cfg.transport, cfg.queue_depth);
        lanes.push(Lane {
            tx: Some(tx),
            recent: VecDeque::new(),
            tag_lane: i,
        });
        lane_rx.push(rx);
    }
    // Workers (plus the dispatcher's inline lane) -> merger: one shared
    // MPSC channel, or one SPSC ring per producer fanned into a mux. The
    // wiring handle mints additional senders for respawned workers.
    let mut worker_merge_tx: Vec<MergeTx> = Vec::with_capacity(n_threads);
    let (merge_wiring, dispatch_merge_tx, merge_rx) = match cfg.transport {
        Transport::Mpsc => {
            let (tx, rx) = mpsc::sync_channel::<Merged>(cfg.merger_depth);
            for _ in 0..n_threads {
                worker_merge_tx.push(MergeTx::Mpsc(tx.clone()));
            }
            (
                MergeWiring::Mpsc(tx.clone()),
                MergeTx::Mpsc(tx),
                MergeRx::Mpsc(rx),
            )
        }
        Transport::Ring => {
            let (mut txs, mux, registrar) =
                ring::ring_mux_with_registrar::<Merged>(n_threads + 1, cfg.merger_depth);
            let dispatch = txs.pop().expect("n_threads + 1 rings");
            for tx in txs {
                worker_merge_tx.push(MergeTx::Ring(tx));
            }
            (
                MergeWiring::Ring(registrar),
                MergeTx::Ring(dispatch),
                MergeRx::Ring(mux),
            )
        }
    };
    // Merger failure domain: armed whenever the merger can actually die
    // or wedge — supervision on, or merger faults injected. Both of
    // those force `use_counter`, so a passthrough merger never pays for
    // the write-ahead layer. The receiver itself moves into a shared
    // slot that incarnations lease; producer senders stay valid across
    // merger deaths, which is what makes re-attachment implicit.
    let wal_on = supervised || faults.merger_faults_active();
    let merger_watch = wal_on;
    let checkpoint_every = cfg.checkpoint_every;
    let merger_depth = cfg.merger_depth;
    let merger_slot = n_threads;
    let shared_store = MergerShared::new(merge_rx, use_counter, scr);
    let shared = &shared_store;
    // Per-lane queue depths, the watermark signal for backpressure.
    let depths: Vec<AtomicUsize> = (0..n_lanes).map(|_| AtomicUsize::new(0)).collect();
    let depths = &depths;
    // Per-slot heartbeat epochs, the watchdog's liveness signal. The
    // extra slot past the workers is the merger's.
    let beats = HeartbeatBoard::new(n_threads + 1);
    let beats = &beats;
    // FALCON chain wiring: worker i applies stage group i and forwards to
    // worker i+1 through a shared, re-wireable link slot; the tail
    // publishes to the merger. (All empty in fan-out mode.)
    let group_sizes: Vec<usize> = if chain_len > 0 {
        stage_group_sizes(chain_len)
    } else {
        Vec::new()
    };
    let group_sizes = &group_sizes;
    let mut chain_slots: Vec<Mutex<ChainSlot>> = Vec::with_capacity(chain_len);
    let mut link_rx_q: VecDeque<LaneRx<StageBatch>> = VecDeque::new();
    for i in 0..chain_len {
        let tx = if i + 1 < chain_len {
            let (tx, rx) = spsc_lane::<StageBatch>(cfg.transport, cfg.queue_depth);
            link_rx_q.push_back(rx);
            Some(tx)
        } else {
            None
        };
        chain_slots.push(Mutex::new(ChainSlot { gen: 0, tx }));
    }
    let link_depths: Vec<AtomicUsize> = (0..chain_len).map(|_| AtomicUsize::new(0)).collect();
    let dead_gens: Vec<AtomicU64> = (0..chain_len).map(|_| AtomicU64::new(u64::MAX)).collect();
    let chain = ChainCtx {
        slots: &chain_slots,
        link_depths: &link_depths,
        dead_gens: &dead_gens,
    };

    // Packet-request dispatch (IRQ splitting): the dispatcher steers on
    // a constant surrogate hash without reading frame bytes, and the
    // workers perform the flow-hash + steering feedback after parsing.
    // The policy moves into a shared cell for that feedback path; lock
    // traffic is one uncontended acquisition per micro-flow batch.
    // Structural reads (`stage_groups`, `reorders`) happened above,
    // before the move.
    let pkt_req = cfg.dispatch_mode == DispatchMode::PacketRequest;
    let policy_store = Mutex::new(policy);
    let policy_cell = &policy_store;
    let worker_observe = if pkt_req && chain_len == 0 {
        Some(policy_cell)
    } else {
        None
    };

    // Buffer-pool telemetry: snapshot the frames' pool so the run can
    // report the recycle and heap-fallback deltas it caused.
    let frame_pool = frames.iter().find_map(|f| f.buf().pool());
    let pool_before = frame_pool.as_ref().map(|p| p.stats());

    let scope_out = thread::scope(|s| {
        // Worker handles tagged with their slot, so join-time panics can
        // be attributed per slot even after respawns reorder the list.
        let mut handles: Vec<(usize, thread::ScopedJoinHandle<'_, ()>)> =
            Vec::with_capacity(n_threads);
        if chain_len > 0 {
            let mut merge_txs = worker_merge_tx.into_iter();
            // Head: consumes dispatcher batches, applies the first group.
            let rx = lane_rx.pop().expect("one dispatcher lane in chain mode");
            let tx = merge_txs.next().expect("merge tx per chain worker");
            let head_group = group_sizes[0];
            handles.push((
                0,
                s.spawn(move || {
                    chain_head_loop(
                        0,
                        head_group,
                        rx,
                        tx,
                        &shared.sent,
                        faults,
                        depths,
                        beats,
                        chain,
                        scr_work,
                    )
                }),
            ));
            // Interior and tail workers.
            for (slot, &my_group) in group_sizes.iter().enumerate().skip(1) {
                let rx = link_rx_q.pop_front().expect("link per chain worker");
                let tx = merge_txs.next().expect("merge tx per chain worker");
                handles.push((
                    slot,
                    s.spawn(move || {
                        chain_worker_loop(
                            slot,
                            0,
                            my_group,
                            rx,
                            tx,
                            &shared.sent,
                            faults,
                            beats,
                            chain,
                            scr_work,
                        )
                    }),
                ));
            }
        } else {
            // Fan-out: the "splitting cores", one full-pipeline worker
            // per lane.
            for (slot, (rx, tx)) in lane_rx.into_iter().zip(worker_merge_tx).enumerate() {
                handles.push((
                    slot,
                    s.spawn(move || {
                        fanout_worker_loop(
                            slot,
                            0,
                            rx,
                            tx,
                            &shared.sent,
                            faults,
                            depths,
                            beats,
                            scr_work,
                            worker_observe,
                        )
                    }),
                ));
            }
        }

        // Merger incarnation 0: merging-counter reassembly with flush
        // recovery, a seq-watermark reconciler under SCR, or plain
        // passthrough when order cannot be perturbed — all inside
        // [`MergerState`], behind the receiver lease. Every incarnation
        // restores from the shared durable block; the watchdog spawns
        // successors from the same block when one dies or wedges.
        let watch = MergerWatch {
            s,
            shared,
            faults,
            beats,
            merger_slot,
            flush_timeout,
            wal_on,
            checkpoint_every,
            merger_depth,
            supervised,
            armed: merger_watch,
        };
        let mut merger_handles: Vec<thread::ScopedJoinHandle<'_, ()>> = Vec::new();
        merger_handles.push(s.spawn(move || {
            merger_loop(
                shared,
                faults,
                beats,
                merger_slot,
                0,
                0,
                flush_timeout,
                wal_on,
                checkpoint_every,
            )
        }));

        // Dispatcher: this thread plays the IRQ core's first half.
        // Orphaned batches go inline in chain mode (the chain has one
        // entry lane, so "no live worker" is routine) and in supervised
        // runs (total loss past the restart budget must degrade to
        // dispatcher-inline processing, never drop the tail).
        let mut d = Dispatcher::new(lanes, faults, cfg, depths, chain_len > 0 || supervised);
        let mut dispatch_tx = dispatch_merge_tx;
        // Batches the policy handed back are processed right here on the
        // dispatcher thread, retagged onto fresh recovery lanes so the
        // merger's per-lane FIFO assumption holds (earlier batches for
        // the original lane may still sit in the worker's queue).
        let process_inline = |d: &mut Dispatcher<'_>, tx: &mut MergeTx, batch: Batch| {
            let batch = d.retag(batch);
            d.inline_batches += 1;
            d.inline_packets += batch.len() as u64;
            if pkt_req {
                // The inline path is the parsing thread for this batch,
                // so it owes the policy the deferred observation.
                if let Some((tag, frame)) = batch.first() {
                    let hash = frame.try_flow_hash().unwrap_or(0);
                    lock_policy(policy_cell).observe(tag.id, hash, tag.lane, batch.len());
                }
            }
            let mut results = Vec::with_capacity(batch.len());
            for (tag, frame) in batch {
                results.push((tag, apply_scr(process_frame(&frame), scr_work)));
            }
            shared.sent.fetch_add(results.len() as u64, Ordering::Relaxed);
            let _ = tx.send_all(results);
        };
        // One supervision slot per worker plus the merger's; the respawn
        // budget is one shared pool across both failure domains, but the
        // restart and recovery-time counters split per domain.
        let mut sup = Supervisor::new(
            n_threads + 1,
            cfg.heartbeat_interval_ms.map(Duration::from_millis),
            cfg.restart_budget,
            Duration::from_millis(cfg.restart_backoff_ms),
            start,
        );
        sup.watch_merger(merger_slot);
        let mut fault_drops = 0u64;
        let mut mf_id = 0u64;
        let mut lane = 0usize;
        let mut tag_lane = 0usize;
        let mut cur_hash = 0u32;
        let mut depth_snap = vec![0usize; n_lanes];
        let mut batch: Batch = Vec::with_capacity(cfg.batch_size);
        let mut delayed: Vec<(u64, Batch)> = Vec::new();
        let n = frames.len();
        for (i, frame) in frames.iter().enumerate() {
            let last = batch.len() + 1 == cfg.batch_size || i + 1 == n;
            if faults.drops_packet(mf_id, frame.seq, last) {
                faults.note(FaultEvent::Drop {
                    mf_id,
                    seq: frame.seq,
                });
                fault_drops += 1;
            } else {
                if batch.is_empty() {
                    // A micro-flow opens: ask the policy for its lane,
                    // with a fresh view of per-lane occupancy. The tag
                    // carries the lane's merge-counter id, which diverges
                    // from the physical slot after a respawn. Under
                    // packet-request dispatch the frame bytes stay
                    // untouched here: steering sees a constant surrogate
                    // hash, so flow-affine policies pin the stream to one
                    // lane (per-lane FIFO preserves order) and the real
                    // hash is computed by the worker that parses.
                    cur_hash = if pkt_req { 0 } else { frame.flow_hash() };
                    for (snap, depth) in depth_snap.iter_mut().zip(depths.iter()) {
                        *snap = depth.load(Ordering::Relaxed);
                    }
                    lane = lock_policy(policy_cell)
                        .steer(mf_id, cur_hash, &depth_snap)
                        .min(n_lanes - 1);
                    tag_lane = d.tag_lane(lane);
                }
                batch.push((
                    MfTag {
                        id: mf_id,
                        lane: tag_lane,
                        last,
                    },
                    frame.clone(),
                ));
            }
            if last {
                let full = std::mem::take(&mut batch);
                batch.reserve(cfg.batch_size);
                if !full.is_empty() {
                    let placed = full.len();
                    if faults.is_active() && faults.delays_mf(mf_id) {
                        // Held back: will be redispatched on a recovery
                        // lane `late_by` batches from now.
                        faults.note(FaultEvent::LateMf { mf_id });
                        delayed.push((mf_id + faults.late_by.max(1), full));
                    } else if faults.is_active() && faults.duplicates_mf(mf_id) {
                        faults.note(FaultEvent::DupMf { mf_id });
                        d.send_retained(lane, full.clone());
                        d.send_recovery(full);
                    } else if let Some(b) = d.offer(lane, full) {
                        process_inline(&mut d, &mut dispatch_tx, b);
                    }
                    // Completion feedback: the policy hears what it
                    // placed (rate accounting for elephant detection).
                    // In packet-request mode that feedback comes from
                    // whichever thread parses the batch — a worker, or
                    // the dispatcher's own inline path — with the real
                    // flow hash.
                    if !pkt_req {
                        lock_policy(policy_cell).observe(mf_id, cur_hash, lane, placed);
                    }
                }
                let due: Vec<Batch> = {
                    let mut rest = Vec::new();
                    let mut ready = Vec::new();
                    for (at, b) in delayed.drain(..) {
                        if at <= mf_id {
                            ready.push(b);
                        } else {
                            rest.push((at, b));
                        }
                    }
                    delayed = rest;
                    ready
                };
                for b in due {
                    d.send_recovery(b);
                }
                // The watchdog pass: once per dispatched micro-flow,
                // between batches (never mid-batch, so a revived lane's
                // fresh tag id cannot split one micro-flow across ids).
                if supervised {
                    let now = Instant::now();
                    if chain_len == 0 {
                        for slot in 0..n_lanes {
                            // Stall detection: a stale heartbeat only
                            // counts while work is queued — an idle
                            // worker's epoch is legitimately still.
                            if !d.lane_dead(slot)
                                && sup.stale(slot, beats.read(slot), now)
                                && depths[slot].load(Ordering::Relaxed) > 0
                            {
                                sup.heartbeat_misses += 1;
                                d.fail_lane(slot);
                            }
                            if d.lane_dead(slot) {
                                sup.note_death(slot, now, i as u64);
                                if sup.allow_respawn(slot, now) {
                                    let (tx, rx) =
                                        spsc_lane::<Batch>(cfg.transport, cfg.queue_depth);
                                    let mtx = merge_wiring.new_tx();
                                    let inc = sup.on_respawn(slot, now, i as u64);
                                    d.revive(slot, tx);
                                    handles.push((
                                        slot,
                                        s.spawn(move || {
                                            fanout_worker_loop(
                                                slot,
                                                inc,
                                                rx,
                                                mtx,
                                                &shared.sent,
                                                faults,
                                                depths,
                                                beats,
                                                scr_work,
                                                worker_observe,
                                            )
                                        }),
                                    ));
                                }
                            }
                        }
                    } else {
                        // Chain head: watched through the dispatcher lane
                        // exactly like a fan-out worker.
                        if !d.lane_dead(0)
                            && sup.stale(0, beats.read(0), now)
                            && depths[0].load(Ordering::Relaxed) > 0
                        {
                            sup.heartbeat_misses += 1;
                            d.fail_lane(0);
                        }
                        if d.lane_dead(0) {
                            sup.note_death(0, now, i as u64);
                            if sup.allow_respawn(0, now) {
                                let (tx, rx) = spsc_lane::<Batch>(cfg.transport, cfg.queue_depth);
                                let mtx = merge_wiring.new_tx();
                                let inc = sup.on_respawn(0, now, i as u64);
                                d.revive(0, tx);
                                let head_group = group_sizes[0];
                                handles.push((
                                    0,
                                    s.spawn(move || {
                                        chain_head_loop(
                                            inc,
                                            head_group,
                                            rx,
                                            mtx,
                                            &shared.sent,
                                            faults,
                                            depths,
                                            beats,
                                            chain,
                                            scr_work,
                                        )
                                    }),
                                ));
                            }
                        }
                        // Interior and tail stages: watched through their
                        // upstream link slot. A death is either flagged by
                        // the upstream's bounced send (generation-matched)
                        // or declared here on a stale heartbeat.
                        for (slot, &my_group) in group_sizes.iter().enumerate().skip(1) {
                            let cur_gen =
                                chain.slots[slot - 1].lock().expect("chain slot lock").gen;
                            let mut dead =
                                chain.dead_gens[slot].load(Ordering::Acquire) == cur_gen;
                            if !dead
                                && sup.stale(slot, beats.read(slot), now)
                                && chain.link_depths[slot].load(Ordering::Relaxed) > 0
                            {
                                // Stalled: cut the link so the upstream
                                // completes batches locally until the
                                // replacement is wired in.
                                sup.heartbeat_misses += 1;
                                let mut link =
                                    chain.slots[slot - 1].lock().expect("chain slot lock");
                                link.gen += 1;
                                link.tx = None;
                                dead = true;
                            }
                            if dead {
                                sup.note_death(slot, now, i as u64);
                                if sup.allow_respawn(slot, now) {
                                    // Re-home the stage: fresh link, fresh
                                    // merger sender, new incarnation. The
                                    // generation bump invalidates any old
                                    // sender still in flight upstream.
                                    let (tx, rx) =
                                        spsc_lane::<StageBatch>(cfg.transport, cfg.queue_depth);
                                    {
                                        let mut link = chain.slots[slot - 1]
                                            .lock()
                                            .expect("chain slot lock");
                                        link.gen += 1;
                                        link.tx = Some(tx);
                                    }
                                    chain.link_depths[slot].store(0, Ordering::Relaxed);
                                    chain.dead_gens[slot].store(u64::MAX, Ordering::Release);
                                    let mtx = merge_wiring.new_tx();
                                    let inc = sup.on_respawn(slot, now, i as u64);
                                    handles.push((
                                        slot,
                                        s.spawn(move || {
                                            chain_worker_loop(
                                                slot,
                                                inc,
                                                my_group,
                                                rx,
                                                mtx,
                                                &shared.sent,
                                                faults,
                                                beats,
                                                chain,
                                                scr_work,
                                            )
                                        }),
                                    ));
                                }
                            }
                        }
                    }
                }
                // The merger's own watchdog pass, on the same cadence:
                // armed even unsupervised when merger faults are
                // injected, so a merger death degrades to WAL pumping
                // instead of wedging the run.
                watch.tend(&mut sup, &mut merger_handles, i as u64);
                // Batches that lost their only reachable worker (chain
                // mode, or a supervised run out of restart budget) come
                // back for inline processing instead of being dropped.
                for b in d.take_orphans() {
                    process_inline(&mut d, &mut dispatch_tx, b);
                }
                mf_id += 1;
            }
        }
        // Anything still held back goes out now, late but present.
        for (_, b) in delayed {
            d.send_recovery(b);
        }
        for b in d.take_orphans() {
            process_inline(&mut d, &mut dispatch_tx, b);
        }
        let dispatch_done = Instant::now();
        let shed_packets = d.shed_packets;
        let sheds = std::mem::take(&mut d.sheds);
        let inline_batches = d.inline_batches;
        let inline_packets = d.inline_packets;
        let block_fallbacks = d.block_fallbacks;
        let backpressure_events = d.backpressure_events;
        let redispatched = d.finish();
        // The dispatcher's merger sender — and the wiring handle that can
        // mint more — go last: with them gone, the merger exits once the
        // workers drain.
        drop(dispatch_tx);
        drop(merge_wiring);

        // Join workers first (they feed the merger); injected deaths
        // surface here as panics and are counted per slot, not
        // propagated. A death the dispatcher never observed (no send to
        // that lane afterwards) still leaves queued batches undequeued,
        // so zero the lane's depth too — a clean final incarnation
        // drained its queue to zero anyway, so this never masks a leak.
        let mut deaths_by_slot = vec![0u32; n_threads];
        if chain_len > 0 {
            // Staged join, stage by stage down the chain: only after
            // every incarnation of stage `slot` has exited is its
            // outgoing link cut, so the next stage sees end-of-stream
            // strictly after its upstream finished producing.
            let mut remaining = handles;
            #[allow(clippy::needless_range_loop)] // indexes two arrays of different lengths
            for slot in 0..chain_len {
                let (mine, rest): (Vec<_>, Vec<_>) =
                    remaining.into_iter().partition(|(owner, _)| *owner == slot);
                remaining = rest;
                for (_, h) in mine {
                    if watch
                        .join_tended(h, &mut sup, &mut merger_handles, n as u64)
                        .is_err()
                    {
                        deaths_by_slot[slot] += 1;
                    }
                }
                let mut link = chain.slots[slot].lock().expect("chain slot lock");
                link.gen += 1;
                link.tx = None;
            }
            if deaths_by_slot[0] > 0 {
                depths[0].store(0, Ordering::Relaxed);
            }
        } else {
            for (slot, h) in handles {
                if watch
                    .join_tended(h, &mut sup, &mut merger_handles, n as u64)
                    .is_err()
                {
                    deaths_by_slot[slot] += 1;
                }
            }
            for (slot, &deaths) in deaths_by_slot.iter().enumerate() {
                if deaths > 0 {
                    depths[slot].store(0, Ordering::Relaxed);
                }
            }
        }
        let workers_died: usize = deaths_by_slot.iter().map(|&d| d as usize).sum();
        let (workers_respawned, workers_abandoned) = sup.classify_deaths(&deaths_by_slot);
        let lane_depths: Vec<usize> =
            depths.iter().map(|d| d.load(Ordering::Relaxed)).collect();
        // Every producer is gone; keep supervising until the stream is
        // fully consumed and folded into the durable block (a kill near
        // the end of the stream is respawned or pumped here), then join
        // every merger incarnation.
        watch.drain_to_eos(&mut sup, &mut merger_handles, n as u64);
        let mut merger_deaths = 0usize;
        for h in merger_handles {
            if h.join().is_err() {
                merger_deaths += 1;
            }
        }
        if merger_deaths > 0 && !merger_watch {
            // An unarmed merger has no injected faults and no respawn
            // path: a panic there is a real bug, surfaced as an error
            // instead of a propagated abort.
            return Err(MflowError::MergerPoisoned);
        }
        let supervision = (
            sup.restarts,
            sup.heartbeat_misses,
            sup.recovery_ns,
            sup.merger_restarts,
            sup.merger_recovery_ns,
            workers_respawned,
            workers_abandoned,
            sup.rates(start, dispatch_done, n as u64),
        );
        Ok((
            merger_deaths,
            fault_drops,
            redispatched,
            workers_died,
            lane_depths,
            supervision,
            (
                shed_packets,
                sheds,
                inline_batches,
                inline_packets,
                block_fallbacks,
                backpressure_events,
            ),
        ))
    });
    let (merger_deaths, fault_drops, redispatched, workers_died, lane_depths, supervision, bp) =
        scope_out?;
    // Every scoped thread has joined; reclaim the policy for its
    // end-of-run reads.
    let policy = policy_store
        .into_inner()
        .unwrap_or_else(|e| e.into_inner());
    let (
        restarts,
        heartbeat_misses,
        recovery_ns,
        merger_restarts,
        merger_recovery_ns,
        workers_respawned,
        workers_abandoned,
        recovery,
    ) = supervision;
    let (shed_packets, sheds, inline_batches, inline_packets, block_fallbacks, backpressure_events) =
        bp;
    // A chain run survives total worker loss through the dispatcher's
    // inline fallback, and so does a supervised run (orphaned batches go
    // inline once the restart budget is gone); an unsupervised fan-out
    // run cannot deliver the remainder.
    if chain_len == 0 && !supervised && workers_died == n_threads && !frames.is_empty() {
        return Err(MflowError::NoLiveWorkers);
    }

    // Final assembly, on this thread, from the durable block: restore
    // the last snapshot, replay whatever the delta log still holds (the
    // serial-merge degradation path — empty after any clean merger EOS),
    // drain transport residue a non-blocking pump may have left (every
    // producer is gone, so this terminates), then flush and run the
    // serial stateful stage exactly as the merger always has.
    let MergerShared {
        rx_slot, durable, ..
    } = shared_store;
    let mut dur = durable.into_inner().unwrap_or_else(|e| e.into_inner());
    let final_replay = dur.delta.len() as u64;
    if final_replay > 0 {
        dur.restores += 1;
        dur.replayed += final_replay;
    }
    let mut state = dur.snapshot;
    let mut out = dur.out;
    for (tag, result) in dur.delta {
        state.apply(tag, result, &mut out);
    }
    if let Some(mut rx) = rx_slot.into_inner().unwrap_or_else(|e| e.into_inner()) {
        while let MergeRecv::Item((tag, result)) = rx.recv(None) {
            state.apply(tag, result, &mut out);
        }
    }
    // End of stream: flush whatever loss left stuck so nothing stays
    // parked forever.
    if flush_timeout.is_some() || faults.is_active() || supervised {
        state.flush_stalled(&mut out);
    }
    let flushed_mfs = state.flushed_list();
    // The serial stateful stage proper: merge-before-tcp pays it here,
    // after reassembly, packet by packet in order — timed into the same
    // serial_ns the incarnations accumulated, so the counter spans
    // merger respawns. (Under SCR the lanes already ran the stage.)
    if !scr {
        let t = Instant::now();
        for r in &mut out {
            *r = stateful_stage(*r, sw);
        }
        state.serial_ns += t.elapsed().as_nanos() as u64;
    }
    let mstats = state.stats();
    let digests = out;

    let (desplits, resplits) = policy.desplit_stats();
    // Buffer-pool deltas attributable to this run: counters only grow,
    // but saturate anyway so a shared pool raced by another run cannot
    // underflow the report.
    let (pool_recycled, pool_misses) = match (&frame_pool, pool_before) {
        (Some(p), Some(before)) => {
            let now = p.stats();
            (
                now.recycled.saturating_sub(before.recycled),
                now.misses.saturating_sub(before.misses),
            )
        }
        _ => (0, 0),
    };
    let telemetry = Telemetry {
        policy: policy.name().to_string(),
        stateful_mode: cfg.stateful_mode.name().to_string(),
        dispatch_mode: cfg.dispatch_mode.name().to_string(),
        pool_recycled,
        pool_misses,
        delivered: digests.len() as u64,
        ooo: state.ooo,
        flushed: flushed_mfs.len() as u64,
        late: mstats.late_drops,
        dup: mstats.dup_drops,
        shed: shed_packets,
        inline: inline_packets,
        desplits,
        resplits,
        redispatched,
        fault_drops,
        residue: mstats.residue,
        restarts,
        heartbeat_misses,
        recovery_ns,
        merger_restarts,
        merger_recovery_ns,
        snapshot_bytes: dur.snapshot_bytes,
        restore_replayed_offers: dur.replayed,
        replicated_transitions: state.replicated,
        reconciled_dups: if scr { mstats.dup_drops } else { 0 },
        lane_depths: lane_depths.iter().map(|&d| d as u64).collect(),
    };
    Ok(RunOutput {
        digests,
        elapsed: start.elapsed(),
        stateful_serial_ns: state.serial_ns,
        flushed_mfs,
        workers_died,
        merger_deaths,
        checkpoints: dur.checkpoints,
        workers_respawned,
        workers_abandoned,
        recovery,
        sheds,
        inline_batches,
        block_fallbacks,
        backpressure_events,
        telemetry,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::{MergerKill, MergerStall, WorkerKill};
    use crate::packet::generate_frames;

    /// Both transports, for exercising every scenario over each.
    const TRANSPORTS: [Transport; 2] = [Transport::Mpsc, Transport::Ring];

    fn run(n: usize, payload: usize, cfg: RuntimeConfig) {
        let frames = generate_frames(n, payload);
        let serial = process_serial(&frames);
        for transport in TRANSPORTS {
            let cfg = RuntimeConfig { transport, ..cfg };
            let parallel = process_parallel(&frames, &cfg).unwrap();
            assert_eq!(
                serial.digests, parallel.digests,
                "order or content diverged with {cfg:?}"
            );
            assert!(
                parallel.telemetry.lane_depths.iter().all(|&d| d == 0),
                "stale end-of-run depths {:?} with {cfg:?}",
                parallel.telemetry.lane_depths
            );
        }
    }

    #[test]
    fn two_workers_preserve_order_and_content() {
        run(2_000, 128, RuntimeConfig::default());
    }

    #[test]
    fn many_workers_tiny_batches() {
        run(
            1_000,
            64,
            RuntimeConfig {
                workers: 8,
                batch_size: 1,
                queue_depth: 4,
                ..RuntimeConfig::default()
            },
        );
    }

    #[test]
    fn batch_larger_than_input() {
        run(
            10,
            32,
            RuntimeConfig {
                workers: 3,
                batch_size: 1_000,
                queue_depth: 2,
                ..RuntimeConfig::default()
            },
        );
    }

    #[test]
    fn single_worker_degenerates_to_serial() {
        run(
            500,
            16,
            RuntimeConfig {
                workers: 1,
                batch_size: 64,
                queue_depth: 2,
                ..RuntimeConfig::default()
            },
        );
    }

    #[test]
    fn empty_input() {
        for transport in TRANSPORTS {
            let cfg = RuntimeConfig {
                transport,
                ..RuntimeConfig::default()
            };
            let out = process_parallel(&[], &cfg).unwrap();
            assert!(out.digests.is_empty());
            assert_eq!(out.telemetry.ooo, 0);
        }
    }

    #[test]
    fn exact_batch_multiple() {
        run(
            512,
            8,
            RuntimeConfig {
                workers: 2,
                batch_size: 256,
                queue_depth: 2,
                ..RuntimeConfig::default()
            },
        );
    }

    #[test]
    fn small_batches_cause_more_merge_input_disorder_than_large() {
        // The real-thread analogue of Figure 7: with more lanes than one
        // and tiny batches, the merger input interleaves heavily; with one
        // giant batch everything arrives in order. This is statistical on
        // real threads, so only the extreme ends are asserted.
        let frames = generate_frames(20_000, 64);
        for transport in TRANSPORTS {
            let small = process_parallel(
                &frames,
                &RuntimeConfig {
                    workers: 4,
                    batch_size: 1,
                    queue_depth: 64,
                    transport,
                    ..RuntimeConfig::default()
                },
            )
            .unwrap();
            let large = process_parallel(
                &frames,
                &RuntimeConfig {
                    workers: 4,
                    batch_size: 20_000,
                    queue_depth: 64,
                    transport,
                    ..RuntimeConfig::default()
                },
            )
            .unwrap();
            assert_eq!(large.telemetry.ooo, 0, "single batch cannot interleave");
            assert!(
                small.telemetry.ooo > 0,
                "1-packet batches over 4 threads should interleave at least once ({transport:?})"
            );
        }
    }

    #[test]
    fn stress_repeated_runs_stay_correct() {
        let frames = generate_frames(3_000, 32);
        let reference = process_serial(&frames);
        for transport in TRANSPORTS {
            for workers in [2, 3, 5] {
                for batch in [7, 97, 1024] {
                    let out = process_parallel(
                        &frames,
                        &RuntimeConfig {
                            workers,
                            batch_size: batch,
                            queue_depth: 3,
                            transport,
                            ..RuntimeConfig::default()
                        },
                    )
                    .unwrap();
                    assert_eq!(
                        out.digests, reference.digests,
                        "w={workers} b={batch} t={transport:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn faultless_fault_path_is_exact() {
        // The faulty entry point with an inert mix must behave like the
        // plain pipeline: exact digests, no degradation counters.
        let frames = generate_frames(1_500, 64);
        let serial = process_serial(&frames);
        for transport in TRANSPORTS {
            let out = process_parallel_faulty(
                &frames,
                &RuntimeConfig {
                    transport,
                    ..RuntimeConfig::default()
                },
                &RuntimeFaults::none(),
            )
            .unwrap();
            assert_eq!(out.digests, serial.digests);
            assert!(out.flushed_mfs.is_empty());
            assert_eq!(out.telemetry.fault_drops, 0);
            assert_eq!(out.workers_died, 0);
            assert_eq!(out.telemetry.residue, 0);
            assert_eq!(out.telemetry.shed, 0);
            assert_eq!(out.backpressure_events, 0);
        }
    }

    #[test]
    fn killed_worker_does_not_panic_or_wedge_the_run() {
        let frames = generate_frames(4_000, 32);
        let mut faults = RuntimeFaults::none();
        faults.kill = Some(WorkerKill {
            worker: 1,
            after_batches: 3,
            incarnation: 0,
        });
        faults.flush_timeout_ms = Some(50);
        for transport in TRANSPORTS {
            let out = process_parallel_faulty(
                &frames,
                &RuntimeConfig {
                    workers: 3,
                    batch_size: 64,
                    queue_depth: 4,
                    transport,
                    ..RuntimeConfig::default()
                },
                &faults,
            )
            .unwrap();
            assert_eq!(out.workers_died, 1);
            assert!(!out.digests.is_empty());
            assert_eq!(out.telemetry.residue, 0, "end flush must empty the merger");
            // The dead lane's counter must not report phantom load.
            assert!(
                out.telemetry.lane_depths.iter().all(|&d| d == 0),
                "stale depth after worker death: {:?} ({transport:?})",
                out.telemetry.lane_depths
            );
            // Output must be a strictly ordered, duplicate-free subsequence.
            for pair in out.digests.windows(2) {
                assert!(pair[0].seq < pair[1].seq);
            }
        }
    }

    #[test]
    fn zero_workers_rejected() {
        let cfg = RuntimeConfig {
            workers: 0,
            ..RuntimeConfig::default()
        };
        let err = process_parallel(&[], &cfg).unwrap_err();
        assert_eq!(err.field(), Some("workers"));
    }

    #[test]
    fn zero_batch_size_rejected() {
        let cfg = RuntimeConfig {
            batch_size: 0,
            ..RuntimeConfig::default()
        };
        let err = process_parallel(&[], &cfg).unwrap_err();
        assert_eq!(err.field(), Some("batch_size"));
    }

    #[test]
    fn zero_queue_depth_rejected() {
        let cfg = RuntimeConfig {
            queue_depth: 0,
            ..RuntimeConfig::default()
        };
        let err = process_parallel(&[], &cfg).unwrap_err();
        assert_eq!(err.field(), Some("queue_depth"));
    }

    #[test]
    fn bad_merger_depth_rejected() {
        // Zero and non-power-of-two both fail validation, under either
        // transport (the bound must mean the same thing when the config
        // is flipped between them).
        for transport in TRANSPORTS {
            for depth in [0usize, 3, 1000, 4097] {
                let cfg = RuntimeConfig {
                    merger_depth: depth,
                    transport,
                    ..RuntimeConfig::default()
                };
                let err = process_parallel(&[], &cfg).unwrap_err();
                assert_eq!(err.field(), Some("merger_depth"), "depth {depth}");
            }
            for depth in [1usize, 2, 1024, 65_536] {
                let cfg = RuntimeConfig {
                    merger_depth: depth,
                    transport,
                    ..RuntimeConfig::default()
                };
                assert!(cfg.validate().is_ok(), "depth {depth}");
            }
        }
    }

    #[test]
    fn tiny_merger_depth_still_completes() {
        // merger_depth 1 forces maximal producer-side waiting — the
        // deepest spin-then-park coverage the ring path can get.
        let frames = generate_frames(600, 32);
        let serial = process_serial(&frames);
        for transport in TRANSPORTS {
            let out = process_parallel(
                &frames,
                &RuntimeConfig {
                    workers: 3,
                    batch_size: 16,
                    queue_depth: 2,
                    merger_depth: 1,
                    transport,
                    ..RuntimeConfig::default()
                },
            )
            .unwrap();
            assert_eq!(out.digests, serial.digests, "{transport:?}");
        }
    }

    #[test]
    fn out_of_range_watermark_rejected() {
        for w in [0, 9] {
            let cfg = RuntimeConfig {
                queue_depth: 8,
                high_watermark: Some(w),
                ..RuntimeConfig::default()
            };
            let err = process_parallel(&[], &cfg).unwrap_err();
            assert_eq!(err.field(), Some("high_watermark"), "watermark {w}");
        }
        // In-range watermarks pass validation.
        let cfg = RuntimeConfig {
            queue_depth: 8,
            high_watermark: Some(8),
            ..RuntimeConfig::default()
        };
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn inline_policy_keeps_output_exact() {
        // A watermark of 1 engages the policy on nearly every send; with
        // `Inline` every engaged batch is processed on the dispatcher
        // thread and the output must still equal the serial run exactly.
        let frames = generate_frames(2_000, 64);
        let serial = process_serial(&frames);
        for transport in TRANSPORTS {
            let out = process_parallel(
                &frames,
                &RuntimeConfig {
                    workers: 2,
                    batch_size: 32,
                    queue_depth: 2,
                    backpressure: BackpressurePolicy::Inline,
                    high_watermark: Some(1),
                    transport,
                    ..RuntimeConfig::default()
                },
            )
            .unwrap();
            assert_eq!(out.digests, serial.digests);
            assert!(out.inline_batches > 0, "watermark 1 must engage inline");
            assert_eq!(out.telemetry.shed, 0);
        }
    }

    #[test]
    fn drop_tail_with_zero_budget_blocks_instead() {
        // Budget 0 can never shed, so every engagement falls back to a
        // blocking send: output stays exact and fallbacks are counted.
        let frames = generate_frames(1_000, 64);
        let serial = process_serial(&frames);
        for transport in TRANSPORTS {
            let out = process_parallel(
                &frames,
                &RuntimeConfig {
                    workers: 2,
                    batch_size: 16,
                    queue_depth: 1,
                    backpressure: BackpressurePolicy::DropTail { budget: 0 },
                    high_watermark: Some(1),
                    transport,
                    ..RuntimeConfig::default()
                },
            )
            .unwrap();
            assert_eq!(out.digests, serial.digests);
            assert!(out.block_fallbacks > 0);
            assert_eq!(out.telemetry.shed, 0);
        }
    }

    #[test]
    fn every_policy_matches_serial_output() {
        // The tentpole invariant: whatever the steering policy, the
        // delivered stream on a benign run equals the serial run exactly,
        // and non-reordering policies see zero merge disturbance.
        let frames = generate_frames(2_000, 64);
        let serial = process_serial(&frames);
        for transport in TRANSPORTS {
            for policy in PolicyKind::ALL {
                let out = process_parallel(
                    &frames,
                    &RuntimeConfig {
                        workers: 4,
                        batch_size: 32,
                        queue_depth: 4,
                        policy,
                        transport,
                        ..RuntimeConfig::default()
                    },
                )
                .unwrap();
                assert_eq!(
                    out.digests, serial.digests,
                    "{policy} diverged ({transport:?})"
                );
                assert_eq!(out.telemetry.policy, policy.name());
                assert_eq!(out.telemetry.delivered, frames.len() as u64);
                if !policy.reorders() {
                    assert_eq!(out.telemetry.ooo, 0, "{policy} must not reorder");
                    assert!(out.flushed_mfs.is_empty(), "{policy} must not flush");
                }
            }
        }
    }

    #[test]
    fn falcon_chain_survives_worker_death() {
        // Killing any link of the stage chain must degrade, not wedge:
        // upstream finishes locally (tail death) or the dispatcher goes
        // inline (head death). Order survives either way.
        let frames = generate_frames(3_000, 32);
        for transport in TRANSPORTS {
            for dead_worker in 0..3 {
                let mut faults = RuntimeFaults::none();
                faults.kill = Some(WorkerKill {
                    worker: dead_worker,
                    after_batches: 2,
                    incarnation: 0,
                });
                faults.flush_timeout_ms = Some(50);
                let out = process_parallel_faulty(
                    &frames,
                    &RuntimeConfig {
                        workers: 3,
                        batch_size: 64,
                        queue_depth: 4,
                        policy: PolicyKind::FalconFunc,
                        transport,
                        ..RuntimeConfig::default()
                    },
                    &faults,
                )
                .unwrap();
                assert_eq!(out.workers_died, 1, "worker {dead_worker} ({transport:?})");
                assert!(!out.digests.is_empty());
                for pair in out.digests.windows(2) {
                    assert!(
                        pair[0].seq < pair[1].seq,
                        "disorder after killing chain worker {dead_worker} ({transport:?})"
                    );
                }
            }
        }
    }

    #[test]
    fn chain_mode_uses_one_entry_lane() {
        // FALCON runs report one dispatcher lane regardless of the
        // worker count — stages consume the cores instead.
        let frames = generate_frames(500, 32);
        let out = process_parallel(
            &frames,
            &RuntimeConfig {
                workers: 4,
                policy: PolicyKind::FalconDev,
                ..RuntimeConfig::default()
            },
        )
        .unwrap();
        assert_eq!(out.telemetry.lane_depths.len(), 1);
        let fanout = process_parallel(
            &frames,
            &RuntimeConfig {
                workers: 4,
                policy: PolicyKind::Rps,
                ..RuntimeConfig::default()
            },
        )
        .unwrap();
        assert_eq!(fanout.telemetry.lane_depths.len(), 4);
    }

    /// Supervision knobs shared by the merger failure-domain tests.
    fn merger_test_cfg(transport: Transport) -> RuntimeConfig {
        RuntimeConfig {
            workers: 3,
            batch_size: 32,
            queue_depth: 4,
            heartbeat_interval_ms: Some(25),
            restart_budget: 8,
            restart_backoff_ms: 1,
            transport,
            ..RuntimeConfig::default()
        }
    }

    #[test]
    fn zero_checkpoint_interval_rejected() {
        let cfg = RuntimeConfig {
            checkpoint_every: 0,
            ..RuntimeConfig::default()
        };
        let err = process_parallel(&[], &cfg).unwrap_err();
        assert_eq!(err.field(), Some("checkpoint_every"));
    }

    #[test]
    fn benign_supervised_run_checkpoints_but_never_replays() {
        let frames = generate_frames(2_000, 32);
        let serial = process_serial(&frames);
        for transport in TRANSPORTS {
            let cfg = RuntimeConfig {
                checkpoint_every: 256,
                ..merger_test_cfg(transport)
            };
            let out = process_parallel(&frames, &cfg).unwrap();
            assert_eq!(out.digests, serial.digests, "{transport:?}");
            assert_eq!(out.merger_deaths, 0);
            assert_eq!(out.telemetry.merger_restarts, 0);
            assert_eq!(out.telemetry.restore_replayed_offers, 0);
            assert!(out.checkpoints > 0, "armed run must checkpoint");
            assert!(out.telemetry.snapshot_bytes > 0);
        }
    }

    #[test]
    fn killed_merger_respawns_from_checkpoint_with_exact_output() {
        let frames = generate_frames(3_000, 32);
        let serial = process_serial(&frames);
        let mut faults = RuntimeFaults::none();
        faults.merger_kill = Some(MergerKill {
            after_offers: 100,
            incarnation: 0,
        });
        for transport in TRANSPORTS {
            let out =
                process_parallel_faulty(&frames, &merger_test_cfg(transport), &faults).unwrap();
            assert_eq!(
                out.digests, serial.digests,
                "recovered stream must be byte-identical ({transport:?})"
            );
            assert_eq!(out.merger_deaths, 1, "{transport:?}");
            assert!(out.telemetry.merger_restarts >= 1, "{transport:?}");
            // The fatal offer was journaled before the panic, so the
            // successor replays at least the whole first window.
            assert!(
                out.telemetry.restore_replayed_offers >= 100,
                "replayed only {} ({transport:?})",
                out.telemetry.restore_replayed_offers
            );
            assert_eq!(out.telemetry.residue, 0);
        }
    }

    #[test]
    fn merger_kills_on_successive_incarnations_all_heal() {
        let frames = generate_frames(3_000, 32);
        let serial = process_serial(&frames);
        let mut faults = RuntimeFaults::none();
        faults.merger_kills = vec![
            MergerKill {
                after_offers: 64,
                incarnation: 0,
            },
            MergerKill {
                after_offers: 512,
                incarnation: 1,
            },
        ];
        for transport in TRANSPORTS {
            let cfg = RuntimeConfig {
                checkpoint_every: 128,
                ..merger_test_cfg(transport)
            };
            let out = process_parallel_faulty(&frames, &cfg, &faults).unwrap();
            assert_eq!(out.digests, serial.digests, "{transport:?}");
            assert_eq!(out.merger_deaths, 2, "{transport:?}");
            assert_eq!(out.telemetry.residue, 0);
        }
    }

    #[test]
    fn unsupervised_merger_kill_degrades_to_dispatcher_merge() {
        // No supervision at all: the injected fault still arms the WAL
        // and the watchdog, so the death degrades to the dispatcher
        // journaling the backlog and final assembly performing the
        // serial merge — never MergerPoisoned, never a wedge.
        let frames = generate_frames(2_000, 32);
        let serial = process_serial(&frames);
        let mut faults = RuntimeFaults::none();
        faults.merger_kill = Some(MergerKill {
            after_offers: 50,
            incarnation: 0,
        });
        for transport in TRANSPORTS {
            let cfg = RuntimeConfig {
                workers: 3,
                batch_size: 32,
                queue_depth: 4,
                transport,
                ..RuntimeConfig::default()
            };
            let out = process_parallel_faulty(&frames, &cfg, &faults).unwrap();
            assert_eq!(out.digests, serial.digests, "{transport:?}");
            assert_eq!(out.merger_deaths, 1);
            assert_eq!(
                out.telemetry.merger_restarts, 0,
                "unsupervised runs must not respawn"
            );
            assert!(
                out.telemetry.restore_replayed_offers >= 50,
                "the journaled stream must be replayed serially"
            );
        }
    }

    #[test]
    fn exhausted_budget_pumps_instead_of_respawning() {
        // Heartbeats on but zero respawn budget: the death is detected,
        // respawn is off the table, and the watchdog must degrade to
        // pumping the transport so producers never block forever.
        let frames = generate_frames(2_000, 32);
        let serial = process_serial(&frames);
        let mut faults = RuntimeFaults::none();
        faults.merger_kill = Some(MergerKill {
            after_offers: 50,
            incarnation: 0,
        });
        for transport in TRANSPORTS {
            let cfg = RuntimeConfig {
                restart_budget: 0,
                ..merger_test_cfg(transport)
            };
            let out = process_parallel_faulty(&frames, &cfg, &faults).unwrap();
            assert_eq!(out.digests, serial.digests, "{transport:?}");
            assert_eq!(out.merger_deaths, 1);
            assert_eq!(out.telemetry.merger_restarts, 0);
        }
    }

    #[test]
    fn stalled_merger_is_superseded_without_a_death() {
        // A wedge (no heartbeat movement with results queued) is healed
        // by generation supersession: the stuck incarnation exits
        // cleanly at its next gen check — the wedged offer is already
        // journaled — and the successor replays it. No panic anywhere.
        let frames = generate_frames(2_000, 32);
        let serial = process_serial(&frames);
        let mut faults = RuntimeFaults::none();
        faults.merger_stall = Some(MergerStall {
            after_offers: 50,
            ms: 300,
        });
        for transport in TRANSPORTS {
            let cfg = RuntimeConfig {
                heartbeat_interval_ms: Some(20),
                ..merger_test_cfg(transport)
            };
            let out = process_parallel_faulty(&frames, &cfg, &faults).unwrap();
            assert_eq!(out.digests, serial.digests, "{transport:?}");
            assert_eq!(out.merger_deaths, 0, "a supersede is not a death");
            assert!(
                out.telemetry.merger_restarts >= 1,
                "the wedge must be healed by a respawn ({transport:?})"
            );
            assert!(out.telemetry.heartbeat_misses >= 1);
        }
    }

    #[test]
    fn merger_failure_domain_covers_every_policy() {
        // The respawn path must preserve byte-identical delivery under
        // every steering topology, including the chains whose teardown
        // overlaps merger supervision.
        let frames = generate_frames(2_000, 32);
        let serial = process_serial(&frames);
        let mut faults = RuntimeFaults::none();
        faults.merger_kill = Some(MergerKill {
            after_offers: 80,
            incarnation: 0,
        });
        for transport in TRANSPORTS {
            for policy in PolicyKind::ALL {
                let cfg = RuntimeConfig {
                    policy,
                    checkpoint_every: 64,
                    ..merger_test_cfg(transport)
                };
                let out = process_parallel_faulty(&frames, &cfg, &faults).unwrap();
                assert_eq!(out.digests, serial.digests, "{policy} ({transport:?})");
                // Passthrough policies bypass the merge engine entirely
                // (no counter, no WAL), so the kill never fires there.
                if out.merger_deaths > 0 {
                    assert!(out.telemetry.merger_restarts >= 1, "{policy}");
                }
                assert_eq!(out.telemetry.residue, 0, "{policy} ({transport:?})");
            }
        }
    }
}
