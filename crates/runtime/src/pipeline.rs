//! The threaded split/merge pipeline.
//!
//! Topology (mirroring Figure 6 of the paper on real cores):
//!
//! ```text
//!             +-> worker 0 --\
//! dispatcher -+-> worker 1 ---+-> merger (MergeCounter) -> ordered output
//!             +-> worker N-1-/
//! ```
//!
//! The dispatcher assigns micro-flows of `batch_size` consecutive frames
//! round-robin to workers over bounded SPSC channels; each worker performs
//! the full per-packet work; the merger restores the original order with
//! the merging-counter algorithm. Workers run genuinely concurrently, so
//! the merger sees every interleaving a real kernel would.

use std::thread;
use std::time::{Duration, Instant};

use crossbeam::channel;
use mflow::{MergeCounter, MfTag};

use crate::packet::Frame;
use crate::work::{process_frame, PacketResult};

/// Parallel-pipeline parameters.
#[derive(Clone, Copy, Debug)]
pub struct RuntimeConfig {
    /// Worker (splitting-core) count.
    pub workers: usize,
    /// Micro-flow batch size in packets.
    pub batch_size: usize,
    /// Bounded channel depth between dispatcher and each worker, in
    /// batches.
    pub queue_depth: usize,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        Self {
            workers: 2,
            batch_size: 256,
            queue_depth: 8,
        }
    }
}

/// The outcome of a pipeline run.
#[derive(Clone, Debug)]
pub struct RunOutput {
    /// Results in emission order.
    pub digests: Vec<PacketResult>,
    /// Wall-clock processing time.
    pub elapsed: Duration,
    /// Inversions observed at the merger input (before reassembly) — the
    /// runtime analogue of the paper's Figure 7 y-axis.
    pub ooo_at_merge: u64,
}

/// Baseline: one thread processes every frame in order.
pub fn process_serial(frames: &[Frame]) -> RunOutput {
    let start = Instant::now();
    let digests = frames.iter().map(process_frame).collect();
    RunOutput {
        digests,
        elapsed: start.elapsed(),
        ooo_at_merge: 0,
    }
}

/// MFLOW pipeline: split into micro-flows, process on `workers` threads,
/// merge back in order.
pub fn process_parallel(frames: &[Frame], cfg: &RuntimeConfig) -> RunOutput {
    assert!(cfg.workers >= 1 && cfg.batch_size >= 1 && cfg.queue_depth >= 1);
    let start = Instant::now();
    let n_workers = cfg.workers;

    // Dispatcher -> worker lanes (SPSC: one producer, one consumer each).
    let mut lane_tx = Vec::with_capacity(n_workers);
    let mut lane_rx = Vec::with_capacity(n_workers);
    for _ in 0..n_workers {
        let (tx, rx) = channel::bounded::<Vec<(MfTag, Frame)>>(cfg.queue_depth);
        lane_tx.push(tx);
        lane_rx.push(rx);
    }
    // Workers -> merger (MPSC).
    let (merge_tx, merge_rx) = channel::bounded::<(MfTag, PacketResult)>(n_workers * 1024);

    let out = thread::scope(|s| {
        // Workers: the "splitting cores".
        for (lane, rx) in lane_rx.into_iter().enumerate() {
            let tx = merge_tx.clone();
            s.spawn(move || {
                let _ = lane;
                for batch in rx {
                    for (tag, frame) in batch {
                        let result = process_frame(&frame);
                        // A full merger queue only applies backpressure.
                        tx.send((tag, result)).expect("merger alive");
                    }
                }
            });
        }
        drop(merge_tx);

        // Merger thread: merging-counter reassembly.
        let merger = s.spawn(move || {
            let mut mc: MergeCounter<PacketResult> = MergeCounter::new();
            let mut out = Vec::new();
            let mut max_seen: Option<u64> = None;
            let mut ooo = 0u64;
            for (tag, result) in merge_rx {
                if let Some(m) = max_seen {
                    if result.seq < m {
                        ooo += 1;
                    }
                }
                max_seen = Some(max_seen.map_or(result.seq, |m| m.max(result.seq)));
                mc.offer(tag, result, &mut out);
            }
            (out, mc.buffered(), ooo)
        });

        // Dispatcher: this thread plays the IRQ core's first half.
        let mut mf_id = 0u64;
        let mut lane = 0usize;
        let mut batch: Vec<(MfTag, Frame)> = Vec::with_capacity(cfg.batch_size);
        let n = frames.len();
        for (i, frame) in frames.iter().enumerate() {
            let last = batch.len() + 1 == cfg.batch_size || i + 1 == n;
            batch.push((
                MfTag {
                    id: mf_id,
                    lane,
                    last,
                },
                frame.clone(),
            ));
            if last {
                lane_tx[lane].send(std::mem::take(&mut batch)).expect("worker alive");
                batch.reserve(cfg.batch_size);
                mf_id += 1;
                lane = (lane + 1) % n_workers;
            }
        }
        drop(lane_tx);

        let (digests, residue, ooo) = merger.join().expect("merger must not panic");
        assert_eq!(residue, 0, "merger must drain completely");
        (digests, ooo)
    });

    RunOutput {
        digests: out.0,
        elapsed: start.elapsed(),
        ooo_at_merge: out.1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::generate_frames;

    fn run(n: usize, payload: usize, cfg: RuntimeConfig) {
        let frames = generate_frames(n, payload);
        let serial = process_serial(&frames);
        let parallel = process_parallel(&frames, &cfg);
        assert_eq!(
            serial.digests, parallel.digests,
            "order or content diverged with {cfg:?}"
        );
    }

    #[test]
    fn two_workers_preserve_order_and_content() {
        run(2_000, 128, RuntimeConfig::default());
    }

    #[test]
    fn many_workers_tiny_batches() {
        run(
            1_000,
            64,
            RuntimeConfig {
                workers: 8,
                batch_size: 1,
                queue_depth: 4,
            },
        );
    }

    #[test]
    fn batch_larger_than_input() {
        run(
            10,
            32,
            RuntimeConfig {
                workers: 3,
                batch_size: 1_000,
                queue_depth: 2,
            },
        );
    }

    #[test]
    fn single_worker_degenerates_to_serial() {
        run(
            500,
            16,
            RuntimeConfig {
                workers: 1,
                batch_size: 64,
                queue_depth: 2,
            },
        );
    }

    #[test]
    fn empty_input() {
        let out = process_parallel(&[], &RuntimeConfig::default());
        assert!(out.digests.is_empty());
        assert_eq!(out.ooo_at_merge, 0);
    }

    #[test]
    fn exact_batch_multiple() {
        run(
            512,
            8,
            RuntimeConfig {
                workers: 2,
                batch_size: 256,
                queue_depth: 2,
            },
        );
    }

    #[test]
    fn small_batches_cause_more_merge_input_disorder_than_large() {
        // The real-thread analogue of Figure 7: with more lanes than one
        // and tiny batches, the merger input interleaves heavily; with one
        // giant batch everything arrives in order. This is statistical on
        // real threads, so only the extreme ends are asserted.
        let frames = generate_frames(20_000, 64);
        let small = process_parallel(
            &frames,
            &RuntimeConfig {
                workers: 4,
                batch_size: 1,
                queue_depth: 64,
            },
        );
        let large = process_parallel(
            &frames,
            &RuntimeConfig {
                workers: 4,
                batch_size: 20_000,
                queue_depth: 64,
            },
        );
        assert_eq!(large.ooo_at_merge, 0, "single batch cannot interleave");
        assert!(
            small.ooo_at_merge > 0,
            "1-packet batches over 4 threads should interleave at least once"
        );
    }

    #[test]
    fn stress_repeated_runs_stay_correct() {
        let frames = generate_frames(3_000, 32);
        let reference = process_serial(&frames);
        for workers in [2, 3, 5] {
            for batch in [7, 97, 1024] {
                let out = process_parallel(
                    &frames,
                    &RuntimeConfig {
                        workers,
                        batch_size: batch,
                        queue_depth: 3,
                    },
                );
                assert_eq!(out.digests, reference.digests, "w={workers} b={batch}");
            }
        }
    }
}
