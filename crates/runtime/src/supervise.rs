//! Worker supervision primitives: heartbeat publication and the
//! restart-budget bookkeeping behind the dispatcher's watchdog.
//!
//! The paper's packet-level parallelism assumes the splitting-core pool
//! stays healthy; this module is what keeps it that way. Every worker
//! slot owns one cache-line-padded atomic epoch counter in a
//! [`HeartbeatBoard`] and bumps it once per dequeued batch. The
//! dispatcher's watchdog (in `pipeline`) reads the board between
//! micro-flows: an epoch that has not moved past the configured deadline
//! *while the slot has work queued* is a missed heartbeat, treated
//! exactly like a ring disconnect — the lane is failed, its retained
//! window redispatched, and a replacement thread spawned under the
//! [`Supervisor`]'s bounded restart budget with per-slot exponential
//! backoff. When the budget runs dry the engine degrades to
//! dispatcher-inline processing instead of wedging.
//!
//! The split of responsibilities: this module decides *whether* a slot
//! may be respawned and accounts for *when* things happened (deaths,
//! heals, worst-case time-to-recovery, the pre-fault and post-recovery
//! dispatch windows); the pipeline owns the actual thread spawning and
//! ring re-wiring, which need the scoped-thread context.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Pads each slot's epoch to its own cache line so heartbeat bumps from
/// different workers never false-share.
#[repr(align(64))]
struct PaddedEpoch(AtomicU64);

/// Per-worker heartbeat epochs, shared between the workers (writers) and
/// the dispatcher's watchdog (reader). One slot per worker thread slot;
/// respawned incarnations inherit their slot's counter.
pub struct HeartbeatBoard {
    slots: Vec<PaddedEpoch>,
}

impl HeartbeatBoard {
    /// A board of `n` slots, all at epoch zero.
    pub fn new(n: usize) -> Self {
        Self {
            slots: (0..n).map(|_| PaddedEpoch(AtomicU64::new(0))).collect(),
        }
    }

    /// Publishes one unit of progress for `slot`. Called by the worker
    /// once per dequeued batch, *before* the (possibly faulty) batch work
    /// — a worker that dies or stalls mid-batch leaves a stale epoch with
    /// its queue depth still visible, which is the watchdog's signal.
    pub fn bump(&self, slot: usize) {
        self.slots[slot].0.fetch_add(1, Ordering::Relaxed);
    }

    /// The watchdog's view of a slot's epoch.
    pub fn read(&self, slot: usize) -> u64 {
        self.slots[slot].0.load(Ordering::Relaxed)
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the board has no slots.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }
}

/// Watchdog-side state for one worker slot.
struct SlotHealth {
    /// Last epoch observed by the watchdog.
    last_epoch: u64,
    /// When the epoch last changed (or the slot was last respawned).
    last_change: Instant,
    /// Incarnation currently occupying the slot (0 = original spawn).
    incarnation: u64,
    /// Respawns performed for this slot (drives the backoff exponent).
    respawns: u32,
    /// Earliest instant the next respawn of this slot is allowed.
    next_allowed: Instant,
    /// When the current death was first observed; `None` while the slot
    /// is believed live.
    died_at: Option<Instant>,
}

/// Restart-budget and recovery bookkeeping for all worker slots.
pub(crate) struct Supervisor {
    /// Missed-heartbeat deadline; `None` disables stall detection (death
    /// is then only observed through lane disconnects).
    interval: Option<Duration>,
    /// Respawns left for the whole run.
    budget_left: u32,
    /// Base backoff; doubles per respawn of the same slot.
    backoff: Duration,
    slots: Vec<SlotHealth>,
    /// Which slot (if any) is the merger rather than a worker. Deaths
    /// and respawns of this slot are accounted in the merger failure
    /// domain (`merger_restarts` / `merger_recovery_ns`) instead of the
    /// worker-domain counters, while sharing the same restart budget and
    /// backoff machinery.
    merger_slot: Option<usize>,
    /// Worker respawns performed (the `Telemetry::restarts` counter).
    pub restarts: u64,
    /// Stall declarations (the `Telemetry::heartbeat_misses` counter).
    pub heartbeat_misses: u64,
    /// Worst observed death-to-respawn gap in nanoseconds, worker domain.
    pub recovery_ns: u64,
    /// Merger respawns performed (the `Telemetry::merger_restarts`
    /// counter).
    pub merger_restarts: u64,
    /// Worst observed death-to-respawn gap in nanoseconds, merger domain.
    pub merger_recovery_ns: u64,
    /// First observed death: `(when, frames dispatched so far)`.
    first_death: Option<(Instant, u64)>,
    /// Most recent respawn: `(when, frames dispatched so far)`.
    last_heal: Option<(Instant, u64)>,
    /// Respawns per slot, for the died-vs-abandoned classification.
    respawns_by_slot: Vec<u32>,
}

/// Cap on the backoff doubling exponent (beyond this the wait is already
/// way past any realistic run length).
const BACKOFF_SHIFT_CAP: u32 = 16;

impl Supervisor {
    pub(crate) fn new(
        n_slots: usize,
        interval: Option<Duration>,
        budget: u32,
        backoff: Duration,
        now: Instant,
    ) -> Self {
        Self {
            interval,
            budget_left: budget,
            backoff,
            slots: (0..n_slots)
                .map(|_| SlotHealth {
                    last_epoch: 0,
                    last_change: now,
                    incarnation: 0,
                    respawns: 0,
                    next_allowed: now,
                    died_at: None,
                })
                .collect(),
            merger_slot: None,
            restarts: 0,
            heartbeat_misses: 0,
            recovery_ns: 0,
            merger_restarts: 0,
            merger_recovery_ns: 0,
            first_death: None,
            last_heal: None,
            respawns_by_slot: vec![0; n_slots],
        }
    }

    /// Marks `slot` as the merger failure domain (see
    /// [`Supervisor::merger_slot`]).
    pub(crate) fn watch_merger(&mut self, slot: usize) {
        self.merger_slot = Some(slot);
    }

    /// Whether the shared restart budget is spent. The pipeline's
    /// degradation ladder branches on this: a dead merger with budget
    /// left waits for a respawn; one without degrades to dispatcher-side
    /// serial merging.
    pub(crate) fn budget_exhausted(&self) -> bool {
        self.budget_left == 0
    }

    /// Heartbeat check: true when the slot's epoch has not moved for
    /// longer than the deadline. The caller gates this on the slot
    /// actually having queued work — an idle worker's epoch is
    /// legitimately still.
    pub(crate) fn stale(&mut self, slot: usize, epoch: u64, now: Instant) -> bool {
        let s = &mut self.slots[slot];
        if epoch != s.last_epoch {
            s.last_epoch = epoch;
            s.last_change = now;
            return false;
        }
        match self.interval {
            Some(deadline) => now.duration_since(s.last_change) > deadline,
            None => false,
        }
    }

    /// Records that the watchdog observed `slot` dead (idempotent until
    /// the slot is respawned). `frames_done` is the dispatch progress,
    /// for the pre-fault rate window.
    pub(crate) fn note_death(&mut self, slot: usize, now: Instant, frames_done: u64) {
        if self.slots[slot].died_at.is_none() {
            self.slots[slot].died_at = Some(now);
            if self.first_death.is_none() {
                self.first_death = Some((now, frames_done));
            }
        }
    }

    /// Whether a respawn of `slot` is currently permitted (budget left
    /// and past the slot's backoff deadline). Non-blocking: a denied
    /// respawn is simply retried on a later watchdog pass.
    pub(crate) fn allow_respawn(&self, slot: usize, now: Instant) -> bool {
        self.budget_left > 0 && now >= self.slots[slot].next_allowed
    }

    /// Commits a respawn of `slot`: spends budget, arms the exponential
    /// backoff, folds the death-to-respawn gap into `recovery_ns`, and
    /// returns the new incarnation number.
    pub(crate) fn on_respawn(&mut self, slot: usize, now: Instant, frames_done: u64) -> u64 {
        let merger = self.merger_slot == Some(slot);
        let s = &mut self.slots[slot];
        if let Some(died) = s.died_at.take() {
            let gap = now.duration_since(died).as_nanos() as u64;
            // Per-domain recovery split: the merger's healing latency is
            // tracked apart from the workers' so neither masks the other.
            if merger {
                self.merger_recovery_ns = self.merger_recovery_ns.max(gap);
            } else {
                self.recovery_ns = self.recovery_ns.max(gap);
            }
        }
        s.incarnation += 1;
        s.respawns += 1;
        s.last_change = now;
        let shift = (s.respawns - 1).min(BACKOFF_SHIFT_CAP);
        s.next_allowed = now + self.backoff * (1u32 << shift);
        self.budget_left -= 1;
        if merger {
            self.merger_restarts += 1;
        } else {
            self.restarts += 1;
        }
        self.respawns_by_slot[slot] += 1;
        self.last_heal = Some((now, frames_done));
        s.incarnation
    }

    /// Splits the join-time panic counts into respawned vs abandoned
    /// deaths: a panic whose slot got a replacement incarnation was
    /// healed; the rest degraded the pool for good.
    pub(crate) fn classify_deaths(&self, deaths_by_slot: &[u32]) -> (usize, usize) {
        let mut respawned = 0usize;
        let mut abandoned = 0usize;
        for (slot, &deaths) in deaths_by_slot.iter().enumerate() {
            let healed = deaths.min(self.respawns_by_slot[slot]);
            respawned += healed as usize;
            abandoned += (deaths - healed) as usize;
        }
        (respawned, abandoned)
    }

    /// The dispatch-side rate windows around the fault interval:
    /// everything before the first observed death, and everything after
    /// the last respawn. With no deaths the whole run is "pre-fault".
    pub(crate) fn rates(
        &self,
        start: Instant,
        dispatch_done: Instant,
        total_frames: u64,
    ) -> crate::pipeline::RecoveryRates {
        match self.first_death {
            None => crate::pipeline::RecoveryRates {
                prefault_frames: total_frames,
                prefault_ns: dispatch_done.duration_since(start).as_nanos() as u64,
                recovered_frames: 0,
                recovered_ns: 0,
            },
            Some((died, died_frames)) => {
                let (recovered_frames, recovered_ns) = match self.last_heal {
                    Some((healed, healed_frames)) => (
                        total_frames.saturating_sub(healed_frames),
                        dispatch_done.duration_since(healed).as_nanos() as u64,
                    ),
                    None => (0, 0),
                };
                crate::pipeline::RecoveryRates {
                    prefault_frames: died_frames,
                    prefault_ns: died.duration_since(start).as_nanos() as u64,
                    recovered_frames,
                    recovered_ns,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heartbeat_board_counts_per_slot() {
        let board = HeartbeatBoard::new(3);
        assert_eq!(board.len(), 3);
        assert!(!board.is_empty());
        board.bump(1);
        board.bump(1);
        board.bump(2);
        assert_eq!(board.read(0), 0);
        assert_eq!(board.read(1), 2);
        assert_eq!(board.read(2), 1);
    }

    #[test]
    fn stale_requires_an_unmoved_epoch_past_the_deadline() {
        let t0 = Instant::now();
        let mut sup = Supervisor::new(1, Some(Duration::from_millis(10)), 4, Duration::ZERO, t0);
        // Progress resets the clock.
        assert!(!sup.stale(0, 1, t0 + Duration::from_millis(50)));
        // Same epoch, inside the deadline: fine.
        assert!(!sup.stale(0, 1, t0 + Duration::from_millis(55)));
        // Same epoch, past the deadline: stalled.
        assert!(sup.stale(0, 1, t0 + Duration::from_millis(70)));
        // New epoch recovers.
        assert!(!sup.stale(0, 2, t0 + Duration::from_millis(200)));
    }

    #[test]
    fn no_interval_never_reports_stale() {
        let t0 = Instant::now();
        let mut sup = Supervisor::new(1, None, 4, Duration::ZERO, t0);
        assert!(!sup.stale(0, 0, t0 + Duration::from_secs(3600)));
    }

    #[test]
    fn budget_and_backoff_gate_respawns() {
        let t0 = Instant::now();
        let mut sup = Supervisor::new(2, None, 2, Duration::from_millis(100), t0);
        assert!(sup.allow_respawn(0, t0));
        sup.note_death(0, t0, 5);
        assert_eq!(sup.on_respawn(0, t0 + Duration::from_millis(1), 5), 1);
        // Backoff: the same slot must wait; another slot need not.
        assert!(!sup.allow_respawn(0, t0 + Duration::from_millis(50)));
        assert!(sup.allow_respawn(1, t0 + Duration::from_millis(50)));
        assert!(sup.allow_respawn(0, t0 + Duration::from_millis(150)));
        // Second respawn exhausts the budget of 2 for everyone.
        sup.on_respawn(0, t0 + Duration::from_millis(150), 9);
        assert!(!sup.allow_respawn(1, t0 + Duration::from_secs(10)));
        assert_eq!(sup.restarts, 2);
        // Backoff doubled: 100ms after the first respawn, 200ms after
        // the second.
        assert!(sup.slots[0].next_allowed >= t0 + Duration::from_millis(350));
    }

    #[test]
    fn recovery_gap_and_windows_are_tracked() {
        let t0 = Instant::now();
        let mut sup = Supervisor::new(1, None, 8, Duration::ZERO, t0);
        let died = t0 + Duration::from_millis(10);
        let healed = t0 + Duration::from_millis(14);
        let done = t0 + Duration::from_millis(100);
        sup.note_death(0, died, 1000);
        // A second observation of the same death must not move the clock.
        sup.note_death(0, died + Duration::from_millis(2), 1200);
        sup.on_respawn(0, healed, 1100);
        assert_eq!(sup.recovery_ns, 4_000_000);
        let rates = sup.rates(t0, done, 10_000);
        assert_eq!(rates.prefault_frames, 1000);
        assert_eq!(rates.prefault_ns, 10_000_000);
        assert_eq!(rates.recovered_frames, 8900);
        assert_eq!(rates.recovered_ns, 86_000_000);
    }

    #[test]
    fn death_classification_splits_respawned_from_abandoned() {
        let t0 = Instant::now();
        let mut sup = Supervisor::new(3, None, 8, Duration::ZERO, t0);
        // Slot 0: died once, respawned once. Slot 1: died twice, respawned
        // once. Slot 2: never died but was stall-respawned (old worker
        // exited cleanly).
        sup.on_respawn(0, t0, 0);
        sup.on_respawn(1, t0, 0);
        sup.on_respawn(2, t0, 0);
        let (respawned, abandoned) = sup.classify_deaths(&[1, 2, 0]);
        assert_eq!(respawned, 2);
        assert_eq!(abandoned, 1);
    }

    #[test]
    fn merger_slot_splits_the_recovery_domains() {
        let t0 = Instant::now();
        // 2 worker slots + 1 merger slot, shared budget of 3.
        let mut sup = Supervisor::new(3, None, 3, Duration::ZERO, t0);
        sup.watch_merger(2);
        // A worker death heals into the worker domain.
        sup.note_death(0, t0 + Duration::from_millis(1), 10);
        sup.on_respawn(0, t0 + Duration::from_millis(3), 10);
        // A merger death heals into the merger domain, with a longer gap.
        sup.note_death(2, t0 + Duration::from_millis(5), 20);
        sup.on_respawn(2, t0 + Duration::from_millis(10), 20);
        assert_eq!(sup.restarts, 1);
        assert_eq!(sup.merger_restarts, 1);
        assert_eq!(sup.recovery_ns, 2_000_000);
        assert_eq!(sup.merger_recovery_ns, 5_000_000);
        // The budget is shared across domains.
        assert!(!sup.budget_exhausted());
        sup.on_respawn(2, t0 + Duration::from_millis(11), 21);
        assert!(sup.budget_exhausted());
        // classify_deaths only sees worker slots; the merger's respawns
        // never leak into the worker classification.
        let (respawned, abandoned) = sup.classify_deaths(&[1, 0]);
        assert_eq!((respawned, abandoned), (1, 0));
    }
}
