//! Real frame generation for the runtime: a stream of VXLAN-encapsulated
//! TCP segments of one flow, with sequence numbers embedded so loss,
//! duplication and reordering are all detectable downstream.
//!
//! Frames are built directly into [`BufPool`] slots: a [`Frame`] is a
//! sequence number plus a [`PktBuf`] descriptor handle, so cloning one —
//! which the dispatcher does for every packet it batches, and the
//! fault/supervision paths do for every retained window — bumps a
//! refcount instead of copying wire bytes.

use mflow_net::ethernet::{EtherType, EthernetHeader};
use mflow_net::frame::{build_overlay_frame_into, OverlayFrameSpec, OVERLAY_HEADER_BYTES};
use mflow_net::ipv4::{Ipv4Header, PROTO_UDP};
use mflow_net::pcap::visit_pcap_records;
use mflow_net::ParseError;

use crate::pool::{BufPool, PktBuf};

/// One wire frame plus its position in the flow.
#[derive(Clone, Debug)]
pub struct Frame {
    /// Position in the original flow (the ground-truth order).
    pub seq: u64,
    /// The complete overlay frame bytes, as a pooled buffer handle.
    buf: PktBuf,
}

impl Frame {
    /// Wraps a buffer handle with its flow position.
    pub fn new(seq: u64, buf: PktBuf) -> Self {
        Self { seq, buf }
    }

    /// Builds a frame from owned bytes without a pool (tests, ad-hoc
    /// traffic).
    pub fn from_vec(seq: u64, bytes: Vec<u8>) -> Self {
        Self::new(seq, PktBuf::from_vec(bytes))
    }

    /// The complete overlay frame bytes.
    pub fn bytes(&self) -> &[u8] {
        &self.buf
    }

    /// The underlying buffer handle.
    pub fn buf(&self) -> &PktBuf {
        &self.buf
    }

    /// The receive-side flow hash: FNV-1a over the outer IP addresses
    /// and the UDP *source* port — the fields that carry flow identity
    /// for tunneled traffic. Encapsulators derive the outer source port
    /// from the inner flow's entropy, while the destination port only
    /// names the tunnel type (4789 VXLAN, 6081 Geneve), so the same
    /// overlay flow hashes identically under either encapsulation.
    /// Steering policies key on this to pin or spread flows.
    ///
    /// Field offsets are derived from the parsed outer headers (the
    /// Ethernet header and the IPv4 IHL), so frames carrying IPv4
    /// options hash their real addresses and ports rather than whatever
    /// bytes sit at the no-options offsets.
    pub fn try_flow_hash(&self) -> Result<u32, ParseError> {
        let bytes = self.bytes();
        let (eth, rest) = EthernetHeader::parse(bytes)?;
        if eth.ethertype != EtherType::Ipv4 {
            return Err(ParseError::Malformed("outer ethertype"));
        }
        let (ip, l4) = Ipv4Header::parse(rest)?;
        if ip.protocol != PROTO_UDP {
            return Err(ParseError::Malformed("outer protocol"));
        }
        if l4.len() < 2 {
            return Err(ParseError::Truncated);
        }
        // Hash in wire order: src IP, dst IP, UDP source port.
        let mut h = 0x811c9dc5u32;
        for &b in ip.src.iter().chain(&ip.dst).chain(&l4[..2]) {
            h ^= b as u32;
            h = h.wrapping_mul(0x01000193);
        }
        Ok(h)
    }

    /// Infallible [`Self::try_flow_hash`].
    ///
    /// # Panics
    /// Panics on a frame whose outer headers do not parse — the runtime
    /// generates its own valid traffic, so corruption here is a bug,
    /// not an input error.
    pub fn flow_hash(&self) -> u32 {
        self.try_flow_hash()
            .expect("generated frame must have parseable outer headers")
    }
}

/// Wire length of a generated overlay frame with `payload_len` payload
/// bytes — the slot size [`generate_frames`] pools for.
pub fn frame_wire_len(payload_len: usize) -> usize {
    OVERLAY_HEADER_BYTES + payload_len
}

/// Builds `n` frames of one TCP flow with `payload_len`-byte payloads,
/// pooled in a dedicated [`BufPool`] sized exactly for them (reachable
/// through [`Frame::buf`]).
///
/// Payload content is derived from the sequence number, so the digest a
/// worker computes identifies the packet — any mix-up surfaces as a digest
/// mismatch, not just an ordering error.
pub fn generate_frames(n: usize, payload_len: usize) -> Vec<Frame> {
    let pool = BufPool::for_frames(n, frame_wire_len(payload_len));
    generate_frames_into(&pool, n, payload_len)
}

/// [`generate_frames`] into a caller-owned pool: one reused scratch
/// vector, one slab copy per frame, no per-frame heap allocation — the
/// steady-state recycle path the benches measure.
pub fn generate_frames_into(pool: &BufPool, n: usize, payload_len: usize) -> Vec<Frame> {
    let mut scratch = Vec::with_capacity(frame_wire_len(payload_len));
    (0..n as u64)
        .map(|seq| {
            let mut payload = vec![0u8; payload_len];
            let mut x = seq.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
            for b in payload.iter_mut() {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                *b = x as u8;
            }
            let spec =
                OverlayFrameSpec::example_tcp(1, (seq as u32).wrapping_mul(1448), payload);
            build_overlay_frame_into(&spec, &mut scratch);
            Frame::new(seq, pool.alloc(&scratch))
        })
        .collect()
}

/// Replays a pcap byte stream into pooled frames: each record is copied
/// once, straight into a slab slot, and numbered in capture order.
/// Returns the error of a malformed or truncated capture.
pub fn frames_from_pcap(pool: &BufPool, data: &[u8]) -> Result<Vec<Frame>, ParseError> {
    let mut frames = Vec::new();
    visit_pcap_records(data, |_ts_ns, record| {
        let seq = frames.len() as u64;
        frames.push(Frame::new(seq, pool.alloc(record)));
    })?;
    Ok(frames)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mflow_net::frame::{build_geneve_frame, build_overlay_frame, parse_overlay_frame};
    use mflow_net::pcap::PcapWriter;

    #[test]
    fn generated_frames_parse_and_differ() {
        let frames = generate_frames(8, 256);
        assert_eq!(frames.len(), 8);
        let mut payloads = std::collections::BTreeSet::new();
        for f in &frames {
            let parsed = parse_overlay_frame(f.bytes()).unwrap();
            assert_eq!(parsed.payload.len(), 256);
            payloads.insert(parsed.payload);
        }
        assert_eq!(payloads.len(), 8, "payloads must be distinct per seq");
    }

    #[test]
    fn sequence_numbers_are_dense() {
        let frames = generate_frames(100, 16);
        for (i, f) in frames.iter().enumerate() {
            assert_eq!(f.seq, i as u64);
        }
    }

    #[test]
    fn empty_payload_frames_are_valid() {
        let frames = generate_frames(3, 0);
        for f in &frames {
            assert!(parse_overlay_frame(f.bytes()).is_ok());
        }
    }

    #[test]
    fn flow_hash_is_constant_across_one_flow() {
        let frames = generate_frames(64, 128);
        let h = frames[0].flow_hash();
        assert!(frames.iter().all(|f| f.flow_hash() == h));
    }

    #[test]
    fn generation_is_pooled_and_slots_recycle() {
        let pool = BufPool::for_frames(16, frame_wire_len(64));
        let frames = generate_frames_into(&pool, 16, 64);
        let s = pool.stats();
        assert_eq!(s.hits, 16);
        assert_eq!(s.misses, 0);
        assert_eq!(pool.in_flight(), 16);
        drop(frames);
        assert_eq!(pool.in_flight(), 0, "every frame buffer returns to the pool");
        // The next generation reuses the recycled slots.
        let again = generate_frames_into(&pool, 16, 64);
        assert_eq!(pool.stats().misses, 0);
        assert_eq!(again.len(), 16);
    }

    #[test]
    fn flow_hash_matches_geneve_and_survives_ipv4_options() {
        // Same outer flow under a different tunnel: identical hash,
        // since only outer addresses and ports are keyed.
        let spec = OverlayFrameSpec::example_tcp(1, 0, vec![5u8; 32]);
        let vxlan = Frame::from_vec(0, build_overlay_frame(&spec));
        let geneve = Frame::from_vec(1, build_geneve_frame(&spec));
        assert_eq!(vxlan.flow_hash(), geneve.flow_hash());

        // Inject 4 bytes of IPv4 options into the outer header (IHL 6,
        // padded no-ops) and refresh the header checksum: the derived
        // offsets must still find the real ports.
        let mut bytes = build_overlay_frame(&spec);
        bytes.splice(34..34, [0x01, 0x01, 0x01, 0x01]);
        bytes[14] = 0x46; // version 4, IHL 6
        bytes[24] = 0; // zero the stored checksum ...
        bytes[25] = 0;
        let ck = mflow_net::checksum::checksum(&bytes[14..38]);
        bytes[24..26].copy_from_slice(&ck.to_be_bytes());
        let with_options = Frame::from_vec(2, bytes);
        assert_eq!(
            with_options.flow_hash(),
            vxlan.flow_hash(),
            "IPv4 options must not shift the hashed fields"
        );
    }

    #[test]
    fn malformed_outer_headers_hash_to_a_typed_error() {
        assert!(Frame::from_vec(0, vec![0u8; 10]).try_flow_hash().is_err());
        let mut bytes = build_overlay_frame(&OverlayFrameSpec::example_tcp(1, 0, vec![]));
        bytes[12] = 0x08; // ethertype -> ARP
        bytes[13] = 0x06;
        assert!(matches!(
            Frame::from_vec(0, bytes).try_flow_hash(),
            Err(ParseError::Malformed("outer ethertype"))
        ));
    }

    #[test]
    fn pcap_replay_builds_into_the_pool() {
        let specs: Vec<Vec<u8>> = (0..5u64)
            .map(|i| {
                build_overlay_frame(&OverlayFrameSpec::example_tcp(i, i as u32, vec![i as u8; 40]))
            })
            .collect();
        let mut w = PcapWriter::new(Vec::new()).unwrap();
        for (i, f) in specs.iter().enumerate() {
            w.write_frame(i as u64 * 1000, f).unwrap();
        }
        let capture = w.finish().unwrap();
        let pool = BufPool::for_frames(5, 256);
        let frames = frames_from_pcap(&pool, &capture).unwrap();
        assert_eq!(frames.len(), 5);
        for (i, f) in frames.iter().enumerate() {
            assert_eq!(f.seq, i as u64);
            assert_eq!(f.bytes(), &specs[i][..]);
            assert!(f.buf().slot().is_some(), "records must land in slab slots");
        }
        assert!(frames_from_pcap(&pool, &capture[..capture.len() - 3]).is_err());
    }
}
