//! Real frame generation for the runtime: a stream of VXLAN-encapsulated
//! TCP segments of one flow, with sequence numbers embedded so loss,
//! duplication and reordering are all detectable downstream.

use mflow_net::frame::{build_overlay_frame, OverlayFrameSpec};

/// One wire frame plus its position in the flow.
#[derive(Clone, Debug)]
pub struct Frame {
    /// Position in the original flow (the ground-truth order).
    pub seq: u64,
    /// The complete overlay frame bytes.
    pub bytes: Vec<u8>,
}

impl Frame {
    /// The receive-side flow hash: FNV-1a over the outer IP addresses and
    /// UDP ports — the same header fields NIC RSS hashes for a VXLAN
    /// frame, and constant across every frame of one flow. Steering
    /// policies key on this to pin or spread flows.
    pub fn flow_hash(&self) -> u32 {
        // Outer Ethernet (14) + IP header to the address fields (12):
        // src/dst IPv4 at 26..34, then the UDP ports at 34..38.
        let end = self.bytes.len().min(38);
        let start = 26.min(end);
        let mut h = 0x811c9dc5u32;
        for &b in &self.bytes[start..end] {
            h ^= b as u32;
            h = h.wrapping_mul(0x01000193);
        }
        h
    }
}

/// Builds `n` frames of one TCP flow with `payload_len`-byte payloads.
///
/// Payload content is derived from the sequence number, so the digest a
/// worker computes identifies the packet — any mix-up surfaces as a digest
/// mismatch, not just an ordering error.
pub fn generate_frames(n: usize, payload_len: usize) -> Vec<Frame> {
    (0..n as u64)
        .map(|seq| {
            let mut payload = vec![0u8; payload_len];
            let mut x = seq.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
            for b in payload.iter_mut() {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                *b = x as u8;
            }
            let spec =
                OverlayFrameSpec::example_tcp(1, (seq as u32).wrapping_mul(1448), payload);
            Frame {
                seq,
                bytes: build_overlay_frame(&spec),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mflow_net::frame::parse_overlay_frame;

    #[test]
    fn generated_frames_parse_and_differ() {
        let frames = generate_frames(8, 256);
        assert_eq!(frames.len(), 8);
        let mut payloads = std::collections::BTreeSet::new();
        for f in &frames {
            let parsed = parse_overlay_frame(&f.bytes).unwrap();
            assert_eq!(parsed.payload.len(), 256);
            payloads.insert(parsed.payload);
        }
        assert_eq!(payloads.len(), 8, "payloads must be distinct per seq");
    }

    #[test]
    fn sequence_numbers_are_dense() {
        let frames = generate_frames(100, 16);
        for (i, f) in frames.iter().enumerate() {
            assert_eq!(f.seq, i as u64);
        }
    }

    #[test]
    fn empty_payload_frames_are_valid() {
        let frames = generate_frames(3, 0);
        for f in &frames {
            assert!(parse_overlay_frame(&f.bytes).is_ok());
        }
    }

    #[test]
    fn flow_hash_is_constant_across_one_flow() {
        let frames = generate_frames(64, 128);
        let h = frames[0].flow_hash();
        assert!(frames.iter().all(|f| f.flow_hash() == h));
    }
}
