//! Lock-free SPSC request rings — the userspace analogue of the paper's
//! per-core packet-request ring buffers.
//!
//! The paper's IRQ-splitting function hands packet batches from the
//! dispatching core to splitting cores through per-core ring buffers so
//! the hot path never takes a lock. This module is that transport for the
//! threaded pipeline: a bounded single-producer/single-consumer ring with
//!
//! * cache-line-padded atomic head and tail indices (no false sharing
//!   between the producer's and consumer's hot words),
//! * power-of-two physical capacity (index masking, no modulo) with an
//!   exact logical bound so `queue_depth` keeps its meaning,
//! * batch-granular push and pop — one index publish per batch, not per
//!   item ([`RingProducer::push_all`], [`RingConsumer::pop_batch`]),
//! * spin-then-park waiting: a short spin for the fast handoff, a few
//!   scheduler yields (this matters on overcommitted hosts), then a
//!   parked sleep with an explicit wake from the other side, and
//! * close-on-drop in both directions, mirroring `mpsc` disconnect
//!   semantics so the pipeline's dead-lane recovery works unchanged.
//!
//! [`ring_mux`] builds the merge-side fan-in: one SPSC ring per producer
//! sharing a single not-empty waiter, drained round-robin by a
//! [`RingMux`] — N producers, one consumer, still zero locks on the hot
//! path.

use std::cell::UnsafeCell;
use std::collections::VecDeque;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{self, Thread};
use std::time::{Duration, Instant};

/// Pads a hot atomic to its own cache line.
#[repr(align(64))]
struct CachePadded<T>(T);

/// Spins before yielding.
const SPIN_LIMIT: u32 = 64;
/// Scheduler yields before parking (cheap progress on a shared core).
const YIELD_LIMIT: u32 = 8;
/// Park backstop: an explicit wake normally arrives first; the timeout
/// only bounds the cost of a lost race between park and wake.
const PARK_TIMEOUT: Duration = Duration::from_micros(200);

/// One side's parked-thread slot: the waiter registers itself, re-checks
/// the ring, then parks; the other side wakes it after publishing.
#[derive(Default)]
struct Waiter {
    parked: AtomicBool,
    thread: Mutex<Option<Thread>>,
}

impl Waiter {
    /// Registers the calling thread as the parked waiter. The caller must
    /// re-check the ring between `prepare` and `park` — that re-check is
    /// what closes the missed-wakeup window.
    fn prepare(&self) {
        *self.thread.lock().expect("waiter mutex") = Some(thread::current());
        self.parked.store(true, Ordering::SeqCst);
    }

    /// Deregisters without parking (the re-check found work).
    fn cancel(&self) {
        self.parked.store(false, Ordering::SeqCst);
    }

    /// Parks the calling thread until woken or `timeout` elapses.
    fn park(&self, timeout: Duration) {
        thread::park_timeout(timeout);
        self.parked.store(false, Ordering::SeqCst);
    }

    /// Wakes the parked waiter, if any.
    fn wake(&self) {
        if self.parked.swap(false, Ordering::SeqCst) {
            let t = self.thread.lock().expect("waiter mutex").clone();
            if let Some(t) = t {
                t.unpark();
            }
        }
    }
}

/// The shared ring state. Indices are monotonically increasing; the slot
/// for index `i` is `slots[i & mask]`, and `tail - head` is the number of
/// items in flight.
struct RingShared<T> {
    slots: Box<[UnsafeCell<MaybeUninit<T>>]>,
    mask: usize,
    /// Logical capacity: `tail - head` never exceeds this, even when the
    /// physical (power-of-two) slot count is larger.
    cap: usize,
    /// Producer-owned publish index.
    tail: CachePadded<AtomicUsize>,
    /// Consumer-owned release index.
    head: CachePadded<AtomicUsize>,
    producer_closed: AtomicBool,
    consumer_closed: AtomicBool,
    /// Consumer parks here; shared across rings in a [`RingMux`].
    not_empty: Arc<Waiter>,
    not_full: Waiter,
}

// SAFETY: slots are only written by the single producer at indices the
// consumer has not yet acquired, and only read by the single consumer at
// indices the producer has published with a Release store.
unsafe impl<T: Send> Sync for RingShared<T> {}

impl<T> Drop for RingShared<T> {
    fn drop(&mut self) {
        let head = *self.head.0.get_mut();
        let tail = *self.tail.0.get_mut();
        for i in head..tail {
            // SAFETY: [head, tail) holds published, never-consumed items;
            // both handles are gone, so this is the only access.
            unsafe { (*self.slots[i & self.mask].get()).assume_init_drop() };
        }
    }
}

/// The consumer disconnected: the error of a batched [`RingProducer::push_all`],
/// whose already-consumed items cannot be handed back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RingClosed;

impl std::fmt::Display for RingClosed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ring consumer disconnected")
    }
}

impl std::error::Error for RingClosed {}

/// Why a push did not complete.
pub enum RingSendError<T> {
    /// The ring is at its logical capacity; the item comes back.
    Full(T),
    /// The consumer is gone; the item comes back.
    Closed(T),
}

impl<T> std::fmt::Debug for RingSendError<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            RingSendError::Full(_) => "Full(..)",
            RingSendError::Closed(_) => "Closed(..)",
        })
    }
}

/// The producing half. Not cloneable: single producer by construction.
pub struct RingProducer<T> {
    ring: Arc<RingShared<T>>,
    /// Stale copy of `head`, refreshed only when the ring looks full —
    /// the common-case push never touches the consumer's cache line.
    head_cache: usize,
}

impl<T> RingProducer<T> {
    /// Non-blocking push.
    pub fn try_push(&mut self, value: T) -> Result<(), RingSendError<T>> {
        if self.ring.consumer_closed.load(Ordering::Acquire) {
            return Err(RingSendError::Closed(value));
        }
        let tail = self.ring.tail.0.load(Ordering::Relaxed);
        if tail - self.head_cache >= self.ring.cap {
            self.head_cache = self.ring.head.0.load(Ordering::Acquire);
            if tail - self.head_cache >= self.ring.cap {
                return Err(RingSendError::Full(value));
            }
        }
        // SAFETY: slot `tail` is unpublished and past the consumer's head.
        unsafe { (*self.ring.slots[tail & self.ring.mask].get()).write(value) };
        self.ring.tail.0.store(tail + 1, Ordering::Release);
        self.ring.not_empty.wake();
        Ok(())
    }

    /// Blocking push: spin, yield, then park until space frees up.
    /// Returns the item when the consumer is gone.
    pub fn push(&mut self, mut value: T) -> Result<(), T> {
        let mut attempts = 0u32;
        loop {
            value = match self.try_push(value) {
                Ok(()) => return Ok(()),
                Err(RingSendError::Closed(v)) => return Err(v),
                Err(RingSendError::Full(v)) => v,
            };
            if attempts < SPIN_LIMIT {
                std::hint::spin_loop();
            } else if attempts < SPIN_LIMIT + YIELD_LIMIT {
                thread::yield_now();
            } else {
                self.ring.not_full.prepare();
                if self.has_space() || self.ring.consumer_closed.load(Ordering::Acquire) {
                    self.ring.not_full.cancel();
                } else {
                    self.ring.not_full.park(PARK_TIMEOUT);
                }
            }
            attempts = attempts.saturating_add(1);
        }
    }

    /// Pushes every item, blocking while full, publishing the tail once
    /// per claimed stretch of free slots instead of once per item.
    /// Returns [`RingClosed`] once the consumer is gone (remaining items
    /// are dropped, exactly as an `mpsc` send error discards its
    /// payload).
    pub fn push_all<I: IntoIterator<Item = T>>(&mut self, items: I) -> Result<(), RingClosed> {
        let mut it = items.into_iter().peekable();
        let mut attempts = 0u32;
        while it.peek().is_some() {
            if self.ring.consumer_closed.load(Ordering::Acquire) {
                return Err(RingClosed);
            }
            let tail = self.ring.tail.0.load(Ordering::Relaxed);
            self.head_cache = self.ring.head.0.load(Ordering::Acquire);
            let free = self.ring.cap - (tail - self.head_cache);
            if free == 0 {
                if attempts < SPIN_LIMIT {
                    std::hint::spin_loop();
                } else if attempts < SPIN_LIMIT + YIELD_LIMIT {
                    thread::yield_now();
                } else {
                    self.ring.not_full.prepare();
                    if self.has_space() || self.ring.consumer_closed.load(Ordering::Acquire) {
                        self.ring.not_full.cancel();
                    } else {
                        self.ring.not_full.park(PARK_TIMEOUT);
                    }
                }
                attempts = attempts.saturating_add(1);
                continue;
            }
            attempts = 0;
            let mut n = 0usize;
            while n < free {
                let Some(value) = it.next() else { break };
                // SAFETY: slots [tail, tail + free) are unpublished and
                // past the consumer's head.
                unsafe {
                    (*self.ring.slots[(tail + n) & self.ring.mask].get()).write(value);
                }
                n += 1;
            }
            self.ring.tail.0.store(tail + n, Ordering::Release);
            self.ring.not_empty.wake();
        }
        Ok(())
    }

    fn has_space(&mut self) -> bool {
        let tail = self.ring.tail.0.load(Ordering::Relaxed);
        self.head_cache = self.ring.head.0.load(Ordering::Acquire);
        tail - self.head_cache < self.ring.cap
    }
}

impl<T> Drop for RingProducer<T> {
    fn drop(&mut self) {
        self.ring.producer_closed.store(true, Ordering::Release);
        self.ring.not_empty.wake();
    }
}

/// The consuming half. Not cloneable: single consumer by construction.
pub struct RingConsumer<T> {
    ring: Arc<RingShared<T>>,
    /// Stale copy of `tail`, refreshed only when the ring looks empty.
    tail_cache: usize,
}

impl<T> RingConsumer<T> {
    /// Non-blocking pop.
    pub fn try_pop(&mut self) -> Option<T> {
        let head = self.ring.head.0.load(Ordering::Relaxed);
        if head == self.tail_cache {
            self.tail_cache = self.ring.tail.0.load(Ordering::Acquire);
            if head == self.tail_cache {
                return None;
            }
        }
        // SAFETY: slot `head` was published by the producer's Release
        // store of `tail` past it.
        let value = unsafe { (*self.ring.slots[head & self.ring.mask].get()).assume_init_read() };
        self.ring.head.0.store(head + 1, Ordering::Release);
        self.ring.not_full.wake();
        Some(value)
    }

    /// Pops up to `max` items with a single head publish. Returns how
    /// many were appended to `out`.
    pub fn pop_batch(&mut self, out: &mut VecDeque<T>, max: usize) -> usize {
        let head = self.ring.head.0.load(Ordering::Relaxed);
        if head == self.tail_cache {
            self.tail_cache = self.ring.tail.0.load(Ordering::Acquire);
        }
        let n = (self.tail_cache - head).min(max);
        for i in 0..n {
            // SAFETY: slots [head, tail) are published and unconsumed.
            let value = unsafe {
                (*self.ring.slots[(head + i) & self.ring.mask].get()).assume_init_read()
            };
            out.push_back(value);
        }
        if n > 0 {
            self.ring.head.0.store(head + n, Ordering::Release);
            self.ring.not_full.wake();
        }
        n
    }

    /// Whether the producer is gone. Loaded with Acquire, so a `true`
    /// result means every item the producer ever published is visible.
    pub fn producer_closed(&self) -> bool {
        self.ring.producer_closed.load(Ordering::Acquire)
    }

    /// Blocking pop: spin, yield, then park until an item arrives.
    /// `None` means the producer is gone and the ring is drained.
    pub fn pop(&mut self) -> Option<T> {
        let mut attempts = 0u32;
        loop {
            // Closed is read before the pop: set-after-last-publish on the
            // producer side means closed-then-empty is truly drained.
            let closed = self.producer_closed();
            if let Some(v) = self.try_pop() {
                return Some(v);
            }
            if closed {
                return None;
            }
            if attempts < SPIN_LIMIT {
                std::hint::spin_loop();
            } else if attempts < SPIN_LIMIT + YIELD_LIMIT {
                thread::yield_now();
            } else {
                self.ring.not_empty.prepare();
                if self.has_item() || self.producer_closed() {
                    self.ring.not_empty.cancel();
                } else {
                    self.ring.not_empty.park(PARK_TIMEOUT);
                }
            }
            attempts = attempts.saturating_add(1);
        }
    }

    fn has_item(&mut self) -> bool {
        let head = self.ring.head.0.load(Ordering::Relaxed);
        self.tail_cache = self.ring.tail.0.load(Ordering::Acquire);
        head != self.tail_cache
    }
}

impl<T> Drop for RingConsumer<T> {
    fn drop(&mut self) {
        self.ring.consumer_closed.store(true, Ordering::Release);
        self.ring.not_full.wake();
    }
}

fn shared<T>(cap: usize, not_empty: Arc<Waiter>) -> Arc<RingShared<T>> {
    assert!(cap >= 1, "ring capacity must be at least 1");
    let physical = cap.next_power_of_two();
    let slots: Box<[UnsafeCell<MaybeUninit<T>>]> = (0..physical)
        .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
        .collect();
    Arc::new(RingShared {
        slots,
        mask: physical - 1,
        cap,
        tail: CachePadded(AtomicUsize::new(0)),
        head: CachePadded(AtomicUsize::new(0)),
        producer_closed: AtomicBool::new(false),
        consumer_closed: AtomicBool::new(false),
        not_empty,
        not_full: Waiter::default(),
    })
}

/// A bounded SPSC ring holding at most `cap` items (any `cap >= 1`; the
/// physical slot count is the next power of two, the logical bound is
/// exactly `cap`).
pub fn spsc<T>(cap: usize) -> (RingProducer<T>, RingConsumer<T>) {
    let ring = shared(cap, Arc::new(Waiter::default()));
    (
        RingProducer {
            ring: Arc::clone(&ring),
            head_cache: 0,
        },
        RingConsumer {
            ring,
            tail_cache: 0,
        },
    )
}

/// Why a [`RingMux`] receive returned empty-handed.
#[derive(Debug, PartialEq, Eq)]
pub enum MuxRecvError {
    /// The deadline passed with no arrivals.
    Timeout,
    /// Every producer is gone and every ring is drained.
    Disconnected,
}

/// Late-registration side-channel of a [`RingMux`]: consumers queued by
/// [`MuxRegistrar::add_producer`] wait here until the mux absorbs them on
/// its next receive pass.
struct MuxPending<T> {
    adds: Mutex<Vec<RingConsumer<T>>>,
    /// Fast-path hint that `adds` is non-empty (the mux never takes the
    /// lock on its hot path unless this is set).
    flag: AtomicBool,
    /// Live registrar handles. While any exist the mux cannot report
    /// [`MuxRecvError::Disconnected`] — a new producer may yet appear.
    registrars: AtomicUsize,
    /// The mux's park waiter, shared so a registration can unpark it.
    waiter: Arc<Waiter>,
    /// Ring capacity for late-added producers (same as the original set).
    cap: usize,
}

/// Handle for wiring new producers into a live [`RingMux`] — the
/// supervisor uses one to give a respawned worker its own merger ring.
///
/// Registration explicitly wakes a parked mux, so a consumer blocked in
/// [`RingMux::recv_deadline`] observes the re-wired producer promptly
/// instead of at the park backstop. Dropping the last registrar (and all
/// producers) lets the mux disconnect.
pub struct MuxRegistrar<T> {
    pending: Arc<MuxPending<T>>,
}

impl<T> MuxRegistrar<T> {
    /// Creates a fresh SPSC ring feeding the mux and returns its producer
    /// half. The mux absorbs the consumer half on its next receive pass.
    pub fn add_producer(&self) -> RingProducer<T> {
        let ring = shared(self.pending.cap, Arc::clone(&self.pending.waiter));
        let tx = RingProducer {
            ring: Arc::clone(&ring),
            head_cache: 0,
        };
        self.pending
            .adds
            .lock()
            .expect("mux registrar lock")
            .push(RingConsumer {
                ring,
                tail_cache: 0,
            });
        self.pending.flag.store(true, Ordering::Release);
        // The explicit unpark: without it a parked mux would only notice
        // the new ring at its next park timeout.
        self.pending.waiter.wake();
        tx
    }
}

impl<T> Clone for MuxRegistrar<T> {
    fn clone(&self) -> Self {
        self.pending.registrars.fetch_add(1, Ordering::SeqCst);
        Self {
            pending: Arc::clone(&self.pending),
        }
    }
}

impl<T> Drop for MuxRegistrar<T> {
    fn drop(&mut self) {
        self.pending.registrars.fetch_sub(1, Ordering::SeqCst);
        // A mux parked waiting for "maybe another producer" can now
        // re-evaluate disconnection.
        self.pending.waiter.wake();
    }
}

/// Fan-in over per-producer SPSC rings: the merge-side consumer. Drains
/// rings round-robin in batches; parks on the single waiter every
/// producer wakes.
pub struct RingMux<T> {
    rings: Vec<RingConsumer<T>>,
    next: usize,
    waiter: Arc<Waiter>,
    scratch: VecDeque<T>,
    /// Late-registration channel; `None` for a fixed producer set.
    pending: Option<Arc<MuxPending<T>>>,
}

/// How many items one refill drains from one ring.
const MUX_BATCH: usize = 64;

impl<T> RingMux<T> {
    /// Receives one item, waiting at most until `deadline` (forever when
    /// `None`).
    pub fn recv_deadline(&mut self, deadline: Option<Instant>) -> Result<T, MuxRecvError> {
        let mut attempts = 0u32;
        loop {
            if let Some(v) = self.scratch.pop_front() {
                return Ok(v);
            }
            if self.refill() > 0 {
                continue;
            }
            if self.all_drained() {
                return Err(MuxRecvError::Disconnected);
            }
            if let Some(d) = deadline {
                if Instant::now() >= d {
                    return Err(MuxRecvError::Timeout);
                }
            }
            if attempts < SPIN_LIMIT {
                std::hint::spin_loop();
            } else if attempts < SPIN_LIMIT + YIELD_LIMIT {
                thread::yield_now();
            } else {
                self.waiter.prepare();
                if self.refill() > 0 || self.all_drained() {
                    self.waiter.cancel();
                } else {
                    let nap = match deadline {
                        Some(d) => d
                            .saturating_duration_since(Instant::now())
                            .min(PARK_TIMEOUT),
                        None => PARK_TIMEOUT,
                    };
                    self.waiter.park(nap.max(Duration::from_micros(1)));
                }
            }
            attempts = attempts.saturating_add(1);
        }
    }

    /// Absorbs any consumers queued by a [`MuxRegistrar`] into the
    /// round-robin set.
    fn absorb_pending(&mut self) {
        let Some(p) = &self.pending else { return };
        if p.flag.swap(false, Ordering::AcqRel) {
            let mut adds = p.adds.lock().expect("mux registrar lock");
            self.rings.append(&mut adds);
        }
    }

    /// One round-robin sweep, draining up to [`MUX_BATCH`] per ring into
    /// the scratch queue. Returns how many items arrived.
    ///
    /// Terminally dead rings — producer handle dropped and nothing left
    /// to pop — are pruned from the sweep set. A respawned worker is
    /// wired in through a *fresh* ring (`MuxRegistrar::add_producer`),
    /// never by reviving an old one, so `closed && empty` can never
    /// un-happen; without pruning, every supervised respawn would leave
    /// a dead ring to probe on every sweep for the rest of the run,
    /// capping post-recovery merge throughput.
    fn refill(&mut self) -> usize {
        self.absorb_pending();
        let n = self.rings.len();
        if n == 0 {
            return 0;
        }
        let mut got = 0;
        let mut saw_dead = false;
        for k in 0..n {
            let i = (self.next + k) % n;
            let popped = self.rings[i].pop_batch(&mut self.scratch, MUX_BATCH);
            if popped == 0 && self.rings[i].producer_closed() && !self.rings[i].has_item() {
                saw_dead = true;
            }
            got += popped;
        }
        self.next = (self.next + 1) % n;
        if saw_dead {
            // Closed-before-emptiness ordering as in `all_drained`: a
            // ring observed closed and empty cannot receive a final
            // publish, so dropping its consumer loses nothing.
            self.rings
                .retain_mut(|r| !r.producer_closed() || r.has_item());
            self.next = 0;
        }
        got
    }

    /// Whether every producer has closed with nothing left to pop. Closed
    /// flags are read before the emptiness probe, so a true result cannot
    /// race with a final publish. While a registrar is alive (or a
    /// registered ring has not been absorbed yet) the mux is never
    /// drained — a respawned producer may still appear.
    fn all_drained(&mut self) -> bool {
        if let Some(p) = &self.pending {
            if p.registrars.load(Ordering::SeqCst) > 0 || p.flag.load(Ordering::Acquire) {
                return false;
            }
        }
        self.scratch.is_empty()
            && self.rings.iter_mut().all(|r| {
                let closed = r.producer_closed();
                closed && !r.has_item()
            })
    }
}

/// `producers` SPSC rings of capacity `cap` each, fanned into one
/// [`RingMux`].
pub fn ring_mux<T>(producers: usize, cap: usize) -> (Vec<RingProducer<T>>, RingMux<T>) {
    let waiter = Arc::new(Waiter::default());
    let mut txs = Vec::with_capacity(producers);
    let mut rxs = Vec::with_capacity(producers);
    for _ in 0..producers {
        let ring = shared(cap, Arc::clone(&waiter));
        txs.push(RingProducer {
            ring: Arc::clone(&ring),
            head_cache: 0,
        });
        rxs.push(RingConsumer {
            ring,
            tail_cache: 0,
        });
    }
    (
        txs,
        RingMux {
            rings: rxs,
            next: 0,
            waiter,
            scratch: VecDeque::new(),
            pending: None,
        },
    )
}

/// Like [`ring_mux`], plus a [`MuxRegistrar`] for wiring in new producers
/// while the mux is live (worker respawn). The mux will not report
/// [`MuxRecvError::Disconnected`] until the last registrar is dropped.
pub fn ring_mux_with_registrar<T>(
    producers: usize,
    cap: usize,
) -> (Vec<RingProducer<T>>, RingMux<T>, MuxRegistrar<T>) {
    let (txs, mut mux) = ring_mux(producers, cap);
    let pending = Arc::new(MuxPending {
        adds: Mutex::new(Vec::new()),
        flag: AtomicBool::new(false),
        registrars: AtomicUsize::new(1),
        waiter: Arc::clone(&mux.waiter),
        cap,
    });
    mux.pending = Some(Arc::clone(&pending));
    (txs, mux, MuxRegistrar { pending })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_single_thread() {
        let (mut tx, mut rx) = spsc::<u32>(4);
        for i in 0..4 {
            tx.try_push(i).expect("space for 4");
        }
        assert!(matches!(tx.try_push(99), Err(RingSendError::Full(99))));
        for i in 0..4 {
            assert_eq!(rx.try_pop(), Some(i));
        }
        assert_eq!(rx.try_pop(), None);
    }

    #[test]
    fn wraparound_many_times() {
        let (mut tx, mut rx) = spsc::<usize>(3); // physical 4, logical 3
        for round in 0..1000 {
            for i in 0..3 {
                tx.try_push(round * 3 + i).expect("space");
            }
            assert!(matches!(tx.try_push(0), Err(RingSendError::Full(_))));
            for i in 0..3 {
                assert_eq!(rx.try_pop(), Some(round * 3 + i));
            }
        }
    }

    #[test]
    fn non_power_of_two_capacity_is_exact() {
        let (mut tx, mut rx) = spsc::<u8>(5);
        for i in 0..5 {
            assert!(tx.try_push(i).is_ok());
        }
        assert!(matches!(tx.try_push(9), Err(RingSendError::Full(_))));
        assert_eq!(rx.try_pop(), Some(0));
        assert!(tx.try_push(9).is_ok());
    }

    #[test]
    fn consumer_drop_closes_the_ring() {
        let (mut tx, rx) = spsc::<u8>(2);
        drop(rx);
        assert!(matches!(tx.try_push(1), Err(RingSendError::Closed(1))));
        assert!(tx.push(1).is_err());
        assert!(tx.push_all([1, 2, 3]).is_err());
    }

    #[test]
    fn producer_drop_drains_then_disconnects() {
        let (mut tx, mut rx) = spsc::<u8>(4);
        tx.try_push(7).expect("space");
        tx.try_push(8).expect("space");
        drop(tx);
        assert_eq!(rx.pop(), Some(7));
        assert_eq!(rx.pop(), Some(8));
        assert_eq!(rx.pop(), None);
    }

    #[test]
    fn batch_push_and_pop_move_whole_batches() {
        let (mut tx, mut rx) = spsc::<usize>(8);
        tx.push_all(0..6).expect("consumer alive");
        let mut out = VecDeque::new();
        assert_eq!(rx.pop_batch(&mut out, 4), 4);
        assert_eq!(rx.pop_batch(&mut out, 4), 2);
        assert_eq!(out.into_iter().collect::<Vec<_>>(), (0..6).collect::<Vec<_>>());
    }

    #[test]
    fn push_all_larger_than_capacity_round_trips() {
        let (mut tx, mut rx) = spsc::<usize>(4);
        let n = 10_000;
        let h = thread::spawn(move || {
            let mut got = Vec::with_capacity(n);
            while let Some(v) = rx.pop() {
                got.push(v);
            }
            got
        });
        tx.push_all(0..n).expect("consumer alive");
        drop(tx);
        assert_eq!(h.join().expect("consumer"), (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn cross_thread_stress_preserves_sequence() {
        let (mut tx, mut rx) = spsc::<u64>(2);
        let n = 50_000u64;
        let h = thread::spawn(move || {
            for i in 0..n {
                assert_eq!(rx.pop(), Some(i), "out of order at {i}");
            }
            assert_eq!(rx.pop(), None);
        });
        for i in 0..n {
            tx.push(i).expect("consumer alive");
        }
        drop(tx);
        h.join().expect("consumer");
    }

    #[test]
    fn dropped_ring_drops_in_flight_items() {
        struct Counted(Arc<AtomicUsize>);
        impl Drop for Counted {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }
        let drops = Arc::new(AtomicUsize::new(0));
        let (mut tx, mut rx) = spsc::<Counted>(8);
        for _ in 0..5 {
            tx.try_push(Counted(Arc::clone(&drops))).expect("space");
        }
        drop(rx.try_pop()); // one consumed and dropped
        drop(tx);
        drop(rx); // four still in flight
        assert_eq!(drops.load(Ordering::SeqCst), 5);
    }

    #[test]
    fn mux_fans_in_and_disconnects() {
        let (mut txs, mut mux) = ring_mux::<u64>(3, 4);
        let handles: Vec<_> = txs
            .drain(..)
            .enumerate()
            .map(|(k, mut tx)| {
                thread::spawn(move || {
                    for i in 0..1000u64 {
                        tx.push(k as u64 * 1_000_000 + i).expect("mux alive");
                    }
                })
            })
            .collect();
        let mut per_src = [0u64; 3];
        let mut total = 0;
        loop {
            match mux.recv_deadline(None) {
                Ok(v) => {
                    let src = (v / 1_000_000) as usize;
                    // Per-producer FIFO survives the fan-in.
                    assert_eq!(v % 1_000_000, per_src[src], "reorder from producer {src}");
                    per_src[src] += 1;
                    total += 1;
                }
                Err(MuxRecvError::Disconnected) => break,
                Err(MuxRecvError::Timeout) => unreachable!("no deadline set"),
            }
        }
        assert_eq!(total, 3000);
        for h in handles {
            h.join().expect("producer");
        }
    }

    #[test]
    fn registrar_holds_off_disconnect_until_dropped() {
        let (txs, mut mux, reg) = ring_mux_with_registrar::<u8>(1, 2);
        drop(txs);
        // The original producer is gone, but a registrar is alive: the
        // mux must not disconnect, only time out.
        let deadline = Some(Instant::now() + Duration::from_millis(5));
        assert_eq!(mux.recv_deadline(deadline), Err(MuxRecvError::Timeout));
        let mut tx = reg.add_producer();
        tx.try_push(7).expect("space");
        assert_eq!(mux.recv_deadline(None), Ok(7));
        drop(tx);
        drop(reg);
        assert_eq!(mux.recv_deadline(None), Err(MuxRecvError::Disconnected));
    }

    #[test]
    fn registrar_wakes_a_parked_mux_promptly() {
        let (txs, mut mux, reg) = ring_mux_with_registrar::<u64>(1, 4);
        drop(txs);
        let consumer = thread::spawn(move || mux.recv_deadline(None));
        // Let the consumer spin down into its parked state, then wire in
        // a brand-new producer and publish through it.
        thread::sleep(Duration::from_millis(20));
        let mut tx = reg.add_producer();
        tx.try_push(99).expect("space");
        assert_eq!(consumer.join().expect("consumer"), Ok(99));
        drop(tx);
        drop(reg);
    }

    #[test]
    fn mux_times_out_then_recovers() {
        let (mut txs, mut mux) = ring_mux::<u8>(1, 2);
        let deadline = Some(Instant::now() + Duration::from_millis(5));
        assert_eq!(mux.recv_deadline(deadline), Err(MuxRecvError::Timeout));
        txs[0].try_push(42).expect("space");
        assert_eq!(mux.recv_deadline(None), Ok(42));
        drop(txs);
        assert_eq!(mux.recv_deadline(None), Err(MuxRecvError::Disconnected));
    }
}
