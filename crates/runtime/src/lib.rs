//! `mflow-runtime` — MFLOW's split/merge running on *real* OS threads.
//!
//! The simulator (`mflow-netstack`) shows the performance shape in virtual
//! time; this crate demonstrates the mechanisms under genuine parallelism:
//! a dispatcher thread splits a stream of real VXLAN frames into
//! micro-flow batches over N worker threads, each worker does actual
//! per-packet work (full parse + checksum verification + decapsulation +
//! payload digest), and a merger enforces the original order with the same
//! [`mflow::MergeCounter`] the simulator uses.
//!
//! The invariants tested here are the ones the kernel implementation must
//! guarantee: no loss, no duplication, exact order restoration for every
//! interleaving the scheduler produces.
//!
//! ```
//! use mflow_runtime::{generate_frames, process_parallel, process_serial, RuntimeConfig};
//!
//! let frames = generate_frames(256, 512);
//! let serial = process_serial(&frames);
//! let parallel = process_parallel(&frames, &RuntimeConfig::default()).unwrap();
//! assert_eq!(serial.digests, parallel.digests);
//! ```

pub mod faults;
pub mod packet;
pub mod pipeline;
pub mod pool;
pub mod ring;
pub mod supervise;
pub mod work;

pub use faults::{
    FaultEvent, FaultLog, LaneStall, MergerKill, MergerStall, RuntimeFaults, SlowWorker, WorkerKill,
};
pub use mflow::{ScrReconciler, StatefulMode};
pub use mflow_error::MflowError;
pub use mflow_metrics::Telemetry;
pub use mflow_steering::{PolicyKind, SteeringPolicy};
pub use packet::{frame_wire_len, frames_from_pcap, generate_frames, generate_frames_into, Frame};
pub use pipeline::{
    process_parallel, process_parallel_faulty, process_serial, process_serial_stateful,
    BackpressurePolicy, DispatchMode, RecoveryRates, RunOutput, RuntimeConfig, Transport,
};
pub use pool::{BufPool, PktBuf, PoolStats};
pub use supervise::HeartbeatBoard;
pub use work::{process_frame, stateful_stage, PacketResult};
