//! Micro-benches of the merging-counter reassembler: per-item merge cost
//! as a function of batch size and lane count — the data structure whose
//! cheapness (vs the kernel's per-packet out-of-order queue) the paper's
//! §III-B argues for.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mflow::{MergeCounter, MfTag};

/// Builds a worst-case lane-skewed arrival order for `n` items split into
/// `batch`-sized micro-flows over `lanes` lanes: all of lane 1's batches
/// arrive before lane 0's, maximizing buffering.
fn skewed_stream(n: u64, batch: u64, lanes: usize) -> Vec<(MfTag, u64)> {
    let mut tagged: Vec<(MfTag, u64)> = (0..n)
        .map(|i| {
            let id = i / batch;
            (
                MfTag {
                    id,
                    lane: (id as usize) % lanes,
                    last: i % batch == batch - 1 || i == n - 1,
                },
                i,
            )
        })
        .collect();
    tagged.sort_by_key(|(t, v)| (std::cmp::Reverse(t.lane), *v));
    tagged
}

fn bench_merge(c: &mut Criterion) {
    let n = 100_000u64;
    let mut group = c.benchmark_group("merge_counter");
    group.throughput(Throughput::Elements(n));
    group.sample_size(20);
    for batch in [1u64, 64, 256, 1024] {
        let stream = skewed_stream(n, batch, 2);
        group.bench_with_input(
            BenchmarkId::new("batch", batch),
            &stream,
            |b, stream| {
                b.iter(|| {
                    let mut mc = MergeCounter::new();
                    let mut out = Vec::with_capacity(n as usize);
                    for (tag, v) in stream {
                        mc.offer(*tag, *v, &mut out);
                    }
                    assert_eq!(out.len(), n as usize);
                    out.len()
                })
            },
        );
    }
    for lanes in [2usize, 4, 8] {
        let stream = skewed_stream(n, 256, lanes);
        group.bench_with_input(BenchmarkId::new("lanes", lanes), &stream, |b, stream| {
            b.iter(|| {
                let mut mc = MergeCounter::new();
                let mut out = Vec::with_capacity(n as usize);
                for (tag, v) in stream {
                    mc.offer(*tag, *v, &mut out);
                }
                out.len()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_merge);
criterion_main!(benches);
