//! Real-silicon benches of the MFLOW split/merge pipeline: serial vs 2/4
//! worker threads over real VXLAN frames (the runtime analogue of Figure
//! 8a), and throughput vs micro-flow batch size (the analogue of Figure 7's
//! overhead story — tiny batches pay real merge/channel overhead).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mflow_runtime::{
    generate_frames, process_parallel, process_serial, RuntimeConfig, Transport,
};

fn bench_workers(c: &mut Criterion) {
    let frames = generate_frames(4_096, 1_400);
    let bytes: u64 = frames.iter().map(|f| f.bytes().len() as u64).sum();
    let mut group = c.benchmark_group("runtime_scaling");
    group.throughput(Throughput::Bytes(bytes));
    group.sample_size(10);
    group.bench_function("serial", |b| {
        b.iter(|| process_serial(&frames).digests.len())
    });
    for workers in [2usize, 4] {
        group.bench_with_input(
            BenchmarkId::new("mflow", workers),
            &workers,
            |b, &workers| {
                let cfg = RuntimeConfig {
                    workers,
                    batch_size: 256,
                    queue_depth: 8,
                    ..RuntimeConfig::default()
                };
                b.iter(|| process_parallel(&frames, &cfg).unwrap().digests.len())
            },
        );
    }
    group.finish();
}

fn bench_batch_size(c: &mut Criterion) {
    let frames = generate_frames(4_096, 1_400);
    let bytes: u64 = frames.iter().map(|f| f.bytes().len() as u64).sum();
    let mut group = c.benchmark_group("runtime_batch_size");
    group.throughput(Throughput::Bytes(bytes));
    group.sample_size(10);
    for batch in [1usize, 16, 256, 1024] {
        group.bench_with_input(BenchmarkId::from_parameter(batch), &batch, |b, &batch| {
            let cfg = RuntimeConfig {
                workers: 2,
                batch_size: batch,
                queue_depth: 16,
                ..RuntimeConfig::default()
            };
            b.iter(|| process_parallel(&frames, &cfg).unwrap().digests.len())
        });
    }
    group.finish();
}

fn bench_transport(c: &mut Criterion) {
    // Mutex+condvar channels vs the lock-free request rings, at the CI
    // reference point's worker counts and batch sizes. The machine-
    // readable sweep (`mflow_cli --bench-transport`) is the artifact CI
    // gates on; this group gives the interactive `cargo bench` view.
    let frames = generate_frames(4_096, 256);
    let bytes: u64 = frames.iter().map(|f| f.bytes().len() as u64).sum();
    let mut group = c.benchmark_group("runtime_transport");
    group.throughput(Throughput::Bytes(bytes));
    group.sample_size(10);
    for transport in [Transport::Mpsc, Transport::Ring] {
        for (workers, batch) in [(2usize, 32usize), (4, 32), (4, 256)] {
            let name = format!("{transport:?}").to_lowercase();
            group.bench_with_input(
                BenchmarkId::new(name, format!("w{workers}_b{batch}")),
                &(workers, batch),
                |b, &(workers, batch)| {
                    let cfg = RuntimeConfig {
                        workers,
                        batch_size: batch,
                        queue_depth: 8,
                        transport,
                        ..RuntimeConfig::default()
                    };
                    b.iter(|| process_parallel(&frames, &cfg).unwrap().digests.len())
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_workers, bench_batch_size, bench_transport);
criterion_main!(benches);
