//! Criterion benches over the simulator: wall-clock cost of regenerating
//! the headline single-flow cells (one bench per Figure 8a column family),
//! plus a guard that the simulated results keep their paper shape. These
//! double as performance-regression tests for the simulator itself.

use criterion::{criterion_group, criterion_main, Criterion};
use mflow_netstack::Transport;
use mflow_sim::MS;
use mflow_workloads::sockperf::{throughput, SockperfOpts};
use mflow_workloads::System;

fn opts() -> SockperfOpts {
    SockperfOpts {
        duration_ns: 10 * MS,
        warmup_ns: 3 * MS,
        ..Default::default()
    }
}

fn bench_single_flow(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_single_flow_64k");
    group.sample_size(10);
    for sys in [System::Native, System::Vanilla, System::FalconFun, System::Mflow] {
        group.bench_function(format!("tcp_{}", sys.name()), |b| {
            b.iter(|| {
                let r = throughput(sys, Transport::Tcp, 65536, &opts());
                assert!(r.goodput_gbps > 1.0);
                r.delivered_bytes
            })
        });
    }
    for sys in [System::Vanilla, System::Mflow] {
        group.bench_function(format!("udp_{}", sys.name()), |b| {
            b.iter(|| {
                let r = throughput(sys, Transport::Udp, 65536, &opts());
                assert!(r.goodput_gbps > 0.5);
                r.delivered_bytes
            })
        });
    }
    group.finish();
}

fn bench_shape_guard(c: &mut Criterion) {
    // One run per iteration that asserts the headline ordering, so a cost
    // or policy regression fails the bench run loudly.
    c.bench_function("sim_headline_shape_guard", |b| {
        b.iter(|| {
            let o = opts();
            let vanilla = throughput(System::Vanilla, Transport::Tcp, 65536, &o).goodput_gbps;
            let native = throughput(System::Native, Transport::Tcp, 65536, &o).goodput_gbps;
            let mflow = throughput(System::Mflow, Transport::Tcp, 65536, &o).goodput_gbps;
            assert!(mflow > native && native > vanilla);
            (vanilla, native, mflow)
        })
    });
}

criterion_group!(benches, bench_single_flow, bench_shape_guard);
criterion_main!(benches);
