//! Micro-benches of the wire-format substrate: building and fully
//! verifying VXLAN overlay frames, and the Toeplitz RSS hash — the raw
//! per-packet costs the simulator's cost model abstracts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mflow_net::frame::{build_overlay_frame, parse_overlay_frame, OverlayFrameSpec};
use mflow_net::toeplitz::rss_hash_v4;

fn bench_frames(c: &mut Criterion) {
    let mut group = c.benchmark_group("overlay_frame");
    group.sample_size(30);
    for payload in [64usize, 1448] {
        let spec = OverlayFrameSpec::example_tcp(1, 42, vec![0xAB; payload]);
        let frame = build_overlay_frame(&spec);
        group.throughput(Throughput::Bytes(frame.len() as u64));
        group.bench_with_input(
            BenchmarkId::new("build", payload),
            &spec,
            |b, spec| b.iter(|| build_overlay_frame(spec).len()),
        );
        group.bench_with_input(
            BenchmarkId::new("parse_verify", payload),
            &frame,
            |b, frame| b.iter(|| parse_overlay_frame(frame).unwrap().payload.len()),
        );
    }
    group.finish();
}

fn bench_rss(c: &mut Criterion) {
    let mut group = c.benchmark_group("rss");
    group.sample_size(30);
    group.bench_function("toeplitz_rss_hash", |b| {
        let mut port = 0u16;
        b.iter(|| {
            port = port.wrapping_add(1);
            rss_hash_v4([10, 0, 0, 1], [10, 0, 0, 2], 40_000 + (port % 1000), 5201)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_frames, bench_rss);
criterion_main!(benches);
