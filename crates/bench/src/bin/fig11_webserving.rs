//! Figure 11 — CloudSuite Web Serving with 200 users: successful
//! operations (11a), average response time (11b) and delay time (11c) per
//! operation type, under vanilla overlay, FALCON and MFLOW.
//!
//! Layered experiment: each system's exchange profile (latency
//! distribution + message capacity) is measured on the packet-level
//! simulator under multi-connection load, then the Elgg-like closed-loop
//! application model runs against it.
//!
//! ```text
//! cargo run -p mflow-bench --release --bin fig11_webserving
//! ```

use mflow_bench::{durations, quick_mode, save, us};
use mflow_metrics::{SeriesSet, Table};
use mflow_sim::MS;
use mflow_workloads::datacaching::CachingOpts;
use mflow_workloads::webserving::{run, WebOpts};
use mflow_workloads::{StackProfile, System};

const SYSTEMS: [System; 3] = [System::Vanilla, System::FalconDev, System::Mflow];

fn main() {
    let (duration_ns, warmup_ns) = durations();
    // Exchange profiles under a loaded stack (10-client data-caching
    // traffic shape, as the web tiers produce similar small-message fan-in).
    let profile_opts = CachingOpts {
        n_clients: 10,
        conns_per_client: 2,
        duration_ns,
        warmup_ns,
        ..Default::default()
    };
    let web_opts = WebOpts {
        duration_ns: if quick_mode() { 4_000 * MS } else { 20_000 * MS },
        ..Default::default()
    };

    let mut success = SeriesSet::new("Fig 11a", "operation", "successful ops/min");
    let mut resp = SeriesSet::new("Fig 11b", "operation", "avg response time (us)");
    let mut delay = SeriesSet::new("Fig 11c", "operation", "avg delay time (us)");
    let mut rows: Vec<Vec<String>> = Vec::new();

    for sys in SYSTEMS {
        let profile = StackProfile::measure(sys, &profile_opts);
        let result = run(&profile, &web_opts);
        let s_series = success.add(sys.name());
        for (i, op) in result.per_op.iter().enumerate() {
            s_series.push_labelled(
                i as f64,
                op.success_per_min(result.duration_ns),
                op.name,
            );
        }
        let r_series = resp.add(sys.name());
        let d_series = delay.add(sys.name());
        for (i, op) in result.per_op.iter().enumerate() {
            r_series.push_labelled(i as f64, op.response.mean() / 1e3, op.name);
            d_series.push_labelled(i as f64, op.delay.mean() / 1e3, op.name);
        }
        for op in &result.per_op {
            rows.push(vec![
                sys.name().to_string(),
                op.name.to_string(),
                format!("{:.0}", op.success_per_min(result.duration_ns)),
                us(op.response.mean() as u64),
                us(op.delay.mean() as u64),
            ]);
        }
        println!(
            "{:<11} exchange profile: p50 {:>6.1}us p99 {:>7.1}us capacity {:>9.0} msg/s  -> total {:>7.0} success ops/min",
            sys.name(),
            profile.p50_ns as f64 / 1e3,
            profile.p99_ns as f64 / 1e3,
            profile.msgs_per_sec,
            result.total_success_per_min(),
        );
    }

    println!("\nFigure 11: per-operation results (200 users)\n");
    let mut table = Table::new(["system", "operation", "success/min", "resp us", "delay us"]);
    for row in rows {
        table.row(row);
    }
    print!("{}", table.render());

    // Headline ratios at the bottom, as §V-B reports.
    let v: f64 = success.get("vanilla").unwrap().points.iter().map(|p| p.y).sum();
    let m: f64 = success.get("mflow").unwrap().points.iter().map(|p| p.y).sum();
    let f: f64 = success.get("falcon-dev").unwrap().points.iter().map(|p| p.y).sum();
    println!("\ntotal successful ops: mflow/vanilla = {:.1}x, mflow/falcon = {:.1}x", m / v, m / f);

    save("fig11a_success", &success);
    save("fig11b_response", &resp);
    save("fig11c_delay", &delay);
}
