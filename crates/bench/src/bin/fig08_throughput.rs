//! Figure 8 — single-flow throughput of all five systems (8a) and MFLOW's
//! per-core CPU breakdown (8b) for TCP (full-path scaling) and UDP (device
//! scaling of VXLAN).
//!
//! ```text
//! cargo run -p mflow-bench --release --bin fig08_throughput [-- --cpu]
//! ```

use mflow_bench::{durations, gbps, save};
use mflow_metrics::{SeriesSet, Table};
use mflow_netstack::Transport;
use mflow_workloads::sockperf::{throughput, SockperfOpts, MSG_SIZES};
use mflow_workloads::System;

fn main() {
    let show_cpu = std::env::args().any(|a| a == "--cpu");
    let (duration_ns, warmup_ns) = durations();
    let opts = SockperfOpts {
        duration_ns,
        warmup_ns,
        ..Default::default()
    };

    for transport in [Transport::Tcp, Transport::Udp] {
        let tname = match transport {
            Transport::Tcp => "TCP",
            Transport::Udp => "UDP",
        };
        println!("\nFigure 8a ({tname}): single-flow throughput (Gbps)\n");
        let mut header: Vec<String> = vec!["msg size".into()];
        header.extend(System::ALL.iter().map(|s| s.name().to_string()));
        let mut table = Table::new(header);
        let mut set = SeriesSet::new(
            format!("Fig 8a {tname}"),
            "message size (B)",
            "throughput (Gbps)",
        );
        for s in System::ALL {
            set.add(s.name());
        }
        for &size in &MSG_SIZES {
            let mut row = vec![format!("{size}")];
            for s in System::ALL {
                let r = throughput(s, transport, size, &opts);
                row.push(gbps(r.goodput_gbps));
                set.series
                    .iter_mut()
                    .find(|ser| ser.name == s.name())
                    .unwrap()
                    .push(size as f64, r.goodput_gbps);
            }
            table.row(row);
        }
        print!("{}", table.render());

        // Headline comparison at 64 KB, as the paper reports in §V-A.
        let vanilla = set.get("vanilla").unwrap().y_at(65536.0).unwrap();
        let mflow = set.get("mflow").unwrap().y_at(65536.0).unwrap();
        let native = set.get("native").unwrap().y_at(65536.0).unwrap();
        println!(
            "\n64 KB headline: mflow {mflow:.1} vs vanilla {vanilla:.1} Gbps \
             (+{:.0}%), native {native:.1}",
            (mflow / vanilla - 1.0) * 100.0
        );
        save(&format!("fig08a_{}", tname.to_lowercase()), &set);

        if show_cpu {
            println!("\nFigure 8b ({tname}): MFLOW per-core CPU utilization at 64 KB\n");
            let r = throughput(System::Mflow, transport, 65536, &opts);
            print!("{}", r.cpu.render(r.duration_ns));
            println!(
                "(core 0 = merge + tcp/udp recv + user copy; core 1 = dispatch; \
                 cores 2/3 = splitting; cores 4/5 = branch tails for TCP)"
            );
        }
    }
}
