//! Extension experiment (the paper's future work, §VII): the sender-side
//! bottleneck.
//!
//! The paper closes by naming two remaining walls: the UDP *clients* and
//! the receiver's single copy thread. This binary applies an MFLOW-style
//! split to the sender's `sendmsg` path (fragmentation/copy parallelized
//! over `tx_cores`, syscall serial) and measures how far one UDP client
//! then pushes an MFLOW receiver with 1 KB datagrams — until the receiver
//! becomes the wall again.
//!
//! ```text
//! cargo run -p mflow-bench --release --bin ext_sender_scaling
//! ```

use mflow::{try_install, MflowConfig};
use mflow_bench::{durations, gbps, save};
use mflow_metrics::{SeriesSet, Table};
use mflow_netstack::{FlowSpec, PathKind, StackConfig, StackSim};

fn run(tx_cores: u32) -> (f64, f64) {
    let (duration_ns, warmup_ns) = durations();
    // 1 KB datagrams: the regime where our calibrated single client cannot
    // feed an MFLOW receiver (per-fragment sendmsg work dominates).
    let mut flow = FlowSpec::udp(1024, 0);
    flow.tx_cores = tx_cores;
    let mut cfg = StackConfig::single_flow(PathKind::Overlay, flow);
    cfg.duration_ns = duration_ns;
    cfg.warmup_ns = warmup_ns;
    let (policy, merge) = try_install(MflowConfig::udp_device_scaling()).expect("stock mflow config");
    let r = StackSim::try_run(cfg, policy, Some(merge)).expect("valid stack config");
    let client_busy = r.client_cpu.busy_ns(0) as f64 / duration_ns as f64 * 100.0;
    (r.goodput_gbps, client_busy)
}

fn main() {
    println!("\nExtension: scaling the sender (single UDP client, 1 KB datagrams, MFLOW receiver)\n");
    let mut t = Table::new(["tx cores", "Gbps", "client core util %"]);
    let mut set = SeriesSet::new("ext sender scaling", "tx cores", "Gbps");
    let s = set.add("mflow-tx");
    for tx in [1u32, 2, 3, 4] {
        let (g, busy) = run(tx);
        s.push(tx as f64, g);
        t.row([format!("{tx}"), gbps(g), format!("{busy:.0}")]);
    }
    print!("{}", t.render());
    println!(
        "\nOne client alone cannot feed an MFLOW receiver; splitting the sender's \
         per-fragment work recovers the receiver-bound throughput that the paper \
         needed three client machines to reach."
    );
    save("ext_sender_scaling", &set);
}
