//! Figure 12 — CPU load distribution across the 10 kernel cores with 10
//! concurrent 64 KB TCP flows: FALCON's static device placement vs
//! MFLOW's balanced micro-flow distribution, plus MFLOW's CPU overhead.
//!
//! ```text
//! cargo run -p mflow-bench --release --bin fig12_cpu_balance
//! ```

use mflow_bench::{durations, save};
use mflow_metrics::{SeriesSet, Table};
use mflow_workloads::multiflow::{run_with_balance, MultiFlowOpts};
use mflow_workloads::System;

fn main() {
    let (duration_ns, warmup_ns) = durations();
    let opts = MultiFlowOpts {
        duration_ns,
        warmup_ns,
        // The paper's Figure 12 is measured on a live system; keep noise on
        // so neither policy gets an artificially perfect distribution.
        noise: true,
        ..Default::default()
    };
    println!("\nFigure 12: per-core CPU utilization, 10 TCP flows x 64 KB\n");
    let mut table = Table::new(["core", "falcon-dev %", "mflow %"]);
    let falcon = run_with_balance(System::FalconDev, 10, 65536, &opts);
    let mflow = run_with_balance(System::Mflow, 10, 65536, &opts);
    let f_utils = falcon.report.core_utilization(&opts.layout.kernel_cores);
    let m_utils = mflow.report.core_utilization(&opts.layout.kernel_cores);
    let mut set = SeriesSet::new("Fig 12", "kernel core", "CPU utilization (%)");
    let fs = set.add("falcon-dev");
    for (i, &u) in f_utils.iter().enumerate() {
        fs.push(i as f64, u);
    }
    let ms = set.add("mflow");
    for (i, &u) in m_utils.iter().enumerate() {
        ms.push(i as f64, u);
    }
    for (i, (f, m)) in f_utils.iter().zip(&m_utils).enumerate() {
        table.row([
            format!("{}", opts.layout.kernel_cores[i]),
            format!("{f:.1}"),
            format!("{m:.1}"),
        ]);
    }
    print!("{}", table.render());
    println!(
        "\nstddev of per-core utilization: falcon {:.1} vs mflow {:.1} (paper: 20.5 vs 11.6)",
        falcon.util_stddev, mflow.util_stddev
    );
    println!(
        "mean utilization (MFLOW's steering overhead): falcon {:.1}% vs mflow {:.1}% ({:+.0}%)",
        falcon.util_mean,
        mflow.util_mean,
        (mflow.util_mean / falcon.util_mean.max(1e-9) - 1.0) * 100.0
    );
    println!(
        "throughput: falcon {:.1} vs mflow {:.1} Gbps",
        falcon.report.goodput_gbps, mflow.report.goodput_gbps
    );
    save("fig12", &set);
}
