//! Ablation: flow-splitting alone vs IRQ-splitting (§III-A).
//!
//! The flow-splitting function can only parallelize stages *after* skbs
//! exist, so per-packet skb allocation stays on the IRQ core and becomes
//! the bottleneck (exactly what the paper observed after scaling VXLAN,
//! and why FALCON's function-level pipelining stalls there too). The
//! IRQ-splitting function dispatches raw packet requests before
//! allocation, removing that wall. This binary isolates the two
//! mechanisms on a single 64 KB TCP flow.
//!
//! ```text
//! cargo run -p mflow-bench --release --bin ablation_irq_split
//! ```

use mflow::{try_install, MflowConfig, ScalingMode};
use mflow_bench::{durations, gbps};
use mflow_metrics::Table;
use mflow_netstack::{FlowSpec, PathKind, StackConfig, StackSim, Stage};

fn run(mcfg: MflowConfig) -> (f64, f64) {
    let (duration_ns, warmup_ns) = durations();
    let mut cfg = StackConfig::single_flow(PathKind::Overlay, FlowSpec::tcp(65536, 0));
    cfg.duration_ns = duration_ns;
    cfg.warmup_ns = warmup_ns;
    let (policy, merge) = try_install(mcfg).expect("stock mflow config");
    let r = StackSim::try_run(cfg, policy, Some(merge)).expect("valid stack config");
    let irq_core_util = r.cpu.utilization_pct(1, r.duration_ns);
    (r.goodput_gbps, irq_core_util)
}

fn main() {
    println!("\nAblation: where the flow is split (TCP 64 KB single flow)\n");
    let mut t = Table::new(["mechanism", "split before", "Gbps", "IRQ-core util %"]);

    // 1. Flow-splitting at the VXLAN device: skb allocation (and GRO) stay
    //    on the IRQ core.
    let mut dev = MflowConfig::tcp_full_path();
    dev.mode = ScalingMode::Device {
        split_into: Stage::OuterIp,
    };
    dev.branch_tails = None;
    let (g, u) = run(dev);
    t.row(["flow-splitting".to_string(), "vxlan".into(), gbps(g), format!("{u:.0}")]);

    // 2. Flow-splitting one stage earlier (before GRO).
    let mut gro = MflowConfig::tcp_full_path();
    gro.mode = ScalingMode::Device {
        split_into: Stage::Gro,
    };
    gro.branch_tails = None;
    let (g, u) = run(gro);
    t.row(["flow-splitting".to_string(), "gro".into(), gbps(g), format!("{u:.0}")]);

    // 3. IRQ-splitting: requests dispatched before skb allocation; the
    //    paper's full-path configuration.
    let (g, u) = run(MflowConfig::tcp_full_path());
    t.row(["irq-splitting".to_string(), "skb alloc".into(), gbps(g), format!("{u:.0}")]);

    print!("{}", t.render());
    println!(
        "\nSplitting after allocation leaves the IRQ core saturated by per-packet \
         skb work; only the IRQ-splitting function scales the full path."
    );
}
