//! Figure 10 — multi-flow TCP throughput: 1–20 concurrent flows on the
//! paper's controlled layout (5 application cores, 10 kernel cores), for
//! message sizes 16 B, 4 KB and 64 KB.
//!
//! ```text
//! cargo run -p mflow-bench --release --bin fig10_multiflow
//! ```

use mflow_bench::{durations, gbps, save};
use mflow_metrics::{SeriesSet, Table};
use mflow_workloads::multiflow::{run, MultiFlowOpts};
use mflow_workloads::System;

const FLOW_COUNTS: [usize; 5] = [1, 2, 5, 10, 20];
const SYSTEMS: [System; 4] = [
    System::Vanilla,
    System::FalconDev,
    System::FalconFun,
    System::Mflow,
];

fn main() {
    let (duration_ns, warmup_ns) = durations();
    let opts = MultiFlowOpts {
        duration_ns,
        warmup_ns,
        ..Default::default()
    };

    for &msg in &[16u64, 4096, 65536] {
        println!("\nFigure 10 ({msg} B messages): aggregate TCP throughput (Gbps)\n");
        let mut header: Vec<String> = vec!["flows".into()];
        header.extend(SYSTEMS.iter().map(|s| s.name().to_string()));
        let mut table = Table::new(header);
        let mut set = SeriesSet::new(
            format!("Fig 10 {msg}B"),
            "concurrent flows",
            "aggregate throughput (Gbps)",
        );
        for s in SYSTEMS {
            set.add(s.name());
        }
        for &n in &FLOW_COUNTS {
            let mut row = vec![format!("{n}")];
            for s in SYSTEMS {
                let r = run(s, n, msg, &opts);
                row.push(gbps(r.goodput_gbps));
                set.series
                    .iter_mut()
                    .find(|ser| ser.name == s.name())
                    .unwrap()
                    .push(n as f64, r.goodput_gbps);
            }
            table.row(row);
        }
        print!("{}", table.render());
        if msg == 4096 {
            let v = set.get("vanilla").unwrap();
            let m = set.get("mflow").unwrap();
            for n in [5.0, 10.0, 20.0] {
                let gain = m.y_at(n).unwrap() / v.y_at(n).unwrap() - 1.0;
                println!("  {n:.0} flows: MFLOW vs vanilla {:+.0}%", gain * 100.0);
            }
        }
        save(&format!("fig10_{msg}b"), &set);
    }
}
