//! Figure 7 — out-of-order packet delivery vs micro-flow batch size
//! (single TCP flow, 64 KB messages, 2 splitting cores, background noise
//! on so parallel branches actually drift).
//!
//! With `--ablate`, also sweeps the number of splitting cores and the
//! throughput effect of the batch size (the §III-A parameter discussion).
//!
//! ```text
//! cargo run -p mflow-bench --release --bin fig07_batch_size [-- --ablate]
//! ```

use mflow::{try_install, MflowConfig};
use mflow_bench::{durations, gbps, save};
use mflow_metrics::{SeriesSet, Table};
use mflow_netstack::{FlowSpec, PathKind, StackConfig, StackSim};

fn run_with_batch(batch: u32, split_cores: Vec<usize>, tails: Option<Vec<usize>>) -> (f64, u64, u64) {
    let (duration_ns, warmup_ns) = durations();
    let mut cfg = StackConfig::single_flow(PathKind::Overlay, FlowSpec::tcp(65536, 0));
    cfg.duration_ns = duration_ns;
    cfg.warmup_ns = warmup_ns;
    // Noise on: this experiment measures exactly the disorder noise causes.
    assert!(cfg.noise.enabled);
    let mut mcfg = MflowConfig::tcp_full_path();
    mcfg.batch_size = batch;
    mcfg.split_cores = split_cores;
    mcfg.branch_tails = tails;
    let (policy, merge) = try_install(mcfg).expect("stock mflow config");
    let r = StackSim::try_run(cfg, policy, Some(merge)).expect("valid stack config");
    (r.goodput_gbps, r.telemetry.ooo, r.delivered_bytes / 1448)
}

fn main() {
    let ablate = std::env::args().any(|a| a == "--ablate");

    println!("\nFigure 7: out-of-order deliveries at the merge point vs batch size");
    println!("(TCP 64 KB, 2 splitting cores, interference noise on)\n");
    let mut table = Table::new(["batch size", "OOO / 100k pkts", "throughput Gbps"]);
    let mut set = SeriesSet::new(
        "Fig 7",
        "micro-flow batch size (packets)",
        "out-of-order deliveries per 100k packets",
    );
    let ooo_series = set.add("ooo");
    for batch in [1u32, 4, 16, 64, 128, 256, 512, 1024] {
        let (tput, ooo, pkts) = run_with_batch(batch, vec![2, 3], Some(vec![4, 5]));
        let per_100k = ooo as f64 * 100_000.0 / pkts.max(1) as f64;
        ooo_series.push(batch as f64, per_100k);
        table.row([format!("{batch}"), format!("{per_100k:.0}"), gbps(tput)]);
    }
    print!("{}", table.render());
    save("fig07", &set);

    if ablate {
        println!("\nAblation: number of splitting cores (batch 256, TCP 64 KB)\n");
        let mut t = Table::new(["split cores", "throughput Gbps"]);
        let mut set = SeriesSet::new("Ablation split cores", "splitting cores", "Gbps");
        let s = set.add("mflow");
        for n in 1..=4usize {
            let lanes: Vec<usize> = (2..2 + n).collect();
            // Without enough physically distinct tail cores the branches
            // share their lane core end to end.
            let (tput, _, _) = run_with_batch(256, lanes, None);
            s.push(n as f64, tput);
            t.row([format!("{n}"), gbps(tput)]);
        }
        print!("{}", t.render());
        save("ablation_split_cores", &set);

        println!("\nAblation: early vs late merge for UDP device scaling\n");
        // Early merge (before the transport) vs the paper's late merge
        // (before the user copy) — §III-B's "merge as late as possible".
        use mflow_netstack::{Stage, Transport};
        let (duration_ns, warmup_ns) = durations();
        let mut t = Table::new(["merge point", "throughput Gbps"]);
        for (label, merge_before) in [("before UDP rx (early)", Stage::UdpRx), ("before user copy (late)", Stage::UserCopy)] {
            let mut cfg = StackConfig::single_flow(PathKind::Overlay, FlowSpec::udp(65536, 0));
            cfg.flows = vec![FlowSpec::udp(65536, 0); 3];
            cfg.duration_ns = duration_ns;
            cfg.warmup_ns = warmup_ns;
            let mcfg = MflowConfig::udp_device_scaling();
            let (policy, mut merge) = try_install(mcfg).expect("stock mflow config");
            merge.before = merge_before;
            let r = StackSim::try_run(cfg, policy, Some(merge)).expect("valid stack config");
            let _ = Transport::Udp;
            t.row([label.to_string(), gbps(r.goodput_gbps)]);
        }
        print!("{}", t.render());
    }
}
