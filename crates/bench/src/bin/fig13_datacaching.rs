//! Figure 13 — CloudSuite Data Caching (memcached, 4 threads, 550 B
//! objects): average and 99th-percentile request latency with 1 and 10
//! clients, under vanilla overlay, FALCON and MFLOW.
//!
//! ```text
//! cargo run -p mflow-bench --release --bin fig13_datacaching
//! ```

use mflow_bench::{durations, save, us};
use mflow_metrics::{SeriesSet, Table};
use mflow_workloads::datacaching::{run, CachingOpts};
use mflow_workloads::System;

const SYSTEMS: [System; 3] = [System::Vanilla, System::FalconDev, System::Mflow];

fn main() {
    let (duration_ns, warmup_ns) = durations();
    println!("\nFigure 13: data caching latency (550 B objects, 4 server threads)\n");
    let mut table = Table::new(["clients", "system", "avg us", "p99 us", "req/s"]);
    let mut avg_set = SeriesSet::new("Fig 13 avg", "clients", "avg latency (us)");
    let mut p99_set = SeriesSet::new("Fig 13 p99", "clients", "p99 latency (us)");
    for s in SYSTEMS {
        avg_set.add(s.name());
        p99_set.add(s.name());
    }
    for &clients in &[1usize, 10] {
        let opts = CachingOpts {
            n_clients: clients,
            duration_ns,
            warmup_ns,
            ..Default::default()
        };
        for s in SYSTEMS {
            let r = run(s, &opts);
            table.row([
                format!("{clients}"),
                s.name().to_string(),
                us(r.avg_ns as u64),
                us(r.p99_ns),
                format!("{:.0}", r.rps),
            ]);
            avg_set
                .series
                .iter_mut()
                .find(|ser| ser.name == s.name())
                .unwrap()
                .push(clients as f64, r.avg_ns / 1e3);
            p99_set
                .series
                .iter_mut()
                .find(|ser| ser.name == s.name())
                .unwrap()
                .push(clients as f64, r.p99_ns as f64 / 1e3);
        }
    }
    print!("{}", table.render());
    let v_avg = avg_set.get("vanilla").unwrap().y_at(10.0).unwrap();
    let m_avg = avg_set.get("mflow").unwrap().y_at(10.0).unwrap();
    let v_p99 = p99_set.get("vanilla").unwrap().y_at(10.0).unwrap();
    let m_p99 = p99_set.get("mflow").unwrap().y_at(10.0).unwrap();
    println!(
        "\n10 clients: MFLOW vs vanilla overlay: avg {:-.0}%, p99 {:-.0}% (paper: -48%, -47%)",
        (m_avg / v_avg - 1.0) * 100.0,
        (m_p99 / v_p99 - 1.0) * 100.0
    );
    save("fig13_avg", &avg_set);
    save("fig13_p99", &p99_set);
}
