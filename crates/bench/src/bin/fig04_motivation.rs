//! Figure 4 — motivation: throughput and per-core CPU utilization of the
//! native host network, vanilla container overlay, RPS and FALCON, for a
//! single TCP or UDP flow across message sizes.
//!
//! ```text
//! cargo run -p mflow-bench --release --bin fig04_motivation [-- --cpu]
//! ```

use mflow_bench::{durations, gbps, save};
use mflow_metrics::{SeriesSet, Table};
use mflow_netstack::Transport;
use mflow_workloads::sockperf::{throughput, SockperfOpts, MSG_SIZES};
use mflow_workloads::System;

fn main() {
    let show_cpu = std::env::args().any(|a| a == "--cpu");
    let (duration_ns, warmup_ns) = durations();
    let opts = SockperfOpts {
        duration_ns,
        warmup_ns,
        ..Default::default()
    };
    // Figure 4 predates MFLOW: it compares the baselines only.
    let systems = [
        System::Native,
        System::Vanilla,
        System::Rps,
        System::FalconDev,
        System::FalconFun,
    ];

    for transport in [Transport::Tcp, Transport::Udp] {
        let tname = match transport {
            Transport::Tcp => "TCP",
            Transport::Udp => "UDP",
        };
        println!("\nFigure 4a ({tname}): single-flow throughput (Gbps)\n");
        let mut header: Vec<String> = vec!["msg size".into()];
        header.extend(systems.iter().map(|s| s.name().to_string()));
        let mut table = Table::new(header);
        let mut set = SeriesSet::new(
            format!("Fig 4a {tname}"),
            "message size (B)",
            "throughput (Gbps)",
        );
        for s in systems {
            set.add(s.name());
        }
        for &size in &MSG_SIZES {
            let mut row = vec![format!("{size}")];
            for s in systems {
                let r = throughput(s, transport, size, &opts);
                row.push(gbps(r.goodput_gbps));
                set.series
                    .iter_mut()
                    .find(|ser| ser.name == s.name())
                    .unwrap()
                    .push(size as f64, r.goodput_gbps);
            }
            table.row(row);
        }
        print!("{}", table.render());
        save(&format!("fig04a_{}", tname.to_lowercase()), &set);

        if show_cpu {
            println!("\nFigure 4b ({tname}): per-core CPU utilization at 64 KB\n");
            for s in systems {
                let r = throughput(s, transport, 65536, &opts);
                println!("--- {} ---", s.name());
                print!("{}", r.cpu.render(r.duration_ns));
            }
        }
    }
}
