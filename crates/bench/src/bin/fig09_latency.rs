//! Figure 9 — single-flow message latency under load: each system paced at
//! 85 % of its own measured capacity (the paper drives each case to its
//! maximum throughput before drops), reporting median / mean / 99th
//! percentile across message sizes.
//!
//! ```text
//! cargo run -p mflow-bench --release --bin fig09_latency
//! ```

use mflow_bench::{durations, save, us};
use mflow_metrics::{SeriesSet, Table};
use mflow_netstack::Transport;
use mflow_workloads::sockperf::{latency, SockperfOpts};
use mflow_workloads::System;

const LOAD: f64 = 0.92;
const SIZES: [u64; 3] = [1024, 16384, 65536];

fn main() {
    let (duration_ns, warmup_ns) = durations();
    let opts = SockperfOpts {
        duration_ns,
        warmup_ns,
        noise: true,
        ..Default::default()
    };

    for transport in [Transport::Tcp, Transport::Udp] {
        let tname = match transport {
            Transport::Tcp => "TCP",
            Transport::Udp => "UDP",
        };
        println!(
            "\nFigure 9 ({tname}): message latency at {:.0}% of each system's capacity (us)\n",
            LOAD * 100.0
        );
        let mut table = Table::new(["msg size", "system", "p50", "mean", "p99"]);
        let mut p50_set = SeriesSet::new(
            format!("Fig 9 {tname} p50"),
            "message size (B)",
            "median latency (us)",
        );
        let mut p99_set = SeriesSet::new(
            format!("Fig 9 {tname} p99"),
            "message size (B)",
            "p99 latency (us)",
        );
        for s in System::ALL {
            p50_set.add(s.name());
            p99_set.add(s.name());
        }
        for &size in &SIZES {
            for s in System::ALL {
                let r = latency(s, transport, size, LOAD, &opts);
                table.row([
                    format!("{size}"),
                    s.name().to_string(),
                    us(r.latency.median()),
                    us(r.latency.mean() as u64),
                    us(r.latency.p99()),
                ]);
                p50_set
                    .series
                    .iter_mut()
                    .find(|ser| ser.name == s.name())
                    .unwrap()
                    .push(size as f64, r.latency.median() as f64 / 1e3);
                p99_set
                    .series
                    .iter_mut()
                    .find(|ser| ser.name == s.name())
                    .unwrap()
                    .push(size as f64, r.latency.p99() as f64 / 1e3);
            }
        }
        print!("{}", table.render());
        // Headline: median reduction vs vanilla overlay at 64 KB.
        let v = p50_set.get("vanilla").unwrap().y_at(65536.0).unwrap();
        let m = p50_set.get("mflow").unwrap().y_at(65536.0).unwrap();
        println!(
            "\n64 KB {tname}: MFLOW median latency {:.0}% lower than vanilla overlay",
            (1.0 - m / v) * 100.0
        );
        save(&format!("fig09_{}_p50", tname.to_lowercase()), &p50_set);
        save(&format!("fig09_{}_p99", tname.to_lowercase()), &p99_set);
    }
}
