//! `mflow-cli` — run any single scenario from the command line and print
//! the full report: throughput, latency distribution, drops, ordering
//! stats and the per-core CPU breakdown.
//!
//! ```text
//! cargo run -p mflow-bench --release --bin mflow_cli -- \
//!     --system mflow --transport tcp --msg 65536 --duration-ms 60 \
//!     [--flows N] [--batch 256] [--seed 42] [--no-noise] [--cpu]
//! ```

use mflow::{install, MflowConfig};
use mflow_netstack::{
    FaultConfig, FlowSpec, NoiseConfig, StackConfig, StackSim, Transport,
};
use mflow_sim::MS;
use mflow_workloads::sockperf::UDP_CLIENTS;
use mflow_workloads::System;

struct Args {
    system: System,
    transport: Transport,
    msg: u64,
    duration_ms: u64,
    flows: usize,
    batch: u32,
    seed: u64,
    noise: bool,
    cpu: bool,
    faults: FaultConfig,
    flush_after: Option<u64>,
}

fn usage() -> ! {
    eprintln!(
        "usage: mflow_cli [--system native|vanilla|rps|falcon-dev|falcon-fun|mflow]\n\
         \x20                [--transport tcp|udp] [--msg BYTES] [--duration-ms MS]\n\
         \x20                [--flows N] [--batch PKTS] [--seed N] [--no-noise] [--cpu]\n\
         \x20                [--fault-seed N] [--fault-drop RATE] [--fault-drop-last]\n\
         \x20                [--fault-dup RATE] [--fault-delay RATE]\n\
         \x20                [--fault-kill-mf FLOW:MF] [--flush-after OFFERS]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        system: System::Mflow,
        transport: Transport::Tcp,
        msg: 65536,
        duration_ms: 60,
        flows: 0, // 0 = transport default
        batch: 256,
        seed: 42,
        noise: true,
        cpu: false,
        faults: FaultConfig::none(),
        flush_after: None,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let value = |i: &mut usize| -> String {
        *i += 1;
        argv.get(*i).cloned().unwrap_or_else(|| usage())
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--system" => {
                args.system = match value(&mut i).as_str() {
                    "native" => System::Native,
                    "vanilla" => System::Vanilla,
                    "rps" => System::Rps,
                    "falcon-dev" => System::FalconDev,
                    "falcon-fun" => System::FalconFun,
                    "mflow" => System::Mflow,
                    other => {
                        eprintln!("unknown system '{other}'");
                        usage()
                    }
                }
            }
            "--transport" => {
                args.transport = match value(&mut i).as_str() {
                    "tcp" => Transport::Tcp,
                    "udp" => Transport::Udp,
                    other => {
                        eprintln!("unknown transport '{other}'");
                        usage()
                    }
                }
            }
            "--msg" => args.msg = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--duration-ms" => {
                args.duration_ms = value(&mut i).parse().unwrap_or_else(|_| usage())
            }
            "--flows" => args.flows = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--batch" => args.batch = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--seed" => args.seed = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--no-noise" => args.noise = false,
            "--cpu" => args.cpu = true,
            "--flush-after" => {
                args.flush_after = Some(value(&mut i).parse().unwrap_or_else(|_| usage()))
            }
            "--fault-seed" => {
                args.faults.seed = value(&mut i).parse().unwrap_or_else(|_| usage())
            }
            "--fault-drop" => {
                args.faults.drop_rate = value(&mut i).parse().unwrap_or_else(|_| usage())
            }
            "--fault-drop-last" => args.faults.drop_last_only = true,
            "--fault-dup" => {
                args.faults.dup_rate = value(&mut i).parse().unwrap_or_else(|_| usage())
            }
            "--fault-delay" => {
                args.faults.delay_rate = value(&mut i).parse().unwrap_or_else(|_| usage())
            }
            "--fault-kill-mf" => {
                let v = value(&mut i);
                let (flow, mf) = v.split_once(':').unwrap_or_else(|| usage());
                args.faults.kill_microflows.push((
                    flow.parse().unwrap_or_else(|_| usage()),
                    mf.parse().unwrap_or_else(|_| usage()),
                ));
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag '{other}'");
                usage()
            }
        }
        i += 1;
    }
    args
}

fn main() {
    let a = parse_args();
    let flow = match a.transport {
        Transport::Tcp => FlowSpec::tcp(a.msg, 0),
        Transport::Udp => FlowSpec::udp(a.msg, 0),
    };
    let n_flows = if a.flows > 0 {
        a.flows
    } else if a.transport == Transport::Udp {
        UDP_CLIENTS
    } else {
        1
    };
    let mut cfg = StackConfig::single_flow(a.system.path(), flow.clone());
    cfg.flows = vec![flow; n_flows];
    cfg.duration_ns = a.duration_ms * MS;
    cfg.warmup_ns = cfg.duration_ns / 4;
    cfg.seed = a.seed;
    if !a.noise {
        cfg.noise = NoiseConfig::off();
    }
    let faults_on = a.faults.is_active();
    if faults_on {
        cfg.faults = Some(a.faults.clone());
    }
    let (policy, merge) = if a.system == System::Mflow {
        let mut mcfg = match a.transport {
            Transport::Tcp => MflowConfig::tcp_full_path(),
            Transport::Udp => MflowConfig::udp_device_scaling(),
        };
        mcfg.batch_size = a.batch;
        if a.flush_after.is_some() {
            mcfg.flush_after_offers = a.flush_after;
        }
        let (p, m) = install(mcfg);
        (p, Some(m))
    } else {
        a.system.build_single_flow(a.transport)
    };

    let r = StackSim::run(cfg, policy, merge);
    println!("{}", r.summary());
    println!(
        "delivered {:.1} MB in {} messages over {:.0} ms ({} events simulated)",
        r.delivered_bytes as f64 / 1e6,
        r.messages,
        r.measured_ns as f64 / 1e6,
        r.events
    );
    println!(
        "ordering: {} raced at merge, {} tcp ooo inserts, {} merge residue",
        r.ooo_merge_input, r.tcp_ooo_inserts, r.merge_residue
    );
    if faults_on {
        println!(
            "faults: injected {} drops, {} dups, {} late skbs",
            r.fault_drops, r.fault_dups, r.fault_delays
        );
        println!(
            "degradation: {} micro-flows flushed, {} late drops, {} dup drops",
            r.merge_flushed, r.merge_late_drops, r.merge_dup_drops
        );
    }
    println!(
        "latency: p50 {:.1}us  mean {:.1}us  p99 {:.1}us  max {:.1}us",
        r.latency.median() as f64 / 1e3,
        r.latency.mean() / 1e3,
        r.latency.p99() as f64 / 1e3,
        r.latency.max() as f64 / 1e3
    );
    if a.cpu {
        println!("\nper-core CPU:\n{}", r.cpu.render(r.duration_ns));
    }
}
