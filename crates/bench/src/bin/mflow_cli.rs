//! `mflow-cli` — run any single scenario from the command line and print
//! the full report: throughput, latency distribution, drops, ordering
//! stats and the per-core CPU breakdown.
//!
//! ```text
//! cargo run -p mflow-bench --release --bin mflow_cli -- \
//!     --system mflow --transport tcp --msg 65536 --duration-ms 60 \
//!     [--flows N] [--batch 256] [--seed 42] [--no-noise] [--cpu]
//! ```

use std::collections::{BTreeMap, BTreeSet};

use mflow::MflowConfig;
use mflow_netstack::{
    FaultConfig, FlowSpec, NoiseConfig, StackConfig, StackSim, Transport,
};
use mflow_metrics::CountingAlloc;
use mflow_runtime::{
    frame_wire_len, frames_from_pcap, generate_frames, generate_frames_into, process_parallel,
    process_parallel_faulty, process_serial, process_serial_stateful, BackpressurePolicy, BufPool,
    DispatchMode, Frame, LaneStall, MergerKill, MergerStall, PolicyKind, RuntimeConfig,
    RuntimeFaults, SlowWorker, StatefulMode, Transport as RtTransport, WorkerKill,
};
use mflow_sim::MS;
use mflow_workloads::sockperf::UDP_CLIENTS;
use mflow_workloads::System;

/// Counting allocator, so the transport sweep can report allocations
/// per frame — the zero-copy datapath's headline metric.
#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc::new();

struct Args {
    system: System,
    transport: Transport,
    msg: u64,
    duration_ms: u64,
    flows: usize,
    batch: u32,
    seed: u64,
    noise: bool,
    cpu: bool,
    faults: FaultConfig,
    flush_after: Option<u64>,
    // Simulator de-split feedback (lane-occupancy watermarks).
    lane_high_watermark: Option<u64>,
    lane_low_watermark: Option<u64>,
    overload_windows: Option<u32>,
    // Threaded-runtime mode.
    runtime: bool,
    workers: usize,
    queue_depth: usize,
    frames: usize,
    backpressure: BackpressurePolicy,
    drop_budget: u64,
    inline_fallback: bool,
    high_watermark: Option<usize>,
    rt_faults: RuntimeFaults,
    rt_transport: RtTransport,
    merger_depth: usize,
    rt_policy: PolicyKind,
    dispatch_mode: DispatchMode,
    // Buffer-pool sizing (0 = derived from the frame count / payload).
    pool_slots: usize,
    pool_slab: usize,
    // Replay a pcap capture instead of generating frames.
    pcap: Option<String>,
    // Supervision (runtime mode).
    restart_budget: u32,
    heartbeat_interval_ms: Option<u64>,
    restart_backoff_ms: u64,
    checkpoint_every: u64,
    // Stateful-stage placement (both engines).
    stateful_mode: StatefulMode,
    stateful_work: u32,
    // Chaos-soak mode.
    chaos_soak: bool,
    chaos_seed: u64,
    chaos_frames: usize,
    chaos_policies: Vec<PolicyKind>,
    chaos_transports: Vec<RtTransport>,
    // Transport-comparison bench mode.
    bench_transport: bool,
    // Policy-comparison bench mode.
    bench_policy: bool,
    // Stateful-mode bench (merge-before-tcp vs state-compute replication).
    bench_stateful: bool,
    bench_out: String,
    bench_enforce: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: mflow_cli [--system native|vanilla|rps|falcon-dev|falcon-fun|mflow]\n\
         \x20                [--transport tcp|udp] [--msg BYTES] [--duration-ms MS]\n\
         \x20                [--flows N] [--batch PKTS] [--seed N] [--no-noise] [--cpu]\n\
         \x20                [--fault-seed N] [--fault-drop RATE] [--fault-drop-last]\n\
         \x20                [--fault-dup RATE] [--fault-delay RATE]\n\
         \x20                [--fault-kill-mf FLOW:MF] [--flush-after OFFERS]\n\
         \x20                [--lane-high-watermark SEGS] [--lane-low-watermark SEGS]\n\
         \x20                [--overload-windows N]\n\
         \x20  runtime mode: --runtime [--workers N] [--queue-depth N] [--frames N]\n\
         \x20                [--backpressure block|drop-tail|inline] [--drop-budget PKTS]\n\
         \x20                [--inline-fallback] [--high-watermark DEPTH]\n\
         \x20                [--fault-lane-stall WORKER:MS] [--fault-slow-worker WORKER:US]\n\
         \x20                [--flush-timeout-ms MS] [--rt-transport mpsc|ring]\n\
         \x20                [--dispatch-mode post-parse|packet-request]\n\
         \x20                [--pool-slots N] [--pool-slab BYTES] [--pcap FILE]\n\
         \x20                [--merger-depth RESULTS] [--restart-budget N]\n\
         \x20                [--heartbeat-interval-ms MS] [--restart-backoff-ms MS]\n\
         \x20                [--checkpoint-every OFFERS]\n\
         \x20                [--fault-merger-kill OFFERS:INCARNATION]...\n\
         \x20                [--fault-merger-stall OFFERS:MS]\n\
         \x20                [--stateful-mode merge-before-tcp|scr] [--stateful-work ROUNDS]\n\
         \x20  chaos mode:   --chaos-soak [--chaos-seed N] [--chaos-frames N]\n\
         \x20                [--chaos-policies p1,p2,..] [--chaos-transports mpsc,ring]\n\
         \x20  bench mode:   --bench-transport | --bench-policy | --bench-stateful\n\
         \x20                [--frames N] [--bench-out PATH] [--bench-enforce]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        system: System::Mflow,
        transport: Transport::Tcp,
        msg: 65536,
        duration_ms: 60,
        flows: 0, // 0 = transport default
        batch: 256,
        seed: 42,
        noise: true,
        cpu: false,
        faults: FaultConfig::none(),
        flush_after: None,
        lane_high_watermark: None,
        lane_low_watermark: None,
        overload_windows: None,
        runtime: false,
        workers: 4,
        queue_depth: 8,
        frames: 50_000,
        backpressure: BackpressurePolicy::Block,
        drop_budget: 0,
        inline_fallback: false,
        high_watermark: None,
        rt_faults: RuntimeFaults::none(),
        rt_transport: RtTransport::Mpsc,
        merger_depth: RuntimeConfig::default().merger_depth,
        rt_policy: PolicyKind::Mflow,
        dispatch_mode: DispatchMode::PostParse,
        pool_slots: 0,
        pool_slab: 0,
        pcap: None,
        restart_budget: 0,
        heartbeat_interval_ms: None,
        restart_backoff_ms: RuntimeConfig::default().restart_backoff_ms,
        checkpoint_every: RuntimeConfig::default().checkpoint_every,
        stateful_mode: StatefulMode::MergeBeforeTcp,
        stateful_work: 0,
        chaos_soak: false,
        chaos_seed: 42,
        chaos_frames: 4_000,
        chaos_policies: PolicyKind::ALL.to_vec(),
        chaos_transports: vec![RtTransport::Mpsc, RtTransport::Ring],
        bench_transport: false,
        bench_policy: false,
        bench_stateful: false,
        bench_out: String::new(),
        bench_enforce: false,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let value = |i: &mut usize| -> String {
        *i += 1;
        argv.get(*i).cloned().unwrap_or_else(|| usage())
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--system" => {
                args.system = match value(&mut i).as_str() {
                    "native" => System::Native,
                    "vanilla" => System::Vanilla,
                    "rps" => System::Rps,
                    "falcon-dev" => System::FalconDev,
                    "falcon-fun" => System::FalconFun,
                    "mflow" => System::Mflow,
                    other => {
                        eprintln!("unknown system '{other}'");
                        usage()
                    }
                }
            }
            "--transport" => {
                args.transport = match value(&mut i).as_str() {
                    "tcp" => Transport::Tcp,
                    "udp" => Transport::Udp,
                    other => {
                        eprintln!("unknown transport '{other}'");
                        usage()
                    }
                }
            }
            "--msg" => args.msg = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--duration-ms" => {
                args.duration_ms = value(&mut i).parse().unwrap_or_else(|_| usage())
            }
            "--flows" => args.flows = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--batch" => args.batch = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--seed" => args.seed = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--no-noise" => args.noise = false,
            "--cpu" => args.cpu = true,
            "--flush-after" => {
                args.flush_after = Some(value(&mut i).parse().unwrap_or_else(|_| usage()))
            }
            "--fault-seed" => {
                args.faults.seed = value(&mut i).parse().unwrap_or_else(|_| usage())
            }
            "--fault-drop" => {
                args.faults.drop_rate = value(&mut i).parse().unwrap_or_else(|_| usage())
            }
            "--fault-drop-last" => args.faults.drop_last_only = true,
            "--fault-dup" => {
                args.faults.dup_rate = value(&mut i).parse().unwrap_or_else(|_| usage())
            }
            "--fault-delay" => {
                args.faults.delay_rate = value(&mut i).parse().unwrap_or_else(|_| usage())
            }
            "--fault-kill-mf" => {
                let v = value(&mut i);
                let (flow, mf) = v.split_once(':').unwrap_or_else(|| usage());
                args.faults.kill_microflows.push((
                    flow.parse().unwrap_or_else(|_| usage()),
                    mf.parse().unwrap_or_else(|_| usage()),
                ));
            }
            "--lane-high-watermark" => {
                args.lane_high_watermark = Some(value(&mut i).parse().unwrap_or_else(|_| usage()))
            }
            "--lane-low-watermark" => {
                args.lane_low_watermark = Some(value(&mut i).parse().unwrap_or_else(|_| usage()))
            }
            "--overload-windows" => {
                args.overload_windows = Some(value(&mut i).parse().unwrap_or_else(|_| usage()))
            }
            "--runtime" => args.runtime = true,
            "--workers" => args.workers = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--queue-depth" => {
                args.queue_depth = value(&mut i).parse().unwrap_or_else(|_| usage())
            }
            "--frames" => args.frames = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--backpressure" => {
                args.backpressure = match value(&mut i).as_str() {
                    "block" => BackpressurePolicy::Block,
                    "drop-tail" => BackpressurePolicy::DropTail { budget: 0 },
                    "inline" => BackpressurePolicy::Inline,
                    other => {
                        eprintln!("unknown backpressure policy '{other}'");
                        usage()
                    }
                }
            }
            "--drop-budget" => {
                args.drop_budget = value(&mut i).parse().unwrap_or_else(|_| usage())
            }
            "--inline-fallback" => args.inline_fallback = true,
            "--high-watermark" => {
                args.high_watermark = Some(value(&mut i).parse().unwrap_or_else(|_| usage()))
            }
            "--fault-lane-stall" => {
                let v = value(&mut i);
                let (w, ms) = v.split_once(':').unwrap_or_else(|| usage());
                args.rt_faults.lane_stall = Some(LaneStall {
                    worker: w.parse().unwrap_or_else(|_| usage()),
                    ms: ms.parse().unwrap_or_else(|_| usage()),
                });
            }
            "--fault-slow-worker" => {
                let v = value(&mut i);
                let (w, us) = v.split_once(':').unwrap_or_else(|| usage());
                args.rt_faults.slow_worker = Some(SlowWorker {
                    worker: w.parse().unwrap_or_else(|_| usage()),
                    per_batch_us: us.parse().unwrap_or_else(|_| usage()),
                });
            }
            "--flush-timeout-ms" => {
                args.rt_faults.flush_timeout_ms =
                    Some(value(&mut i).parse().unwrap_or_else(|_| usage()))
            }
            "--rt-transport" => {
                args.rt_transport = match value(&mut i).as_str() {
                    "mpsc" => RtTransport::Mpsc,
                    "ring" => RtTransport::Ring,
                    other => {
                        eprintln!("unknown runtime transport '{other}'");
                        usage()
                    }
                }
            }
            "--merger-depth" => {
                args.merger_depth = value(&mut i).parse().unwrap_or_else(|_| usage())
            }
            "--dispatch-mode" => {
                let v = value(&mut i);
                args.dispatch_mode = DispatchMode::parse(&v).unwrap_or_else(|| {
                    eprintln!("unknown dispatch mode '{v}'");
                    usage()
                })
            }
            "--pool-slots" => {
                args.pool_slots = value(&mut i).parse().unwrap_or_else(|_| usage())
            }
            "--pool-slab" => {
                args.pool_slab = value(&mut i).parse().unwrap_or_else(|_| usage())
            }
            "--pcap" => args.pcap = Some(value(&mut i)),
            "--policy" => {
                let v = value(&mut i);
                args.rt_policy = PolicyKind::parse(&v).unwrap_or_else(|| {
                    eprintln!("unknown steering policy '{v}'");
                    usage()
                })
            }
            "--restart-budget" => {
                args.restart_budget = value(&mut i).parse().unwrap_or_else(|_| usage())
            }
            "--heartbeat-interval-ms" => {
                args.heartbeat_interval_ms =
                    Some(value(&mut i).parse().unwrap_or_else(|_| usage()))
            }
            "--restart-backoff-ms" => {
                args.restart_backoff_ms = value(&mut i).parse().unwrap_or_else(|_| usage())
            }
            "--checkpoint-every" => {
                args.checkpoint_every = value(&mut i).parse().unwrap_or_else(|_| usage())
            }
            "--fault-merger-kill" => {
                let v = value(&mut i);
                let (offers, inc) = v.split_once(':').unwrap_or_else(|| usage());
                args.rt_faults.merger_kills.push(MergerKill {
                    after_offers: offers.parse().unwrap_or_else(|_| usage()),
                    incarnation: inc.parse().unwrap_or_else(|_| usage()),
                });
            }
            "--fault-merger-stall" => {
                let v = value(&mut i);
                let (offers, ms) = v.split_once(':').unwrap_or_else(|| usage());
                args.rt_faults.merger_stall = Some(MergerStall {
                    after_offers: offers.parse().unwrap_or_else(|_| usage()),
                    ms: ms.parse().unwrap_or_else(|_| usage()),
                });
            }
            "--stateful-mode" => {
                let v = value(&mut i);
                args.stateful_mode = StatefulMode::parse(&v).unwrap_or_else(|| {
                    eprintln!("unknown stateful mode '{v}'");
                    usage()
                })
            }
            "--stateful-work" => {
                args.stateful_work = value(&mut i).parse().unwrap_or_else(|_| usage())
            }
            "--chaos-soak" => args.chaos_soak = true,
            "--chaos-seed" => {
                args.chaos_seed = value(&mut i).parse().unwrap_or_else(|_| usage())
            }
            "--chaos-frames" => {
                args.chaos_frames = value(&mut i).parse().unwrap_or_else(|_| usage())
            }
            "--chaos-policies" => {
                args.chaos_policies = value(&mut i)
                    .split(',')
                    .map(|p| {
                        PolicyKind::parse(p).unwrap_or_else(|| {
                            eprintln!("unknown steering policy '{p}'");
                            usage()
                        })
                    })
                    .collect()
            }
            "--chaos-transports" => {
                args.chaos_transports = value(&mut i)
                    .split(',')
                    .map(|t| match t {
                        "mpsc" => RtTransport::Mpsc,
                        "ring" => RtTransport::Ring,
                        other => {
                            eprintln!("unknown runtime transport '{other}'");
                            usage()
                        }
                    })
                    .collect()
            }
            "--bench-transport" => args.bench_transport = true,
            "--bench-policy" => args.bench_policy = true,
            "--bench-stateful" => args.bench_stateful = true,
            "--bench-out" => args.bench_out = value(&mut i),
            "--bench-enforce" => args.bench_enforce = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag '{other}'");
                usage()
            }
        }
        i += 1;
    }
    args
}

/// Runs the byte-level threaded pipeline (`--runtime`) and prints its
/// delivery/overload accounting instead of the simulator report.
fn run_runtime(a: &Args) {
    let policy = match a.backpressure {
        BackpressurePolicy::DropTail { .. } => BackpressurePolicy::DropTail {
            budget: a.drop_budget,
        },
        p => p,
    };
    let cfg = RuntimeConfig {
        workers: a.workers,
        batch_size: a.batch as usize,
        queue_depth: a.queue_depth,
        backpressure: policy,
        high_watermark: a.high_watermark,
        inline_fallback: a.inline_fallback,
        transport: a.rt_transport,
        dispatch_mode: a.dispatch_mode,
        merger_depth: a.merger_depth,
        policy: a.rt_policy,
        heartbeat_interval_ms: a.heartbeat_interval_ms,
        restart_budget: a.restart_budget,
        restart_backoff_ms: a.restart_backoff_ms,
        stateful_mode: a.stateful_mode,
        stateful_work: a.stateful_work,
        checkpoint_every: a.checkpoint_every,
    };
    // Frames live in an explicit buffer pool: generated traffic sizes it
    // exactly, pcap replay sizes slots for the largest typical MTU frame
    // unless overridden with --pool-slots / --pool-slab.
    const PAYLOAD: usize = 1400;
    let (pool, frames, n_frames) = if let Some(path) = &a.pcap {
        let data = match std::fs::read(path) {
            Ok(d) => d,
            Err(e) => {
                eprintln!("failed to read pcap '{path}': {e}");
                std::process::exit(2);
            }
        };
        let slab = if a.pool_slab > 0 { a.pool_slab } else { 2048 };
        let slots = if a.pool_slots > 0 { a.pool_slots } else { a.frames };
        let pool = BufPool::new(slots, slab);
        let frames = match frames_from_pcap(&pool, &data) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("malformed pcap '{path}': {e:?}");
                std::process::exit(2);
            }
        };
        let n = frames.len();
        (pool, frames, n)
    } else {
        let slab = if a.pool_slab > 0 {
            a.pool_slab
        } else {
            frame_wire_len(PAYLOAD)
        };
        let slots = if a.pool_slots > 0 { a.pool_slots } else { a.frames };
        let pool = BufPool::new(slots, slab);
        let frames = generate_frames_into(&pool, a.frames, PAYLOAD);
        (pool, frames, a.frames)
    };
    let out = match process_parallel_faulty(&frames, &cfg, &a.rt_faults) {
        Ok(out) => out,
        Err(e) => {
            eprintln!("runtime config rejected: {e}");
            std::process::exit(2);
        }
    };
    let bytes: u64 = frames.iter().map(|f| f.bytes().len() as u64).sum();
    let secs = out.elapsed.as_secs_f64();
    println!(
        "runtime: {} workers x {} batch (depth {}, policy {:?}, transport {:?}, dispatch {}) — {:.2} Gbps over {} frames in {:.1} ms",
        a.workers,
        a.batch,
        a.queue_depth,
        policy,
        a.rt_transport,
        a.dispatch_mode.name(),
        bytes as f64 * 8.0 / secs / 1e9,
        n_frames,
        secs * 1e3,
    );
    let ps = pool.stats();
    println!(
        "pool: {} slots x {} B, {:.1}% hit rate ({} hits, {} misses), {} recycled, {} in flight",
        ps.slots,
        ps.slot_len,
        ps.hit_rate() * 100.0,
        ps.hits,
        ps.misses,
        ps.recycled,
        pool.in_flight(),
    );
    println!(
        "delivery: {} delivered, {} shed, {} flushed micro-flows, {} merge residue",
        out.digests.len(),
        out.telemetry.shed,
        out.flushed_mfs.len(),
        out.telemetry.residue
    );
    println!(
        "overload: {} backpressure events, {} inline batches ({} packets), {} block fallbacks",
        out.backpressure_events, out.inline_batches, out.telemetry.inline, out.block_fallbacks
    );
    if !out.sheds.is_empty() {
        let mut per_lane = std::collections::BTreeMap::new();
        for &(_, lane) in &out.sheds {
            *per_lane.entry(lane).or_insert(0u64) += 1;
        }
        println!("sheds by lane: {per_lane:?}");
    }
    println!(
        "ordering: {} raced at merge; faults: {} drops, {} redispatched, {} workers died",
        out.telemetry.ooo, out.telemetry.fault_drops, out.telemetry.redispatched, out.workers_died
    );
    if cfg.supervised() || out.merger_deaths > 0 {
        println!(
            "supervision: {} restarts, {} heartbeat misses, worst recovery {:.2} ms, {} respawned / {} abandoned",
            out.telemetry.restarts,
            out.telemetry.heartbeat_misses,
            out.telemetry.recovery_ns as f64 / 1e6,
            out.workers_respawned,
            out.workers_abandoned,
        );
        println!(
            "merger domain: {} deaths / {} respawns, worst recovery {:.2} ms, \
             {} checkpoints ({} snapshot bytes), {} offers replayed",
            out.merger_deaths,
            out.telemetry.merger_restarts,
            out.telemetry.merger_recovery_ns as f64 / 1e6,
            out.checkpoints,
            out.telemetry.snapshot_bytes,
            out.telemetry.restore_replayed_offers,
        );
        if out.recovery.recovered_ns > 0 {
            println!(
                "recovery rate: {:.2} Mfps pre-fault -> {:.2} Mfps post-respawn",
                out.recovery.prefault_rate() / 1e6,
                out.recovery.recovered_rate() / 1e6,
            );
        }
    }
    // The machine-readable line: the same schema both engines emit.
    println!(
        "telemetry: {}",
        out.telemetry.to_json_with(&[
            ("workers_died", out.workers_died.to_string()),
            ("backpressure_events", out.backpressure_events.to_string()),
            ("merger_deaths", out.merger_deaths.to_string()),
            ("checkpoints", out.checkpoints.to_string()),
        ])
    );
}

/// SplitMix64 — the same mixer the runtime fault plan uses. The CLI
/// needs it only to derive per-cell seeds and kill points; determinism
/// (same seed -> same schedule) is what makes a soak failure replayable.
fn splitmix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives a cell seed from the soak seed and the cell's *names* (not
/// its index): a replay run filtered to one policy/transport pair folds
/// the identical strings and reproduces the identical seed.
fn cell_seed(soak_seed: u64, policy: PolicyKind, transport: RtTransport) -> u64 {
    let mut acc = splitmix(soak_seed);
    for b in policy
        .name()
        .bytes()
        .chain(rt_transport_name(transport).bytes())
    {
        acc = splitmix(acc ^ b as u64);
    }
    acc
}

fn rt_transport_name(t: RtTransport) -> &'static str {
    match t {
        RtTransport::Mpsc => "mpsc",
        RtTransport::Ring => "ring",
    }
}

/// Replays the dispatcher's batching walk to predict, from the seed
/// alone, which packets the fault plan deletes at dispatch and which
/// micro-flow every surviving packet belongs to. Mirrors the dispatcher
/// exactly: drops shift batch boundaries because batches close on
/// retained length.
fn replay_dispatch(
    n: usize,
    batch_size: usize,
    faults: &RuntimeFaults,
) -> (BTreeSet<u64>, BTreeMap<u64, u64>) {
    let mut dropped = BTreeSet::new();
    let mut mf_of = BTreeMap::new();
    let mut mf_id = 0u64;
    let mut len = 0usize;
    for i in 0..n {
        let seq = i as u64;
        let last = len + 1 == batch_size || i + 1 == n;
        if faults.drops_packet(mf_id, seq, last) {
            dropped.insert(seq);
        } else {
            len += 1;
            mf_of.insert(seq, mf_id);
        }
        if last {
            mf_id += 1;
            len = 0;
        }
    }
    (dropped, mf_of)
}

/// One finished soak cell, for the summary line.
struct CellReport {
    delivered: usize,
    restarts: u64,
    heartbeat_misses: u64,
    workers_died: usize,
    merger_restarts: u64,
    replayed_offers: u64,
    flushed: usize,
    elapsed_ms: f64,
}

/// Runs one policy x transport cell of the chaos soak and checks the
/// full degradation contract. Every fault decision is a pure function
/// of the cell seed, so a violation message is a complete reproduction
/// recipe.
fn run_chaos_cell(
    frames: &[Frame],
    reference: &BTreeMap<u64, u64>,
    policy: PolicyKind,
    transport: RtTransport,
    seed: u64,
) -> Result<CellReport, String> {
    let cfg = RuntimeConfig {
        workers: 4,
        batch_size: 32,
        queue_depth: 8,
        backpressure: BackpressurePolicy::Block,
        transport,
        policy,
        heartbeat_interval_ms: Some(25),
        restart_budget: 32,
        restart_backoff_ms: 1,
        // Small interval so every cell crosses several checkpoint
        // boundaries and both merger kills land mid-window.
        checkpoint_every: 256,
        ..RuntimeConfig::default()
    };
    // One scheduled death per worker slot the policy materialises: every
    // fan-out lane, or every FALCON chain stage. Kill points land after
    // 2..=7 processed batches so the pre-fault rate window exists.
    let kills: Vec<WorkerKill> = (0..policy.worker_slots(cfg.workers))
        .map(|slot| WorkerKill {
            worker: slot,
            after_batches: 2 + splitmix(seed ^ (slot as u64).wrapping_mul(0x9E37)) % 6,
            incarnation: 0,
        })
        .collect();
    // Two scheduled merger deaths: incarnation 0 early in the stream,
    // its successor another ~half-checkpoint-window later — so every
    // cell proves snapshot restore plus delta replay twice, back to
    // back, while the worker kill schedule runs concurrently.
    let first_merger_kill = 64 + splitmix(seed ^ 0xC0FFEE) % 256;
    let merger_kills = vec![
        MergerKill {
            after_offers: first_merger_kill,
            incarnation: 0,
        },
        MergerKill {
            after_offers: first_merger_kill + 512,
            incarnation: 1,
        },
    ];
    let faults = RuntimeFaults {
        seed,
        drop_rate: 0.01,
        drop_last_rate: 0.02,
        dup_mf_rate: 0.03,
        late_mf_rate: 0.03,
        late_by: 3,
        stall_rate: 0.01,
        stall_ms: 1,
        kills,
        merger_kills,
        flush_timeout_ms: Some(40),
        ..RuntimeFaults::none()
    };
    let (dropped, mf_of) = replay_dispatch(frames.len(), cfg.batch_size, &faults);

    let out = process_parallel_faulty(frames, &cfg, &faults)
        .map_err(|e| format!("run failed outright: {e}"))?;

    // Ordering: strictly increasing seqs (no inversion, no duplicate),
    // every digest bit-identical to the serial reference.
    for pair in out.digests.windows(2) {
        if pair[0].seq >= pair[1].seq {
            return Err(format!(
                "ordering violated at merge: seq {} -> {}",
                pair[0].seq, pair[1].seq
            ));
        }
    }
    for r in &out.digests {
        if reference.get(&r.seq) != Some(&r.digest) {
            return Err(format!("digest mismatch at seq {}", r.seq));
        }
    }
    if out.telemetry.residue != 0 {
        return Err(format!(
            "{} items left parked in the merger (delivered {}, flushed {}, late {}, dup {}, \
             {} worker deaths, {} merger deaths, {} replayed)",
            out.telemetry.residue,
            out.digests.len(),
            out.flushed_mfs.len(),
            out.telemetry.late,
            out.telemetry.dup,
            out.workers_died,
            out.merger_deaths,
            out.telemetry.restore_replayed_offers
        ));
    }

    // Conservation: every offered packet is delivered, a replayable
    // dispatch-time drop, in a flushed micro-flow, or inside the bounded
    // in-flight window each worker death can take with it.
    let present: BTreeSet<u64> = out.digests.iter().map(|r| r.seq).collect();
    let flushed: BTreeSet<u64> = out.flushed_mfs.iter().copied().collect();
    let mut unattributed = BTreeSet::new();
    for seq in 0..frames.len() as u64 {
        if present.contains(&seq) || dropped.contains(&seq) {
            continue;
        }
        let mf = mf_of[&seq];
        if !flushed.contains(&mf) {
            unattributed.insert(mf);
        }
    }
    let window = (cfg.queue_depth + 2) * out.workers_died;
    if unattributed.len() > window {
        return Err(format!(
            "conservation violated: {} micro-flows lost without attribution \
             ({window}-batch death window): {unattributed:?}",
            unattributed.len()
        ));
    }
    if out.telemetry.lane_depths.iter().any(|&d| d != 0) {
        return Err(format!(
            "stale end-of-run lane depths {:?}",
            out.telemetry.lane_depths
        ));
    }

    // Liveness: the scheduled deaths on traffic-bearing slots must have
    // fired and been healed. Whole-flow pinning routes the single test
    // flow to one lane, so only that lane's kill is guaranteed to fire;
    // MFLOW spreads batches over every lane and FALCON chains pipe every
    // batch through every stage.
    let expected_restarts = match policy {
        PolicyKind::Mflow => cfg.workers as u64,
        PolicyKind::FalconDev | PolicyKind::FalconFunc => policy.worker_slots(cfg.workers) as u64,
        _ => 1,
    };
    if out.telemetry.restarts < expected_restarts {
        return Err(format!(
            "supervisor healed {} workers, expected at least {expected_restarts}",
            out.telemetry.restarts
        ));
    }
    // Merger failure domain: both scheduled merger kills must have fired
    // and been healed from the checkpoint layer, and replay must stay
    // within one inter-checkpoint window per restore.
    if out.merger_deaths < 2 || out.telemetry.merger_restarts < 2 {
        return Err(format!(
            "merger domain: {} deaths / {} respawns, expected at least 2 / 2",
            out.merger_deaths, out.telemetry.merger_restarts
        ));
    }
    // Each injected death panics right after journaling the fatal offer,
    // so every restore must replay at least that offer. (The strict
    // one-window upper bound is asserted by the recovery-equivalence
    // suite, whose configs keep the dispatcher's backlog pump idle; here
    // the pump may legitimately journal a burst while respawn backs off.)
    if (out.telemetry.restore_replayed_offers as usize) < out.merger_deaths {
        return Err(format!(
            "merger replayed only {} offers across {} deaths",
            out.telemetry.restore_replayed_offers, out.merger_deaths
        ));
    }

    Ok(CellReport {
        delivered: out.digests.len(),
        restarts: out.telemetry.restarts,
        heartbeat_misses: out.telemetry.heartbeat_misses,
        workers_died: out.workers_died,
        merger_restarts: out.telemetry.merger_restarts,
        replayed_offers: out.telemetry.restore_replayed_offers,
        flushed: out.flushed_mfs.len(),
        elapsed_ms: out.elapsed.as_secs_f64() * 1e3,
    })
}

/// `--chaos-soak`: run a seed-derived randomized fault schedule (worker
/// deaths, stalls, packet drops, duplicate and late micro-flows) over
/// every requested policy x transport cell and check the degradation
/// contract continuously. On any violation, prints a single replay
/// command that reproduces the failing cell byte-for-byte and exits
/// nonzero.
fn run_chaos_soak(a: &Args) {
    let frames = generate_frames(a.chaos_frames, 256);
    let serial = process_serial(&frames);
    let reference: BTreeMap<u64, u64> = serial.digests.iter().map(|r| (r.seq, r.digest)).collect();
    println!(
        "chaos soak: seed {} over {} frames, {} policies x {} transports",
        a.chaos_seed,
        a.chaos_frames,
        a.chaos_policies.len(),
        a.chaos_transports.len()
    );
    let mut violations = 0usize;
    let mut total_restarts = 0u64;
    for &policy in &a.chaos_policies {
        for &transport in &a.chaos_transports {
            let seed = cell_seed(a.chaos_seed, policy, transport);
            let tname = rt_transport_name(transport);
            match run_chaos_cell(&frames, &reference, policy, transport, seed) {
                Ok(r) => {
                    total_restarts += r.restarts;
                    println!(
                        "chaos[{policy}/{tname}]: OK — {} delivered, {} flushed mfs, \
                         {} died / {} restarts, {} merger respawns ({} offers replayed), \
                         {} heartbeat misses, {:.1} ms",
                        r.delivered,
                        r.flushed,
                        r.workers_died,
                        r.restarts,
                        r.merger_restarts,
                        r.replayed_offers,
                        r.heartbeat_misses,
                        r.elapsed_ms
                    );
                }
                Err(msg) => {
                    violations += 1;
                    println!("chaos[{policy}/{tname}]: VIOLATION — {msg}");
                    println!(
                        "REPLAY: cargo run --release -p mflow-bench --bin mflow_cli -- \
                         --chaos-soak --chaos-seed {} --chaos-frames {} \
                         --chaos-policies {} --chaos-transports {}",
                        a.chaos_seed,
                        a.chaos_frames,
                        policy.name(),
                        tname
                    );
                }
            }
        }
    }
    if violations > 0 {
        eprintln!("chaos soak FAILED: {violations} cell(s) violated the degradation contract");
        std::process::exit(1);
    }
    println!(
        "chaos soak passed: {} cells, {} restarts total, 0 violations",
        a.chaos_policies.len() * a.chaos_transports.len(),
        total_restarts
    );
    run_checkpoint_sweep();
}

/// Appended to the soak output: the cost of the merger's checkpointing
/// as a function of the interval at the {4 workers, batch 32} reference
/// point. The baseline each interval is judged against is a *supervised,
/// WAL-on run that never snapshots* (`checkpoint_every = u64::MAX` —
/// journal appends only), so the delta isolates exactly the periodic
/// snapshot folds the interval controls. Arming supervision itself has a
/// separate, pre-existing price (per-batch retention copies for
/// redispatch, DESIGN.md §11) — printed once as the unarmed reference so
/// the two costs are never conflated. Fault-free runs: no respawns, no
/// replay. Best-of-3 per point: the soak's fault frames are far too few
/// for a stable rate, so the sweep generates its own stream.
fn run_checkpoint_sweep() {
    const INTERVALS: [u64; 4] = [64, 256, 1024, 4096];
    const SWEEP_FRAMES: usize = 100_000;
    let frames = generate_frames(SWEEP_FRAMES, 256);
    let base_cfg = RuntimeConfig {
        workers: 4,
        batch_size: 32,
        queue_depth: 8,
        ..RuntimeConfig::default()
    };
    let best_of = |cfg: &RuntimeConfig| -> (f64, u64, u64) {
        let mut best = f64::MAX;
        let mut stats = (0, 0);
        for _ in 0..3 {
            let out = process_parallel(&frames, cfg).expect("sweep point must run");
            assert_eq!(
                out.digests.len(),
                frames.len(),
                "checkpoint sweep lost packets (interval {})",
                cfg.checkpoint_every
            );
            let secs = out.elapsed.as_secs_f64();
            if secs < best {
                best = secs;
                stats = (out.checkpoints, out.telemetry.snapshot_bytes);
            }
        }
        (frames.len() as f64 / best / 1e6, stats.0, stats.1)
    };
    let armed = |every: u64| RuntimeConfig {
        heartbeat_interval_ms: Some(100),
        restart_budget: 4,
        checkpoint_every: every,
        ..base_cfg
    };
    let (unarmed_mpps, _, _) = best_of(&base_cfg);
    let (base_mpps, _, _) = best_of(&armed(u64::MAX));
    println!(
        "checkpoint sweep [4w x 32b, {SWEEP_FRAMES} frames, best of 3]: \
         unarmed {unarmed_mpps:.2} Mpps, armed journal-only baseline {base_mpps:.2} Mpps \
         ({:+.1}% supervision price)",
        (base_mpps / unarmed_mpps - 1.0) * 100.0,
    );
    for every in INTERVALS {
        let (mpps, checkpoints, snapshot_bytes) = best_of(&armed(every));
        println!(
            "checkpoint sweep: every={every} -> {mpps:.2} Mpps ({:+.1}% vs journal-only), \
             {checkpoints} checkpoints, {snapshot_bytes} snapshot bytes",
            (mpps / base_mpps - 1.0) * 100.0,
        );
    }
}

/// One measured point of the transport sweep.
struct BenchPoint {
    workers: usize,
    batch: usize,
    transport: RtTransport,
    mode: DispatchMode,
    best_ns: u128,
    mean_ns: u128,
    gbps: f64,
    mpps: f64,
    /// Allocator events per frame across the timed runs (pipeline only,
    /// generation excluded).
    allocs_per_frame: f64,
    /// Buffer-pool hit rate over this point's allocations.
    pool_hit_rate: f64,
}

/// `--bench-transport`: sweep {workers} x {batch} x {transport} x
/// {dispatch mode} over the fault-free pipeline and write the results as
/// JSON (hand-serialized — the workspace is dependency-free). Each point
/// reports best-of-K wall time; throughput derives from the best run,
/// the standard way to strip scheduler noise from a short benchmark.
/// Frames are regenerated into one shared [`BufPool`] before every run,
/// so each point also exercises and reports the slab recycle path
/// (`pool_hit_rate`) and the pipeline's allocator traffic
/// (`allocs_per_frame`, from the counting global allocator).
///
/// With `--bench-enforce` the process exits nonzero when either gate
/// fails:
///
/// * transport gate — the ring transport is more than 10% slower than
///   mpsc at the reference point {4 workers, batch 32} (post-parse);
/// * zero-copy gate — ring throughput at the reference point fell under
///   2x the pre-pool baseline, the pipeline allocates more than the
///   per-frame budget there, or packet-request dispatch stops scaling
///   (w=4 not strictly faster than w=1).
fn run_bench_transport(a: &Args) {
    const PAYLOAD: usize = 256;
    const WORKERS: [usize; 3] = [1, 2, 4];
    const BATCHES: [usize; 3] = [8, 32, 256];
    const TRANSPORTS: [RtTransport; 2] = [RtTransport::Mpsc, RtTransport::Ring];
    const MODES: [DispatchMode; 2] = [DispatchMode::PostParse, DispatchMode::PacketRequest];
    // Best-of-9: on a contended host the per-run variance at the
    // reference points is larger than the gate margins, and `best_ns`
    // estimates the noise floor — more samples only tighten it.
    const ITERS: usize = 9;
    // The ring reference point {4 workers, batch 32} measured just
    // before the pooled zero-copy datapath landed — the denominator of
    // the speedup gate.
    const BASELINE_W4_B32_RING_MPPS: f64 = 1.4015;
    const SPEEDUP_THRESHOLD: f64 = 2.0;
    const ALLOC_BUDGET_PER_FRAME: f64 = 0.5;

    let n_frames = a.frames;
    let pool = BufPool::for_frames(n_frames, frame_wire_len(PAYLOAD));
    let bytes = (frame_wire_len(PAYLOAD) * n_frames) as u64;
    let mut points: Vec<BenchPoint> = Vec::new();
    for workers in WORKERS {
        for batch in BATCHES {
            for transport in TRANSPORTS {
                for mode in MODES {
                    let cfg = RuntimeConfig {
                        workers,
                        batch_size: batch,
                        queue_depth: 8,
                        transport,
                        dispatch_mode: mode,
                        ..RuntimeConfig::default()
                    };
                    let pool_start = pool.stats();
                    // One warmup run pages everything in and checks
                    // delivery, then K timed runs. Frames are rebuilt
                    // into the shared pool before every run and dropped
                    // after it, so the slab recycles at every point.
                    {
                        let frames = generate_frames_into(&pool, n_frames, PAYLOAD);
                        let out =
                            process_parallel(&frames, &cfg).expect("bench config must be valid");
                        assert_eq!(out.digests.len(), n_frames, "bench run lost packets");
                    }
                    let mut best_ns = u128::MAX;
                    let mut total_ns = 0u128;
                    let mut run_allocs = 0u64;
                    for _ in 0..ITERS {
                        let frames = generate_frames_into(&pool, n_frames, PAYLOAD);
                        let allocs_at_start = ALLOC.allocations();
                        let out =
                            process_parallel(&frames, &cfg).expect("bench config must be valid");
                        run_allocs += ALLOC.allocations() - allocs_at_start;
                        let ns = out.elapsed.as_nanos();
                        best_ns = best_ns.min(ns);
                        total_ns += ns;
                    }
                    let pool_end = pool.stats();
                    let d_hits = pool_end.hits - pool_start.hits;
                    let d_misses = pool_end.misses - pool_start.misses;
                    let pool_hit_rate = if d_hits + d_misses == 0 {
                        1.0
                    } else {
                        d_hits as f64 / (d_hits + d_misses) as f64
                    };
                    let secs = best_ns as f64 / 1e9;
                    let point = BenchPoint {
                        workers,
                        batch,
                        transport,
                        mode,
                        best_ns,
                        mean_ns: total_ns / ITERS as u128,
                        gbps: bytes as f64 * 8.0 / secs / 1e9,
                        mpps: n_frames as f64 / secs / 1e6,
                        allocs_per_frame: run_allocs as f64 / (ITERS * n_frames) as f64,
                        pool_hit_rate,
                    };
                    println!(
                        "bench: w={} b={:<4} {:<5} {:<15} best {:>9} ns  mean {:>9} ns  {:.2} Gbps  {:.2} Mpps  {:.3} allocs/frame  pool {:.1}%",
                        point.workers,
                        point.batch,
                        rt_transport_name(point.transport),
                        point.mode.name(),
                        point.best_ns,
                        point.mean_ns,
                        point.gbps,
                        point.mpps,
                        point.allocs_per_frame,
                        point.pool_hit_rate * 100.0,
                    );
                    points.push(point);
                }
            }
        }
    }

    let at = |workers: usize, batch: usize, transport: RtTransport, mode: DispatchMode| {
        points
            .iter()
            .find(|p| {
                p.workers == workers
                    && p.batch == batch
                    && p.transport == transport
                    && p.mode == mode
            })
            .expect("sweep covers the reference point")
    };
    // The transport gate: ring vs mpsc at {4 workers, batch 32},
    // post-parse (the historical reference configuration).
    let mpsc_ns = at(4, 32, RtTransport::Mpsc, DispatchMode::PostParse).best_ns;
    let ring_ns = at(4, 32, RtTransport::Ring, DispatchMode::PostParse).best_ns;
    let ratio = ring_ns as f64 / mpsc_ns as f64;
    let transport_pass = ratio <= 1.10;
    println!(
        "gate @ w=4 b=32: ring/mpsc time ratio {:.3} ({}; threshold 1.10)",
        ratio,
        if transport_pass { "pass" } else { "FAIL" }
    );

    // The zero-copy gate: (a) >= 2x the pre-pool throughput baseline at
    // the ring reference point, (b) allocator traffic under budget in
    // both dispatch modes, (c) packet-request dispatch actually
    // parallelizes the parse (w=4 strictly beats w=1). The scaling leg
    // is measured on the mpsc transport: the busy-polled ring pipeline
    // saturates a CPU-constrained host at one worker, so worker count
    // stops being the throughput lever there, while the blocking mpsc
    // transport yields the CPU between batches and exposes exactly the
    // parse-stage parallelism packet-request dispatch adds.
    let ring_ref = at(4, 32, RtTransport::Ring, DispatchMode::PostParse);
    let pkt_ref = at(4, 32, RtTransport::Ring, DispatchMode::PacketRequest);
    let pkt_w4 = at(4, 32, RtTransport::Mpsc, DispatchMode::PacketRequest);
    let pkt_w1 = at(1, 32, RtTransport::Mpsc, DispatchMode::PacketRequest);
    let speedup = ring_ref.mpps / BASELINE_W4_B32_RING_MPPS;
    let speedup_pass = speedup >= SPEEDUP_THRESHOLD;
    let alloc_pass = ring_ref.allocs_per_frame <= ALLOC_BUDGET_PER_FRAME
        && pkt_ref.allocs_per_frame <= ALLOC_BUDGET_PER_FRAME;
    let scaling_pass = pkt_w4.mpps > pkt_w1.mpps;
    let zerocopy_pass = speedup_pass && alloc_pass && scaling_pass;
    println!(
        "zerocopy gate @ w=4 b=32: ring {:.2}x vs {BASELINE_W4_B32_RING_MPPS} Mpps baseline ({}; threshold {SPEEDUP_THRESHOLD}x), \
         allocs/frame {:.3} post-parse / {:.3} packet-request ({}; budget {ALLOC_BUDGET_PER_FRAME}), \
         packet-request mpsc w4 {:.2} vs w1 {:.2} Mpps ({})",
        speedup,
        if speedup_pass { "pass" } else { "FAIL" },
        ring_ref.allocs_per_frame,
        pkt_ref.allocs_per_frame,
        if alloc_pass { "pass" } else { "FAIL" },
        pkt_w4.mpps,
        pkt_w1.mpps,
        if scaling_pass { "pass" } else { "FAIL" },
    );

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"runtime_parallel\",\n");
    json.push_str(&format!("  \"frames\": {n_frames},\n"));
    json.push_str(&format!("  \"payload_bytes\": {PAYLOAD},\n"));
    json.push_str(&format!("  \"bytes_per_run\": {bytes},\n"));
    json.push_str(&format!("  \"iters_per_point\": {ITERS},\n"));
    json.push_str(&format!(
        "  \"pool\": {{\"slots\": {n_frames}, \"slot_bytes\": {}}},\n",
        frame_wire_len(PAYLOAD)
    ));
    json.push_str("  \"points\": [\n");
    for (i, p) in points.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"workers\": {}, \"batch\": {}, \"transport\": \"{}\", \"dispatch_mode\": \"{}\", \"best_ns\": {}, \"mean_ns\": {}, \"gbps\": {:.4}, \"mpps\": {:.4}, \"allocs_per_frame\": {:.4}, \"pool_hit_rate\": {:.4}}}{}\n",
            p.workers,
            p.batch,
            rt_transport_name(p.transport),
            p.mode.name(),
            p.best_ns,
            p.mean_ns,
            p.gbps,
            p.mpps,
            p.allocs_per_frame,
            p.pool_hit_rate,
            if i + 1 == points.len() { "" } else { "," },
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"gate\": {{\"workers\": 4, \"batch\": 32, \"mpsc_best_ns\": {mpsc_ns}, \"ring_best_ns\": {ring_ns}, \"ring_over_mpsc_time\": {ratio:.4}, \"threshold\": 1.10, \"pass\": {transport_pass}}},\n",
    ));
    json.push_str(&format!(
        "  \"zerocopy_gate\": {{\"workers\": 4, \"batch\": 32, \"transport\": \"ring\", \"baseline_mpps\": {BASELINE_W4_B32_RING_MPPS}, \"post_parse_mpps\": {:.4}, \"packet_request_mpps\": {:.4}, \"speedup\": {speedup:.4}, \"speedup_threshold\": {SPEEDUP_THRESHOLD}, \"allocs_per_frame_post_parse\": {:.4}, \"allocs_per_frame_packet_request\": {:.4}, \"alloc_budget_per_frame\": {ALLOC_BUDGET_PER_FRAME}, \"scaling_transport\": \"mpsc\", \"packet_request_w4_mpps\": {:.4}, \"packet_request_w1_mpps\": {:.4}, \"scaling_pass\": {scaling_pass}, \"pass\": {zerocopy_pass}}}\n",
        ring_ref.mpps, pkt_ref.mpps, ring_ref.allocs_per_frame, pkt_ref.allocs_per_frame, pkt_w4.mpps, pkt_w1.mpps,
    ));
    json.push_str("}\n");
    let out_path = if a.bench_out.is_empty() {
        "BENCH_runtime_parallel.json"
    } else {
        &a.bench_out
    };
    if let Err(e) = std::fs::write(out_path, &json) {
        eprintln!("failed to write {out_path}: {e}");
        std::process::exit(1);
    }
    println!("wrote {out_path}");
    if a.bench_enforce && !(transport_pass && zerocopy_pass) {
        if !transport_pass {
            eprintln!(
                "bench gate failed: ring transport is {:.1}% slower than mpsc at w=4 b=32",
                (ratio - 1.0) * 100.0
            );
        }
        if !zerocopy_pass {
            eprintln!(
                "zerocopy gate failed: speedup {speedup:.2}x (need {SPEEDUP_THRESHOLD}x), \
                 allocs/frame {:.3}/{:.3} (budget {ALLOC_BUDGET_PER_FRAME}), \
                 packet-request scaling pass = {scaling_pass}",
                ring_ref.allocs_per_frame, pkt_ref.allocs_per_frame
            );
        }
        std::process::exit(1);
    }
}

/// One measured point of the policy sweep.
struct PolicyPoint {
    policy: PolicyKind,
    transport: RtTransport,
    best_ns: u128,
    mean_ns: u128,
    gbps: f64,
    mpps: f64,
    ooo: u64,
}

/// `--bench-policy`: race the steering policies over the same
/// elephant-flow workload (one heavy flow, the scenario MFLOW exists
/// for) at the reference point {4 workers, batch 32}, on both
/// transports. Writes `BENCH_policy_compare.json`.
///
/// With `--bench-enforce` the process exits nonzero unless MFLOW's
/// packet-level parallelism beats RPS-style whole-flow pinning on every
/// transport — the paper's headline claim as a regression gate.
fn run_bench_policy(a: &Args) {
    const PAYLOAD: usize = 256;
    const POLICIES: [PolicyKind; 3] =
        [PolicyKind::Mflow, PolicyKind::Rps, PolicyKind::FalconFunc];
    const TRANSPORTS: [RtTransport; 2] = [RtTransport::Mpsc, RtTransport::Ring];
    const ITERS: usize = 5;

    let n_frames = a.frames;
    // One elephant flow: every frame shares the flow hash, so whole-flow
    // policies collapse onto a single lane while MFLOW spreads batches.
    let frames = generate_frames(n_frames, PAYLOAD);
    let bytes: u64 = frames.iter().map(|f| f.bytes().len() as u64).sum();
    let mut points: Vec<PolicyPoint> = Vec::new();
    for transport in TRANSPORTS {
        for policy in POLICIES {
            let cfg = RuntimeConfig {
                workers: 4,
                batch_size: 32,
                queue_depth: 8,
                transport,
                policy,
                ..RuntimeConfig::default()
            };
            let out = process_parallel(&frames, &cfg).expect("bench config must be valid");
            assert_eq!(out.digests.len(), n_frames, "bench run lost packets");
            let mut best_ns = u128::MAX;
            let mut total_ns = 0u128;
            let mut ooo = 0u64;
            for _ in 0..ITERS {
                let out = process_parallel(&frames, &cfg).expect("bench config must be valid");
                let ns = out.elapsed.as_nanos();
                if ns < best_ns {
                    best_ns = ns;
                    ooo = out.telemetry.ooo;
                }
                total_ns += ns;
            }
            let secs = best_ns as f64 / 1e9;
            let point = PolicyPoint {
                policy,
                transport,
                best_ns,
                mean_ns: total_ns / ITERS as u128,
                gbps: bytes as f64 * 8.0 / secs / 1e9,
                mpps: n_frames as f64 / secs / 1e6,
                ooo,
            };
            println!(
                "bench: {:<12} {:<5} best {:>9} ns  mean {:>9} ns  {:.2} Gbps  {:.2} Mpps  ooo {}",
                point.policy,
                format!("{:?}", point.transport).to_lowercase(),
                point.best_ns,
                point.mean_ns,
                point.gbps,
                point.mpps,
                point.ooo,
            );
            points.push(point);
        }
    }

    // The headline gate: micro-flow splitting must out-run whole-flow
    // pinning on the elephant workload, on every transport.
    let best_of = |policy: PolicyKind, transport: RtTransport| {
        points
            .iter()
            .find(|p| p.policy == policy && p.transport == transport)
            .map(|p| p.best_ns)
            .expect("sweep covers every policy x transport")
    };
    let mut pass = true;
    for transport in TRANSPORTS {
        let mflow_ns = best_of(PolicyKind::Mflow, transport);
        let rps_ns = best_of(PolicyKind::Rps, transport);
        let ok = mflow_ns < rps_ns;
        pass &= ok;
        println!(
            "gate @ w=4 b=32 {}: mflow/rps time ratio {:.3} ({})",
            format!("{transport:?}").to_lowercase(),
            mflow_ns as f64 / rps_ns as f64,
            if ok { "pass" } else { "FAIL" }
        );
    }

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"policy_compare\",\n");
    json.push_str(&format!("  \"frames\": {n_frames},\n"));
    json.push_str(&format!("  \"payload_bytes\": {PAYLOAD},\n"));
    json.push_str(&format!("  \"bytes_per_run\": {bytes},\n"));
    json.push_str(&format!("  \"iters_per_point\": {ITERS},\n"));
    json.push_str("  \"workers\": 4,\n  \"batch\": 32,\n");
    json.push_str("  \"points\": [\n");
    for (i, p) in points.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"policy\": \"{}\", \"transport\": \"{}\", \"best_ns\": {}, \"mean_ns\": {}, \"gbps\": {:.4}, \"mpps\": {:.4}, \"ooo\": {}}}{}\n",
            p.policy,
            format!("{:?}", p.transport).to_lowercase(),
            p.best_ns,
            p.mean_ns,
            p.gbps,
            p.mpps,
            p.ooo,
            if i + 1 == points.len() { "" } else { "," },
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"gate\": {{\"claim\": \"mflow beats rps on the elephant workload\", \"pass\": {pass}}}\n",
    ));
    json.push_str("}\n");
    let out_path = if a.bench_out.is_empty() {
        "BENCH_policy_compare.json"
    } else {
        &a.bench_out
    };
    if let Err(e) = std::fs::write(out_path, &json) {
        eprintln!("failed to write {out_path}: {e}");
        std::process::exit(1);
    }
    println!("wrote {out_path}");
    if a.bench_enforce && !pass {
        eprintln!("bench gate failed: mflow did not beat rps on the elephant workload");
        std::process::exit(1);
    }
}

/// One measured point of the stateful-mode sweep.
struct StatefulPoint {
    work: u32,
    mode: StatefulMode,
    transport: RtTransport,
    best_ns: u128,
    mean_ns: u128,
    /// Merger-thread busy time of the best run: the serial stage's cost.
    serial_ns: u64,
    mpps: f64,
    replicated: u64,
}

/// `--bench-stateful`: race the two stateful-stage placements over the
/// elephant workload at the reference point {4 workers, batch 32,
/// policy mflow} — the configuration where the merge counter is engaged
/// and merge-before-tcp therefore serializes the stateful stage on the
/// merger thread — sweeping the per-packet stateful cost. Every
/// measured run is also checked byte-identical to the in-order serial
/// reference, so the sweep doubles as a differential test. Writes
/// `BENCH_stateful.json`.
///
/// With `--bench-enforce` the process exits nonzero unless
/// state-compute replication beats merge-before-tcp at the heaviest
/// stateful point on every transport. The gated quantity is the
/// *serial-stage time* — the merger thread's busy time
/// ([`RunOutput::stateful_serial_ns`]) — because that is the cost the
/// paper's design moves off the critical serial stage, and it reads the
/// same whether the host gives the worker threads four real cores or
/// time-slices them onto one (wall-clock on a single-core runner cannot
/// distinguish the placements; both points are recorded regardless).
fn run_bench_stateful(a: &Args) {
    const PAYLOAD: usize = 256;
    const WORKS: [u32; 3] = [0, 64, 512];
    const MODES: [StatefulMode; 2] = StatefulMode::ALL;
    const TRANSPORTS: [RtTransport; 2] = [RtTransport::Mpsc, RtTransport::Ring];
    const ITERS: usize = 5;

    let n_frames = a.frames;
    let frames = generate_frames(n_frames, PAYLOAD);
    let mut points: Vec<StatefulPoint> = Vec::new();
    for work in WORKS {
        let reference = process_serial_stateful(&frames, work);
        for transport in TRANSPORTS {
            for mode in MODES {
                let cfg = RuntimeConfig {
                    workers: 4,
                    batch_size: 32,
                    queue_depth: 8,
                    transport,
                    policy: PolicyKind::Mflow,
                    stateful_mode: mode,
                    stateful_work: work,
                    ..RuntimeConfig::default()
                };
                // One warmup run doubles as the differential check: both
                // placements must deliver the serial stream exactly.
                let out = process_parallel(&frames, &cfg).expect("bench config must be valid");
                assert_eq!(
                    reference.digests, out.digests,
                    "stateful mode {mode:?} diverged from the serial reference"
                );
                let mut best_ns = u128::MAX;
                let mut total_ns = 0u128;
                let mut replicated = 0u64;
                let mut serial_ns = 0u64;
                for _ in 0..ITERS {
                    let out = process_parallel(&frames, &cfg).expect("bench config must be valid");
                    let ns = out.elapsed.as_nanos();
                    if ns < best_ns {
                        best_ns = ns;
                        replicated = out.telemetry.replicated_transitions;
                        serial_ns = out.stateful_serial_ns;
                    }
                    total_ns += ns;
                }
                let secs = best_ns as f64 / 1e9;
                let point = StatefulPoint {
                    work,
                    mode,
                    transport,
                    best_ns,
                    mean_ns: total_ns / ITERS as u128,
                    serial_ns,
                    mpps: n_frames as f64 / secs / 1e6,
                    replicated,
                };
                println!(
                    "bench: work={:<4} {:<16} {:<5} best {:>10} ns  mean {:>10} ns  serial {:>10} ns  {:.2} Mpps",
                    point.work,
                    point.mode.name(),
                    rt_transport_name(point.transport),
                    point.best_ns,
                    point.mean_ns,
                    point.serial_ns,
                    point.mpps,
                );
                points.push(point);
            }
        }
    }

    // The gate: at the heaviest stateful point, replicating the state
    // computation across the lanes must beat serializing it after the
    // merge, on every transport.
    let heavy = *WORKS.last().expect("non-empty sweep");
    let serial_of = |mode: StatefulMode, transport: RtTransport| {
        points
            .iter()
            .find(|p| p.work == heavy && p.mode == mode && p.transport == transport)
            .map(|p| p.serial_ns)
            .expect("sweep covers the gate point")
    };
    let mut pass = true;
    let mut gate_ratios: Vec<(RtTransport, u64, u64, f64)> = Vec::new();
    for transport in TRANSPORTS {
        let mbt_ns = serial_of(StatefulMode::MergeBeforeTcp, transport);
        let scr_ns = serial_of(StatefulMode::StateComputeReplication, transport);
        let ratio = scr_ns as f64 / mbt_ns as f64;
        let ok = ratio < 1.0;
        pass &= ok;
        println!(
            "gate @ w=4 b=32 work={heavy} {}: scr/mbt serial-stage time ratio {:.3} ({})",
            rt_transport_name(transport),
            ratio,
            if ok { "pass" } else { "FAIL" }
        );
        gate_ratios.push((transport, mbt_ns, scr_ns, ratio));
    }

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"stateful_modes\",\n");
    json.push_str(&format!("  \"frames\": {n_frames},\n"));
    json.push_str(&format!("  \"payload_bytes\": {PAYLOAD},\n"));
    json.push_str(&format!("  \"iters_per_point\": {ITERS},\n"));
    json.push_str("  \"workers\": 4,\n  \"batch\": 32,\n  \"policy\": \"mflow\",\n");
    json.push_str("  \"points\": [\n");
    for (i, p) in points.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"stateful_work\": {}, \"mode\": \"{}\", \"transport\": \"{}\", \"best_ns\": {}, \"mean_ns\": {}, \"serial_stage_ns\": {}, \"mpps\": {:.4}, \"replicated_transitions\": {}}}{}\n",
            p.work,
            p.mode.name(),
            rt_transport_name(p.transport),
            p.best_ns,
            p.mean_ns,
            p.serial_ns,
            p.mpps,
            p.replicated,
            if i + 1 == points.len() { "" } else { "," },
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"gate\": {{\"stateful_work\": {heavy}, \"claim\": \"scr relieves the serial merge stage once stateful work dominates\", \"metric\": \"merger-thread busy time (serial-stage cost, host-core-count independent)\", \"transports\": [\n"
    ));
    for (i, (t, mbt_ns, scr_ns, ratio)) in gate_ratios.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"transport\": \"{}\", \"mbt_serial_ns\": {}, \"scr_serial_ns\": {}, \"scr_over_mbt_serial_time\": {:.4}}}{}\n",
            rt_transport_name(*t),
            mbt_ns,
            scr_ns,
            ratio,
            if i + 1 == gate_ratios.len() { "" } else { "," },
        ));
    }
    json.push_str(&format!("  ], \"threshold\": 1.0, \"pass\": {pass}}}\n"));
    json.push_str("}\n");
    let out_path = if a.bench_out.is_empty() {
        "BENCH_stateful.json"
    } else {
        &a.bench_out
    };
    if let Err(e) = std::fs::write(out_path, &json) {
        eprintln!("failed to write {out_path}: {e}");
        std::process::exit(1);
    }
    println!("wrote {out_path}");
    if a.bench_enforce && !pass {
        eprintln!(
            "bench gate failed: state-compute replication did not relieve the serial \
             merge stage vs merge-before-tcp at stateful work {heavy}"
        );
        std::process::exit(1);
    }
}

fn main() {
    let a = parse_args();
    if a.chaos_soak {
        run_chaos_soak(&a);
        return;
    }
    if a.bench_transport {
        run_bench_transport(&a);
        return;
    }
    if a.bench_policy {
        run_bench_policy(&a);
        return;
    }
    if a.bench_stateful {
        run_bench_stateful(&a);
        return;
    }
    if a.runtime {
        run_runtime(&a);
        return;
    }
    let flow = match a.transport {
        Transport::Tcp => FlowSpec::tcp(a.msg, 0),
        Transport::Udp => FlowSpec::udp(a.msg, 0),
    };
    let n_flows = if a.flows > 0 {
        a.flows
    } else if a.transport == Transport::Udp {
        UDP_CLIENTS
    } else {
        1
    };
    let mut cfg = StackConfig::single_flow(a.system.path(), flow.clone());
    cfg.flows = vec![flow; n_flows];
    cfg.duration_ns = a.duration_ms * MS;
    cfg.warmup_ns = cfg.duration_ns / 4;
    cfg.seed = a.seed;
    if !a.noise {
        cfg.noise = NoiseConfig::off();
    }
    let faults_on = a.faults.is_active();
    if faults_on {
        cfg.faults = Some(a.faults.clone());
    }
    let (policy, merge) = if a.system == System::Mflow {
        let mut mcfg = match a.transport {
            Transport::Tcp => MflowConfig::tcp_full_path(),
            Transport::Udp => MflowConfig::udp_device_scaling(),
        };
        mcfg.batch_size = a.batch;
        mcfg.stateful_mode = a.stateful_mode;
        if a.flush_after.is_some() {
            mcfg.flush_after_offers = a.flush_after;
        }
        if let Some(hi) = a.lane_high_watermark {
            mcfg.elephant.lane_high_watermark_segs = hi;
            mcfg.elephant.lane_low_watermark_segs = a.lane_low_watermark.unwrap_or(hi / 2);
        }
        if let Some(w) = a.overload_windows {
            mcfg.elephant.overload_windows = w;
        }
        match mflow::try_install(mcfg) {
            Ok((p, m)) => (p, Some(m)),
            Err(e) => {
                eprintln!("mflow config rejected: {e}");
                std::process::exit(2);
            }
        }
    } else {
        a.system.build_single_flow(a.transport)
    };

    let r = match StackSim::try_run(cfg, policy, merge) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("stack config rejected: {e}");
            std::process::exit(2);
        }
    };
    println!("{}", r.summary());
    println!(
        "telemetry: {}",
        r.telemetry.to_json_with(&[
            ("ring_drops", r.ring_drops.to_string()),
            ("sock_drops", r.sock_drops.to_string()),
        ])
    );
    println!(
        "delivered {:.1} MB in {} messages over {:.0} ms ({} events simulated)",
        r.delivered_bytes as f64 / 1e6,
        r.telemetry.delivered,
        r.measured_ns as f64 / 1e6,
        r.events
    );
    println!(
        "ordering: {} raced at merge, {} tcp ooo inserts, {} merge residue",
        r.telemetry.ooo, r.tcp_ooo_inserts, r.telemetry.residue
    );
    if r.telemetry.desplits > 0 || r.telemetry.resplits > 0 {
        println!(
            "overload: {} flows de-split under lane pressure, {} re-promoted",
            r.telemetry.desplits, r.telemetry.resplits
        );
    }
    if faults_on {
        println!(
            "faults: injected {} drops, {} dups, {} late skbs",
            r.telemetry.fault_drops, r.fault_dups, r.fault_delays
        );
        println!(
            "degradation: {} micro-flows flushed, {} late drops, {} dup drops",
            r.telemetry.flushed, r.telemetry.late, r.telemetry.dup
        );
    }
    println!(
        "latency: p50 {:.1}us  mean {:.1}us  p99 {:.1}us  max {:.1}us",
        r.latency.median() as f64 / 1e3,
        r.latency.mean() / 1e3,
        r.latency.p99() as f64 / 1e3,
        r.latency.max() as f64 / 1e3
    );
    if a.cpu {
        println!("\nper-core CPU:\n{}", r.cpu.render(r.duration_ns));
    }
}
