//! `mflow-bench` — shared plumbing for the figure-regeneration binaries.
//!
//! Every `fig*` binary prints the same rows/series the paper's figure
//! reports and writes a machine-readable JSON copy under `results/`.
//! Set `MFLOW_QUICK=1` for shorter (CI-friendly) simulations.

use std::fs;
use std::path::PathBuf;

use mflow_metrics::SeriesSet;
use mflow_sim::MS;

/// Simulated duration and warmup for throughput-style runs, honouring
/// `MFLOW_QUICK`.
pub fn durations() -> (u64, u64) {
    if quick_mode() {
        (16 * MS, 5 * MS)
    } else {
        (60 * MS, 15 * MS)
    }
}

/// True when `MFLOW_QUICK` is set (shorter runs).
pub fn quick_mode() -> bool {
    std::env::var("MFLOW_QUICK").is_ok_and(|v| v != "0" && !v.is_empty())
}

/// Directory JSON results are written to.
pub fn results_dir() -> PathBuf {
    let dir = std::env::var("MFLOW_RESULTS").unwrap_or_else(|_| "results".into());
    PathBuf::from(dir)
}

/// Saves a figure's series set as `results/<name>.json`.
pub fn save(name: &str, set: &SeriesSet) {
    let dir = results_dir();
    if fs::create_dir_all(&dir).is_err() {
        eprintln!("warning: could not create {}", dir.display());
        return;
    }
    let path = dir.join(format!("{name}.json"));
    match fs::write(&path, set.to_json()) {
        Ok(()) => println!("\n[saved {}]", path.display()),
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }
}

/// Pretty Gbps cell.
pub fn gbps(x: f64) -> String {
    format!("{x:.2}")
}

/// Pretty microsecond cell from nanoseconds.
pub fn us(ns: u64) -> String {
    format!("{:.1}", ns as f64 / 1e3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn durations_are_sane() {
        let (d, w) = durations();
        assert!(w < d);
    }

    #[test]
    fn formatting() {
        assert_eq!(gbps(29.849), "29.85");
        assert_eq!(us(46_500), "46.5");
    }
}
