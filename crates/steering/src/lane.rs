//! The engine-agnostic steering seam: [`SteeringPolicy`] decides which
//! *lane* (worker queue) each micro-flow batch is dispatched to, and
//! [`PolicyKind`] names every policy both execution engines understand.
//!
//! The simulator steers skbs between modelled cores through
//! [`mflow_netstack::PacketSteering`]; the real-thread runtime steers
//! whole batches between OS-thread lanes. This trait is the runtime-facing
//! half of that split, deliberately small so a policy is just "pick a lane,
//! hear about what you placed":
//!
//! * **RSS** hashes the flow onto a lane — one flow, one lane, forever.
//! * **RPS** does the same in software but can consult queue depths when a
//!   flow first appears (the `rps_cpus` mask is configured, not hashed).
//! * **RFS** follows the consuming application, modelled as the last lane.
//! * **FALCON** does not fan out at all: every batch enters lane 0 and the
//!   *stages* of the packet function are pipelined across the workers
//!   (`stage_groups` reports the chain length).
//! * **MFLOW** (implemented in the `mflow` crate, which depends on this
//!   one) round-robins micro-flows of an elephant flow across all lanes —
//!   the only policy that interleaves one flow, and therefore the only one
//!   that *requires* the merging counter to restore order.
//!
//! Policies whose `reorders()` is false deliver each flow through a single
//! FIFO path, so the merge point must observe zero out-of-order arrivals
//! and zero deadline flushes for them — a property the integration suite
//! asserts for every implementation here.

/// Names every steering policy selectable on the runtime datapath
/// (`mflow_cli --runtime --policy ...`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum PolicyKind {
    /// Micro-flow splitting with elephant detection (the paper's system).
    #[default]
    Mflow,
    /// Software flow steering: pin the flow to a lane chosen at first
    /// sight (least-loaded), like a configured `rps_cpus` mask.
    Rps,
    /// NIC receive-side scaling: hash the flow onto a lane.
    Rss,
    /// Receive flow steering: follow the consuming application's lane.
    Rfs,
    /// FALCON device-level pipelining: 2 stage groups chained across
    /// workers.
    FalconDev,
    /// FALCON function-level pipelining: 3 stage groups chained across
    /// workers.
    FalconFunc,
}

impl PolicyKind {
    /// Every selectable policy, in display order.
    pub const ALL: [PolicyKind; 6] = [
        PolicyKind::Mflow,
        PolicyKind::Rps,
        PolicyKind::Rss,
        PolicyKind::Rfs,
        PolicyKind::FalconDev,
        PolicyKind::FalconFunc,
    ];

    /// The CLI / telemetry name.
    pub fn name(self) -> &'static str {
        match self {
            PolicyKind::Mflow => "mflow",
            PolicyKind::Rps => "rps",
            PolicyKind::Rss => "rss",
            PolicyKind::Rfs => "rfs",
            PolicyKind::FalconDev => "falcon-dev",
            PolicyKind::FalconFunc => "falcon-func",
        }
    }

    /// Parses a CLI name (the inverse of [`PolicyKind::name`]).
    pub fn parse(s: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|k| k.name() == s)
    }

    /// Number of pipelined stage groups; 0 means the policy fans batches
    /// out to lanes instead of chaining stages across them.
    pub fn stage_groups(self) -> usize {
        match self {
            PolicyKind::FalconDev => 2,
            PolicyKind::FalconFunc => 3,
            _ => 0,
        }
    }

    /// Whether the policy can interleave packets of one flow across
    /// lanes, requiring merge-point reassembly.
    ///
    /// This is also the axis that decides what state-compute replication
    /// buys: a reordering policy forces the merge point to buffer and
    /// re-sequence *before* the stateful stage can run, so moving that
    /// stage onto the lanes (SCR) takes it off the serial critical path.
    /// Non-reordering policies deliver each flow through one FIFO lane,
    /// where the stateful stage was never merge-blocked to begin with —
    /// SCR must still produce the identical stream there (the
    /// differential suite checks every policy in [`PolicyKind::ALL`]),
    /// it just has less to win.
    pub fn reorders(self) -> bool {
        matches!(self, PolicyKind::Mflow)
    }

    /// Number of worker thread slots the threaded runtime materialises
    /// for this policy with `workers` configured: FALCON chains one
    /// worker per stage group (capped by the worker count), every other
    /// policy fans one worker out per lane. Supervision and chaos
    /// tooling use this to build per-slot fault schedules (kills,
    /// expected restarts) that cover the whole pool — including
    /// respawned incarnations, which occupy the same slot indices.
    pub fn worker_slots(self, workers: usize) -> usize {
        let groups = self.stage_groups();
        if groups >= 2 {
            groups.min(workers)
        } else {
            workers
        }
    }
}

impl std::fmt::Display for PolicyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A lane-steering policy driving a real-thread dispatcher.
///
/// The dispatcher calls [`steer`](SteeringPolicy::steer) once per
/// micro-flow (batch) as it opens, then
/// [`observe`](SteeringPolicy::observe) once the batch has been placed —
/// the completion-feedback hook adaptive policies (elephant detection)
/// use for rate accounting and lane-pressure tracking. Stateless
/// policies keep the default no-op.
pub trait SteeringPolicy: Send {
    /// The telemetry / CLI name of this policy.
    fn name(&self) -> &'static str;

    /// Picks the lane for micro-flow `mf_id` of flow `flow_hash`, given
    /// the current per-lane backlog in batches. Must return a value in
    /// `0..depths.len()`.
    fn steer(&mut self, mf_id: u64, flow_hash: u32, depths: &[usize]) -> usize;

    /// True when the policy can interleave one flow across lanes, so the
    /// merge point must reorder (and may flush). Non-reordering policies
    /// are guaranteed zero `ooo` / `flushed` telemetry on a fault-free
    /// run.
    fn reorders(&self) -> bool;

    /// Number of pipelined stage groups (FALCON chain length); 0 means
    /// plain fan-out dispatch.
    fn stage_groups(&self) -> usize {
        0
    }

    /// Completion feedback: batch `mf_id` of flow `flow_hash`, sized
    /// `packets`, was placed on `lane`. Called after every successful
    /// dispatch (including inline fallback, with the recovery lane id).
    fn observe(&mut self, _mf_id: u64, _flow_hash: u32, _lane: usize, _packets: usize) {}

    /// Lifetime (desplits, resplits) from lane-pressure feedback; zero
    /// for policies without adaptive splitting.
    fn desplit_stats(&self) -> (u64, u64) {
        (0, 0)
    }
}

/// RSS on lanes: the NIC hash pins the flow to `flow_hash % lanes`.
#[derive(Clone, Copy, Debug, Default)]
pub struct RssLanes;

impl SteeringPolicy for RssLanes {
    fn name(&self) -> &'static str {
        "rss"
    }

    fn steer(&mut self, _mf_id: u64, flow_hash: u32, depths: &[usize]) -> usize {
        flow_hash as usize % depths.len().max(1)
    }

    fn reorders(&self) -> bool {
        false
    }
}

/// RPS on lanes: software steering pins the flow to the least-loaded
/// lane at first sight (the operator-configured `rps_cpus` choice),
/// then keeps it there — per-flow FIFO order is preserved.
#[derive(Clone, Copy, Debug, Default)]
pub struct RpsLanes {
    pinned: Option<(u32, usize)>,
}

impl SteeringPolicy for RpsLanes {
    fn name(&self) -> &'static str {
        "rps"
    }

    fn steer(&mut self, _mf_id: u64, flow_hash: u32, depths: &[usize]) -> usize {
        match self.pinned {
            Some((hash, lane)) if hash == flow_hash => lane,
            _ => {
                let lane = depths
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, d)| **d)
                    .map(|(i, _)| i)
                    .unwrap_or(0);
                self.pinned = Some((flow_hash, lane));
                lane
            }
        }
    }

    fn reorders(&self) -> bool {
        false
    }
}

/// RFS on lanes: steer to where the consuming application runs,
/// modelled as the highest lane (the user-copy side of the pipeline).
#[derive(Clone, Copy, Debug, Default)]
pub struct RfsLanes;

impl SteeringPolicy for RfsLanes {
    fn name(&self) -> &'static str {
        "rfs"
    }

    fn steer(&mut self, _mf_id: u64, _flow_hash: u32, depths: &[usize]) -> usize {
        depths.len().saturating_sub(1)
    }

    fn reorders(&self) -> bool {
        false
    }
}

/// FALCON on lanes: batches always enter the head of the worker chain;
/// the packet-function stages are pipelined across workers instead of
/// fanning batches out (device level = 2 stage groups, function level
/// = 3).
#[derive(Clone, Copy, Debug)]
pub struct FalconLanes {
    groups: usize,
    name: &'static str,
}

impl FalconLanes {
    /// Device-level pipelining: [parse+checksum | digest].
    pub fn device() -> Self {
        Self {
            groups: PolicyKind::FalconDev.stage_groups(),
            name: PolicyKind::FalconDev.name(),
        }
    }

    /// Function-level pipelining: [parse | checksum | digest].
    pub fn function() -> Self {
        Self {
            groups: PolicyKind::FalconFunc.stage_groups(),
            name: PolicyKind::FalconFunc.name(),
        }
    }
}

impl SteeringPolicy for FalconLanes {
    fn name(&self) -> &'static str {
        self.name
    }

    fn steer(&mut self, _mf_id: u64, _flow_hash: u32, _depths: &[usize]) -> usize {
        0
    }

    fn reorders(&self) -> bool {
        false
    }

    fn stage_groups(&self) -> usize {
        self.groups
    }
}

/// Builds the baseline lane policy for `kind`; `None` for
/// [`PolicyKind::Mflow`], whose implementation lives in the `mflow`
/// crate (it wraps the elephant detector, which this crate cannot see).
pub fn build_baseline(kind: PolicyKind) -> Option<Box<dyn SteeringPolicy>> {
    match kind {
        PolicyKind::Mflow => None,
        PolicyKind::Rps => Some(Box::new(RpsLanes::default())),
        PolicyKind::Rss => Some(Box::new(RssLanes)),
        PolicyKind::Rfs => Some(Box::new(RfsLanes)),
        PolicyKind::FalconDev => Some(Box::new(FalconLanes::device())),
        PolicyKind::FalconFunc => Some(Box::new(FalconLanes::function())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for kind in PolicyKind::ALL {
            assert_eq!(PolicyKind::parse(kind.name()), Some(kind));
        }
        assert_eq!(PolicyKind::parse("bogus"), None);
    }

    #[test]
    fn worker_slots_counts_chain_stages_or_fanout_lanes() {
        assert_eq!(PolicyKind::Mflow.worker_slots(4), 4);
        assert_eq!(PolicyKind::Rps.worker_slots(7), 7);
        assert_eq!(PolicyKind::FalconDev.worker_slots(4), 2);
        assert_eq!(PolicyKind::FalconFunc.worker_slots(4), 3);
        // A chain never has more stages than workers.
        assert_eq!(PolicyKind::FalconFunc.worker_slots(2), 2);
    }

    #[test]
    fn baseline_names_match_kind() {
        for kind in PolicyKind::ALL {
            if let Some(p) = build_baseline(kind) {
                assert_eq!(p.name(), kind.name());
                assert_eq!(p.reorders(), kind.reorders());
                assert_eq!(p.stage_groups(), kind.stage_groups());
            } else {
                assert_eq!(kind, PolicyKind::Mflow);
            }
        }
    }

    #[test]
    fn only_mflow_reorders() {
        // The merge point — and therefore the stage SCR parallelizes —
        // is only order-restoring under mflow; every baseline keeps a
        // flow on one FIFO path.
        for kind in PolicyKind::ALL {
            assert_eq!(kind.reorders(), kind == PolicyKind::Mflow, "{kind}");
        }
    }

    #[test]
    fn non_reordering_policies_keep_a_flow_on_one_lane() {
        let depths = [3usize, 0, 1, 2];
        for kind in [PolicyKind::Rss, PolicyKind::Rps, PolicyKind::Rfs] {
            let mut p = build_baseline(kind).unwrap();
            let first = p.steer(0, 0xdead_beef, &depths);
            for mf in 1..64 {
                assert_eq!(
                    p.steer(mf, 0xdead_beef, &depths),
                    first,
                    "{} moved a pinned flow",
                    p.name()
                );
            }
            assert!(first < depths.len());
        }
    }

    #[test]
    fn rps_pins_least_loaded_at_first_sight() {
        let mut p = RpsLanes::default();
        assert_eq!(p.steer(0, 7, &[3, 0, 1]), 1);
        // Depths changed, flow stays pinned.
        assert_eq!(p.steer(1, 7, &[0, 9, 1]), 1);
        // A different flow re-picks.
        assert_eq!(p.steer(2, 8, &[0, 9, 1]), 0);
    }

    #[test]
    fn falcon_enters_the_chain_head() {
        let mut dev = FalconLanes::device();
        let mut func = FalconLanes::function();
        assert_eq!(dev.steer(0, 1, &[1, 2, 3]), 0);
        assert_eq!(func.steer(0, 1, &[1, 2, 3]), 0);
        assert_eq!(dev.stage_groups(), 2);
        assert_eq!(func.stage_groups(), 3);
    }
}
