//! FALCON (EuroSys'21): pipelining the softirq stages of a single flow
//! across cores at device granularity, optionally splitting heavyweight
//! functions (GRO) out as well. Re-implemented from the paper's description
//! in §II as the strongest published baseline.
//!
//! Device level: pNIC stages | VxLAN stages | rest.
//! Function level: pNIC poll+alloc | GRO | VxLAN stages | rest.
//!
//! The limitation the paper exploits: a heavy device/function still
//! saturates its one core, and every hop pays a locality penalty.

use std::collections::BTreeMap;

use mflow_netstack::{LoadView, PacketSteering, Skb, Stage};
use mflow_sim::{CoreId, Time};

/// FALCON's two published pipelining granularities.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FalconLevel {
    Device,
    Function,
}

/// FALCON steering policy.
#[derive(Clone, Debug)]
pub struct Falcon {
    level: FalconLevel,
    cores: Vec<CoreId>,
    /// Spread different flows' pipelines across the core list (multi-flow
    /// runs); single-flow runs pin the pipeline at offset 0.
    spread: bool,
    /// First-seen flow slots: FALCON statically assigns each flow's
    /// pipeline when the flow is registered.
    slots: BTreeMap<u32, usize>,
}

impl Falcon {
    /// A FALCON pipeline over `cores` (first core takes the IRQ + first
    /// group).
    pub fn new(level: FalconLevel, cores: Vec<CoreId>) -> Self {
        let need = match level {
            FalconLevel::Device => 3,
            FalconLevel::Function => 4,
        };
        assert!(
            cores.len() >= need,
            "falcon {level:?} needs at least {need} cores"
        );
        Self {
            level,
            cores,
            spread: false,
            slots: BTreeMap::new(),
        }
    }

    /// Enables per-flow pipeline offsetting for multi-flow scenarios.
    pub fn spread_flows(mut self) -> Self {
        self.spread = true;
        self
    }

    /// Pipeline group of a stage under this level.
    fn group(&self, stage: Stage) -> usize {
        match self.level {
            FalconLevel::Device => match stage {
                Stage::DriverPoll | Stage::SkbAlloc | Stage::Gro => 0,
                Stage::OuterIp | Stage::VxlanDecap => 1,
                _ => 2,
            },
            FalconLevel::Function => match stage {
                Stage::DriverPoll | Stage::SkbAlloc => 0,
                Stage::Gro => 1,
                Stage::OuterIp | Stage::VxlanDecap => 2,
                _ => 3,
            },
        }
    }

    fn base(&mut self, hash: u32) -> usize {
        if self.spread {
            // FALCON inherits the NIC's hash-based queue placement for the
            // head of each flow's pipeline (collisions included) and lays
            // the remaining device groups on the following cores. The
            // resulting static, weight-blind placement is what Figure 12
            // measures as FALCON's load imbalance.
            let _ = self.slots.len();
            hash as usize % self.cores.len()
        } else {
            0
        }
    }

    fn core_for(&mut self, hash: u32, stage: Stage) -> CoreId {
        let base = self.base(hash);
        self.cores[(base + self.group(stage)) % self.cores.len()]
    }
}

impl PacketSteering for Falcon {
    fn name(&self) -> &'static str {
        match self.level {
            FalconLevel::Device => "falcon-dev",
            FalconLevel::Function => "falcon-fun",
        }
    }

    fn irq_core(&mut self, hash: u32) -> CoreId {
        self.core_for(hash, Stage::DriverPoll)
    }

    fn dispatch(
        &mut self,
        _now: Time,
        _from: Stage,
        to: Stage,
        _cur: CoreId,
        batch: Vec<Skb>,
        _loads: LoadView<'_>,
    ) -> Vec<(CoreId, Vec<Skb>)> {
        if to == Stage::UserCopy {
            // The copy thread placement belongs to the socket, not FALCON.
            let cur = _cur;
            return vec![(cur, batch)];
        }
        let mut out: Vec<(CoreId, Vec<Skb>)> = Vec::new();
        for skb in batch {
            let t = self.core_for(skb.hash, to);
            match out.last_mut() {
                Some((c, v)) if *c == t => v.push(skb),
                _ => out.push((t, vec![skb])),
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn no_load() -> [u64; 16] {
        [0; 16]
    }

    fn skb(hash: u32) -> Skb {
        let mut s = Skb::new(0, 0, 1514, 1448, 0, 0);
        s.hash = hash;
        s
    }

    #[test]
    fn device_level_uses_three_groups() {
        let mut f = Falcon::new(FalconLevel::Device, vec![1, 2, 3]);
        assert_eq!(f.core_for(0, Stage::DriverPoll), 1);
        assert_eq!(f.core_for(0, Stage::SkbAlloc), 1);
        assert_eq!(f.core_for(0, Stage::Gro), 1);
        assert_eq!(f.core_for(0, Stage::OuterIp), 2);
        assert_eq!(f.core_for(0, Stage::VxlanDecap), 2);
        assert_eq!(f.core_for(0, Stage::Bridge), 3);
        assert_eq!(f.core_for(0, Stage::TcpRx), 3);
    }

    #[test]
    fn function_level_isolates_gro_leaving_skb_alloc_behind() {
        // The paper's key FALCON observation: after moving GRO away, core
        // one is overloaded "purely by the skb allocation function".
        let mut f = Falcon::new(FalconLevel::Function, vec![1, 2, 3, 4]);
        assert_eq!(f.core_for(0, Stage::SkbAlloc), 1);
        assert_eq!(f.core_for(0, Stage::Gro), 2);
        assert_eq!(f.core_for(0, Stage::VxlanDecap), 3);
        assert_eq!(f.core_for(0, Stage::UdpRx), 4);
    }

    #[test]
    fn single_flow_pipeline_is_static() {
        let mut f = Falcon::new(FalconLevel::Device, vec![1, 2, 3]);
        let out = f.dispatch(
            0,
            Stage::Gro,
            Stage::OuterIp,
            1,
            (0..5).map(|_| skb(12345)).collect(),
            LoadView::new(&no_load()),
            );
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].0, 2);
    }

    #[test]
    fn spread_offsets_pipelines_per_flow() {
        let mut f = Falcon::new(FalconLevel::Device, vec![1, 2, 3, 4, 5]).spread_flows();
        let a = f.core_for(0, Stage::VxlanDecap);
        let b = f.core_for(1, Stage::VxlanDecap);
        assert_ne!(a, b);
    }

    #[test]
    #[should_panic(expected = "at least")]
    fn too_few_cores_panics() {
        Falcon::new(FalconLevel::Function, vec![1, 2]);
    }

    #[test]
    fn user_copy_is_not_steered() {
        let mut f = Falcon::new(FalconLevel::Device, vec![1, 2, 3]);
        let out = f.dispatch(0, Stage::TcpRx, Stage::UserCopy, 3, vec![skb(0)], LoadView::new(&no_load()));
        assert_eq!(out[0].0, 3);
    }
}
