//! Receive Flow Steering: RPS's application-aware sibling. Instead of a
//! hash-indexed core, the kernel steers a flow's protocol processing to
//! the core where its consuming application last ran, trading steering
//! freedom for cache locality with the user-space reader.
//!
//! Like RPS and RSS it is strictly *inter-flow* parallelism: a single
//! elephant still lands entirely on one (application) core, which is why
//! the paper's taxonomy groups all three as insufficient for single-flow
//! scaling.

use std::collections::BTreeMap;

use mflow_netstack::{LoadView, PacketSteering, PathKind, Skb, Stage};
use mflow_sim::{CoreId, Time};

/// RFS over a set of IRQ cores plus a flow→application-core table.
#[derive(Clone, Debug)]
pub struct Rfs {
    irq_cores: Vec<CoreId>,
    /// Where each flow's application thread runs (`sock_rps_record_flow`
    /// fills the kernel's table from `recvmsg`; scenarios register flows
    /// up front here).
    app_core_of_flow: BTreeMap<u32, CoreId>,
    /// Fallback for unregistered flows.
    default_core: CoreId,
    steer_into: Stage,
}

impl Rfs {
    /// Creates RFS for a path; flows steer toward their registered app
    /// core at the same hook point RPS uses.
    pub fn for_path(path: PathKind, irq_cores: Vec<CoreId>, default_core: CoreId) -> Self {
        assert!(!irq_cores.is_empty());
        let steer_into = match path {
            PathKind::Overlay => Stage::Bridge,
            PathKind::Native => Stage::InnerIp,
        };
        Self {
            irq_cores,
            app_core_of_flow: BTreeMap::new(),
            default_core,
            steer_into,
        }
    }

    /// Registers the core a flow's reader runs on (the `recvmsg` hook).
    pub fn record_flow(mut self, hash: u32, app_core: CoreId) -> Self {
        self.app_core_of_flow.insert(hash, app_core);
        self
    }

    fn target(&self, hash: u32) -> CoreId {
        self.app_core_of_flow
            .get(&hash)
            .copied()
            .unwrap_or(self.default_core)
    }
}

impl PacketSteering for Rfs {
    fn name(&self) -> &'static str {
        "rfs"
    }

    fn irq_core(&mut self, hash: u32) -> CoreId {
        self.irq_cores[hash as usize % self.irq_cores.len()]
    }

    fn dispatch(
        &mut self,
        _now: Time,
        _from: Stage,
        to: Stage,
        cur: CoreId,
        batch: Vec<Skb>,
        _loads: LoadView<'_>,
    ) -> Vec<(CoreId, Vec<Skb>)> {
        if to != self.steer_into {
            return vec![(cur, batch)];
        }
        let mut out: Vec<(CoreId, Vec<Skb>)> = Vec::new();
        for skb in batch {
            let t = self.target(skb.hash);
            match out.last_mut() {
                Some((c, v)) if *c == t => v.push(skb),
                _ => out.push((t, vec![skb])),
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn skb(hash: u32) -> Skb {
        let mut s = Skb::new(0, 0, 1514, 1448, 0, 0);
        s.hash = hash;
        s
    }

    fn no_load() -> [u64; 16] {
        [0; 16]
    }

    #[test]
    fn registered_flows_follow_their_reader() {
        let mut p = Rfs::for_path(PathKind::Overlay, vec![1], 2)
            .record_flow(7, 4)
            .record_flow(9, 5);
        let out = p.dispatch(
            0,
            Stage::VxlanDecap,
            Stage::Bridge,
            1,
            vec![skb(7), skb(9), skb(7)],
            LoadView::new(&no_load()),
        );
        let cores: Vec<CoreId> = out.iter().map(|(c, _)| *c).collect();
        assert_eq!(cores, vec![4, 5, 4]);
    }

    #[test]
    fn unregistered_flows_use_the_default() {
        let mut p = Rfs::for_path(PathKind::Overlay, vec![1], 3);
        let out = p.dispatch(
            0,
            Stage::VxlanDecap,
            Stage::Bridge,
            1,
            vec![skb(123)],
            LoadView::new(&no_load()),
        );
        assert_eq!(out[0].0, 3);
    }

    #[test]
    fn only_steers_at_the_hook() {
        let mut p = Rfs::for_path(PathKind::Overlay, vec![1], 2).record_flow(5, 4);
        let out = p.dispatch(
            0,
            Stage::SkbAlloc,
            Stage::Gro,
            1,
            vec![skb(5)],
            LoadView::new(&no_load()),
        );
        assert_eq!(out[0].0, 1, "pre-hook stages stay local");
    }

    #[test]
    fn native_hook_at_ip() {
        let mut p = Rfs::for_path(PathKind::Native, vec![1], 2).record_flow(5, 4);
        let out = p.dispatch(
            0,
            Stage::Gro,
            Stage::InnerIp,
            1,
            vec![skb(5)],
            LoadView::new(&no_load()),
        );
        assert_eq!(out[0].0, 4);
    }
}
