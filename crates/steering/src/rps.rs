//! Receive Packet Steering: the kernel's software RSS. In the paper's
//! overlay measurements RPS moved the post-VxLAN softirqs of a flow to a
//! second core while the pNIC softirq — including the heavyweight VxLAN
//! processing — stayed on the IRQ core, which therefore remained the
//! bottleneck (§II-B, Figure 4b).

use mflow_netstack::{LoadView, PacketSteering, PathKind, Skb, Stage};
use mflow_sim::{CoreId, Time};

/// RPS over the given core lists.
#[derive(Clone, Debug)]
pub struct Rps {
    irq_cores: Vec<CoreId>,
    target_cores: Vec<CoreId>,
    /// Stage whose input is steered to the RPS target core.
    steer_into: Stage,
}

impl Rps {
    /// RPS as observed in the paper: for the overlay path the flow's
    /// bridge/veth/transport half moves to the target core; for the native
    /// path the protocol stack above the driver moves.
    pub fn for_path(path: PathKind, irq_cores: Vec<CoreId>, target_cores: Vec<CoreId>) -> Self {
        assert!(!irq_cores.is_empty() && !target_cores.is_empty());
        let steer_into = match path {
            PathKind::Overlay => Stage::Bridge,
            PathKind::Native => Stage::InnerIp,
        };
        Self {
            irq_cores,
            target_cores,
            steer_into,
        }
    }

    fn target(&self, hash: u32) -> CoreId {
        self.target_cores[hash as usize % self.target_cores.len()]
    }
}

impl PacketSteering for Rps {
    fn name(&self) -> &'static str {
        "rps"
    }

    fn irq_core(&mut self, hash: u32) -> CoreId {
        self.irq_cores[hash as usize % self.irq_cores.len()]
    }

    fn dispatch(
        &mut self,
        _now: Time,
        _from: Stage,
        to: Stage,
        cur: CoreId,
        batch: Vec<Skb>,
        _loads: LoadView<'_>,
    ) -> Vec<(CoreId, Vec<Skb>)> {
        if to != self.steer_into {
            return vec![(cur, batch)];
        }
        // Per-flow hash steering: group consecutive same-target runs.
        let mut out: Vec<(CoreId, Vec<Skb>)> = Vec::new();
        for skb in batch {
            let t = self.target(skb.hash);
            match out.last_mut() {
                Some((c, v)) if *c == t => v.push(skb),
                _ => out.push((t, vec![skb])),
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn no_load() -> [u64; 16] {
        [0; 16]
    }

    fn skb(hash: u32) -> Skb {
        let mut s = Skb::new(0, 0, 1514, 1448, 0, 0);
        s.hash = hash;
        s
    }

    #[test]
    fn steers_only_at_the_rps_hook() {
        let mut p = Rps::for_path(PathKind::Overlay, vec![1], vec![2]);
        // Before the hook: stays local.
        let out = p.dispatch(0, Stage::SkbAlloc, Stage::Gro, 1, vec![skb(9)], LoadView::new(&no_load()));
        assert_eq!(out[0].0, 1);
        // At the hook (into Bridge): moves to the target core.
        let out = p.dispatch(0, Stage::VxlanDecap, Stage::Bridge, 1, vec![skb(9)], LoadView::new(&no_load()));
        assert_eq!(out[0].0, 2);
    }

    #[test]
    fn native_hook_is_at_ip() {
        let mut p = Rps::for_path(PathKind::Native, vec![1], vec![2]);
        let out = p.dispatch(0, Stage::Gro, Stage::InnerIp, 1, vec![skb(3)], LoadView::new(&no_load()));
        assert_eq!(out[0].0, 2);
    }

    #[test]
    fn single_flow_hits_single_target() {
        let mut p = Rps::for_path(PathKind::Overlay, vec![1], vec![2, 3, 4]);
        let out = p.dispatch(
            0,
            Stage::VxlanDecap,
            Stage::Bridge,
            1,
            (0..10).map(|_| skb(77)).collect(),
            LoadView::new(&no_load()),
            );
        assert_eq!(out.len(), 1, "one flow maps to exactly one RPS core");
    }

    #[test]
    fn flows_spread_across_targets() {
        let mut p = Rps::for_path(PathKind::Overlay, vec![1], vec![2, 3]);
        let out = p.dispatch(
            0,
            Stage::VxlanDecap,
            Stage::Bridge,
            1,
            vec![skb(0), skb(1), skb(0)],
            LoadView::new(&no_load()),
            );
        // Alternating hashes produce separate runs.
        assert_eq!(out.len(), 3);
        assert_ne!(out[0].0, out[1].0);
    }
}
