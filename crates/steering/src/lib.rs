//! `mflow-steering` — the packet-steering baselines the paper evaluates
//! against: vanilla RSS, Linux RPS, and FALCON's device-level and
//! function-level softirq pipelining (EuroSys'21), all expressed as
//! [`mflow_netstack::PacketSteering`] policies over the simulated stack.
//!
//! None of these can split a *single* flow at packet granularity — that is
//! exactly the gap MFLOW (the `mflow` crate) fills.
//!
//! The [`lane`] module carries the engine-agnostic [`SteeringPolicy`]
//! trait the real-thread runtime dispatches through, with lane-level
//! implementations of the same baselines.

pub mod falcon;
pub mod lane;
pub mod rfs;
pub mod rps;
pub mod rss;

pub use falcon::{Falcon, FalconLevel};
pub use lane::{
    build_baseline, FalconLanes, PolicyKind, RfsLanes, RpsLanes, RssLanes, SteeringPolicy,
};
pub use rfs::Rfs;
pub use rps::Rps;
pub use rss::Rss;
