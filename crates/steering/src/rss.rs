//! Receive-side scaling: the NIC hashes the 4-tuple and picks a queue, so
//! each *flow* lands on one core and the whole receive pipeline runs there.
//! This is the vanilla configuration of the paper's experiments — inter-flow
//! parallelism only.

use mflow_netstack::{LoadView, PacketSteering, Skb, Stage};
use mflow_sim::{CoreId, Time};

/// Hardware RSS over a set of cores (the NIC's indirection table).
#[derive(Clone, Debug)]
pub struct Rss {
    cores: Vec<CoreId>,
}

impl Rss {
    /// RSS spreading flows over `cores` by hash. With a single core this is
    /// the paper's pinned single-flow vanilla setup.
    pub fn new(cores: Vec<CoreId>) -> Self {
        assert!(!cores.is_empty());
        Self { cores }
    }

    /// Indirection-table lookup.
    fn table(&self, hash: u32) -> CoreId {
        self.cores[hash as usize % self.cores.len()]
    }
}

impl PacketSteering for Rss {
    fn name(&self) -> &'static str {
        "vanilla"
    }

    fn irq_core(&mut self, hash: u32) -> CoreId {
        self.table(hash)
    }

    fn dispatch(
        &mut self,
        _now: Time,
        _from: Stage,
        _to: Stage,
        cur: CoreId,
        batch: Vec<Skb>,
        _loads: LoadView<'_>,
    ) -> Vec<(CoreId, Vec<Skb>)> {
        // The whole pipeline of a flow stays on its RSS core.
        vec![(cur, batch)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn no_load() -> [u64; 16] {
        [0; 16]
    }

    fn skb(flow: usize, hash: u32) -> Skb {
        let mut s = Skb::new(0, flow, 1514, 1448, 0, 0);
        s.hash = hash;
        s
    }

    #[test]
    fn same_hash_same_core() {
        let mut p = Rss::new(vec![1, 2, 3]);
        let a = p.irq_core(42);
        let b = p.irq_core(42);
        assert_eq!(a, b);
    }

    #[test]
    fn spreads_different_hashes() {
        let mut p = Rss::new(vec![1, 2, 3, 4]);
        let cores: std::collections::BTreeSet<CoreId> =
            (0..64u32).map(|h| p.irq_core(h.wrapping_mul(2654435761))).collect();
        assert!(cores.len() > 1, "RSS must use multiple cores");
    }

    #[test]
    fn never_migrates_mid_pipeline() {
        let mut p = Rss::new(vec![1, 2]);
        let out = p.dispatch(0, Stage::Gro, Stage::OuterIp, 2, vec![skb(0, 7), skb(0, 7)], LoadView::new(&no_load()));
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].0, 2);
        assert_eq!(out[0].1.len(), 2);
    }
}
