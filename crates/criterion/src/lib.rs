//! A small, dependency-free benchmarking shim exposing the subset of the
//! `criterion` crate API this workspace's benches use, so `cargo bench`
//! works in offline environments.
//!
//! Statistics are deliberately simple: each benchmark is warmed up, then
//! timed over a fixed number of sampled batches, and the per-iteration
//! mean, minimum and maximum are printed. No plots, no regression
//! analysis.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevents the optimizer from discarding a value (upstream
/// `criterion::black_box`).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation attached to a benchmark group.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Names one parameterized benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// `<function_name>/<parameter>` identifier.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Identifier from the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            name: parameter.to_string(),
        }
    }
}

/// Runs closures under a timer (upstream `criterion::Bencher`).
pub struct Bencher {
    sample_size: usize,
    results: Option<Stats>,
}

#[derive(Clone, Copy, Debug)]
struct Stats {
    mean_ns: f64,
    min_ns: f64,
    max_ns: f64,
    iters: u64,
}

impl Bencher {
    /// Times `f`, called repeatedly.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warmup + calibration: target ~20ms per sample.
        let probe_start = Instant::now();
        black_box(f());
        let probe = probe_start.elapsed().max(Duration::from_nanos(20));
        let per_sample =
            ((Duration::from_millis(20).as_nanos() / probe.as_nanos()).max(1)) as u64;
        let mut min_ns = f64::MAX;
        let mut max_ns = 0.0f64;
        let mut total_ns = 0.0f64;
        let mut total_iters = 0u64;
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..per_sample {
                black_box(f());
            }
            let ns = start.elapsed().as_nanos() as f64 / per_sample as f64;
            min_ns = min_ns.min(ns);
            max_ns = max_ns.max(ns);
            total_ns += ns * per_sample as f64;
            total_iters += per_sample;
        }
        self.results = Some(Stats {
            mean_ns: total_ns / total_iters as f64,
            min_ns,
            max_ns,
            iters: total_iters,
        });
    }
}

fn run_one(name: &str, sample_size: usize, throughput: Option<Throughput>, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher {
        sample_size: sample_size.max(1),
        results: None,
    };
    f(&mut b);
    match b.results {
        Some(s) => {
            let rate = match throughput {
                Some(Throughput::Elements(n)) => {
                    format!("  {:>10.1} Kelem/s", n as f64 / s.mean_ns * 1e6)
                }
                Some(Throughput::Bytes(n)) => {
                    format!("  {:>10.1} MB/s", n as f64 / s.mean_ns * 1e3)
                }
                None => String::new(),
            };
            println!(
                "{name:<48} {:>12.1} ns/iter  [{:.1} .. {:.1}]{} ({} iters)",
                s.mean_ns, s.min_ns, s.max_ns, rate, s.iters
            );
        }
        None => println!("{name:<48} (no measurement)"),
    }
}

/// A group of related benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup {
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Sets the per-iteration throughput used for rate reporting.
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    /// Sets how many timed samples to take per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<F: FnOnce(&mut Bencher)>(&mut self, id: impl Into<String>, f: F) {
        let full = format!("{}/{}", self.name, id.into());
        run_one(&full, self.sample_size, self.throughput, f);
    }

    /// Benchmarks `f` with a borrowed input under `id`.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, f: F)
    where
        F: FnOnce(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.name);
        run_one(&full, self.sample_size, self.throughput, |b| f(b, input));
    }

    /// Ends the group (no-op; kept for API compatibility).
    pub fn finish(self) {}
}

/// The benchmark driver (upstream `criterion::Criterion`).
#[derive(Default)]
pub struct Criterion {
    sample_size: usize,
}

impl Criterion {
    /// Applies command-line configuration (accepted and ignored).
    pub fn configure_from_args(mut self) -> Self {
        self.sample_size = 10;
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        let sample_size = if self.sample_size == 0 { 10 } else { self.sample_size };
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            sample_size,
        }
    }

    /// Benchmarks `f` as a standalone entry.
    pub fn bench_function<F: FnOnce(&mut Bencher)>(&mut self, id: impl Into<String>, f: F) -> &mut Self {
        let sample_size = if self.sample_size == 0 { 10 } else { self.sample_size };
        run_one(&id.into(), sample_size, None, f);
        self
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_produces_stats() {
        let mut c = Criterion::default().configure_from_args();
        let mut group = c.benchmark_group("shim");
        group.sample_size(2);
        group.throughput(Throughput::Elements(1));
        group.bench_with_input(BenchmarkId::new("add", 1), &21u64, |b, &x| {
            b.iter(|| black_box(x) * 2)
        });
        group.bench_function("plain", |b| b.iter(|| black_box(1u64) + 1));
        group.finish();
        c.bench_function("top_level", |b| b.iter(|| black_box(3u32).pow(2)));
    }

    #[test]
    fn benchmark_id_formats() {
        let id = BenchmarkId::new("batch", 256);
        assert_eq!(id.name, "batch/256");
    }
}
