//! Windowed rate tracking: delivered bytes bucketed into fixed time
//! windows, for convergence checks (did the run reach steady state before
//! the measurement window?) and throughput-over-time plots.

/// Accumulates (time, bytes) observations into fixed windows.
#[derive(Clone, Debug)]
pub struct WindowedRate {
    window_ns: u64,
    buckets: Vec<u64>,
}

impl WindowedRate {
    /// Creates a tracker with the given window size.
    pub fn new(window_ns: u64) -> Self {
        assert!(window_ns > 0);
        Self {
            window_ns,
            buckets: Vec::new(),
        }
    }

    /// Records `bytes` delivered at time `t_ns`.
    pub fn record(&mut self, t_ns: u64, bytes: u64) {
        let idx = (t_ns / self.window_ns) as usize;
        if idx >= self.buckets.len() {
            self.buckets.resize(idx + 1, 0);
        }
        self.buckets[idx] += bytes;
    }

    /// Window size in nanoseconds.
    pub fn window_ns(&self) -> u64 {
        self.window_ns
    }

    /// Per-window throughput in Gbit/s.
    pub fn gbps_series(&self) -> Vec<f64> {
        self.buckets
            .iter()
            .map(|&b| b as f64 * 8.0 / self.window_ns as f64)
            .collect()
    }

    /// Throughput over the windows in `[from_idx, to_idx)` (Gbit/s).
    pub fn gbps_over(&self, from_idx: usize, to_idx: usize) -> f64 {
        let to = to_idx.min(self.buckets.len());
        if from_idx >= to {
            return 0.0;
        }
        let bytes: u64 = self.buckets[from_idx..to].iter().sum();
        bytes as f64 * 8.0 / ((to - from_idx) as u64 * self.window_ns) as f64
    }

    /// Coefficient of variation of the per-window rate over
    /// `[from_idx, to_idx)` — small means steady state.
    pub fn stability_cv(&self, from_idx: usize, to_idx: usize) -> f64 {
        let to = to_idx.min(self.buckets.len());
        if from_idx + 1 >= to {
            return 0.0;
        }
        let xs: Vec<f64> = self.buckets[from_idx..to].iter().map(|&b| b as f64).collect();
        crate::stats::coeff_of_variation(&xs)
    }

    /// Number of windows observed.
    pub fn len(&self) -> usize {
        self.buckets.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.buckets.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_by_window() {
        let mut w = WindowedRate::new(1_000_000); // 1 ms windows
        w.record(100, 500);
        w.record(999_999, 500);
        w.record(1_000_000, 2_000);
        assert_eq!(w.len(), 2);
        let series = w.gbps_series();
        // 1000 B in 1 ms = 8 Mb / ms = 0.008 Gbps.
        assert!((series[0] - 0.008).abs() < 1e-12);
        assert!((series[1] - 0.016).abs() < 1e-12);
    }

    #[test]
    fn aggregate_rate_over_range() {
        let mut w = WindowedRate::new(1_000);
        for t in 0..10u64 {
            w.record(t * 1_000, 125); // 1000 bits per 1000 ns = 1 Gbps
        }
        let g = w.gbps_over(0, 10);
        assert!((g - 1.0).abs() < 1e-12, "{g}");
        assert_eq!(w.gbps_over(10, 5), 0.0);
    }

    #[test]
    fn steady_stream_has_low_cv() {
        let mut w = WindowedRate::new(1_000);
        for t in 0..100u64 {
            w.record(t * 1_000 + 37, 1_000);
        }
        assert!(w.stability_cv(0, 100) < 1e-9);
    }

    #[test]
    fn bursty_stream_has_high_cv() {
        let mut w = WindowedRate::new(1_000);
        for t in 0..100u64 {
            w.record(t * 1_000, if t % 10 == 0 { 10_000 } else { 10 });
        }
        assert!(w.stability_cv(0, 100) > 1.0);
    }

    #[test]
    fn empty_tracker() {
        let w = WindowedRate::new(5);
        assert!(w.is_empty());
        assert_eq!(w.gbps_over(0, 10), 0.0);
    }
}
