//! Throughput accounting: bytes and messages over a (virtual or wall) time
//! window, reported in the units the paper uses (Gbps, messages/s).

/// Accumulates delivered bytes/messages and converts to rates.
#[derive(Clone, Copy, Debug, Default)]
pub struct ThroughputMeter {
    bytes: u64,
    messages: u64,
    packets: u64,
}

impl ThroughputMeter {
    /// Creates an empty meter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a delivered message of `bytes` payload carried by `packets`
    /// wire packets.
    pub fn record_message(&mut self, bytes: u64, packets: u64) {
        self.bytes += bytes;
        self.messages += 1;
        self.packets += packets;
    }

    /// Records raw delivered bytes that are not message-framed.
    pub fn record_bytes(&mut self, bytes: u64) {
        self.bytes += bytes;
    }

    /// Total delivered payload bytes.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Total delivered messages.
    pub fn messages(&self) -> u64 {
        self.messages
    }

    /// Total delivered wire packets.
    pub fn packets(&self) -> u64 {
        self.packets
    }

    /// Goodput in Gbit/s over a window of `duration_ns`.
    pub fn gbps(&self, duration_ns: u64) -> f64 {
        if duration_ns == 0 {
            return 0.0;
        }
        (self.bytes as f64 * 8.0) / duration_ns as f64
    }

    /// Message rate in messages/s over a window of `duration_ns`.
    pub fn messages_per_sec(&self, duration_ns: u64) -> f64 {
        if duration_ns == 0 {
            return 0.0;
        }
        self.messages as f64 * 1e9 / duration_ns as f64
    }

    /// Packet rate in packets/s over a window of `duration_ns`.
    pub fn packets_per_sec(&self, duration_ns: u64) -> f64 {
        if duration_ns == 0 {
            return 0.0;
        }
        self.packets as f64 * 1e9 / duration_ns as f64
    }

    /// Difference meter: rates accumulated since `earlier` was snapshotted.
    pub fn since(&self, earlier: &ThroughputMeter) -> ThroughputMeter {
        ThroughputMeter {
            bytes: self.bytes - earlier.bytes,
            messages: self.messages - earlier.messages,
            packets: self.packets - earlier.packets,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gbps_units() {
        let mut m = ThroughputMeter::new();
        // 1 GB in 1 second = 8 Gbps. (1e9 bytes, 1e9 ns)
        m.record_bytes(1_000_000_000);
        assert!((m.gbps(1_000_000_000) - 8.0).abs() < 1e-9);
    }

    #[test]
    fn zero_duration_is_zero_rate() {
        let mut m = ThroughputMeter::new();
        m.record_bytes(123);
        assert_eq!(m.gbps(0), 0.0);
        assert_eq!(m.messages_per_sec(0), 0.0);
        assert_eq!(m.packets_per_sec(0), 0.0);
    }

    #[test]
    fn message_accounting() {
        let mut m = ThroughputMeter::new();
        m.record_message(64 * 1024, 45);
        m.record_message(64 * 1024, 45);
        assert_eq!(m.messages(), 2);
        assert_eq!(m.packets(), 90);
        assert_eq!(m.bytes(), 2 * 64 * 1024);
        // 2 messages in 1 ms = 2000 msg/s
        assert!((m.messages_per_sec(1_000_000) - 2000.0).abs() < 1e-9);
    }

    #[test]
    fn since_computes_window_delta() {
        let mut m = ThroughputMeter::new();
        m.record_message(1000, 1);
        let snap = m;
        m.record_message(3000, 2);
        let d = m.since(&snap);
        assert_eq!(d.bytes(), 3000);
        assert_eq!(d.messages(), 1);
        assert_eq!(d.packets(), 2);
    }
}
