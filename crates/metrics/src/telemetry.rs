//! The unified datapath counter block shared by both execution engines.
//!
//! The discrete-event simulator (`mflow-netstack`) and the real-thread
//! pipeline (`mflow-runtime`) used to carry two drifted counter structs
//! (`RunReport` / `RunOutput`) with overlapping but differently-named
//! fields. [`Telemetry`] is the single source of truth for the counters
//! both engines share; each engine embeds one and keeps only its
//! engine-specific extensions (histograms, digests, CPU ledgers, ...)
//! alongside it.
//!
//! Serialization is hand-rolled like [`crate::series`] so the crate stays
//! dependency-free and builds offline. Every engine emits the same flat
//! JSON object — same keys, same order — so policy-vs-policy comparisons
//! are diffable across engines.

/// Core datapath counters common to the simulator and the runtime.
///
/// Semantics, engine by engine:
///
/// * `delivered` — packets handed to the consumer in final order
///   (runtime: digested frames; simulator: messages delivered to the
///   application socket).
/// * `ooo` — out-of-order arrivals observed at the merge point *input*
///   (before reassembly). Zero for policies that never interleave one
///   flow across lanes.
/// * `flushed` — micro-flows given up on by the flush deadline.
/// * `late` / `dup` — merge-point rejections: packets arriving after
///   their micro-flow was flushed / duplicates of already-released ones.
/// * `shed` — packets dropped at dispatch by backpressure (whole
///   micro-flows only; runtime engine).
/// * `inline` — packets processed on the dispatching core instead of a
///   worker lane (overload fallback; runtime engine).
/// * `desplits` / `resplits` — elephant flows demoted to unsplit
///   processing by lane pressure, and re-promoted after it cleared.
/// * `redispatched` — retained batches re-sent to surviving lanes after
///   a worker death (runtime engine).
/// * `fault_drops` — packets deleted by the deterministic fault
///   injector (so conservation checks can account for them).
/// * `residue` — packets still parked in reassembly buffers at the end
///   of the run (should be zero after a drain).
/// * `restarts` — worker threads respawned by the supervisor after a
///   death or stall was detected (runtime engine).
/// * `heartbeat_misses` — times the watchdog declared a worker stalled
///   because its heartbeat epoch went stale past the deadline while it
///   had work queued (runtime engine).
/// * `recovery_ns` — worst-case time-to-recovery in the *worker* failure
///   domain: the longest gap between a death being observed and the
///   replacement worker being live (runtime engine).
/// * `merger_restarts` — merger incarnations respawned from the latest
///   checkpoint after a merger death or wedge (runtime engine).
/// * `merger_recovery_ns` — worst-case time-to-recovery in the *merger*
///   failure domain, kept separate from `recovery_ns` so the two
///   domains' healing latencies are individually visible.
/// * `snapshot_bytes` — cumulative estimated size of every merger-state
///   checkpoint written to the write-ahead ring (runtime engine).
/// * `restore_replayed_offers` — delta-log entries replayed across all
///   merger restores; bounded by one inter-checkpoint window per crash
///   restore (runtime engine).
/// * `stateful_mode` — how the stateful stage ran relative to the merge
///   point: `merge-before-tcp` (serial, after the merge) or `scr`
///   (replicated on every lane, reconciled downstream).
/// * `replicated_transitions` — state transitions computed by lane
///   replicas under SCR (each packet's stateful work, counted once per
///   lane that performed it — duplicated dispatches replicate too).
/// * `reconciled_dups` — replicated transitions the reconciler
///   discarded as already emitted (exactly-once enforcement).
/// * `dispatch_mode` — when the dispatcher reads packet bytes:
///   `post-parse` (dispatcher parses and flow-hashes before steering) or
///   `packet-request` (IRQ splitting: the dispatcher round-robins buffer
///   descriptors and workers parse in parallel; runtime engine).
/// * `pool_recycled` — packet-buffer slots returned to the buffer pool's
///   free list during the run (runtime engine; zero without a pool).
/// * `pool_misses` — packet allocations that fell back to the heap
///   because the pool was exhausted or the frame oversized (runtime
///   engine; zero without a pool).
/// * `lane_depths` — end-of-run per-lane backlog (runtime: batches per
///   worker queue; simulator: segments per split lane).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Telemetry {
    /// Name of the steering policy that produced these counters.
    pub policy: String,
    pub delivered: u64,
    pub ooo: u64,
    pub flushed: u64,
    pub late: u64,
    pub dup: u64,
    pub shed: u64,
    pub inline: u64,
    pub desplits: u64,
    pub resplits: u64,
    pub redispatched: u64,
    pub fault_drops: u64,
    pub residue: u64,
    pub restarts: u64,
    pub heartbeat_misses: u64,
    pub recovery_ns: u64,
    pub merger_restarts: u64,
    pub merger_recovery_ns: u64,
    pub snapshot_bytes: u64,
    pub restore_replayed_offers: u64,
    /// Stateful-stage placement: `merge-before-tcp` or `scr`.
    pub stateful_mode: String,
    pub replicated_transitions: u64,
    pub reconciled_dups: u64,
    /// Dispatch-side parse placement: `post-parse` or `packet-request`.
    pub dispatch_mode: String,
    pub pool_recycled: u64,
    pub pool_misses: u64,
    pub lane_depths: Vec<u64>,
}

impl Telemetry {
    /// An all-zero block tagged with the given policy name.
    pub fn new(policy: impl Into<String>) -> Self {
        Self {
            policy: policy.into(),
            stateful_mode: "merge-before-tcp".into(),
            dispatch_mode: "post-parse".into(),
            ..Self::default()
        }
    }

    /// The scalar counter keys, in serialization order. Exposed so tests
    /// and the bench harness can verify every engine emits the same
    /// schema without parsing JSON.
    pub const SCALAR_KEYS: [&'static str; 23] = [
        "delivered",
        "ooo",
        "flushed",
        "late",
        "dup",
        "shed",
        "inline",
        "desplits",
        "resplits",
        "redispatched",
        "fault_drops",
        "residue",
        "restarts",
        "heartbeat_misses",
        "recovery_ns",
        "merger_restarts",
        "merger_recovery_ns",
        "snapshot_bytes",
        "restore_replayed_offers",
        "replicated_transitions",
        "reconciled_dups",
        "pool_recycled",
        "pool_misses",
    ];

    fn scalars(&self) -> [u64; 23] {
        [
            self.delivered,
            self.ooo,
            self.flushed,
            self.late,
            self.dup,
            self.shed,
            self.inline,
            self.desplits,
            self.resplits,
            self.redispatched,
            self.fault_drops,
            self.residue,
            self.restarts,
            self.heartbeat_misses,
            self.recovery_ns,
            self.merger_restarts,
            self.merger_recovery_ns,
            self.snapshot_bytes,
            self.restore_replayed_offers,
            self.replicated_transitions,
            self.reconciled_dups,
            self.pool_recycled,
            self.pool_misses,
        ]
    }

    /// Serializes to a flat JSON object:
    /// `{"policy": "...", "delivered": N, ..., "lane_depths": [..]}`.
    pub fn to_json(&self) -> String {
        self.to_json_with(&[])
    }

    /// Like [`Telemetry::to_json`] but with engine-specific extension
    /// keys appended after the shared block, keeping the shared prefix
    /// identical across engines.
    pub fn to_json_with(&self, extras: &[(&str, String)]) -> String {
        let mut out = String::with_capacity(256);
        out.push('{');
        out.push_str(&format!("\"policy\": \"{}\"", escape(&self.policy)));
        out.push_str(&format!(
            ", \"stateful_mode\": \"{}\"",
            escape(&self.stateful_mode)
        ));
        out.push_str(&format!(
            ", \"dispatch_mode\": \"{}\"",
            escape(&self.dispatch_mode)
        ));
        for (key, value) in Self::SCALAR_KEYS.iter().zip(self.scalars()) {
            out.push_str(&format!(", \"{key}\": {value}"));
        }
        out.push_str(", \"lane_depths\": [");
        for (i, d) in self.lane_depths.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&d.to_string());
        }
        out.push(']');
        for (key, value) in extras {
            out.push_str(&format!(", \"{}\": {value}", escape(key)));
        }
        out.push('}');
        out
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_contains_every_scalar_key_once() {
        let t = Telemetry::new("mflow");
        let json = t.to_json();
        for key in Telemetry::SCALAR_KEYS {
            assert_eq!(
                json.matches(&format!("\"{key}\"")).count(),
                1,
                "key {key} should appear exactly once in {json}"
            );
        }
        assert!(json.starts_with("{\"policy\": \"mflow\""));
        assert!(json.ends_with("\"lane_depths\": []}"));
    }

    #[test]
    fn values_round_trip_textually() {
        let t = Telemetry {
            policy: "rps".into(),
            delivered: 10,
            shed: 3,
            lane_depths: vec![1, 0, 2],
            ..Telemetry::default()
        };
        let json = t.to_json();
        assert!(json.contains("\"delivered\": 10"));
        assert!(json.contains("\"shed\": 3"));
        assert!(json.contains("\"lane_depths\": [1, 0, 2]"));
    }

    #[test]
    fn extras_append_after_shared_block() {
        let t = Telemetry::new("rss");
        let json = t.to_json_with(&[("elapsed_ns", "42".into())]);
        assert!(json.ends_with("\"elapsed_ns\": 42}"));
        let shared = t.to_json();
        // The shared prefix is byte-identical with or without extras.
        assert!(json.starts_with(shared.trim_end_matches('}')));
    }

    #[test]
    fn policy_name_is_escaped() {
        let t = Telemetry::new("a\"b");
        assert!(t.to_json().contains("\"policy\": \"a\\\"b\""));
    }
}
