//! A counting global allocator, for allocations-per-packet accounting in
//! the benches: wraps [`std::alloc::System`] and counts every allocation
//! event (alloc, alloc_zeroed, realloc). Register it in a binary with
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: mflow_metrics::CountingAlloc = mflow_metrics::CountingAlloc::new();
//! ```
//!
//! and difference [`CountingAlloc::allocations`] around the measured
//! region. Only allocation events are counted, not bytes — the quantity
//! the zero-copy datapath minimizes is allocator round-trips per frame.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// System allocator wrapper that counts allocation events.
pub struct CountingAlloc {
    allocs: AtomicU64,
}

impl CountingAlloc {
    /// A fresh counter at zero.
    pub const fn new() -> Self {
        Self {
            allocs: AtomicU64::new(0),
        }
    }

    /// Allocation events since construction (monotonic; never reset, so
    /// concurrent measurement windows stay differenceable).
    pub fn allocations(&self) -> u64 {
        self.allocs.load(Ordering::Relaxed)
    }
}

impl Default for CountingAlloc {
    fn default() -> Self {
        Self::new()
    }
}

// SAFETY: pure pass-through to `System`; the counter has no effect on
// the returned memory.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        self.allocs.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        self.allocs.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        self.allocs.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_through_the_global_alloc_interface() {
        let counter = CountingAlloc::new();
        let layout = Layout::from_size_align(64, 8).unwrap();
        // SAFETY: matching alloc/dealloc with a valid layout.
        unsafe {
            let p = counter.alloc(layout);
            assert!(!p.is_null());
            counter.dealloc(p, layout);
            let q = counter.alloc_zeroed(layout);
            assert!(!q.is_null());
            assert_eq!(*q, 0);
            counter.dealloc(q, layout);
        }
        assert_eq!(counter.allocations(), 2, "dealloc must not count");
    }
}
