//! Small scalar statistics helpers used by reports and tests.

/// Arithmetic mean of a slice. Zero for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population standard deviation of a slice. Zero for fewer than 2 items.
pub fn stddev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    let var = xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64;
    var.sqrt()
}

/// Value at quantile `q` of an already-sorted slice using nearest-rank.
///
/// # Panics
/// Does not panic on empty input; returns 0.0 instead.
pub fn percentile_of_sorted(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let q = q.clamp(0.0, 1.0);
    let rank = ((q * sorted.len() as f64).ceil() as usize).max(1);
    sorted[rank - 1]
}

/// Coefficient of variation (stddev / mean); zero when the mean is zero.
pub fn coeff_of_variation(xs: &[f64]) -> f64 {
    let m = mean(xs);
    if m == 0.0 {
        0.0
    } else {
        stddev(xs) / m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_of_empty_is_zero() {
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    fn mean_basic() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
    }

    #[test]
    fn stddev_of_constant_is_zero() {
        assert_eq!(stddev(&[5.0, 5.0, 5.0]), 0.0);
    }

    #[test]
    fn stddev_known_value() {
        // Population stddev of [2,4,4,4,5,5,7,9] is exactly 2.
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((stddev(&xs) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn percentile_nearest_rank() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0];
        assert_eq!(percentile_of_sorted(&xs, 0.5), 5.0);
        assert_eq!(percentile_of_sorted(&xs, 0.99), 10.0);
        assert_eq!(percentile_of_sorted(&xs, 0.0), 1.0);
        assert_eq!(percentile_of_sorted(&xs, 1.0), 10.0);
    }

    #[test]
    fn percentile_of_empty_is_zero() {
        assert_eq!(percentile_of_sorted(&[], 0.5), 0.0);
    }

    #[test]
    fn cv_zero_mean() {
        assert_eq!(coeff_of_variation(&[0.0, 0.0]), 0.0);
    }
}
