//! Minimal fixed-width text table renderer for the bench harness output.

/// A text table with a header row and uniform column alignment.
#[derive(Clone, Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: impl IntoIterator<Item = S>) -> Self {
        Self {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; short rows are padded with empty cells.
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) -> &mut Self {
        let mut row: Vec<String> = cells.into_iter().map(Into::into).collect();
        row.resize(self.header.len().max(row.len()), String::new());
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with a separator under the header.
    pub fn render(&self) -> String {
        let ncols = self
            .rows
            .iter()
            .map(|r| r.len())
            .chain([self.header.len()])
            .max()
            .unwrap_or(0);
        let mut widths = vec![0usize; ncols];
        for (i, h) in self.header.iter().enumerate() {
            widths[i] = widths[i].max(h.len());
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::new();
            for (i, w) in widths.iter().enumerate() {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{cell:>w$}", w = w));
            }
            line.trim_end().to_string()
        };
        let mut out = String::new();
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (ncols.saturating_sub(1))));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(["system", "Gbps"]);
        t.row(["native", "26.6"]);
        t.row(["mflow", "29.8"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("system"));
        assert!(lines[2].contains("26.6"));
        assert!(lines[3].contains("29.8"));
    }

    #[test]
    fn pads_short_rows() {
        let mut t = Table::new(["a", "b", "c"]);
        t.row(["1"]);
        assert_eq!(t.len(), 1);
        let s = t.render();
        assert!(s.lines().count() == 3);
    }

    #[test]
    fn empty_table() {
        let t = Table::new(["x"]);
        assert!(t.is_empty());
        assert!(t.render().contains('x'));
    }
}
