//! Log-bucketed latency histogram in the spirit of HDR histograms.
//!
//! Values (nanoseconds) are bucketed with a bounded relative error: each
//! power-of-two range is divided into `SUB_BUCKETS` linear sub-buckets, so
//! the worst-case quantization error is `1 / SUB_BUCKETS` (~1.6 % here).
//! Recording is O(1) and the whole structure is a flat `Vec<u64>`, which
//! keeps it cheap enough to live inside the simulator hot loop.

/// Number of linear sub-buckets per power-of-two range. Must be a power of
/// two so index math stays branch-free.
const SUB_BUCKETS: u64 = 64;
const SUB_BITS: u32 = SUB_BUCKETS.trailing_zeros();

/// A histogram of `u64` values (by convention, nanoseconds).
#[derive(Clone, Debug)]
pub struct LatencyHistogram {
    counts: Vec<u64>,
    total: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

fn bucket_index(value: u64) -> usize {
    // Values below SUB_BUCKETS map 1:1 onto the first buckets.
    if value < SUB_BUCKETS {
        return value as usize;
    }
    let msb = 63 - value.leading_zeros();
    let range = msb - SUB_BITS; // which power-of-two range beyond the linear part
    let sub = (value >> range) - SUB_BUCKETS; // position within the range
    ((range as u64 + 1) * SUB_BUCKETS + sub) as usize
}

fn bucket_midpoint(index: usize) -> u64 {
    let index = index as u64;
    if index < SUB_BUCKETS {
        return index;
    }
    let range = index / SUB_BUCKETS - 1;
    let sub = index % SUB_BUCKETS;
    let low = (SUB_BUCKETS + sub) << range;
    let width = 1u64 << range;
    low + width / 2
}

impl LatencyHistogram {
    /// Creates an empty histogram able to hold the full `u64` range.
    pub fn new() -> Self {
        // 64 ranges of SUB_BUCKETS is a safe upper bound for any u64 value.
        Self {
            counts: vec![0; (65 * SUB_BUCKETS) as usize],
            total: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one observation.
    pub fn record(&mut self, value: u64) {
        self.counts[bucket_index(value)] += 1;
        self.total += 1;
        self.sum += value as u128;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Records `n` identical observations.
    pub fn record_n(&mut self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.counts[bucket_index(value)] += n;
        self.total += n;
        self.sum += value as u128 * n as u128;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Arithmetic mean of the recorded values (exact, not bucketed).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        self.sum as f64 / self.total as f64
    }

    /// Smallest recorded value (exact). Zero when empty.
    pub fn min(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value (exact). Zero when empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Value at quantile `q` in `[0, 1]`, e.g. `0.5` for the median or
    /// `0.99` for the 99th percentile, with the bucket's relative error.
    pub fn value_at_quantile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // Clamp to exact extremes so p0/p100 are honest.
                return bucket_midpoint(i).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Median (p50) value.
    pub fn median(&self) -> u64 {
        self.value_at_quantile(0.5)
    }

    /// 99th percentile value.
    pub fn p99(&self) -> u64 {
        self.value_at_quantile(0.99)
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += *b;
        }
        self.total += other.total;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// One-line human-readable summary in microseconds.
    pub fn summary_us(&self) -> String {
        format!(
            "n={} mean={:.1}us p50={:.1}us p99={:.1}us max={:.1}us",
            self.total,
            self.mean() / 1e3,
            self.median() as f64 / 1e3,
            self.p99() as f64 / 1e3,
            self.max() as f64 / 1e3,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_is_zeroed() {
        let h = LatencyHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.median(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
    }

    #[test]
    fn exact_for_small_values() {
        let mut h = LatencyHistogram::new();
        for v in 0..SUB_BUCKETS {
            h.record(v);
        }
        assert_eq!(h.count(), SUB_BUCKETS);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), SUB_BUCKETS - 1);
        // Small values are stored exactly.
        assert_eq!(h.value_at_quantile(0.0), 0);
        assert_eq!(h.value_at_quantile(1.0), SUB_BUCKETS - 1);
    }

    #[test]
    fn median_of_uniform_range_is_close() {
        let mut h = LatencyHistogram::new();
        for v in 1..=100_000u64 {
            h.record(v);
        }
        let med = h.median();
        let err = (med as f64 - 50_000.0).abs() / 50_000.0;
        assert!(err < 0.05, "median {med} too far from 50000");
    }

    #[test]
    fn p99_of_bimodal_distribution() {
        let mut h = LatencyHistogram::new();
        h.record_n(1_000, 9_900);
        h.record_n(1_000_000, 100);
        let p99 = h.p99();
        assert!(p99 <= 1_100, "p99={p99} should be in the low mode");
        let p999 = h.value_at_quantile(0.999);
        assert!(p999 > 900_000, "p99.9={p999} should be in the high mode");
    }

    #[test]
    fn mean_is_exact() {
        let mut h = LatencyHistogram::new();
        h.record(10);
        h.record(20);
        h.record(30);
        assert_eq!(h.mean(), 20.0);
    }

    #[test]
    fn merge_combines_counts_and_extremes() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        a.record(5);
        b.record(500_000);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.min(), 5);
        assert_eq!(a.max(), 500_000);
    }

    #[test]
    fn record_n_matches_repeated_record() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        for _ in 0..1000 {
            a.record(777);
        }
        b.record_n(777, 1000);
        assert_eq!(a.count(), b.count());
        assert_eq!(a.median(), b.median());
        assert_eq!(a.mean(), b.mean());
    }

    #[test]
    fn bucket_relative_error_is_bounded() {
        // Every value must land in a bucket whose midpoint is within ~3 %.
        for v in [100u64, 1_000, 12_345, 999_999, 123_456_789, u32::MAX as u64] {
            let mid = bucket_midpoint(bucket_index(v));
            let err = (mid as f64 - v as f64).abs() / v as f64;
            assert!(err < 0.03, "value {v} -> midpoint {mid}, err {err}");
        }
    }

    #[test]
    fn quantiles_are_monotonic() {
        let mut h = LatencyHistogram::new();
        let mut x = 1u64;
        for i in 0..10_000u64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            h.record((x >> 33) % 1_000_000 + i % 7);
        }
        let mut prev = 0;
        for q in [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999, 1.0] {
            let v = h.value_at_quantile(q);
            assert!(v >= prev, "quantile {q} regressed: {v} < {prev}");
            prev = v;
        }
    }
}
