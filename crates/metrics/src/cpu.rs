//! Per-core CPU accounting with per-tag (network device / stage) breakdowns.
//!
//! The paper's Figures 4b, 8b and 12 report the average CPU utilization of
//! each core and which softirq (pNIC, VxLAN, veth, user copy, ...) consumed
//! it. The simulator attributes every nanosecond of core busy time to a tag
//! through this structure.

use std::collections::BTreeMap;

use crate::stats;

/// Busy-time ledger: `busy[(core, tag)] = ns`.
#[derive(Clone, Debug, Default)]
pub struct CpuAccounting {
    busy: BTreeMap<(usize, String), u64>,
    n_cores: usize,
}

/// One row of a CPU-breakdown table: a core and its per-tag utilization.
#[derive(Clone, Debug)]
pub struct CpuBreakdownRow {
    pub core: usize,
    /// (tag, utilization in percent) pairs, descending by utilization.
    pub by_tag: Vec<(String, f64)>,
    /// Total utilization in percent.
    pub total: f64,
}

impl CpuAccounting {
    /// Creates a ledger covering `n_cores` cores.
    pub fn new(n_cores: usize) -> Self {
        Self {
            busy: BTreeMap::new(),
            n_cores,
        }
    }

    /// Number of cores covered (indices `0..n_cores`).
    pub fn n_cores(&self) -> usize {
        self.n_cores
    }

    /// Charges `ns` of busy time on `core` to `tag`.
    pub fn charge(&mut self, core: usize, tag: &str, ns: u64) {
        if ns == 0 {
            return;
        }
        self.n_cores = self.n_cores.max(core + 1);
        *self.busy.entry((core, tag.to_string())).or_insert(0) += ns;
    }

    /// Total busy nanoseconds of one core.
    pub fn busy_ns(&self, core: usize) -> u64 {
        self.busy
            .iter()
            .filter(|((c, _), _)| *c == core)
            .map(|(_, ns)| *ns)
            .sum()
    }

    /// Busy nanoseconds of one (core, tag) pair.
    pub fn busy_ns_tag(&self, core: usize, tag: &str) -> u64 {
        self.busy.get(&(core, tag.to_string())).copied().unwrap_or(0)
    }

    /// Total busy nanoseconds charged to `tag` across all cores.
    pub fn tag_total_ns(&self, tag: &str) -> u64 {
        self.busy
            .iter()
            .filter(|((_, t), _)| t == tag)
            .map(|(_, ns)| *ns)
            .sum()
    }

    /// Utilization of one core in percent of `duration_ns`.
    pub fn utilization_pct(&self, core: usize, duration_ns: u64) -> f64 {
        if duration_ns == 0 {
            return 0.0;
        }
        self.busy_ns(core) as f64 * 100.0 / duration_ns as f64
    }

    /// Per-core utilization vector (percent) over `0..n_cores`.
    pub fn utilization_vector(&self, duration_ns: u64) -> Vec<f64> {
        (0..self.n_cores)
            .map(|c| self.utilization_pct(c, duration_ns))
            .collect()
    }

    /// Standard deviation of per-core utilization — the paper's load-balance
    /// metric of Figure 12 (20.5 for FALCON vs 11.6 for MFLOW).
    pub fn utilization_stddev(&self, duration_ns: u64, cores: &[usize]) -> f64 {
        let xs: Vec<f64> = cores
            .iter()
            .map(|&c| self.utilization_pct(c, duration_ns))
            .collect();
        stats::stddev(&xs)
    }

    /// Full per-core breakdown rows, skipping idle cores.
    pub fn breakdown(&self, duration_ns: u64) -> Vec<CpuBreakdownRow> {
        let mut rows = Vec::new();
        for core in 0..self.n_cores {
            let mut by_tag: Vec<(String, f64)> = self
                .busy
                .iter()
                .filter(|((c, _), _)| *c == core)
                .map(|((_, t), ns)| (t.clone(), *ns as f64 * 100.0 / duration_ns as f64))
                .collect();
            if by_tag.is_empty() {
                continue;
            }
            by_tag.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
            let total = by_tag.iter().map(|(_, p)| p).sum();
            rows.push(CpuBreakdownRow {
                core,
                by_tag,
                total,
            });
        }
        rows
    }

    /// Sum of all busy time across all cores (for overhead comparisons).
    pub fn total_busy_ns(&self) -> u64 {
        self.busy.values().sum()
    }

    /// Merges another ledger into this one.
    pub fn merge(&mut self, other: &CpuAccounting) {
        for ((core, tag), ns) in &other.busy {
            *self.busy.entry((*core, tag.clone())).or_insert(0) += ns;
        }
        self.n_cores = self.n_cores.max(other.n_cores);
    }

    /// Renders the breakdown as an indented text block.
    pub fn render(&self, duration_ns: u64) -> String {
        let mut out = String::new();
        for row in self.breakdown(duration_ns) {
            out.push_str(&format!("core {:>2}: {:>6.1}%", row.core, row.total));
            for (tag, pct) in &row.by_tag {
                out.push_str(&format!("  {tag}={pct:.1}%"));
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charge_and_utilization() {
        let mut cpu = CpuAccounting::new(4);
        cpu.charge(1, "vxlan", 500_000);
        cpu.charge(1, "bridge", 250_000);
        cpu.charge(2, "tcp", 1_000_000);
        assert_eq!(cpu.busy_ns(1), 750_000);
        assert!((cpu.utilization_pct(1, 1_000_000) - 75.0).abs() < 1e-9);
        assert!((cpu.utilization_pct(2, 1_000_000) - 100.0).abs() < 1e-9);
        assert_eq!(cpu.utilization_pct(3, 1_000_000), 0.0);
    }

    #[test]
    fn zero_charge_is_ignored() {
        let mut cpu = CpuAccounting::new(2);
        cpu.charge(0, "x", 0);
        assert_eq!(cpu.total_busy_ns(), 0);
        assert!(cpu.breakdown(1000).is_empty());
    }

    #[test]
    fn breakdown_sorted_descending() {
        let mut cpu = CpuAccounting::new(2);
        cpu.charge(0, "small", 10);
        cpu.charge(0, "big", 90);
        let rows = cpu.breakdown(100);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].by_tag[0].0, "big");
        assert!((rows[0].total - 100.0).abs() < 1e-9);
    }

    #[test]
    fn stddev_of_balanced_load_is_zero() {
        let mut cpu = CpuAccounting::new(3);
        for c in 0..3 {
            cpu.charge(c, "work", 400);
        }
        assert_eq!(cpu.utilization_stddev(1000, &[0, 1, 2]), 0.0);
    }

    #[test]
    fn stddev_of_imbalanced_load_is_positive() {
        let mut cpu = CpuAccounting::new(2);
        cpu.charge(0, "work", 1000);
        cpu.charge(1, "work", 100);
        assert!(cpu.utilization_stddev(1000, &[0, 1]) > 10.0);
    }

    #[test]
    fn merge_adds_ledgers() {
        let mut a = CpuAccounting::new(1);
        let mut b = CpuAccounting::new(1);
        a.charge(0, "x", 5);
        b.charge(0, "x", 7);
        b.charge(0, "y", 3);
        a.merge(&b);
        assert_eq!(a.busy_ns_tag(0, "x"), 12);
        assert_eq!(a.busy_ns_tag(0, "y"), 3);
        assert_eq!(a.total_busy_ns(), 15);
    }

    #[test]
    fn tag_total_spans_cores() {
        let mut cpu = CpuAccounting::new(3);
        cpu.charge(0, "vxlan", 10);
        cpu.charge(2, "vxlan", 30);
        assert_eq!(cpu.tag_total_ns("vxlan"), 40);
    }

    #[test]
    fn grows_core_count_on_demand() {
        let mut cpu = CpuAccounting::new(1);
        cpu.charge(7, "x", 1);
        assert_eq!(cpu.n_cores(), 8);
        assert_eq!(cpu.utilization_vector(100).len(), 8);
    }
}
