//! Measurement utilities shared by the MFLOW simulator, runtime and bench
//! harness: log-bucketed latency histograms, throughput meters, per-core CPU
//! accounting, scalar statistics, text tables and JSON series output.
//!
//! Everything here is deterministic and allocation-light so it can be used
//! inside the discrete-event hot loop.

pub mod alloc;
pub mod cpu;
pub mod hist;
pub mod series;
pub mod stats;
pub mod table;
pub mod telemetry;
pub mod throughput;
pub mod timeseries;

pub use alloc::CountingAlloc;
pub use cpu::{CpuAccounting, CpuBreakdownRow};
pub use hist::LatencyHistogram;
pub use series::{DataPoint, Series, SeriesSet};
pub use stats::{mean, percentile_of_sorted, stddev};
pub use table::Table;
pub use telemetry::Telemetry;
pub use throughput::ThroughputMeter;
pub use timeseries::WindowedRate;
