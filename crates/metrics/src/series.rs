//! Figure data series: named (x, y) sequences with JSON output so every
//! regenerated figure is machine-diffable against EXPERIMENTS.md.
//!
//! Serialization is hand-rolled (a tiny writer plus a minimal JSON value
//! parser) so the metrics crate stays dependency-free and builds offline.

/// A single (x, y) observation, with an optional human label for categorical
/// x axes (message sizes, operation names, ...).
#[derive(Clone, Debug, PartialEq)]
pub struct DataPoint {
    pub x: f64,
    pub y: f64,
    pub label: Option<String>,
}

/// A named series of points (one line on a figure).
#[derive(Clone, Debug, PartialEq)]
pub struct Series {
    pub name: String,
    pub points: Vec<DataPoint>,
}

impl Series {
    /// Creates an empty series.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            points: Vec::new(),
        }
    }

    /// Appends a numeric point.
    pub fn push(&mut self, x: f64, y: f64) {
        self.points.push(DataPoint { x, y, label: None });
    }

    /// Appends a labelled point (categorical x).
    pub fn push_labelled(&mut self, x: f64, y: f64, label: impl Into<String>) {
        self.points.push(DataPoint {
            x,
            y,
            label: Some(label.into()),
        });
    }

    /// Looks a y value up by x (exact match).
    pub fn y_at(&self, x: f64) -> Option<f64> {
        self.points.iter().find(|p| p.x == x).map(|p| p.y)
    }

    /// Maximum y value in the series.
    pub fn y_max(&self) -> f64 {
        self.points.iter().map(|p| p.y).fold(f64::MIN, f64::max)
    }
}

/// A full figure: title plus its series, serializable to JSON.
#[derive(Clone, Debug, PartialEq)]
pub struct SeriesSet {
    pub title: String,
    pub x_label: String,
    pub y_label: String,
    pub series: Vec<Series>,
}

/// Why a JSON document failed to parse into a [`SeriesSet`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset where parsing stopped.
    pub offset: usize,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

impl SeriesSet {
    /// Creates an empty figure container.
    pub fn new(
        title: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
    ) -> Self {
        Self {
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            series: Vec::new(),
        }
    }

    /// Adds a series and returns a mutable handle to it.
    pub fn add(&mut self, name: impl Into<String>) -> &mut Series {
        self.series.push(Series::new(name));
        self.series.last_mut().unwrap()
    }

    /// Finds a series by name.
    pub fn get(&self, name: &str) -> Option<&Series> {
        self.series.iter().find(|s| s.name == name)
    }

    /// Serializes to pretty JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push_str("{\n");
        out.push_str(&format!("  \"title\": {},\n", json_string(&self.title)));
        out.push_str(&format!("  \"x_label\": {},\n", json_string(&self.x_label)));
        out.push_str(&format!("  \"y_label\": {},\n", json_string(&self.y_label)));
        out.push_str("  \"series\": [");
        for (i, s) in self.series.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {\n");
            out.push_str(&format!("      \"name\": {},\n", json_string(&s.name)));
            out.push_str("      \"points\": [");
            for (j, p) in s.points.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str("\n        { \"x\": ");
                out.push_str(&json_number(p.x));
                out.push_str(", \"y\": ");
                out.push_str(&json_number(p.y));
                if let Some(label) = &p.label {
                    out.push_str(", \"label\": ");
                    out.push_str(&json_string(label));
                }
                out.push_str(" }");
            }
            if !s.points.is_empty() {
                out.push_str("\n      ");
            }
            out.push_str("]\n    }");
        }
        if !self.series.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}");
        out
    }

    /// Parses from JSON.
    pub fn from_json(s: &str) -> Result<Self, JsonError> {
        let value = JsonValue::parse(s)?;
        let obj = value.as_object("top level")?;
        let mut set = SeriesSet::new(
            obj.string_field("title")?,
            obj.string_field("x_label")?,
            obj.string_field("y_label")?,
        );
        for sv in obj.array_field("series")? {
            let sobj = sv.as_object("series entry")?;
            let series = set.add(sobj.string_field("name")?);
            for pv in sobj.array_field("points")? {
                let pobj = pv.as_object("point")?;
                let x = pobj.number_field("x")?;
                let y = pobj.number_field("y")?;
                match pobj.get("label") {
                    Some(JsonValue::String(label)) => {
                        series.push_labelled(x, y, label.clone());
                    }
                    Some(JsonValue::Null) | None => series.push(x, y),
                    Some(_) => {
                        return Err(JsonError {
                            message: "\"label\" must be a string".into(),
                            offset: 0,
                        })
                    }
                }
            }
        }
        Ok(set)
    }
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_number(x: f64) -> String {
    if x.is_finite() {
        // `{:?}` keeps a fractional part (1.0, not 1) and round-trips.
        format!("{x:?}")
    } else {
        // JSON has no infinities; clamp like most encoders reject — we
        // choose null-free output and saturate instead.
        format!("{:?}", if x > 0.0 { f64::MAX } else { f64::MIN })
    }
}

/// A parsed JSON value (just enough for [`SeriesSet`] documents).
#[derive(Clone, Debug, PartialEq)]
enum JsonValue {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<JsonValue>),
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    fn parse(s: &str) -> Result<JsonValue, JsonError> {
        let bytes = s.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(err("trailing characters", pos));
        }
        Ok(value)
    }

    fn as_object(&self, what: &str) -> Result<&Vec<(String, JsonValue)>, JsonError> {
        match self {
            JsonValue::Object(fields) => Ok(fields),
            _ => Err(err(&format!("{what} must be an object"), 0)),
        }
    }
}

trait ObjectExt {
    fn get(&self, key: &str) -> Option<&JsonValue>;
    fn string_field(&self, key: &str) -> Result<String, JsonError>;
    fn number_field(&self, key: &str) -> Result<f64, JsonError>;
    fn array_field(&self, key: &str) -> Result<&Vec<JsonValue>, JsonError>;
}

impl ObjectExt for Vec<(String, JsonValue)> {
    fn get(&self, key: &str) -> Option<&JsonValue> {
        self.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    fn string_field(&self, key: &str) -> Result<String, JsonError> {
        match self.get(key) {
            Some(JsonValue::String(s)) => Ok(s.clone()),
            _ => Err(err(&format!("missing string field \"{key}\""), 0)),
        }
    }

    fn number_field(&self, key: &str) -> Result<f64, JsonError> {
        match self.get(key) {
            Some(JsonValue::Number(x)) => Ok(*x),
            _ => Err(err(&format!("missing number field \"{key}\""), 0)),
        }
    }

    fn array_field(&self, key: &str) -> Result<&Vec<JsonValue>, JsonError> {
        match self.get(key) {
            Some(JsonValue::Array(items)) => Ok(items),
            _ => Err(err(&format!("missing array field \"{key}\""), 0)),
        }
    }
}

fn err(message: &str, offset: usize) -> JsonError {
    JsonError {
        message: message.into(),
        offset,
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, JsonError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(JsonValue::String(parse_string(bytes, pos)?)),
        Some(b't') => parse_keyword(bytes, pos, "true", JsonValue::Bool(true)),
        Some(b'f') => parse_keyword(bytes, pos, "false", JsonValue::Bool(false)),
        Some(b'n') => parse_keyword(bytes, pos, "null", JsonValue::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(bytes, pos),
        _ => Err(err("expected a JSON value", *pos)),
    }
}

fn parse_keyword(
    bytes: &[u8],
    pos: &mut usize,
    word: &str,
    value: JsonValue,
) -> Result<JsonValue, JsonError> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(err("invalid keyword", *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, JsonError> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    std::str::from_utf8(&bytes[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(JsonValue::Number)
        .ok_or_else(|| err("invalid number", start))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    *pos += 1; // opening quote
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(err("unterminated string", *pos)),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000C}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or_else(|| err("invalid \\u escape", *pos))?;
                        // Surrogate pairs are not needed for figure labels.
                        out.push(char::from_u32(hex).unwrap_or('\u{FFFD}'));
                        *pos += 4;
                    }
                    _ => return Err(err("invalid escape", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar.
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| err("invalid utf-8", *pos))?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, JsonError> {
    *pos += 1; // [
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(JsonValue::Array(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(JsonValue::Array(items));
            }
            _ => return Err(err("expected ',' or ']'", *pos)),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, JsonError> {
    *pos += 1; // {
    let mut fields = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(JsonValue::Object(fields));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(err("expected object key", *pos));
        }
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(err("expected ':'", *pos));
        }
        *pos += 1;
        let value = parse_value(bytes, pos)?;
        fields.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(JsonValue::Object(fields));
            }
            _ => return Err(err("expected ',' or '}'", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_json() {
        let mut set = SeriesSet::new("Fig 8a TCP", "message size (B)", "Gbps");
        let s = set.add("mflow");
        s.push(16.0, 1.2);
        s.push_labelled(65536.0, 29.8, "64K");
        let json = set.to_json();
        let back = SeriesSet::from_json(&json).unwrap();
        assert_eq!(set, back);
    }

    #[test]
    fn y_lookup() {
        let mut s = Series::new("x");
        s.push(1.0, 10.0);
        s.push(2.0, 20.0);
        assert_eq!(s.y_at(2.0), Some(20.0));
        assert_eq!(s.y_at(3.0), None);
        assert_eq!(s.y_max(), 20.0);
    }

    #[test]
    fn get_by_name() {
        let mut set = SeriesSet::new("t", "x", "y");
        set.add("native").push(1.0, 26.6);
        set.add("mflow").push(1.0, 29.8);
        assert!(set.get("native").is_some());
        assert!(set.get("nope").is_none());
        assert_eq!(set.get("mflow").unwrap().y_at(1.0), Some(29.8));
    }

    #[test]
    fn roundtrip_survives_escapes_and_negatives() {
        let mut set = SeriesSet::new("quo\"te\nline", "x\\path", "y");
        set.add("s1").push(-1.5, -2.75e3);
        set.add("empty");
        let back = SeriesSet::from_json(&set.to_json()).unwrap();
        assert_eq!(set, back);
    }

    #[test]
    fn malformed_json_is_rejected() {
        assert!(SeriesSet::from_json("").is_err());
        assert!(SeriesSet::from_json("{").is_err());
        assert!(SeriesSet::from_json("[1, 2]").is_err());
        assert!(SeriesSet::from_json("{\"title\": \"t\"}").is_err());
        let good = SeriesSet::new("t", "x", "y").to_json();
        assert!(SeriesSet::from_json(&format!("{good} trailing")).is_err());
    }
}
