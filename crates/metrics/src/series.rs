//! Figure data series: named (x, y) sequences with JSON output so every
//! regenerated figure is machine-diffable against EXPERIMENTS.md.

use serde::{Deserialize, Serialize};

/// A single (x, y) observation, with an optional human label for categorical
/// x axes (message sizes, operation names, ...).
#[derive(Clone, Debug, Serialize, Deserialize, PartialEq)]
pub struct DataPoint {
    pub x: f64,
    pub y: f64,
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub label: Option<String>,
}

/// A named series of points (one line on a figure).
#[derive(Clone, Debug, Serialize, Deserialize, PartialEq)]
pub struct Series {
    pub name: String,
    pub points: Vec<DataPoint>,
}

impl Series {
    /// Creates an empty series.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            points: Vec::new(),
        }
    }

    /// Appends a numeric point.
    pub fn push(&mut self, x: f64, y: f64) {
        self.points.push(DataPoint { x, y, label: None });
    }

    /// Appends a labelled point (categorical x).
    pub fn push_labelled(&mut self, x: f64, y: f64, label: impl Into<String>) {
        self.points.push(DataPoint {
            x,
            y,
            label: Some(label.into()),
        });
    }

    /// Looks a y value up by x (exact match).
    pub fn y_at(&self, x: f64) -> Option<f64> {
        self.points.iter().find(|p| p.x == x).map(|p| p.y)
    }

    /// Maximum y value in the series.
    pub fn y_max(&self) -> f64 {
        self.points.iter().map(|p| p.y).fold(f64::MIN, f64::max)
    }
}

/// A full figure: title plus its series, serializable to JSON.
#[derive(Clone, Debug, Serialize, Deserialize, PartialEq)]
pub struct SeriesSet {
    pub title: String,
    pub x_label: String,
    pub y_label: String,
    pub series: Vec<Series>,
}

impl SeriesSet {
    /// Creates an empty figure container.
    pub fn new(
        title: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
    ) -> Self {
        Self {
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            series: Vec::new(),
        }
    }

    /// Adds a series and returns a mutable handle to it.
    pub fn add(&mut self, name: impl Into<String>) -> &mut Series {
        self.series.push(Series::new(name));
        self.series.last_mut().unwrap()
    }

    /// Finds a series by name.
    pub fn get(&self, name: &str) -> Option<&Series> {
        self.series.iter().find(|s| s.name == name)
    }

    /// Serializes to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("series serialization cannot fail")
    }

    /// Parses from JSON.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_json() {
        let mut set = SeriesSet::new("Fig 8a TCP", "message size (B)", "Gbps");
        let s = set.add("mflow");
        s.push(16.0, 1.2);
        s.push_labelled(65536.0, 29.8, "64K");
        let json = set.to_json();
        let back = SeriesSet::from_json(&json).unwrap();
        assert_eq!(set, back);
    }

    #[test]
    fn y_lookup() {
        let mut s = Series::new("x");
        s.push(1.0, 10.0);
        s.push(2.0, 20.0);
        assert_eq!(s.y_at(2.0), Some(20.0));
        assert_eq!(s.y_at(3.0), None);
        assert_eq!(s.y_max(), 20.0);
    }

    #[test]
    fn get_by_name() {
        let mut set = SeriesSet::new("t", "x", "y");
        set.add("native").push(1.0, 26.6);
        set.add("mflow").push(1.0, 29.8);
        assert!(set.get("native").is_some());
        assert!(set.get("nope").is_none());
        assert_eq!(set.get("mflow").unwrap().y_at(1.0), Some(29.8));
    }
}
