//! `mflow` — packet-level parallelism for container overlay networks.
//!
//! This crate implements the paper's contribution:
//!
//! * **Flow splitting** ([`splitter::MflowSteering`]): re-purposing the
//!   stage-transition point to divide the packets of one flow into
//!   *micro-flows* — consecutive batches of `batch_size` packets — each
//!   dispatched to a distinct splitting core (§III-A, Figure 6a).
//! * **IRQ splitting**: the same mechanism applied at the earliest point,
//!   the first softirq, so even per-packet skb allocation and GRO
//!   parallelize (§III-A, Figure 6b). In the simulator this is the
//!   `FullPath` scaling mode, which splits at the `DriverPoll →
//!   SkbAlloc` transition and dispatches lightweight *requests* rather
//!   than skbs.
//! * **Batch-based flow reassembly** ([`reassembly::MergeCounter`]): per
//!   splitting-core buffer queues plus a global merging counter restore
//!   the original order batch-at-a-time, instead of the kernel's
//!   per-packet out-of-order queue (§III-B, Figure 6c).
//!
//! The [`try_install`] helper wires a configuration into the simulated
//! stack:
//!
//! ```
//! use mflow::{try_install, MflowConfig};
//! use mflow_netstack::{FlowSpec, PathKind, StackConfig, StackSim};
//!
//! let cfg = StackConfig::single_flow(PathKind::Overlay, FlowSpec::tcp(65536, 0));
//! let (policy, merge) = try_install(MflowConfig::tcp_full_path()).unwrap();
//! let report = StackSim::try_run(cfg, policy, Some(merge)).unwrap();
//! assert!(report.goodput_gbps > 0.0);
//! ```

pub mod config;
pub mod elephant;
pub mod lanes;
pub mod reassembly;
pub mod splitter;

pub use config::{MflowConfig, ScalingMode};
pub use elephant::{ElephantConfig, ElephantDetector};
pub use lanes::MflowLanes;
pub use mflow_error::MflowError;
pub use mflow_netstack::StatefulMode;
pub use reassembly::{BatchMerger, MergeCounter, MergeStats, MfTag, Offer, ScrReconciler};
pub use splitter::MflowSteering;

use mflow_netstack::{MergeSetup, PacketSteering};

/// Builds the steering policy and merge hook for a configuration,
/// panicking on an invalid one.
#[deprecated(since = "0.2.0", note = "use `try_install` and handle the error")]
pub fn install(cfg: MflowConfig) -> (Box<dyn PacketSteering>, MergeSetup) {
    try_install(cfg).expect("invalid MflowConfig")
}

/// Builds the steering policy and merge hook for a configuration,
/// rejecting one that violates [`MflowConfig::validate`].
pub fn try_install(cfg: MflowConfig) -> Result<(Box<dyn PacketSteering>, MergeSetup), MflowError> {
    let merge_before = cfg.merge_before();
    let stateful = cfg.stateful_mode;
    let steering = MflowSteering::try_new(cfg.clone())?;
    Ok((
        Box::new(steering),
        MergeSetup {
            before: merge_before,
            merger: Box::new(
                BatchMerger::new(cfg.merge_cost_per_batch_ns)
                    .with_flush_deadline(cfg.flush_after_offers),
            ),
            stateful,
        },
    ))
}
