//! MFLOW configuration: batch size, splitting cores and scaling mode.

use mflow_error::MflowError;
use mflow_netstack::{Stage, StatefulMode};
use mflow_sim::CoreId;

use crate::elephant::ElephantConfig;

/// Where along the stateless path the flow is split (Figure 5).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ScalingMode {
    /// Split right before one heavyweight device and merge before the app:
    /// the skbs of the flow are dispatched from the stage preceding
    /// `split_into` onto the splitting cores (flow-splitting function,
    /// Figure 6a). The paper's UDP configuration splits before the VXLAN
    /// device (`split_into = Stage::OuterIp`).
    Device { split_into: Stage },
    /// Split at the first stage via the IRQ-splitting function
    /// (Figure 6b): packet requests are dispatched before skb allocation,
    /// parallelizing the entire path. The paper's TCP configuration.
    FullPath,
}

/// Full MFLOW parameterization.
#[derive(Clone, Debug)]
pub struct MflowConfig {
    /// Micro-flow batch size in packets. 256 per the paper's Figure 7
    /// sweet spot.
    pub batch_size: u32,
    /// Core that runs the IRQ + the dispatching first half.
    pub dispatch_core: CoreId,
    /// Splitting cores, one micro-flow lane each.
    pub split_cores: Vec<CoreId>,
    /// Optional per-lane continuation cores: with `FullPath` scaling the
    /// paper keeps only skb allocation on each splitting core and pipelines
    /// the remaining stages onto a second core per branch (Figure 8b).
    pub branch_tails: Option<Vec<CoreId>>,
    /// Core that runs the stateful/merged stage (`TcpRx` for full path —
    /// the paper runs merge + TCP in `tcp_recvmsg` context next to the app).
    pub merge_core: CoreId,
    pub mode: ScalingMode,
    /// Number of splitting lanes each flow uses. For the single-flow
    /// configurations this equals `split_cores.len()`; multi-flow runs use
    /// a pool of cores with a few lanes per flow.
    pub lanes_per_flow: usize,
    /// Multi-flow: pick the dispatch core and lanes per flow by hash from
    /// the pool instead of pinning them.
    pub spread_flows: bool,
    /// Steering bookkeeping cost per dispatched segment, charged to the
    /// dispatch core (the +15 % CPU overhead of Figure 12 comes from here
    /// and the IPIs).
    pub dispatch_cost_per_seg_ns: f64,
    /// Reassembly cost per merge invocation, charged to the consumer.
    pub merge_cost_per_batch_ns: u64,
    /// Flush deadline: merge-point offers without a release before the
    /// merger force-advances past a stuck micro-flow (fault recovery).
    /// `None` reproduces the textbook algorithm, which waits forever.
    pub flush_after_offers: Option<u64>,
    /// Which flows get split. The single-flow configurations split
    /// unconditionally (the flow is the experiment); multi-flow setups
    /// identify elephants by rate with hysteresis.
    pub elephant: ElephantConfig,
    /// How the stateful TCP stage runs relative to the merge point:
    /// merge-before-tcp (the paper's design) or state-compute replication
    /// on every lane with a downstream reconciler.
    pub stateful_mode: StatefulMode,
}

impl MflowConfig {
    /// The paper's single-flow TCP configuration: full-path scaling, batch
    /// 256, dispatch on core 1, skb allocation split on cores 2/3, branch
    /// tails on cores 4/5, merge + TCP + copy on core 0.
    pub fn tcp_full_path() -> Self {
        Self {
            batch_size: 256,
            dispatch_core: 1,
            split_cores: vec![2, 3],
            branch_tails: Some(vec![4, 5]),
            merge_core: 0,
            mode: ScalingMode::FullPath,
            lanes_per_flow: 2,
            spread_flows: false,
            dispatch_cost_per_seg_ns: 25.0,
            merge_cost_per_batch_ns: 150,
            flush_after_offers: Some(4096),
            elephant: ElephantConfig::always(),
            stateful_mode: StatefulMode::MergeBeforeTcp,
        }
    }

    /// The paper's single-flow UDP configuration: device scaling of the
    /// VXLAN device, batch 256, split on cores 2/3, late merge before the
    /// application copy.
    pub fn udp_device_scaling() -> Self {
        Self {
            batch_size: 256,
            dispatch_core: 1,
            split_cores: vec![2, 3],
            branch_tails: None,
            merge_core: 0,
            mode: ScalingMode::Device {
                split_into: Stage::OuterIp,
            },
            lanes_per_flow: 2,
            spread_flows: false,
            dispatch_cost_per_seg_ns: 25.0,
            merge_cost_per_batch_ns: 150,
            flush_after_offers: Some(4096),
            elephant: ElephantConfig::always(),
            stateful_mode: StatefulMode::MergeBeforeTcp,
        }
    }

    /// A multi-flow configuration over a kernel core pool: per-flow
    /// dispatch core chosen by hash, each flow split across `lanes`
    /// neighbouring cores, no dedicated branch tails. Panics on an invalid
    /// pool.
    #[deprecated(
        since = "0.2.0",
        note = "use `try_multi_flow` and handle the error"
    )]
    pub fn multi_flow(kernel_cores: Vec<CoreId>, lanes: usize, merge_core: CoreId) -> Self {
        Self::try_multi_flow(kernel_cores, lanes, merge_core).expect("invalid MflowConfig")
    }

    /// Fallible [`MflowConfig::multi_flow`]: rejects an empty pool, zero
    /// lanes, or a pool too small to give every flow a dispatch core plus
    /// `lanes` distinct splitting cores.
    pub fn try_multi_flow(
        kernel_cores: Vec<CoreId>,
        lanes: usize,
        merge_core: CoreId,
    ) -> Result<Self, MflowError> {
        let cfg = Self {
            batch_size: 256,
            dispatch_core: kernel_cores.first().copied().unwrap_or(0),
            split_cores: kernel_cores,
            branch_tails: None,
            merge_core,
            mode: ScalingMode::FullPath,
            lanes_per_flow: lanes,
            spread_flows: true,
            dispatch_cost_per_seg_ns: 25.0,
            merge_cost_per_batch_ns: 150,
            flush_after_offers: Some(4096),
            elephant: ElephantConfig::always(),
            stateful_mode: StatefulMode::MergeBeforeTcp,
        };
        cfg.validate()?;
        Ok(cfg)
    }

    /// Checks the structural invariants of the configuration. Called by
    /// [`crate::try_install`] so a malformed config is reported instead of
    /// panicking deep inside the splitter.
    pub fn validate(&self) -> Result<(), MflowError> {
        if self.batch_size == 0 {
            return Err(MflowError::invalid("batch_size", "must be at least 1"));
        }
        if self.split_cores.is_empty() {
            return Err(MflowError::invalid("split_cores", "must not be empty"));
        }
        if self.lanes_per_flow == 0 {
            return Err(MflowError::invalid("lanes_per_flow", "must be at least 1"));
        }
        if self.spread_flows && self.split_cores.len() <= self.lanes_per_flow {
            return Err(MflowError::invalid(
                "split_cores",
                "spread_flows needs a pool larger than lanes_per_flow \
                 (one dispatch core plus lanes_per_flow distinct lanes)",
            ));
        }
        if self.flush_after_offers == Some(0) {
            return Err(MflowError::invalid(
                "flush_after_offers",
                "flush deadline of 0 offers would flush on every offer; use None to disable",
            ));
        }
        self.elephant.validate()
    }

    /// Stage whose input is order-restored by the merger.
    pub fn merge_before(&self) -> Stage {
        match self.mode {
            ScalingMode::FullPath => Stage::TcpRx,
            ScalingMode::Device { .. } => Stage::UserCopy,
        }
    }

    /// Stage whose input is split into micro-flows.
    pub fn split_into(&self) -> Stage {
        match self.mode {
            ScalingMode::FullPath => Stage::SkbAlloc,
            ScalingMode::Device { split_into } => split_into,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tcp_full_path_matches_fig_8b() {
        let c = MflowConfig::tcp_full_path();
        assert_eq!(c.batch_size, 256);
        assert_eq!(c.dispatch_core, 1);
        assert_eq!(c.split_cores, vec![2, 3]);
        assert_eq!(c.branch_tails, Some(vec![4, 5]));
        assert_eq!(c.merge_core, 0);
        assert_eq!(c.split_into(), Stage::SkbAlloc);
        assert_eq!(c.merge_before(), Stage::TcpRx);
    }

    #[test]
    fn udp_device_scaling_splits_before_vxlan() {
        let c = MflowConfig::udp_device_scaling();
        assert_eq!(c.split_into(), Stage::OuterIp);
        assert_eq!(c.merge_before(), Stage::UserCopy);
    }

    #[test]
    fn stock_configs_validate() {
        MflowConfig::tcp_full_path().validate().unwrap();
        MflowConfig::udp_device_scaling().validate().unwrap();
        MflowConfig::try_multi_flow(vec![1, 2, 3], 2, 0).expect("valid multi-flow config").validate().unwrap();
    }

    #[test]
    fn invalid_configs_name_the_offending_field() {
        let mut c = MflowConfig::tcp_full_path();
        c.batch_size = 0;
        assert_eq!(c.validate().unwrap_err().field(), Some("batch_size"));

        let mut c = MflowConfig::tcp_full_path();
        c.split_cores.clear();
        assert_eq!(c.validate().unwrap_err().field(), Some("split_cores"));

        let mut c = MflowConfig::tcp_full_path();
        c.lanes_per_flow = 0;
        assert_eq!(c.validate().unwrap_err().field(), Some("lanes_per_flow"));

        let mut c = MflowConfig::tcp_full_path();
        c.flush_after_offers = Some(0);
        assert_eq!(c.validate().unwrap_err().field(), Some("flush_after_offers"));

        let mut c = MflowConfig::tcp_full_path();
        c.elephant.window_ns = 0;
        assert_eq!(c.validate().unwrap_err().field(), Some("window_ns"));
    }

    #[test]
    fn undersized_multi_flow_pool_rejected() {
        // Pool of 2 with 2 lanes leaves no dispatch core.
        let err = MflowConfig::try_multi_flow(vec![1, 2], 2, 0).unwrap_err();
        assert_eq!(err.field(), Some("split_cores"));
        let err = MflowConfig::try_multi_flow(vec![], 1, 0).unwrap_err();
        assert_eq!(err.field(), Some("split_cores"));
        let err = MflowConfig::try_multi_flow(vec![1, 2], 0, 0).unwrap_err();
        assert_eq!(err.field(), Some("lanes_per_flow"));
    }
}
