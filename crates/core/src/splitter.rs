//! MFLOW's flow-splitting steering policy (§III-A).
//!
//! At the configured split transition, consecutive packets of each flow are
//! grouped into micro-flows of `batch_size` packets; each micro-flow is
//! dispatched round-robin onto the next splitting core (its *lane*) and
//! tagged so the reassembler can restore order. With `FullPath` scaling the
//! split happens at the `DriverPoll → SkbAlloc` transition, modelling the
//! IRQ-splitting function that dispatches raw packet *requests* before any
//! skb exists; with `Device` scaling it happens in front of the heavyweight
//! device (the flow-splitting function re-purposing `netif_rx`).

use std::collections::BTreeMap;

use mflow_netstack::{LoadView, MicroflowTag, PacketSteering, Skb, Stage};
use mflow_sim::CoreId;

use crate::config::{MflowConfig, ScalingMode};

struct FlowSplit {
    mf_id: u64,
    segs_in_batch: u32,
    lane_idx: usize,
    lanes: Vec<CoreId>,
    /// Whether the flow is currently being split. A flow demoted by lane
    /// pressure (or by rate) keeps its entry so micro-flow numbering and
    /// lane assignment survive a later re-promotion; transitions apply
    /// only at micro-flow boundaries so the merger never sees a half-open
    /// micro-flow.
    active: bool,
}

/// Running count of flows currently assigned to each splitting core, the
/// committed-rate signal lane selection balances on. Instantaneous queue
/// depth alone herds every flow onto whichever lane drained last.
#[derive(Default)]
struct LaneOccupancy {
    assigned: BTreeMap<CoreId, usize>,
}

impl LaneOccupancy {
    fn moved(&mut self, from: CoreId, to: CoreId) {
        if from != to {
            let f = self.assigned.entry(from).or_insert(0);
            *f = f.saturating_sub(1);
            *self.assigned.entry(to).or_insert(0) += 1;
        }
    }

    fn register(&mut self, lane: CoreId) {
        *self.assigned.entry(lane).or_insert(0) += 1;
    }

    fn count(&self, lane: CoreId) -> usize {
        self.assigned.get(&lane).copied().unwrap_or(0)
    }
}

/// The MFLOW steering policy.
pub struct MflowSteering {
    cfg: MflowConfig,
    split_into: Stage,
    flows: BTreeMap<usize, FlowSplit>,
    /// Multi-flow placement: on first sight each flow is assigned a
    /// dispatch core and `lanes_per_flow` splitting cores, picking the
    /// least-loaded pool entries. This even, load-aware distribution is
    /// what Figure 12 measures as MFLOW's balanced CPU usage.
    assignments: BTreeMap<u32, (CoreId, Vec<CoreId>)>,
    /// Number of roles (dispatch or lane) each pool core already serves.
    load: BTreeMap<CoreId, usize>,
    occupancy: LaneOccupancy,
    detector: crate::elephant::ElephantDetector,
}

impl MflowSteering {
    /// Creates the policy for a configuration, panicking on an invalid
    /// one.
    #[deprecated(since = "0.2.0", note = "use `try_new` and handle the error")]
    pub fn new(cfg: MflowConfig) -> Self {
        Self::try_new(cfg).expect("invalid MflowConfig")
    }

    /// Creates the policy, rejecting configurations that violate
    /// [`MflowConfig::validate`].
    pub fn try_new(cfg: MflowConfig) -> Result<Self, mflow_error::MflowError> {
        cfg.validate()?;
        let split_into = cfg.split_into();
        let detector = crate::elephant::ElephantDetector::try_new(cfg.elephant)?;
        Ok(Self {
            cfg,
            split_into,
            flows: BTreeMap::new(),
            assignments: BTreeMap::new(),
            load: BTreeMap::new(),
            occupancy: LaneOccupancy::default(),
            detector,
        })
    }

    fn pool(&self) -> &[CoreId] {
        &self.cfg.split_cores
    }

    /// Assigns (or looks up) the flow's dispatch core and lanes,
    /// least-loaded-first over the pool.
    fn assign(&mut self, hash: u32) -> (CoreId, Vec<CoreId>) {
        if let Some(a) = self.assignments.get(&hash) {
            return a.clone();
        }
        let lanes_n = self.cfg.lanes_per_flow.min(self.pool().len().saturating_sub(1)).max(1);
        let mut picked: Vec<CoreId> = Vec::with_capacity(lanes_n + 1);
        for _ in 0..=lanes_n {
            let core = self
                .pool()
                .iter()
                .copied()
                .filter(|c| !picked.contains(c))
                .min_by_key(|c| self.load.get(c).copied().unwrap_or(0))
                .expect("pool larger than lanes");
            picked.push(core);
        }
        for &c in &picked {
            *self.load.entry(c).or_insert(0) += 1;
        }
        let dispatch = picked[0];
        let lanes = picked[1..].to_vec();
        self.assignments.insert(hash, (dispatch, lanes.clone()));
        (dispatch, lanes)
    }

    fn flow_dispatch_core(&mut self, hash: u32) -> CoreId {
        if self.cfg.spread_flows {
            self.assign(hash).0
        } else {
            self.cfg.dispatch_core
        }
    }

    fn flow_lanes(&mut self, hash: u32) -> Vec<CoreId> {
        if !self.cfg.spread_flows {
            return self.pool().to_vec();
        }
        self.assign(hash).1
    }

    fn tail_for_lane(&self, lane_core: CoreId) -> CoreId {
        match (&self.cfg.branch_tails, self.pool().iter().position(|&c| c == lane_core)) {
            (Some(tails), Some(idx)) if !tails.is_empty() => tails[idx % tails.len()],
            _ => lane_core,
        }
    }

    /// Tags one skb at the split point and returns its lane core. When a
    /// micro-flow closes, the next one goes to the currently least-loaded
    /// splitting queue — the even distribution §III-A calls for (with one
    /// busy flow this degenerates to round-robin, since the lane that just
    /// received a batch is the fuller one).
    fn split_one(&mut self, skb: &mut Skb, loads: LoadView<'_>) -> CoreId {
        let hash = skb.hash;
        let batch = self.cfg.batch_size;
        let lanes = self.flow_lanes(hash);
        let occupancy = &mut self.occupancy;
        let st = self.flows.entry(skb.flow).or_insert_with(|| {
            occupancy.register(lanes[0]);
            FlowSplit {
                mf_id: 0,
                segs_in_batch: 0,
                lane_idx: 0,
                lanes,
                active: true,
            }
        });
        st.active = true;
        let lane_core = st.lanes[st.lane_idx];
        let mut tag = MicroflowTag {
            id: st.mf_id,
            core: lane_core,
            last_in_batch: false,
        };
        st.segs_in_batch += skb.segs;
        if st.segs_in_batch >= batch {
            tag.last_in_batch = true;
            st.mf_id += 1;
            st.segs_in_batch = 0;
            // Choose the next lane by (flows committed there, then queue
            // depth): committed-rate balancing avoids the herd effect of
            // chasing the lane that drained most recently, while the
            // queue-depth tie-break still alternates a lone flow between
            // its lanes under saturation.
            let next = st
                .lanes
                .iter()
                .copied()
                .min_by_key(|&c| {
                    let self_penalty = usize::from(c == lane_core);
                    (
                        occupancy.count(c).saturating_sub(usize::from(c == lane_core)),
                        self_penalty,
                        loads.backlog_segs(c),
                    )
                })
                .unwrap();
            occupancy.moved(lane_core, next);
            st.lane_idx = st.lanes.iter().position(|&c| c == next).unwrap();
        }
        skb.mf = Some(tag);
        lane_core
    }

    /// Routes one skb at the split point: elephant classification by rate,
    /// lane-pressure feedback (adaptive de-splitting), and split-state
    /// transitions applied only at micro-flow boundaries.
    fn route_one(
        &mut self,
        skb: &mut Skb,
        now: mflow_sim::Time,
        cur: CoreId,
        loads: LoadView<'_>,
    ) -> CoreId {
        // Only identified elephant flows are split (§III-A); mice continue
        // on the current core untagged.
        let is_elephant = self.detector.observe(skb.flow, skb.segs as u64, now);
        if !is_elephant && !self.flows.contains_key(&skb.flow) {
            return cur;
        }
        // Feed the deepest backlog among the flow's lanes into the
        // detector: sustained occupancy above the high watermark demotes
        // the flow to unsplit processing (splitting into saturated lanes
        // only adds steering and reorder cost), clearing below the low
        // watermark re-promotes it.
        let deepest = match self.flows.get(&skb.flow) {
            Some(st) => st.lanes.iter().map(|&c| loads.backlog_segs(c)).max(),
            None => {
                let lanes = self.flow_lanes(skb.hash);
                lanes.iter().map(|&c| loads.backlog_segs(c)).max()
            }
        }
        .unwrap_or(0);
        let overloaded = self.detector.lane_pressure(skb.flow, deepest);
        let want_split = is_elephant && !overloaded;
        // A demotion requested mid-micro-flow applies only once the open
        // micro-flow closes, so every started batch reaches the merger
        // complete and the counter never wedges on a half batch.
        let mid_batch = self
            .flows
            .get(&skb.flow)
            .is_some_and(|st| st.active && st.segs_in_batch > 0);
        if want_split || mid_batch {
            let lane = self.split_one(skb, loads);
            if !want_split {
                if let Some(st) = self.flows.get_mut(&skb.flow) {
                    if st.segs_in_batch == 0 {
                        st.active = false; // boundary reached: demote now
                    }
                }
            }
            lane
        } else {
            if let Some(st) = self.flows.get_mut(&skb.flow) {
                st.active = false;
            }
            cur
        }
    }
}

impl PacketSteering for MflowSteering {
    fn name(&self) -> &'static str {
        match self.cfg.mode {
            ScalingMode::FullPath => "mflow",
            ScalingMode::Device { .. } => "mflow-dev",
        }
    }

    fn irq_core(&mut self, hash: u32) -> CoreId {
        self.flow_dispatch_core(hash)
    }

    fn dispatch(
        &mut self,
        now: mflow_sim::Time,
        from: Stage,
        to: Stage,
        cur: CoreId,
        batch: Vec<Skb>,
        loads: LoadView<'_>,
    ) -> Vec<(CoreId, Vec<Skb>)> {
        // 1. The split point: assign micro-flows and fan out (Figure 6a/6b).
        if to == self.split_into {
            let mut out: Vec<(CoreId, Vec<Skb>)> = Vec::new();
            for mut skb in batch {
                let target = self.route_one(&mut skb, now, cur, loads);
                match out.last_mut() {
                    Some((c, v)) if *c == target => v.push(skb),
                    _ => out.push((target, vec![skb])),
                }
            }
            return out;
        }
        // 2. Full-path scaling: after the split stage, pipeline each
        //    branch's remaining stages onto its tail core (Figure 8b kept
        //    only skb allocation on the splitting cores).
        if from == self.split_into && self.cfg.branch_tails.is_some() {
            let mut out: Vec<(CoreId, Vec<Skb>)> = Vec::new();
            for skb in batch {
                let lane = skb.mf.map_or(cur, |mf| mf.core);
                let tail = self.tail_for_lane(lane);
                match out.last_mut() {
                    Some((c, v)) if *c == tail => v.push(skb),
                    _ => out.push((tail, vec![skb])),
                }
            }
            return out;
        }
        // 3. The stateful stage runs on one core per flow so that merged
        //    order survives execution.
        if to == Stage::TcpRx && matches!(self.cfg.mode, ScalingMode::FullPath) {
            if self.cfg.spread_flows {
                let mut out: Vec<(CoreId, Vec<Skb>)> = Vec::new();
                for skb in batch {
                    let t = self.flow_dispatch_core(skb.hash);
                    match out.last_mut() {
                        Some((c, v)) if *c == t => v.push(skb),
                        _ => out.push((t, vec![skb])),
                    }
                }
                return out;
            }
            return vec![(self.cfg.merge_core, batch)];
        }
        // 4. Everything else continues on the current core (data locality:
        //    a micro-flow's packets stay where they were dispatched).
        vec![(cur, batch)]
    }

    fn dispatch_cost_ns(&self, _from: Stage, to: Stage, segs: u64) -> u64 {
        if to == self.split_into {
            (self.cfg.dispatch_cost_per_seg_ns * segs as f64).round() as u64
        } else {
            0
        }
    }

    fn dispatch_tag(&self) -> &'static str {
        "mflow.dispatch"
    }

    fn desplit_stats(&self) -> (u64, u64) {
        (self.detector.desplits(), self.detector.resplits())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn skb(flow: usize, seq: u64) -> Skb {
        let mut s = Skb::new(seq, flow, 1514, 1448, seq * 1448, 0);
        s.hash = 0x5555_0000 + flow as u32;
        s
    }

    fn no_load() -> [u64; 16] {
        [0; 16]
    }

    fn run_split(p: &mut MflowSteering, n: u64) -> Vec<(CoreId, Vec<Skb>)> {
        let batch: Vec<Skb> = (0..n).map(|i| skb(0, i)).collect();
        p.dispatch(0, Stage::DriverPoll, Stage::SkbAlloc, 1, batch, LoadView::new(&no_load()))
    }

    #[test]
    fn splits_into_batch_sized_microflows_round_robin() {
        let mut cfg = MflowConfig::tcp_full_path();
        cfg.batch_size = 4;
        let mut p = MflowSteering::try_new(cfg).expect("valid mflow config");
        let out = run_split(&mut p, 12);
        // 12 packets / batch 4 = 3 micro-flows over lanes 2,3,2.
        let cores: Vec<CoreId> = out.iter().map(|(c, _)| *c).collect();
        assert_eq!(cores, vec![2, 3, 2]);
        for (i, (_, v)) in out.iter().enumerate() {
            assert_eq!(v.len(), 4);
            for (j, s) in v.iter().enumerate() {
                let mf = s.mf.unwrap();
                assert_eq!(mf.id, i as u64);
                assert_eq!(mf.last_in_batch, j == 3);
            }
        }
    }

    #[test]
    fn split_state_persists_across_polls() {
        let mut cfg = MflowConfig::tcp_full_path();
        cfg.batch_size = 10;
        let mut p = MflowSteering::try_new(cfg).expect("valid mflow config");
        // Two polls of 6 packets: micro-flow 0 spans them.
        let a = run_split(&mut p, 6);
        assert_eq!(a.len(), 1);
        assert_eq!(a[0].0, 2);
        assert!(a[0].1.iter().all(|s| s.mf.unwrap().id == 0));
        assert!(!a[0].1.last().unwrap().mf.unwrap().last_in_batch);
        let batch: Vec<Skb> = (6..12).map(|i| skb(0, i)).collect();
        let b = p.dispatch(0, Stage::DriverPoll, Stage::SkbAlloc, 1, batch, LoadView::new(&no_load()));
        // Packets 6..10 close micro-flow 0 on lane 2; 10..12 start mf 1 on 3.
        assert_eq!(b.len(), 2);
        assert_eq!(b[0].0, 2);
        assert_eq!(b[0].1.len(), 4);
        assert!(b[0].1.last().unwrap().mf.unwrap().last_in_batch);
        assert_eq!(b[1].0, 3);
        assert!(b[1].1.iter().all(|s| s.mf.unwrap().id == 1));
    }

    #[test]
    fn branch_tails_take_over_after_split_stage() {
        let mut p = MflowSteering::try_new(MflowConfig::tcp_full_path()).expect("valid mflow config");
        let mut s = skb(0, 0);
        s.mf = Some(MicroflowTag {
            id: 0,
            core: 3,
            last_in_batch: false,
        });
        let out = p.dispatch(0, Stage::SkbAlloc, Stage::Gro, 3, vec![s], LoadView::new(&no_load()));
        assert_eq!(out[0].0, 5); // lane 3 -> tail 5
    }

    #[test]
    fn tcp_rx_lands_on_the_merge_core() {
        let mut p = MflowSteering::try_new(MflowConfig::tcp_full_path()).expect("valid mflow config");
        let out = p.dispatch(0, Stage::InnerIp, Stage::TcpRx, 4, vec![skb(0, 0)], LoadView::new(&no_load()));
        assert_eq!(out[0].0, 0);
    }

    #[test]
    fn device_scaling_keeps_lane_through_the_device_chain() {
        let mut p = MflowSteering::try_new(MflowConfig::udp_device_scaling()).expect("valid mflow config");
        // Split happens into OuterIp.
        let batch: Vec<Skb> = (0..4).map(|i| skb(0, i)).collect();
        let out = p.dispatch(0, Stage::SkbAlloc, Stage::OuterIp, 1, batch, LoadView::new(&no_load()));
        assert!(out.iter().all(|(c, _)| *c == 2 || *c == 3));
        // After that, packets stay on their lane core.
        let keep = p.dispatch(0, Stage::VxlanDecap, Stage::Bridge, 2, vec![skb(0, 9)], LoadView::new(&no_load()));
        assert_eq!(keep[0].0, 2);
    }

    #[test]
    fn dispatch_cost_charged_only_at_split() {
        let p = MflowSteering::try_new(MflowConfig::tcp_full_path()).expect("valid mflow config");
        assert!(p.dispatch_cost_ns(Stage::DriverPoll, Stage::SkbAlloc, 64) > 0);
        assert_eq!(p.dispatch_cost_ns(Stage::Gro, Stage::OuterIp, 64), 0);
    }

    #[test]
    fn pressure_demotes_only_at_microflow_boundary() {
        use crate::elephant::ElephantConfig;
        let mut cfg = MflowConfig::tcp_full_path();
        cfg.batch_size = 4;
        cfg.elephant = ElephantConfig {
            lane_high_watermark_segs: 10,
            lane_low_watermark_segs: 2,
            overload_windows: 2,
            ..ElephantConfig::always()
        };
        let mut p = MflowSteering::try_new(cfg).expect("valid mflow config");
        // Saturated lanes: backlog far above the high watermark on the
        // split cores 2 and 3.
        let mut hot = no_load();
        hot[2] = 100;
        hot[3] = 100;
        // Six packets under pressure: overload flips on at the second
        // observation (mid-micro-flow), but the open micro-flow must be
        // completed — packets 0..4 stay tagged on lane 2, only 4..6 pass
        // through unsplit on the dispatch core.
        let batch: Vec<Skb> = (0..6).map(|i| skb(0, i)).collect();
        let out = p.dispatch(0, Stage::DriverPoll, Stage::SkbAlloc, 1, batch, LoadView::new(&hot));
        assert_eq!(out.len(), 2, "{out:?}");
        assert_eq!(out[0].0, 2);
        assert_eq!(out[0].1.len(), 4);
        assert!(out[0].1.last().unwrap().mf.unwrap().last_in_batch);
        assert_eq!(out[1].0, 1, "demoted packets continue on the current core");
        assert!(out[1].1.iter().all(|s| s.mf.is_none()));
        assert_eq!(p.desplit_stats().0, 1);

        // Pressure clears: after `overload_windows` low observations the
        // flow is re-promoted and micro-flow numbering resumes at 1.
        let batch: Vec<Skb> = (6..12).map(|i| skb(0, i)).collect();
        let out = p.dispatch(0, Stage::DriverPoll, Stage::SkbAlloc, 1, batch, LoadView::new(&no_load()));
        let tagged: Vec<&Skb> = out.iter().flat_map(|(_, v)| v).filter(|s| s.mf.is_some()).collect();
        assert!(!tagged.is_empty(), "flow re-promoted after pressure cleared");
        assert!(tagged.iter().all(|s| s.mf.unwrap().id >= 1));
        assert_eq!(p.desplit_stats(), (1, 1));
    }

    #[test]
    fn spread_flows_balance_roles_across_the_pool() {
        let cfg = MflowConfig::try_multi_flow(vec![1, 2, 3, 4, 5, 6, 7, 8, 9, 10], 2, 0).expect("valid multi-flow config");
        let mut p = MflowSteering::try_new(cfg).expect("valid mflow config");
        // Ten distinct flows, three roles each, over ten cores: every core
        // must end up with exactly three roles.
        let mut roles = std::collections::BTreeMap::new();
        for h in 0..10u32 {
            *roles.entry(p.irq_core(h)).or_insert(0) += 1;
            for l in p.flow_lanes(h) {
                *roles.entry(l).or_insert(0) += 1;
            }
        }
        assert_eq!(roles.len(), 10);
        assert!(roles.values().all(|&c| c == 3), "{roles:?}");
        // Assignment is sticky per flow.
        let lanes_a1 = p.flow_lanes(0);
        let lanes_a2 = p.flow_lanes(0);
        assert_eq!(lanes_a1, lanes_a2);
    }
}
