//! Elephant-flow identification.
//!
//! MFLOW splits "any identified (elephant) flow" (§III-A): long-lived,
//! high-rate flows whose packet processing can saturate a core. Splitting
//! mice would only add steering overhead, so the splitter consults this
//! detector before tagging a flow.
//!
//! The detector keeps a per-flow exponentially-weighted rate estimate over
//! fixed windows, promotes a flow to elephant when its rate stays above
//! `promote_segs_per_sec` and demotes it when it falls below the (lower)
//! `demote_segs_per_sec` — hysteresis so borderline flows do not flap
//! between split and unsplit processing, which would churn micro-flow
//! state.

use std::collections::BTreeMap;

use mflow_sim::Time;

/// Detector configuration.
#[derive(Clone, Copy, Debug)]
pub struct ElephantConfig {
    /// Rate above which a flow is promoted to elephant.
    pub promote_segs_per_sec: f64,
    /// Rate below which an elephant is demoted. Must not exceed the
    /// promotion threshold.
    pub demote_segs_per_sec: f64,
    /// Measurement window.
    pub window_ns: u64,
    /// EWMA weight of the newest window.
    pub alpha: f64,
}

impl Default for ElephantConfig {
    fn default() -> Self {
        Self {
            // ~145 Mbps of MTU segments: far above any mouse, far below
            // the multi-Gbps elephants the paper targets.
            promote_segs_per_sec: 12_500.0,
            demote_segs_per_sec: 5_000.0,
            window_ns: 1_000_000, // 1 ms
            alpha: 0.3,
        }
    }
}

impl ElephantConfig {
    /// A detector that treats every flow as an elephant immediately (the
    /// single-flow experiments, where splitting is statically enabled).
    pub fn always() -> Self {
        Self {
            promote_segs_per_sec: 0.0,
            demote_segs_per_sec: 0.0,
            ..Self::default()
        }
    }
}

#[derive(Clone, Copy, Debug, Default)]
struct FlowRate {
    window_start: Time,
    window_segs: u64,
    ewma_segs_per_sec: f64,
    elephant: bool,
}

/// Per-flow rate tracking with hysteresis-based classification.
#[derive(Debug)]
pub struct ElephantDetector {
    cfg: ElephantConfig,
    flows: BTreeMap<usize, FlowRate>,
    promotions: u64,
    demotions: u64,
}

impl ElephantDetector {
    /// Creates a detector.
    pub fn new(cfg: ElephantConfig) -> Self {
        assert!(
            cfg.demote_segs_per_sec <= cfg.promote_segs_per_sec,
            "hysteresis thresholds inverted"
        );
        assert!(cfg.window_ns > 0 && (0.0..=1.0).contains(&cfg.alpha));
        Self {
            cfg,
            flows: BTreeMap::new(),
            promotions: 0,
            demotions: 0,
        }
    }

    /// Records `segs` observed for `flow` at `now`; returns whether the
    /// flow is currently classified as an elephant.
    pub fn observe(&mut self, flow: usize, segs: u64, now: Time) -> bool {
        if self.cfg.promote_segs_per_sec == 0.0 {
            return true; // always-split mode
        }
        let cfg = self.cfg;
        let st = self.flows.entry(flow).or_insert(FlowRate {
            window_start: now,
            ..FlowRate::default()
        });
        st.window_segs += segs;
        let elapsed = now.saturating_sub(st.window_start);
        if elapsed >= cfg.window_ns {
            let rate = st.window_segs as f64 * 1e9 / elapsed as f64;
            st.ewma_segs_per_sec =
                cfg.alpha * rate + (1.0 - cfg.alpha) * st.ewma_segs_per_sec;
            st.window_start = now;
            st.window_segs = 0;
            if !st.elephant && st.ewma_segs_per_sec >= cfg.promote_segs_per_sec {
                st.elephant = true;
                self.promotions += 1;
            } else if st.elephant && st.ewma_segs_per_sec < cfg.demote_segs_per_sec {
                st.elephant = false;
                self.demotions += 1;
            }
        }
        st.elephant
    }

    /// Current classification without recording an observation.
    pub fn is_elephant(&self, flow: usize) -> bool {
        self.cfg.promote_segs_per_sec == 0.0
            || self.flows.get(&flow).is_some_and(|s| s.elephant)
    }

    /// Number of tracked flows.
    pub fn tracked(&self) -> usize {
        self.flows.len()
    }

    /// Lifetime promotions to elephant.
    pub fn promotions(&self) -> u64 {
        self.promotions
    }

    /// Lifetime demotions.
    pub fn demotions(&self) -> u64 {
        self.demotions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> ElephantConfig {
        ElephantConfig {
            promote_segs_per_sec: 10_000.0,
            demote_segs_per_sec: 4_000.0,
            window_ns: 1_000_000,
            alpha: 0.5,
        }
    }

    /// Feeds a steady rate (segs per 1 ms window) for `windows` windows.
    fn feed(d: &mut ElephantDetector, flow: usize, per_window: u64, windows: u64, t0: u64) -> u64 {
        let mut now = t0;
        for _ in 0..windows {
            for k in 0..per_window {
                d.observe(flow, 1, now + k * (1_000_000 / per_window.max(1)));
            }
            now += 1_000_000;
            d.observe(flow, 0, now);
        }
        now
    }

    #[test]
    fn fast_flow_is_promoted() {
        let mut d = ElephantDetector::new(cfg());
        // 50 segs/ms = 50k segs/s, well above the 10k threshold.
        feed(&mut d, 0, 50, 8, 0);
        assert!(d.is_elephant(0));
        assert_eq!(d.promotions(), 1);
    }

    #[test]
    fn slow_flow_stays_mouse() {
        let mut d = ElephantDetector::new(cfg());
        // 2 segs/ms = 2k segs/s, below both thresholds.
        feed(&mut d, 0, 2, 20, 0);
        assert!(!d.is_elephant(0));
        assert_eq!(d.promotions(), 0);
    }

    #[test]
    fn hysteresis_requires_falling_below_demote_threshold() {
        let mut d = ElephantDetector::new(cfg());
        let t = feed(&mut d, 0, 50, 8, 0);
        assert!(d.is_elephant(0));
        // Drop to 7 segs/ms = 7k/s: between demote (4k) and promote (10k):
        // stays an elephant.
        let t = feed(&mut d, 0, 7, 10, t);
        assert!(d.is_elephant(0), "must not demote inside the hysteresis band");
        // Drop to 1 seg/ms: demoted.
        feed(&mut d, 0, 1, 12, t);
        assert!(!d.is_elephant(0));
        assert_eq!(d.demotions(), 1);
    }

    #[test]
    fn flows_are_tracked_independently() {
        let mut d = ElephantDetector::new(cfg());
        feed(&mut d, 0, 50, 8, 0);
        feed(&mut d, 1, 2, 8, 0);
        assert!(d.is_elephant(0));
        assert!(!d.is_elephant(1));
        assert_eq!(d.tracked(), 2);
    }

    #[test]
    fn always_mode_splits_everything() {
        let mut d = ElephantDetector::new(ElephantConfig::always());
        assert!(d.observe(7, 1, 0));
        assert!(d.is_elephant(7));
    }

    #[test]
    #[should_panic(expected = "hysteresis")]
    fn inverted_thresholds_rejected() {
        ElephantDetector::new(ElephantConfig {
            promote_segs_per_sec: 1.0,
            demote_segs_per_sec: 2.0,
            ..ElephantConfig::default()
        });
    }
}
