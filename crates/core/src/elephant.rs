//! Elephant-flow identification.
//!
//! MFLOW splits "any identified (elephant) flow" (§III-A): long-lived,
//! high-rate flows whose packet processing can saturate a core. Splitting
//! mice would only add steering overhead, so the splitter consults this
//! detector before tagging a flow.
//!
//! The detector keeps a per-flow exponentially-weighted rate estimate over
//! fixed windows, promotes a flow to elephant when its rate stays above
//! `promote_segs_per_sec` and demotes it when it falls below the (lower)
//! `demote_segs_per_sec` — hysteresis so borderline flows do not flap
//! between split and unsplit processing, which would churn micro-flow
//! state.

use std::collections::BTreeMap;

use mflow_error::MflowError;
use mflow_sim::Time;

/// Detector configuration.
#[derive(Clone, Copy, Debug)]
pub struct ElephantConfig {
    /// Rate above which a flow is promoted to elephant.
    pub promote_segs_per_sec: f64,
    /// Rate below which an elephant is demoted. Must not exceed the
    /// promotion threshold.
    pub demote_segs_per_sec: f64,
    /// Measurement window.
    pub window_ns: u64,
    /// EWMA weight of the newest window.
    pub alpha: f64,
    /// Lane backlog (in segments) at or above which a split flow's lanes
    /// count as overloaded. When the deepest of a flow's lanes stays at or
    /// above this for [`ElephantConfig::overload_windows`] consecutive
    /// observations the flow is de-split: splitting a flow into saturated
    /// lanes only adds steering and reorder cost. `u64::MAX` (the default)
    /// disables the feedback loop entirely.
    pub lane_high_watermark_segs: u64,
    /// Lane backlog at or below which pressure counts as cleared; must not
    /// exceed the high watermark. Between the two watermarks the overload
    /// state holds (hysteresis, mirroring promote/demote).
    pub lane_low_watermark_segs: u64,
    /// Consecutive observations beyond a watermark required to flip the
    /// overload state. Must be >= 1.
    pub overload_windows: u32,
}

impl Default for ElephantConfig {
    fn default() -> Self {
        Self {
            // ~145 Mbps of MTU segments: far above any mouse, far below
            // the multi-Gbps elephants the paper targets.
            promote_segs_per_sec: 12_500.0,
            demote_segs_per_sec: 5_000.0,
            window_ns: 1_000_000, // 1 ms
            alpha: 0.3,
            lane_high_watermark_segs: u64::MAX, // de-split feedback off
            lane_low_watermark_segs: 0,
            overload_windows: 8,
        }
    }
}

impl ElephantConfig {
    /// A detector that treats every flow as an elephant immediately (the
    /// single-flow experiments, where splitting is statically enabled).
    pub fn always() -> Self {
        Self {
            promote_segs_per_sec: 0.0,
            demote_segs_per_sec: 0.0,
            ..Self::default()
        }
    }

    /// Checks every invariant the doc comments promise.
    pub fn validate(&self) -> Result<(), MflowError> {
        if self.demote_segs_per_sec > self.promote_segs_per_sec {
            return Err(MflowError::invalid(
                "demote_segs_per_sec",
                "hysteresis thresholds inverted: demote must not exceed promote",
            ));
        }
        if self.window_ns == 0 {
            return Err(MflowError::invalid("window_ns", "window must be nonzero"));
        }
        if !(self.alpha > 0.0 && self.alpha <= 1.0) {
            return Err(MflowError::invalid("alpha", "must be in (0, 1]"));
        }
        if self.lane_low_watermark_segs > self.lane_high_watermark_segs {
            return Err(MflowError::invalid(
                "lane_low_watermark_segs",
                "low watermark must not exceed high watermark",
            ));
        }
        if self.overload_windows == 0 {
            return Err(MflowError::invalid(
                "overload_windows",
                "must be at least 1",
            ));
        }
        Ok(())
    }
}

#[derive(Clone, Copy, Debug, Default)]
struct FlowRate {
    window_start: Time,
    window_segs: u64,
    ewma_segs_per_sec: f64,
    elephant: bool,
}

/// Per-flow lane-pressure state: streak counters over the occupancy
/// watermarks, with a dead band between them where the state holds.
#[derive(Clone, Copy, Debug, Default)]
struct Overload {
    overloaded: bool,
    over_streak: u32,
    under_streak: u32,
}

/// Per-flow rate tracking with hysteresis-based classification.
#[derive(Debug)]
pub struct ElephantDetector {
    cfg: ElephantConfig,
    flows: BTreeMap<usize, FlowRate>,
    pressure: BTreeMap<usize, Overload>,
    promotions: u64,
    demotions: u64,
    desplits: u64,
    resplits: u64,
}

impl ElephantDetector {
    /// Creates a detector, panicking on an invalid config.
    #[deprecated(since = "0.2.0", note = "use `try_new` and handle the error")]
    pub fn new(cfg: ElephantConfig) -> Self {
        Self::try_new(cfg).expect("invalid ElephantConfig")
    }

    /// Creates a detector, rejecting configs that violate the documented
    /// invariants (hysteresis ordering, nonzero window, alpha in (0, 1]).
    pub fn try_new(cfg: ElephantConfig) -> Result<Self, MflowError> {
        cfg.validate()?;
        Ok(Self {
            cfg,
            flows: BTreeMap::new(),
            pressure: BTreeMap::new(),
            promotions: 0,
            demotions: 0,
            desplits: 0,
            resplits: 0,
        })
    }

    /// Records `segs` observed for `flow` at `now`; returns whether the
    /// flow is currently classified as an elephant.
    pub fn observe(&mut self, flow: usize, segs: u64, now: Time) -> bool {
        if self.cfg.promote_segs_per_sec == 0.0 {
            return true; // always-split mode
        }
        let cfg = self.cfg;
        let st = self.flows.entry(flow).or_insert(FlowRate {
            window_start: now,
            ..FlowRate::default()
        });
        st.window_segs += segs;
        let elapsed = now.saturating_sub(st.window_start);
        if elapsed >= cfg.window_ns {
            let rate = st.window_segs as f64 * 1e9 / elapsed as f64;
            st.ewma_segs_per_sec =
                cfg.alpha * rate + (1.0 - cfg.alpha) * st.ewma_segs_per_sec;
            st.window_start = now;
            st.window_segs = 0;
            if !st.elephant && st.ewma_segs_per_sec >= cfg.promote_segs_per_sec {
                st.elephant = true;
                self.promotions += 1;
            } else if st.elephant && st.ewma_segs_per_sec < cfg.demote_segs_per_sec {
                st.elephant = false;
                self.demotions += 1;
            }
        }
        st.elephant
    }

    /// Current classification without recording an observation.
    pub fn is_elephant(&self, flow: usize) -> bool {
        self.cfg.promote_segs_per_sec == 0.0
            || self.flows.get(&flow).is_some_and(|s| s.elephant)
    }

    /// Number of tracked flows.
    pub fn tracked(&self) -> usize {
        self.flows.len()
    }

    /// Lifetime promotions to elephant.
    pub fn promotions(&self) -> u64 {
        self.promotions
    }

    /// Lifetime demotions.
    pub fn demotions(&self) -> u64 {
        self.demotions
    }

    /// Feeds one lane-occupancy observation for `flow` — the deepest
    /// backlog (in segments) among the lanes the flow is split over — and
    /// returns whether the flow's lanes are currently overloaded.
    ///
    /// Overload flips on after [`ElephantConfig::overload_windows`]
    /// consecutive observations at or above the high watermark, and off
    /// again after the same number at or below the low watermark; in the
    /// dead band between the watermarks both streaks reset and the state
    /// holds, mirroring the promote/demote rate hysteresis.
    pub fn lane_pressure(&mut self, flow: usize, deepest_backlog_segs: u64) -> bool {
        let cfg = self.cfg;
        if cfg.lane_high_watermark_segs == u64::MAX {
            return false; // feedback loop disabled
        }
        let st = self.pressure.entry(flow).or_default();
        if deepest_backlog_segs >= cfg.lane_high_watermark_segs {
            st.under_streak = 0;
            st.over_streak = st.over_streak.saturating_add(1);
            if !st.overloaded && st.over_streak >= cfg.overload_windows {
                st.overloaded = true;
                self.desplits += 1;
            }
        } else if deepest_backlog_segs <= cfg.lane_low_watermark_segs {
            st.over_streak = 0;
            st.under_streak = st.under_streak.saturating_add(1);
            if st.overloaded && st.under_streak >= cfg.overload_windows {
                st.overloaded = false;
                self.resplits += 1;
            }
        } else {
            st.over_streak = 0;
            st.under_streak = 0;
        }
        st.overloaded
    }

    /// Current lane-overload classification without recording an
    /// observation.
    pub fn overloaded(&self, flow: usize) -> bool {
        self.pressure.get(&flow).is_some_and(|s| s.overloaded)
    }

    /// Whether the splitter should split `flow` right now: classified an
    /// elephant by rate AND its lanes are not overloaded.
    pub fn should_split(&self, flow: usize) -> bool {
        self.is_elephant(flow) && !self.overloaded(flow)
    }

    /// Lifetime de-splits (elephants demoted to unsplit processing by
    /// lane pressure).
    pub fn desplits(&self) -> u64 {
        self.desplits
    }

    /// Lifetime re-splits (overloaded flows re-promoted after pressure
    /// cleared).
    pub fn resplits(&self) -> u64 {
        self.resplits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> ElephantConfig {
        ElephantConfig {
            promote_segs_per_sec: 10_000.0,
            demote_segs_per_sec: 4_000.0,
            window_ns: 1_000_000,
            alpha: 0.5,
            ..ElephantConfig::default()
        }
    }

    /// Feeds a steady rate (segs per 1 ms window) for `windows` windows.
    fn feed(d: &mut ElephantDetector, flow: usize, per_window: u64, windows: u64, t0: u64) -> u64 {
        let mut now = t0;
        for _ in 0..windows {
            for k in 0..per_window {
                d.observe(flow, 1, now + k * (1_000_000 / per_window.max(1)));
            }
            now += 1_000_000;
            d.observe(flow, 0, now);
        }
        now
    }

    #[test]
    fn fast_flow_is_promoted() {
        let mut d = ElephantDetector::try_new(cfg()).expect("valid elephant config");
        // 50 segs/ms = 50k segs/s, well above the 10k threshold.
        feed(&mut d, 0, 50, 8, 0);
        assert!(d.is_elephant(0));
        assert_eq!(d.promotions(), 1);
    }

    #[test]
    fn slow_flow_stays_mouse() {
        let mut d = ElephantDetector::try_new(cfg()).expect("valid elephant config");
        // 2 segs/ms = 2k segs/s, below both thresholds.
        feed(&mut d, 0, 2, 20, 0);
        assert!(!d.is_elephant(0));
        assert_eq!(d.promotions(), 0);
    }

    #[test]
    fn hysteresis_requires_falling_below_demote_threshold() {
        let mut d = ElephantDetector::try_new(cfg()).expect("valid elephant config");
        let t = feed(&mut d, 0, 50, 8, 0);
        assert!(d.is_elephant(0));
        // Drop to 7 segs/ms = 7k/s: between demote (4k) and promote (10k):
        // stays an elephant.
        let t = feed(&mut d, 0, 7, 10, t);
        assert!(d.is_elephant(0), "must not demote inside the hysteresis band");
        // Drop to 1 seg/ms: demoted.
        feed(&mut d, 0, 1, 12, t);
        assert!(!d.is_elephant(0));
        assert_eq!(d.demotions(), 1);
    }

    #[test]
    fn flows_are_tracked_independently() {
        let mut d = ElephantDetector::try_new(cfg()).expect("valid elephant config");
        feed(&mut d, 0, 50, 8, 0);
        feed(&mut d, 1, 2, 8, 0);
        assert!(d.is_elephant(0));
        assert!(!d.is_elephant(1));
        assert_eq!(d.tracked(), 2);
    }

    #[test]
    fn always_mode_splits_everything() {
        let mut d = ElephantDetector::try_new(ElephantConfig::always()).expect("valid elephant config");
        assert!(d.observe(7, 1, 0));
        assert!(d.is_elephant(7));
    }

    #[test]
    fn inverted_thresholds_rejected() {
        let err = ElephantDetector::try_new(ElephantConfig {
            promote_segs_per_sec: 1.0,
            demote_segs_per_sec: 2.0,
            ..ElephantConfig::default()
        })
        .unwrap_err();
        assert_eq!(err.field(), Some("demote_segs_per_sec"));
    }

    #[test]
    fn invalid_fields_rejected_one_by_one() {
        let base = ElephantConfig::default();
        let cases: [(ElephantConfig, &str); 4] = [
            (ElephantConfig { window_ns: 0, ..base }, "window_ns"),
            (ElephantConfig { alpha: 0.0, ..base }, "alpha"),
            (ElephantConfig { alpha: 1.5, ..base }, "alpha"),
            (
                ElephantConfig {
                    lane_high_watermark_segs: 10,
                    lane_low_watermark_segs: 20,
                    ..base
                },
                "lane_low_watermark_segs",
            ),
        ];
        for (cfg, field) in cases {
            let err = ElephantDetector::try_new(cfg).unwrap_err();
            assert_eq!(err.field(), Some(field), "wrong field for {cfg:?}");
        }
        let err = ElephantDetector::try_new(ElephantConfig {
            overload_windows: 0,
            lane_high_watermark_segs: 100,
            lane_low_watermark_segs: 10,
            ..base
        })
        .unwrap_err();
        assert_eq!(err.field(), Some("overload_windows"));
    }

    #[test]
    fn rate_exactly_at_promote_threshold_promotes() {
        // alpha = 1.0 makes the EWMA equal the instantaneous window rate,
        // so a window at exactly the threshold must promote (>= semantics).
        let mut d = ElephantDetector::try_new(ElephantConfig {
            promote_segs_per_sec: 10_000.0,
            demote_segs_per_sec: 4_000.0,
            window_ns: 1_000_000,
            alpha: 1.0,
            ..ElephantConfig::default()
        }).expect("valid elephant config");
        // 10 segs over exactly 1 ms = 10_000 segs/s.
        d.observe(0, 10, 0);
        d.observe(0, 0, 1_000_000);
        assert!(d.is_elephant(0), "rate exactly at threshold must promote");
        assert_eq!(d.promotions(), 1);
    }

    fn pressure_cfg() -> ElephantConfig {
        ElephantConfig {
            lane_high_watermark_segs: 100,
            lane_low_watermark_segs: 20,
            overload_windows: 3,
            ..ElephantConfig::default()
        }
    }

    #[test]
    fn sustained_pressure_desplits_after_streak() {
        let mut d = ElephantDetector::try_new(pressure_cfg()).expect("valid elephant config");
        assert!(!d.lane_pressure(0, 150));
        assert!(!d.lane_pressure(0, 150));
        assert!(d.lane_pressure(0, 150), "third consecutive window flips");
        assert!(d.overloaded(0));
        assert_eq!(d.desplits(), 1);
        assert!(!d.should_split(0), "overloaded elephant must not split");
    }

    #[test]
    fn pressure_dead_band_holds_state_and_resets_streaks() {
        let mut d = ElephantDetector::try_new(pressure_cfg()).expect("valid elephant config");
        d.lane_pressure(0, 150);
        d.lane_pressure(0, 150);
        // Dead-band sample resets the over-streak: two more high samples
        // must not be enough on their own.
        d.lane_pressure(0, 50);
        d.lane_pressure(0, 150);
        assert!(!d.lane_pressure(0, 150), "streak was reset by dead band");
        assert!(d.lane_pressure(0, 150));
        // Once overloaded, dead-band samples hold the overload.
        assert!(d.lane_pressure(0, 50));
        assert!(d.overloaded(0));
    }

    #[test]
    fn pressure_clearing_resplits() {
        let mut d = ElephantDetector::try_new(pressure_cfg()).expect("valid elephant config");
        for _ in 0..3 {
            d.lane_pressure(0, 200);
        }
        assert!(d.overloaded(0));
        // Two low samples are not enough; the third clears it.
        assert!(d.lane_pressure(0, 5));
        assert!(d.lane_pressure(0, 5));
        assert!(!d.lane_pressure(0, 5), "third low sample clears");
        assert!(!d.overloaded(0), "pressure cleared after streak");
        assert_eq!(d.resplits(), 1);
    }

    #[test]
    fn pressure_disabled_by_default() {
        let mut d = ElephantDetector::try_new(ElephantConfig::default()).expect("valid elephant config");
        for _ in 0..100 {
            assert!(!d.lane_pressure(0, u64::MAX - 1));
        }
        assert!(!d.overloaded(0));
        assert_eq!(d.desplits(), 0);
    }
}
