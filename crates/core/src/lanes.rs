//! MFLOW as a runtime lane policy: the [`SteeringPolicy`] implementation
//! the real-thread engine dispatches through when `--policy mflow` is
//! selected.
//!
//! This is the same decision logic [`crate::splitter::MflowSteering`]
//! applies inside the simulated stack, re-expressed over integer lanes:
//! feed each batch observation to the [`ElephantDetector`], and while the
//! flow is classified an elephant (and its lanes are not overloaded),
//! round-robin its micro-flows across every lane — packet-level
//! parallelism for a single flow, which no baseline policy can do. A
//! mouse flow (or a de-split elephant) stays pinned to one lane, exactly
//! like RPS.
//!
//! The detector's rate windows are driven by a synthetic clock advanced
//! per observed segment, so classification depends only on the offered
//! load pattern — deterministic across runs and hosts.

use crate::elephant::{ElephantConfig, ElephantDetector};
use mflow_error::MflowError;
use mflow_steering::lane::SteeringPolicy;

/// Virtual nanoseconds charged per observed segment when advancing the
/// detector clock (a 1500-byte frame at ~12 Gbps).
const SYNTH_NS_PER_SEG: u64 = 1_000;

/// Micro-flow splitting over runtime lanes, gated by elephant detection.
#[derive(Debug)]
pub struct MflowLanes {
    detector: ElephantDetector,
    clock_ns: u64,
    next_lane: usize,
    pinned: usize,
}

impl MflowLanes {
    /// Creates the policy, rejecting an invalid [`ElephantConfig`].
    ///
    /// [`ElephantConfig::always`] reproduces the paper's single-elephant
    /// experiments: every flow splits from the first packet.
    pub fn try_new(elephant: ElephantConfig) -> Result<Self, MflowError> {
        Ok(Self {
            detector: ElephantDetector::try_new(elephant)?,
            clock_ns: 0,
            next_lane: 0,
            pinned: 0,
        })
    }
}

impl SteeringPolicy for MflowLanes {
    fn name(&self) -> &'static str {
        "mflow"
    }

    fn steer(&mut self, _mf_id: u64, flow_hash: u32, depths: &[usize]) -> usize {
        let lanes = depths.len().max(1);
        let flow = flow_hash as usize;
        let deepest = depths.iter().copied().max().unwrap_or(0) as u64;
        self.detector.lane_pressure(flow, deepest);
        if self.detector.should_split(flow) {
            let lane = self.next_lane % lanes;
            self.next_lane = (lane + 1) % lanes;
            lane
        } else {
            self.pinned % lanes
        }
    }

    fn reorders(&self) -> bool {
        true
    }

    fn observe(&mut self, _mf_id: u64, flow_hash: u32, _lane: usize, packets: usize) {
        self.clock_ns += packets as u64 * SYNTH_NS_PER_SEG;
        self.detector
            .observe(flow_hash as usize, packets as u64, self.clock_ns);
    }

    fn desplit_stats(&self) -> (u64, u64) {
        (self.detector.desplits(), self.detector.resplits())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn always_split_round_robins_every_lane() {
        let mut p = MflowLanes::try_new(ElephantConfig::always()).unwrap();
        let depths = [0usize; 4];
        let lanes: Vec<usize> = (0..8).map(|mf| p.steer(mf, 1, &depths)).collect();
        assert_eq!(lanes, vec![0, 1, 2, 3, 0, 1, 2, 3]);
        assert!(p.reorders());
        assert_eq!(p.stage_groups(), 0);
    }

    #[test]
    fn mouse_flow_stays_pinned_until_promoted() {
        // High promote threshold: the flow is a mouse at first sight.
        let cfg = ElephantConfig {
            promote_segs_per_sec: 1e12,
            demote_segs_per_sec: 1e11,
            ..ElephantConfig::always()
        };
        let mut p = MflowLanes::try_new(cfg).unwrap();
        let depths = [0usize; 4];
        for mf in 0..8 {
            assert_eq!(p.steer(mf, 1, &depths), 0, "mouse must not split");
            p.observe(mf, 1, 0, 256);
        }
    }

    #[test]
    fn lane_pressure_desplits_an_elephant() {
        let cfg = ElephantConfig {
            lane_high_watermark_segs: 4,
            lane_low_watermark_segs: 2,
            overload_windows: 1,
            ..ElephantConfig::always()
        };
        let mut p = MflowLanes::try_new(cfg).unwrap();
        // Deep lanes: the first steer records the overload, subsequent
        // ones must pin instead of splitting.
        let deep = [8usize; 4];
        p.steer(0, 1, &deep);
        let pinned: Vec<usize> = (1..5).map(|mf| p.steer(mf, 1, &deep)).collect();
        assert!(pinned.iter().all(|&l| l == pinned[0]));
        assert_eq!(p.desplit_stats().0, 1);
        // Pressure clears: splitting resumes.
        let shallow = [0usize; 4];
        p.steer(5, 1, &shallow);
        let spread: std::collections::BTreeSet<usize> =
            (6..14).map(|mf| p.steer(mf, 1, &shallow)).collect();
        assert!(spread.len() > 1, "re-split flow must use several lanes");
        assert_eq!(p.desplit_stats().1, 1);
    }

    #[test]
    fn invalid_config_is_rejected() {
        let cfg = ElephantConfig {
            window_ns: 0,
            ..ElephantConfig::always()
        };
        assert!(MflowLanes::try_new(cfg).is_err());
    }
}
