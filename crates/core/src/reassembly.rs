//! Batch-based flow reassembly (§III-B, Figure 6c).
//!
//! Splitting a flow into micro-flows preserves order *within* each
//! micro-flow, so order only needs restoring *between* micro-flows. MFLOW
//! keeps one buffer queue per splitting core (lane) and a **merging
//! counter** holding the ID of the micro-flow currently allowed through:
//!
//! 1. locate the lane whose head packets carry `id == counter`;
//! 2. drain packets from that lane while their ID matches;
//! 3. when the micro-flow's final packet (`last_in_batch`) passes,
//!    increment the counter and repeat.
//!
//! This reorders per *batch* rather than per packet — with batch size 256
//! the counter advances once every 256 packets, which is why the paper
//! measures negligible reassembly overhead at that size.
//!
//! [`MergeCounter`] is the pure algorithm (reused verbatim by the
//! real-thread runtime in `mflow-runtime`); [`BatchMerger`] adapts it to
//! the simulator's skbs, passing never-split flows through untouched.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use mflow_netstack::{FlowMerger, Skb};

/// Micro-flow tag: position of the batch in the original flow, the lane
/// (splitting core) it was dispatched to, and whether this item closes the
/// batch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MfTag {
    pub id: u64,
    pub lane: usize,
    pub last: bool,
}

/// The fate of one offered item.
///
/// Only [`Offer::Accepted`] items can ever be released; the other two are
/// dropped on the floor (and counted) so a lossy or duplicating transport
/// degrades the merger instead of wedging or corrupting it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Offer {
    /// Parked or released; will appear in the output.
    Accepted,
    /// The counter already passed this micro-flow (it was flushed or
    /// completed); the item is dropped and counted in
    /// [`MergeCounter::late_drops`].
    Late,
    /// A copy of a micro-flow that is already closed, or that is being
    /// collected on a different lane (the first-arriving copy wins); the
    /// item is dropped and counted in [`MergeCounter::dup_drops`].
    Duplicate,
}

/// Outcome tally of one merge point: every offered item was released in
/// order, is still parked (`residue`), or was rejected (`late_drops` /
/// `dup_drops`); every micro-flow the counter gave up on is in `flushed`.
///
/// Both execution engines report merge outcomes through this one block —
/// the runtime's merger thread snapshots its single [`MergeCounter`],
/// the simulator's [`BatchMerger`] folds one snapshot per flow with
/// [`MergeStats::absorb`] — so the accepted/late/dup/flushed bookkeeping
/// lives here instead of being re-derived by each engine.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MergeStats {
    /// Items released in original order.
    pub released: u64,
    /// Micro-flows the counter force-advanced past.
    pub flushed: u64,
    /// Items rejected because the counter had already passed them.
    pub late_drops: u64,
    /// Items rejected as duplicate copies.
    pub dup_drops: u64,
    /// Items still parked in lane buffers at snapshot time.
    pub residue: u64,
}

impl MergeStats {
    /// Folds another merge point's tally into this one (per-flow
    /// counters aggregating to a stack-wide total).
    pub fn absorb(&mut self, other: MergeStats) {
        self.released += other.released;
        self.flushed += other.flushed;
        self.late_drops += other.late_drops;
        self.dup_drops += other.dup_drops;
        self.residue += other.residue;
    }
}

/// What the merger knows about one in-flight micro-flow.
#[derive(Clone, Copy, Debug)]
struct MfEntry {
    /// Lane (buffer queue) collecting the micro-flow. Learned on first
    /// arrival; the real kernel reads it from the skb control block.
    lane: usize,
    /// Whether the `last` item has arrived (further copies are duplicates).
    closed: bool,
}

/// The merging-counter reassembler for one flow, generic over the payload.
///
/// # Fault tolerance
///
/// The textbook algorithm deadlocks if a micro-flow never completes: the
/// counter waits forever and every later micro-flow stays parked. To
/// degrade gracefully instead, the merger keeps a *stall clock* counting
/// offers since it last released anything. When a flush deadline is set
/// (see [`MergeCounter::with_flush_deadline`]) and the clock reaches it,
/// the counter force-advances past the stuck micro-flow, releasing parked
/// successors; skipped IDs are recorded in [`MergeCounter::flushed_ids`].
/// Late and duplicate arrivals are rejected with a recoverable [`Offer`]
/// outcome rather than an assertion.
#[derive(Clone, Debug)]
pub struct MergeCounter<T> {
    lanes: BTreeMap<usize, VecDeque<(MfTag, T)>>,
    counter: u64,
    mf_lane: BTreeMap<u64, MfEntry>,
    buffered: usize,
    released: u64,
    /// Force-advance the counter after this many offers without a release.
    flush_after_offers: Option<u64>,
    offers_since_release: u64,
    flushed_ids: BTreeSet<u64>,
    late_drops: u64,
    dup_drops: u64,
}

impl<T> Default for MergeCounter<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> MergeCounter<T> {
    /// A reassembler whose counter starts at micro-flow 0 and never
    /// flushes (the textbook algorithm: waits forever on a lost
    /// micro-flow).
    pub fn new() -> Self {
        Self {
            lanes: BTreeMap::new(),
            counter: 0,
            mf_lane: BTreeMap::new(),
            buffered: 0,
            released: 0,
            flush_after_offers: None,
            offers_since_release: 0,
            flushed_ids: BTreeSet::new(),
            late_drops: 0,
            dup_drops: 0,
        }
    }

    /// A reassembler that force-advances past a stuck micro-flow once
    /// `deadline` consecutive offers release nothing.
    pub fn with_flush_deadline(deadline: u64) -> Self {
        let mut m = Self::new();
        m.flush_after_offers = Some(deadline.max(1));
        m
    }

    /// Sets or clears the flush deadline on an existing reassembler.
    pub fn set_flush_deadline(&mut self, deadline: Option<u64>) {
        self.flush_after_offers = deadline.map(|d| d.max(1));
    }

    /// Current merging-counter value.
    pub fn counter(&self) -> u64 {
        self.counter
    }

    /// Items parked in lane buffer queues.
    pub fn buffered(&self) -> usize {
        self.buffered
    }

    /// Total items released in order.
    pub fn released(&self) -> u64 {
        self.released
    }

    /// Micro-flow IDs the counter was force-advanced past.
    pub fn flushed_ids(&self) -> &BTreeSet<u64> {
        &self.flushed_ids
    }

    /// Count of micro-flows the counter was force-advanced past.
    pub fn flushed(&self) -> u64 {
        self.flushed_ids.len() as u64
    }

    /// Items rejected because the counter had already passed them.
    pub fn late_drops(&self) -> u64 {
        self.late_drops
    }

    /// Items rejected as duplicate copies of a known micro-flow.
    pub fn dup_drops(&self) -> u64 {
        self.dup_drops
    }

    /// Snapshot of this counter's outcome tally — the one merge-point
    /// bookkeeping block both execution engines consume (directly in the
    /// runtime's merger thread, folded per-flow by [`BatchMerger`] in
    /// the simulator).
    pub fn stats(&self) -> MergeStats {
        MergeStats {
            released: self.released,
            flushed: self.flushed(),
            late_drops: self.late_drops,
            dup_drops: self.dup_drops,
            residue: self.buffered as u64,
        }
    }

    /// A crash-consistent restore point: an independent deep copy of the
    /// full mutable state (counter, per-lane buffers, micro-flow table,
    /// flush bookkeeping). Feeding a snapshot the same offer stream the
    /// original sees produces byte-identical releases and identical
    /// [`MergeCounter::stats`] — the invariant the runtime's merger
    /// failure domain checkpoints rely on, proven by the snapshot
    /// round-trip proptest in the integration suite.
    pub fn snapshot(&self) -> Self
    where
        T: Clone,
    {
        self.clone()
    }

    /// Estimated serialized size of a snapshot in bytes, for checkpoint
    /// telemetry. An estimate (map overheads are approximated), not an
    /// exact wire size — the runtime checkpoints by structural clone, so
    /// no byte-exact encoding exists to measure.
    pub fn approx_bytes(&self) -> u64 {
        use std::mem::size_of;
        let item = size_of::<MfTag>() + size_of::<T>();
        let fixed = size_of::<Self>();
        let buffered = self.buffered * item;
        // One queue header per lane, one (id -> entry) record per known
        // micro-flow, one u64 per flushed id.
        let lanes = self.lanes.len() * size_of::<VecDeque<(MfTag, T)>>();
        let mf_table = self.mf_lane.len() * (size_of::<u64>() + size_of::<MfEntry>());
        let flushed = self.flushed_ids.len() * size_of::<u64>();
        (fixed + buffered + lanes + mf_table + flushed) as u64
    }

    /// Offers one tagged item; appends any now-in-order items to `out`
    /// and reports the item's fate.
    pub fn offer(&mut self, tag: MfTag, item: T, out: &mut Vec<T>) -> Offer {
        if tag.id < self.counter {
            self.late_drops += 1;
            self.tick_stall_clock(out);
            return Offer::Late;
        }
        match self.mf_lane.get_mut(&tag.id) {
            Some(entry) if entry.closed || entry.lane != tag.lane => {
                // Already complete, or being collected on another lane
                // (a redispatched copy): the first-arriving copy wins.
                self.dup_drops += 1;
                self.tick_stall_clock(out);
                return Offer::Duplicate;
            }
            Some(entry) => entry.closed |= tag.last,
            None => {
                self.mf_lane.insert(
                    tag.id,
                    MfEntry {
                        lane: tag.lane,
                        closed: tag.last,
                    },
                );
            }
        }
        self.lanes.entry(tag.lane).or_default().push_back((tag, item));
        self.buffered += 1;
        let before = self.released;
        self.drain(out);
        if self.released == before {
            self.tick_stall_clock(out);
        } else {
            self.offers_since_release = 0;
        }
        Offer::Accepted
    }

    /// Advances the stall clock by one offer, force-flushing when the
    /// deadline is hit while something is stuck.
    fn tick_stall_clock(&mut self, out: &mut Vec<T>) {
        self.offers_since_release += 1;
        let Some(deadline) = self.flush_after_offers else {
            return;
        };
        if self.offers_since_release >= deadline && !self.mf_lane.is_empty() {
            self.flush_one(out);
            self.offers_since_release = 0;
        }
    }

    /// Force-advances the counter past the micro-flow it is stuck on,
    /// then releases whatever that unblocks. Returns `false` when there
    /// is nothing to flush.
    pub fn flush_one(&mut self, out: &mut Vec<T>) -> bool {
        if self.mf_lane.remove(&self.counter).is_some() {
            // The current micro-flow arrived partially but never closed:
            // its in-order prefix is already out, so just skip its ID.
            self.flushed_ids.insert(self.counter);
            self.counter += 1;
        } else {
            // Nothing of the current micro-flow (and possibly a run of
            // successors) ever arrived: jump to the first one we hold.
            let Some(&next) = self.mf_lane.keys().next() else {
                return false;
            };
            self.flushed_ids.extend(self.counter..next);
            self.counter = next;
        }
        self.drain(out);
        true
    }

    /// Flushes repeatedly until no items remain parked and no micro-flow
    /// is left open (end-of-stream recovery). Returns how many micro-flow
    /// IDs were skipped.
    pub fn flush_stalled(&mut self, out: &mut Vec<T>) -> u64 {
        let before = self.flushed_ids.len();
        while !self.mf_lane.is_empty() {
            if !self.flush_one(out) {
                break;
            }
        }
        // A per-lane FIFO violation upstream (e.g. a replaced-but-still-
        // unwinding worker incarnation re-emitting on its slot's lane)
        // can strand an item mid-queue behind a later micro-flow's: the
        // walk above removes its entry while the item is unreachable,
        // and no later counter value maps back to that lane. Everything
        // still parked here has been passed by the counter — purge it
        // exactly as the in-stream front purge would, so end-of-stream
        // recovery always leaves the merge point empty.
        for q in self.lanes.values_mut() {
            self.buffered -= q.len();
            self.late_drops += q.len() as u64;
            q.clear();
        }
        (self.flushed_ids.len() - before) as u64
    }

    /// Releases everything currently releasable.
    fn drain(&mut self, out: &mut Vec<T>) {
        loop {
            // Step (1): locate the buffer queue holding the counter's
            // micro-flow. Unknown means its packets are still in flight.
            let Some(&MfEntry { lane, .. }) = self.mf_lane.get(&self.counter) else {
                return;
            };
            let Some(q) = self.lanes.get_mut(&lane) else {
                return;
            };
            // Defensive purge: an item the counter already passed can
            // only sit at the front if per-lane FIFO order was violated
            // upstream; dropping it beats wedging behind it.
            while q.front().is_some_and(|(tag, _)| tag.id < self.counter) {
                q.pop_front();
                self.buffered -= 1;
                self.late_drops += 1;
            }
            // Step (2): consume packets of the current micro-flow.
            let mut advanced = false;
            while let Some((tag, _)) = q.front() {
                if tag.id != self.counter {
                    break;
                }
                let (tag, item) = q.pop_front().unwrap();
                self.buffered -= 1;
                self.released += 1;
                out.push(item);
                if tag.last {
                    // Step (3): the batch is complete — advance the counter.
                    self.mf_lane.remove(&tag.id);
                    self.counter += 1;
                    advanced = true;
                    break;
                }
            }
            if !advanced {
                // The current micro-flow is only partially here; everything
                // releasable has been released.
                return;
            }
        }
    }

    /// Removes and returns all parked items in lane order (end-of-run
    /// accounting; order across lanes is not meaningful here).
    pub fn drain_all(&mut self) -> Vec<T> {
        let mut out = Vec::with_capacity(self.buffered);
        for (_, q) in std::mem::take(&mut self.lanes) {
            out.extend(q.into_iter().map(|(_, item)| item));
        }
        // Forget in-flight micro-flow state too: leaving `mf_lane`
        // populated made a drained merger treat fresh arrivals of those
        // IDs as resumptions of ghost micro-flows.
        self.mf_lane.clear();
        self.buffered = 0;
        out
    }
}

/// The state-compute-replication reconciler: a per-flow *seq watermark*
/// instead of a merging counter.
///
/// Under SCR the lanes have already advanced replicated flow state and
/// emitted idempotent delivery records, so the downstream job is no
/// longer restoring wire order batch-by-batch — it is emitting each
/// in-order range **exactly once** and discarding replicated duplicates.
/// The reconciler keeps one monotonic watermark (next byte/seq expected)
/// plus a parked map of early records, mirroring the strict
/// `FlowState::receive` semantics so its delivery stream is identical to
/// merge-before-tcp's:
///
/// * a record starting at the watermark is emitted and the watermark
///   advances over it and any contiguous parked successors;
/// * a record wholly behind the watermark is a replicated duplicate
///   (or a straggler of a flushed gap — classified [`Offer::Late`]);
/// * a record straddling the watermark is a stale overlap and is
///   dropped, exactly as the strict machine drops it during drain;
/// * a record ahead of the watermark parks once; further copies are
///   duplicates.
///
/// Fault recovery reuses the flush idea: [`ScrReconciler::flush_one`]
/// force-advances the watermark to the first parked record, recording
/// the skipped range so later stragglers are told apart from duplicates.
#[derive(Clone, Debug)]
pub struct ScrReconciler<T> {
    watermark: u64,
    /// start → (end, record) for records ahead of the watermark.
    parked: BTreeMap<u64, (u64, T)>,
    emitted: u64,
    flushes: u64,
    late_drops: u64,
    dup_drops: u64,
    /// Coalesced `[start, end)` ranges the watermark was flushed over.
    skipped: BTreeMap<u64, u64>,
}

impl<T> Default for ScrReconciler<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> ScrReconciler<T> {
    /// A reconciler whose watermark starts at 0.
    pub fn new() -> Self {
        Self {
            watermark: 0,
            parked: BTreeMap::new(),
            emitted: 0,
            flushes: 0,
            late_drops: 0,
            dup_drops: 0,
            skipped: BTreeMap::new(),
        }
    }

    /// Next expected position (byte offset or packet seq).
    pub fn watermark(&self) -> u64 {
        self.watermark
    }

    /// Records parked ahead of the watermark.
    pub fn parked_len(&self) -> usize {
        self.parked.len()
    }

    /// Records emitted in order.
    pub fn released(&self) -> u64 {
        self.emitted
    }

    /// Watermark force-advances performed.
    pub fn flushes(&self) -> u64 {
        self.flushes
    }

    /// Stragglers of flushed gaps, rejected after the fact.
    pub fn late_drops(&self) -> u64 {
        self.late_drops
    }

    /// Replicated duplicates discarded.
    pub fn dup_drops(&self) -> u64 {
        self.dup_drops
    }

    /// The `[start, end)` ranges the watermark was flushed over, in order.
    pub fn skipped_ranges(&self) -> Vec<(u64, u64)> {
        self.skipped.iter().map(|(&s, &e)| (s, e)).collect()
    }

    /// Outcome tally in the shared merge-point block: `released` counts
    /// emitted records, `flushed` counts watermark force-advances.
    pub fn stats(&self) -> MergeStats {
        MergeStats {
            released: self.emitted,
            flushed: self.flushes,
            late_drops: self.late_drops,
            dup_drops: self.dup_drops,
            residue: self.parked.len() as u64,
        }
    }

    /// A crash-consistent restore point: an independent deep copy of the
    /// watermark, parked records, skipped ranges and drop counters. Same
    /// contract as [`MergeCounter::snapshot`]: a snapshot fed the
    /// remaining offer stream emits exactly what the original would.
    pub fn snapshot(&self) -> Self
    where
        T: Clone,
    {
        self.clone()
    }

    /// Estimated serialized size of a snapshot in bytes (see
    /// [`MergeCounter::approx_bytes`]). SCR state is deliberately tiny —
    /// the property "State-Compute Replication" leans on — so this is
    /// usually a few hundred bytes.
    pub fn approx_bytes(&self) -> u64 {
        use std::mem::size_of;
        let fixed = size_of::<Self>();
        let parked = self.parked.len() * (2 * size_of::<u64>() + size_of::<T>());
        let skipped = self.skipped.len() * 2 * size_of::<u64>();
        (fixed + parked + skipped) as u64
    }

    fn in_skipped(&self, pos: u64) -> bool {
        self.skipped
            .range(..=pos)
            .next_back()
            .is_some_and(|(_, &end)| end > pos)
    }

    /// Offers one delivery record covering `[start, end)`; appends any
    /// now-in-order records to `out` and reports the record's fate.
    pub fn offer(&mut self, start: u64, end: u64, item: T, out: &mut Vec<T>) -> Offer {
        if end <= start || end <= self.watermark {
            // Wholly behind (or empty): a replicated duplicate, unless the
            // watermark only passed it by flushing over the gap.
            if self.in_skipped(start) {
                self.late_drops += 1;
                return Offer::Late;
            }
            self.dup_drops += 1;
            return Offer::Duplicate;
        }
        if start < self.watermark {
            // Straddles the watermark: stale overlap; the strict machine
            // drops these during drain, so equivalence demands we do too.
            self.dup_drops += 1;
            return Offer::Duplicate;
        }
        if start == self.watermark {
            self.watermark = end;
            self.emitted += 1;
            out.push(item);
            self.drain(out);
            return Offer::Accepted;
        }
        if self.parked.contains_key(&start) {
            self.dup_drops += 1;
            return Offer::Duplicate;
        }
        self.parked.insert(start, (end, item));
        Offer::Accepted
    }

    /// Emits parked records made contiguous by a watermark advance,
    /// discarding stale overlaps along the way.
    fn drain(&mut self, out: &mut Vec<T>) {
        while let Some(entry) = self.parked.first_entry() {
            let k = *entry.key();
            if k == self.watermark {
                let (end, item) = entry.remove();
                self.watermark = end;
                self.emitted += 1;
                out.push(item);
            } else if k < self.watermark {
                entry.remove();
                self.dup_drops += 1;
            } else {
                break;
            }
        }
    }

    /// Force-advances the watermark to the first parked record, releasing
    /// it (and contiguous successors) and recording the skipped range.
    /// Returns `false` when nothing is parked.
    pub fn flush_one(&mut self, out: &mut Vec<T>) -> bool {
        let Some(&next) = self.parked.keys().next() else {
            return false;
        };
        // Coalesce with a preceding skipped range ending at the watermark.
        match self.skipped.range_mut(..self.watermark).next_back() {
            Some((_, end)) if *end == self.watermark => *end = next,
            _ => {
                self.skipped.insert(self.watermark, next);
            }
        }
        self.watermark = next;
        self.flushes += 1;
        self.drain(out);
        true
    }

    /// Flushes until nothing is parked (end-of-stream recovery). Returns
    /// the number of force-advances performed.
    pub fn flush_stalled(&mut self, out: &mut Vec<T>) -> u64 {
        let mut n = 0;
        while self.flush_one(out) {
            n += 1;
        }
        n
    }
}

/// [`FlowMerger`] adapter: one [`MergeCounter`] per flow; skbs without a
/// micro-flow tag (flows that were never split) pass straight through.
pub struct BatchMerger {
    flows: BTreeMap<usize, MergeCounter<Skb>>,
    merge_cost_per_batch_ns: u64,
    /// Flush deadline installed into every per-flow counter.
    flush_after_offers: Option<u64>,
}

impl BatchMerger {
    /// Creates a merger charging `merge_cost_per_batch_ns` per invocation.
    pub fn new(merge_cost_per_batch_ns: u64) -> Self {
        Self {
            flows: BTreeMap::new(),
            merge_cost_per_batch_ns,
            flush_after_offers: None,
        }
    }

    /// Installs a per-flow flush deadline (offers without a release before
    /// the counter force-advances past a stuck micro-flow).
    pub fn with_flush_deadline(mut self, deadline: Option<u64>) -> Self {
        self.flush_after_offers = deadline;
        self
    }

    fn flow_counter(&mut self, flow: usize) -> &mut MergeCounter<Skb> {
        let deadline = self.flush_after_offers;
        self.flows.entry(flow).or_insert_with(|| match deadline {
            Some(d) => MergeCounter::with_flush_deadline(d),
            None => MergeCounter::new(),
        })
    }

    /// Stack-wide outcome tally: one [`MergeStats`] snapshot per flow,
    /// folded. All the [`FlowMerger`] counter accessors read through
    /// this.
    pub fn stats(&self) -> MergeStats {
        self.flows
            .values()
            .fold(MergeStats::default(), |mut acc, m| {
                acc.absorb(m.stats());
                acc
            })
    }
}

impl FlowMerger for BatchMerger {
    fn offer(&mut self, skbs: Vec<Skb>) -> Vec<Skb> {
        let mut out = Vec::with_capacity(skbs.len());
        for skb in skbs {
            match skb.mf {
                None => out.push(skb),
                Some(mf) => {
                    let tag = MfTag {
                        id: mf.id,
                        lane: mf.core,
                        last: mf.last_in_batch,
                    };
                    let flow = skb.flow;
                    self.flow_counter(flow).offer(tag, skb, &mut out);
                }
            }
        }
        out
    }

    fn buffered(&self) -> usize {
        self.stats().residue as usize
    }

    fn merge_cost_ns(&self, _offered: u64, _released: u64) -> u64 {
        self.merge_cost_per_batch_ns
    }

    fn drain(&mut self) -> Vec<Skb> {
        let mut out = Vec::new();
        for m in self.flows.values_mut() {
            out.extend(m.drain_all());
        }
        out
    }

    fn flushed(&self) -> u64 {
        self.stats().flushed
    }

    fn late_drops(&self) -> u64 {
        self.stats().late_drops
    }

    fn dup_drops(&self) -> u64 {
        self.stats().dup_drops
    }

    fn flush_stalled(&mut self) -> Vec<Skb> {
        let mut out = Vec::new();
        for m in self.flows.values_mut() {
            m.flush_stalled(&mut out);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tags `n` sequence numbers into micro-flows of `batch` over `lanes`.
    fn tag_stream(n: u64, batch: u64, lanes: usize) -> Vec<(MfTag, u64)> {
        (0..n)
            .map(|i| {
                let id = i / batch;
                (
                    MfTag {
                        id,
                        lane: (id as usize) % lanes,
                        last: i % batch == batch - 1 || i == n - 1,
                    },
                    i,
                )
            })
            .collect()
    }

    #[test]
    fn in_order_offer_releases_immediately() {
        let mut m = MergeCounter::new();
        let mut out = Vec::new();
        for (tag, v) in tag_stream(1000, 4, 2) {
            m.offer(tag, v, &mut out);
        }
        assert_eq!(out, (0..1000).collect::<Vec<_>>());
        assert_eq!(m.buffered(), 0);
        assert_eq!(m.released(), 1000);
        assert_eq!(m.counter(), 250);
    }

    #[test]
    fn lane_skew_is_reordered() {
        // Lane 1's batches arrive far ahead of lane 0's: the merger must
        // buffer them and emit the original order.
        let stream = tag_stream(64, 8, 2);
        let (lane0, lane1): (Vec<_>, Vec<_>) = stream.into_iter().partition(|(t, _)| t.lane == 0);
        let mut m = MergeCounter::new();
        let mut out = Vec::new();
        for (tag, v) in lane1.into_iter().chain(lane0) {
            m.offer(tag, v, &mut out);
        }
        assert_eq!(out, (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn partial_batches_release_incrementally() {
        let mut m = MergeCounter::new();
        let mut out = Vec::new();
        // First half of micro-flow 0 arrives: releases immediately.
        m.offer(MfTag { id: 0, lane: 0, last: false }, 'a', &mut out);
        m.offer(MfTag { id: 0, lane: 0, last: false }, 'b', &mut out);
        assert_eq!(out, vec!['a', 'b']);
        // Micro-flow 1 arrives early on lane 1: parked.
        m.offer(MfTag { id: 1, lane: 1, last: true }, 'd', &mut out);
        assert_eq!(out, vec!['a', 'b']);
        assert_eq!(m.buffered(), 1);
        // The close of micro-flow 0 releases both.
        m.offer(MfTag { id: 0, lane: 0, last: true }, 'c', &mut out);
        assert_eq!(out, vec!['a', 'b', 'c', 'd']);
        assert_eq!(m.counter(), 2);
        assert_eq!(m.buffered(), 0);
    }

    #[test]
    fn batch_size_one_is_per_packet_reordering() {
        // Degenerate case: every packet is its own micro-flow.
        let n = 100u64;
        let stream = tag_stream(n, 1, 4);
        // Deliver lanes round-robin shifted: worst-case interleave.
        let mut m = MergeCounter::new();
        let mut out = Vec::new();
        let mut shuffled = stream.clone();
        shuffled.sort_by_key(|(t, v)| (t.lane, *v));
        for (tag, v) in shuffled {
            m.offer(tag, v, &mut out);
        }
        assert_eq!(out, (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn drain_all_returns_parked_items() {
        let mut m = MergeCounter::new();
        let mut out = Vec::new();
        m.offer(MfTag { id: 3, lane: 1, last: true }, 'x', &mut out);
        assert!(out.is_empty());
        let drained = m.drain_all();
        assert_eq!(drained, vec!['x']);
        assert_eq!(m.buffered(), 0);
    }

    #[test]
    fn batch_merger_passes_untagged_flows_through() {
        let mut bm = BatchMerger::new(100);
        let skbs: Vec<Skb> = (0..5).map(|i| Skb::new(i, 0, 1514, 1448, i * 1448, 0)).collect();
        let out = bm.offer(skbs);
        assert_eq!(out.len(), 5);
        assert_eq!(bm.buffered(), 0);
    }

    #[test]
    fn batch_merger_reorders_tagged_flows_independently() {
        use mflow_netstack::MicroflowTag;
        let mut bm = BatchMerger::new(100);
        let mk = |flow: usize, seq: u64, id: u64, core: usize, last: bool| {
            let mut s = Skb::new(seq, flow, 1514, 1448, seq * 1448, 0);
            s.mf = Some(MicroflowTag {
                id,
                core,
                last_in_batch: last,
            });
            s
        };
        // Flow 0: mf 1 (lane 3) arrives before mf 0 (lane 2).
        let out = bm.offer(vec![mk(0, 2, 1, 3, true)]);
        assert!(out.is_empty());
        // Flow 1 is independent and in order.
        let out = bm.offer(vec![mk(1, 0, 0, 2, true)]);
        assert_eq!(out.len(), 1);
        // Flow 0's mf 0 releases both of its micro-flows.
        let out = bm.offer(vec![mk(0, 0, 0, 2, false), mk(0, 1, 0, 2, true)]);
        assert_eq!(out.len(), 3);
        let seqs: Vec<u64> = out.iter().map(|s| s.wire_seq).collect();
        assert_eq!(seqs, vec![0, 1, 2]);
        assert_eq!(bm.buffered(), 0);
    }

    #[test]
    fn merge_cost_is_constant_per_invocation() {
        let bm = BatchMerger::new(150);
        assert_eq!(bm.merge_cost_ns(1, 1), 150);
        assert_eq!(bm.merge_cost_ns(64, 0), 150);
    }

    #[test]
    fn drain_all_forgets_inflight_microflows() {
        // Regression: `drain_all` used to clear the lane queues but leave
        // `mf_lane` populated, so a re-arrival of a drained micro-flow was
        // treated as a resumption of a ghost entry — here mf 3 would stay
        // invisible to the counter's lane lookup and wedge at id 0 lookup
        // when the fresh copy lands on a different lane.
        let mut m = MergeCounter::new();
        let mut out = Vec::new();
        m.offer(MfTag { id: 3, lane: 1, last: true }, 'x', &mut out);
        let drained = m.drain_all();
        assert_eq!(drained, vec!['x']);
        // Fresh copy of mf 3 arrives on a different lane: must be a clean
        // first arrival, not a duplicate of the drained ghost.
        assert_eq!(
            m.offer(MfTag { id: 3, lane: 0, last: true }, 'y', &mut out),
            Offer::Accepted
        );
        assert_eq!(m.dup_drops(), 0);
        // Completing mfs 0..3 (on their own lane, keeping per-lane FIFO)
        // releases everything including the fresh copy.
        for id in 0..3 {
            m.offer(MfTag { id, lane: 2, last: true }, 'z', &mut out);
        }
        assert_eq!(out, vec!['z', 'z', 'z', 'y']);
        assert_eq!(m.buffered(), 0);
    }

    #[test]
    fn late_arrival_is_rejected_not_fatal() {
        let mut m = MergeCounter::new();
        let mut out = Vec::new();
        m.offer(MfTag { id: 0, lane: 0, last: true }, 'a', &mut out);
        assert_eq!(m.counter(), 1);
        // A straggler copy of mf 0 arrives after the counter passed it.
        assert_eq!(
            m.offer(MfTag { id: 0, lane: 1, last: true }, 'a', &mut out),
            Offer::Late
        );
        assert_eq!(m.late_drops(), 1);
        assert_eq!(out, vec!['a']);
    }

    #[test]
    fn duplicate_copies_are_rejected() {
        let mut m = MergeCounter::new();
        let mut out = Vec::new();
        // mf 1 parked (closed) on lane 1.
        m.offer(MfTag { id: 1, lane: 1, last: true }, 'b', &mut out);
        // A second copy on the same lane: mf already closed.
        assert_eq!(
            m.offer(MfTag { id: 1, lane: 1, last: true }, 'b', &mut out),
            Offer::Duplicate
        );
        // A copy on a different lane: first-arriving copy wins.
        assert_eq!(
            m.offer(MfTag { id: 1, lane: 2, last: false }, 'b', &mut out),
            Offer::Duplicate
        );
        assert_eq!(m.dup_drops(), 2);
        // The surviving copy is still released intact.
        m.offer(MfTag { id: 0, lane: 0, last: true }, 'a', &mut out);
        assert_eq!(out, vec!['a', 'b']);
        assert_eq!(m.buffered(), 0);
    }

    #[test]
    fn flush_deadline_skips_a_lost_microflow() {
        // mf 0 is lost entirely; mfs 1..4 park behind it. After `deadline`
        // offers with no release, the counter must skip mf 0 and release
        // the parked successors in order.
        let mut m = MergeCounter::with_flush_deadline(3);
        let mut out = Vec::new();
        for id in 1..=4u64 {
            m.offer(
                MfTag { id, lane: id as usize % 2, last: true },
                id,
                &mut out,
            );
        }
        assert_eq!(out, vec![1, 2, 3, 4], "flush must release parked successors");
        assert_eq!(m.flushed(), 1);
        assert!(m.flushed_ids().contains(&0));
        assert_eq!(m.counter(), 5);
        assert_eq!(m.buffered(), 0);
    }

    #[test]
    fn flush_deadline_skips_a_microflow_missing_its_last_packet() {
        // mf 0's closing packet is dropped: its prefix flows out, then the
        // merger stalls with the open entry. The deadline closes it.
        let mut m = MergeCounter::with_flush_deadline(2);
        let mut out = Vec::new();
        m.offer(MfTag { id: 0, lane: 0, last: false }, 'a', &mut out);
        assert_eq!(out, vec!['a']);
        // mf 1 parks; stall clock ticks to the deadline.
        m.offer(MfTag { id: 1, lane: 1, last: false }, 'b', &mut out);
        m.offer(MfTag { id: 1, lane: 1, last: true }, 'c', &mut out);
        assert_eq!(out, vec!['a', 'b', 'c']);
        assert_eq!(m.flushed(), 1);
        assert_eq!(m.counter(), 2);
    }

    #[test]
    fn without_deadline_the_textbook_algorithm_waits_forever() {
        let mut m = MergeCounter::new();
        let mut out = Vec::new();
        for id in 1..100u64 {
            m.offer(MfTag { id, lane: 0, last: true }, id, &mut out);
        }
        assert!(out.is_empty(), "no deadline: mf 0 blocks everything");
        assert_eq!(m.flushed(), 0);
    }

    #[test]
    fn flush_stalled_releases_everything_in_order() {
        let mut m = MergeCounter::new();
        let mut out = Vec::new();
        // mfs 2, 5, 7 parked (0,1,3,4,6 lost); 5 is missing its close.
        m.offer(MfTag { id: 2, lane: 0, last: true }, 2, &mut out);
        m.offer(MfTag { id: 5, lane: 1, last: false }, 5, &mut out);
        m.offer(MfTag { id: 7, lane: 0, last: true }, 7, &mut out);
        assert!(out.is_empty());
        let skipped = m.flush_stalled(&mut out);
        assert_eq!(out, vec![2, 5, 7], "order preserved across flushes");
        assert_eq!(skipped, 6, "ids 0,1,3,4,5,6 were skipped");
        assert_eq!(m.buffered(), 0);
        // Idempotent once drained.
        assert_eq!(m.flush_stalled(&mut out), 0);
    }

    #[test]
    fn flush_stalled_purges_items_stranded_by_fifo_violations() {
        // A replaced-but-still-unwinding worker incarnation can re-emit
        // on its slot's lane, landing an earlier micro-flow's packet
        // *behind* a later one's in the same queue. The flush walk then
        // removes the earlier mf's entry while its item is unreachable
        // mid-queue, and once the later mf is flushed too, no counter
        // value ever maps back to that lane: without the final purge the
        // item would survive as permanent residue.
        let mut m = MergeCounter::new();
        let mut out = Vec::new();
        m.offer(MfTag { id: 5, lane: 0, last: false }, 50, &mut out);
        m.offer(MfTag { id: 3, lane: 0, last: false }, 30, &mut out);
        assert!(out.is_empty());
        m.flush_stalled(&mut out);
        assert_eq!(out, vec![50], "only the reachable item is releasable");
        assert_eq!(m.buffered(), 0, "no residue survives end-of-stream");
        assert_eq!(m.stats().late_drops, 1, "the stranded item is accounted");
    }

    #[test]
    fn scr_reconciler_emits_each_range_exactly_once_in_order() {
        let mut r = ScrReconciler::new();
        let mut out = Vec::new();
        // Records arrive lane-interleaved: 0,2,1,4,3 (unit seq ranges).
        for seq in [0u64, 2, 1, 4, 3] {
            assert_eq!(r.offer(seq, seq + 1, seq, &mut out), Offer::Accepted);
        }
        assert_eq!(out, vec![0, 1, 2, 3, 4]);
        assert_eq!(r.watermark(), 5);
        assert_eq!(r.parked_len(), 0);
        assert_eq!(r.stats().released, 5);
    }

    #[test]
    fn scr_reconciler_discards_replicated_duplicates() {
        let mut r = ScrReconciler::new();
        let mut out = Vec::new();
        r.offer(0, 1, 'a', &mut out);
        // Behind the watermark: a replicated transition already emitted.
        assert_eq!(r.offer(0, 1, 'a', &mut out), Offer::Duplicate);
        // Parked copy: second sighting of the same early record.
        r.offer(2, 3, 'c', &mut out);
        assert_eq!(r.offer(2, 3, 'c', &mut out), Offer::Duplicate);
        assert_eq!(r.dup_drops(), 2);
        r.offer(1, 2, 'b', &mut out);
        assert_eq!(out, vec!['a', 'b', 'c']);
    }

    #[test]
    fn scr_reconciler_drops_straddling_overlaps_like_the_strict_machine() {
        let mut r = ScrReconciler::new();
        let mut out = Vec::new();
        r.offer(0, 100, 1, &mut out);
        // [50,150) straddles watermark 100: stale overlap, tail not spliced.
        assert_eq!(r.offer(50, 150, 2, &mut out), Offer::Duplicate);
        assert_eq!(r.offer(100, 200, 3, &mut out), Offer::Accepted);
        assert_eq!(out, vec![1, 3]);
        assert_eq!(r.watermark(), 200);
    }

    #[test]
    fn scr_flush_skips_a_gap_and_classifies_stragglers_late() {
        let mut r = ScrReconciler::new();
        let mut out = Vec::new();
        // Seqs 1,2 parked behind lost seq 0.
        r.offer(1, 2, 'b', &mut out);
        r.offer(2, 3, 'c', &mut out);
        assert!(out.is_empty());
        assert!(r.flush_one(&mut out));
        assert_eq!(out, vec!['b', 'c']);
        assert_eq!(r.watermark(), 3);
        assert_eq!(r.flushes(), 1);
        assert_eq!(r.skipped_ranges(), vec![(0, 1)]);
        // The straggler of the flushed gap is Late, not Duplicate...
        assert_eq!(r.offer(0, 1, 'a', &mut out), Offer::Late);
        assert_eq!(r.late_drops(), 1);
        // ...while a replay of an emitted record stays Duplicate.
        assert_eq!(r.offer(1, 2, 'b', &mut out), Offer::Duplicate);
    }

    #[test]
    fn scr_flush_stalled_releases_everything_and_coalesces_gaps() {
        let mut r = ScrReconciler::new();
        let mut out = Vec::new();
        // Two separated parked runs: 2 and 5,6 (0,1,3,4 lost).
        r.offer(2, 3, 2, &mut out);
        r.offer(5, 6, 5, &mut out);
        r.offer(6, 7, 6, &mut out);
        assert_eq!(r.flush_stalled(&mut out), 2);
        assert_eq!(out, vec![2, 5, 6]);
        assert_eq!(r.skipped_ranges(), vec![(0, 2), (3, 5)]);
        assert_eq!(r.parked_len(), 0);
        // Idempotent once drained.
        assert_eq!(r.flush_stalled(&mut out), 0);
    }

    #[test]
    fn scr_reconciler_handles_byte_ranges_across_the_u32_wrap() {
        let wrap = u32::MAX as u64;
        let start = wrap - 1448;
        let mut r = ScrReconciler::new();
        let mut out = Vec::new();
        r.offer(0, start, 0u64, &mut out);
        // The segment crossing the boundary arrives after its successor.
        r.offer(start + 1448, start + 2896, 2, &mut out);
        r.offer(start, start + 1448, 1, &mut out);
        assert_eq!(out, vec![0, 1, 2]);
        assert_eq!(r.watermark(), start + 2896);
        assert!(r.watermark() > wrap);
    }

    #[test]
    fn scr_watermark_is_monotone_under_adversarial_offers() {
        let mut r = ScrReconciler::new();
        let mut out = Vec::new();
        let mut last = r.watermark();
        let offers = [(0u64, 3u64), (10, 12), (3, 10), (2, 5), (0, 3), (12, 13)];
        for (s, e) in offers {
            r.offer(s, e, (s, e), &mut out);
            assert!(r.watermark() >= last, "watermark regressed at ({s},{e})");
            last = r.watermark();
        }
        r.flush_stalled(&mut out);
        assert!(r.watermark() >= last);
        // Emitted ranges must be disjoint and ascending: exactly-once.
        let mut pos = 0;
        for (s, e) in out {
            assert!(s >= pos, "range ({s},{e}) overlaps an emitted one");
            pos = e;
        }
    }

    #[test]
    fn batch_merger_surfaces_degradation_counters() {
        use mflow_netstack::MicroflowTag;
        let mut bm = BatchMerger::new(100).with_flush_deadline(Some(2));
        let mk = |seq: u64, id: u64, core: usize, last: bool| {
            let mut s = Skb::new(seq, 0, 1514, 1448, seq * 1448, 0);
            s.mf = Some(MicroflowTag { id, core, last_in_batch: last });
            s
        };
        // mf 0 lost; mfs 1..3 arrive and eventually flush through.
        let out = bm.offer(vec![mk(1, 1, 0, true), mk(2, 2, 1, true), mk(3, 3, 0, true)]);
        assert_eq!(out.len(), 3);
        assert_eq!(bm.flushed(), 1);
        // A late copy of mf 0 now counts as a late drop.
        assert!(bm.offer(vec![mk(0, 0, 1, true)]).is_empty());
        assert_eq!(bm.late_drops(), 1);
        assert_eq!(bm.dup_drops(), 0);
        assert_eq!(bm.buffered(), 0);
        assert!(bm.flush_stalled().is_empty());
    }

    /// An adversarial interleaved offer stream for the snapshot tests:
    /// micro-flows 0..n, each offered out of lane order, with one late
    /// straggler and one duplicate mixed in.
    fn snapshot_stream(n: u64) -> Vec<(MfTag, u64)> {
        let mut stream = Vec::new();
        for id in (0..n).rev() {
            let lane = (id % 3) as usize;
            stream.push((MfTag { id, lane, last: false }, id * 10));
            stream.push((MfTag { id, lane, last: true }, id * 10 + 1));
        }
        // Duplicate of a released micro-flow and a stray copy.
        stream.push((MfTag { id: 0, lane: 0, last: true }, 1));
        stream
    }

    #[test]
    fn merge_counter_snapshot_resumes_identically() {
        let stream = snapshot_stream(12);
        // Uninterrupted reference run.
        let mut whole: MergeCounter<u64> = MergeCounter::with_flush_deadline(8);
        let mut whole_out = Vec::new();
        for &(tag, item) in &stream {
            whole.offer(tag, item, &mut whole_out);
        }
        // Snapshot at every prefix, restore, replay the remainder.
        for cut in 0..=stream.len() {
            let mut mc: MergeCounter<u64> = MergeCounter::with_flush_deadline(8);
            let mut out = Vec::new();
            for &(tag, item) in &stream[..cut] {
                mc.offer(tag, item, &mut out);
            }
            let mut restored = mc.snapshot();
            drop(mc); // the original crashes here
            for &(tag, item) in &stream[cut..] {
                restored.offer(tag, item, &mut out);
            }
            assert_eq!(out, whole_out, "delivery diverged at cut {cut}");
            assert_eq!(restored.stats(), whole.stats(), "stats diverged at cut {cut}");
            assert_eq!(restored.counter(), whole.counter());
        }
    }

    #[test]
    fn scr_reconciler_snapshot_resumes_identically() {
        // Positions arrive reversed pairwise with a duplicate: parked
        // state is non-trivial at most cuts.
        let stream: Vec<u64> = vec![1, 0, 3, 2, 5, 4, 4, 7, 6, 9, 8];
        let mut whole: ScrReconciler<u64> = ScrReconciler::new();
        let mut whole_out = Vec::new();
        for &p in &stream {
            whole.offer(p, p + 1, p, &mut whole_out);
        }
        for cut in 0..=stream.len() {
            let mut rc: ScrReconciler<u64> = ScrReconciler::new();
            let mut out = Vec::new();
            for &p in &stream[..cut] {
                rc.offer(p, p + 1, p, &mut out);
            }
            let mut restored = rc.snapshot();
            drop(rc);
            for &p in &stream[cut..] {
                restored.offer(p, p + 1, p, &mut out);
            }
            assert_eq!(out, whole_out, "delivery diverged at cut {cut}");
            assert_eq!(restored.stats(), whole.stats(), "stats diverged at cut {cut}");
            assert_eq!(restored.watermark(), whole.watermark());
        }
    }

    #[test]
    fn approx_bytes_tracks_buffered_state() {
        let mut mc: MergeCounter<u64> = MergeCounter::new();
        let empty = mc.approx_bytes();
        let mut out = Vec::new();
        // Park a deep backlog behind missing micro-flow 0.
        for id in 1..100 {
            mc.offer(MfTag { id, lane: 0, last: true }, id, &mut out);
        }
        assert!(out.is_empty());
        assert!(
            mc.approx_bytes() > empty + 99 * 8,
            "99 parked items must grow the estimate past the fixed cost"
        );

        let mut rc: ScrReconciler<u64> = ScrReconciler::new();
        let rc_empty = rc.approx_bytes();
        for p in 1..50 {
            rc.offer(p, p + 1, p, &mut out);
        }
        assert!(rc.approx_bytes() > rc_empty + 49 * 8);
    }
}
