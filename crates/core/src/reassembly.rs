//! Batch-based flow reassembly (§III-B, Figure 6c).
//!
//! Splitting a flow into micro-flows preserves order *within* each
//! micro-flow, so order only needs restoring *between* micro-flows. MFLOW
//! keeps one buffer queue per splitting core (lane) and a **merging
//! counter** holding the ID of the micro-flow currently allowed through:
//!
//! 1. locate the lane whose head packets carry `id == counter`;
//! 2. drain packets from that lane while their ID matches;
//! 3. when the micro-flow's final packet (`last_in_batch`) passes,
//!    increment the counter and repeat.
//!
//! This reorders per *batch* rather than per packet — with batch size 256
//! the counter advances once every 256 packets, which is why the paper
//! measures negligible reassembly overhead at that size.
//!
//! [`MergeCounter`] is the pure algorithm (reused verbatim by the
//! real-thread runtime in `mflow-runtime`); [`BatchMerger`] adapts it to
//! the simulator's skbs, passing never-split flows through untouched.

use std::collections::{BTreeMap, VecDeque};

use mflow_netstack::{FlowMerger, Skb};

/// Micro-flow tag: position of the batch in the original flow, the lane
/// (splitting core) it was dispatched to, and whether this item closes the
/// batch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MfTag {
    pub id: u64,
    pub lane: usize,
    pub last: bool,
}

/// The merging-counter reassembler for one flow, generic over the payload.
#[derive(Clone, Debug)]
pub struct MergeCounter<T> {
    lanes: BTreeMap<usize, VecDeque<(MfTag, T)>>,
    counter: u64,
    /// Lane each known micro-flow was dispatched to (learned on arrival;
    /// the real kernel reads it from the skb control block).
    mf_lane: BTreeMap<u64, usize>,
    buffered: usize,
    released: u64,
}

impl<T> Default for MergeCounter<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> MergeCounter<T> {
    /// A reassembler whose counter starts at micro-flow 0.
    pub fn new() -> Self {
        Self {
            lanes: BTreeMap::new(),
            counter: 0,
            mf_lane: BTreeMap::new(),
            buffered: 0,
            released: 0,
        }
    }

    /// Current merging-counter value.
    pub fn counter(&self) -> u64 {
        self.counter
    }

    /// Items parked in lane buffer queues.
    pub fn buffered(&self) -> usize {
        self.buffered
    }

    /// Total items released in order.
    pub fn released(&self) -> u64 {
        self.released
    }

    /// Offers one tagged item; appends any now-in-order items to `out`.
    pub fn offer(&mut self, tag: MfTag, item: T, out: &mut Vec<T>) {
        debug_assert!(
            tag.id >= self.counter,
            "micro-flow {} arrived after the counter passed it ({})",
            tag.id,
            self.counter
        );
        self.mf_lane.entry(tag.id).or_insert(tag.lane);
        self.lanes.entry(tag.lane).or_default().push_back((tag, item));
        self.buffered += 1;
        self.drain(out);
    }

    /// Releases everything currently releasable.
    fn drain(&mut self, out: &mut Vec<T>) {
        loop {
            // Step (1): locate the buffer queue holding the counter's
            // micro-flow. Unknown means its packets are still in flight.
            let Some(&lane) = self.mf_lane.get(&self.counter) else {
                return;
            };
            let Some(q) = self.lanes.get_mut(&lane) else {
                return;
            };
            // Step (2): consume packets of the current micro-flow.
            let mut advanced = false;
            while let Some((tag, _)) = q.front() {
                if tag.id != self.counter {
                    break;
                }
                let (tag, item) = q.pop_front().unwrap();
                self.buffered -= 1;
                self.released += 1;
                out.push(item);
                if tag.last {
                    // Step (3): the batch is complete — advance the counter.
                    self.mf_lane.remove(&tag.id);
                    self.counter += 1;
                    advanced = true;
                    break;
                }
            }
            if !advanced {
                // The current micro-flow is only partially here; everything
                // releasable has been released.
                return;
            }
        }
    }

    /// Removes and returns all parked items in lane order (end-of-run
    /// accounting; order across lanes is not meaningful here).
    pub fn drain_all(&mut self) -> Vec<T> {
        let mut out = Vec::with_capacity(self.buffered);
        for (_, q) in std::mem::take(&mut self.lanes) {
            out.extend(q.into_iter().map(|(_, item)| item));
        }
        self.buffered = 0;
        out
    }
}

/// [`FlowMerger`] adapter: one [`MergeCounter`] per flow; skbs without a
/// micro-flow tag (flows that were never split) pass straight through.
pub struct BatchMerger {
    flows: BTreeMap<usize, MergeCounter<Skb>>,
    merge_cost_per_batch_ns: u64,
}

impl BatchMerger {
    /// Creates a merger charging `merge_cost_per_batch_ns` per invocation.
    pub fn new(merge_cost_per_batch_ns: u64) -> Self {
        Self {
            flows: BTreeMap::new(),
            merge_cost_per_batch_ns,
        }
    }
}

impl FlowMerger for BatchMerger {
    fn offer(&mut self, skbs: Vec<Skb>) -> Vec<Skb> {
        let mut out = Vec::with_capacity(skbs.len());
        for skb in skbs {
            match skb.mf {
                None => out.push(skb),
                Some(mf) => {
                    let tag = MfTag {
                        id: mf.id,
                        lane: mf.core,
                        last: mf.last_in_batch,
                    };
                    self.flows
                        .entry(skb.flow)
                        .or_default()
                        .offer(tag, skb, &mut out);
                }
            }
        }
        out
    }

    fn buffered(&self) -> usize {
        self.flows.values().map(|m| m.buffered()).sum()
    }

    fn merge_cost_ns(&self, _offered: u64, _released: u64) -> u64 {
        self.merge_cost_per_batch_ns
    }

    fn drain(&mut self) -> Vec<Skb> {
        let mut out = Vec::new();
        for m in self.flows.values_mut() {
            out.extend(m.drain_all());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tags `n` sequence numbers into micro-flows of `batch` over `lanes`.
    fn tag_stream(n: u64, batch: u64, lanes: usize) -> Vec<(MfTag, u64)> {
        (0..n)
            .map(|i| {
                let id = i / batch;
                (
                    MfTag {
                        id,
                        lane: (id as usize) % lanes,
                        last: i % batch == batch - 1 || i == n - 1,
                    },
                    i,
                )
            })
            .collect()
    }

    #[test]
    fn in_order_offer_releases_immediately() {
        let mut m = MergeCounter::new();
        let mut out = Vec::new();
        for (tag, v) in tag_stream(1000, 4, 2) {
            m.offer(tag, v, &mut out);
        }
        assert_eq!(out, (0..1000).collect::<Vec<_>>());
        assert_eq!(m.buffered(), 0);
        assert_eq!(m.released(), 1000);
        assert_eq!(m.counter(), 250);
    }

    #[test]
    fn lane_skew_is_reordered() {
        // Lane 1's batches arrive far ahead of lane 0's: the merger must
        // buffer them and emit the original order.
        let stream = tag_stream(64, 8, 2);
        let (lane0, lane1): (Vec<_>, Vec<_>) = stream.into_iter().partition(|(t, _)| t.lane == 0);
        let mut m = MergeCounter::new();
        let mut out = Vec::new();
        for (tag, v) in lane1.into_iter().chain(lane0) {
            m.offer(tag, v, &mut out);
        }
        assert_eq!(out, (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn partial_batches_release_incrementally() {
        let mut m = MergeCounter::new();
        let mut out = Vec::new();
        // First half of micro-flow 0 arrives: releases immediately.
        m.offer(MfTag { id: 0, lane: 0, last: false }, 'a', &mut out);
        m.offer(MfTag { id: 0, lane: 0, last: false }, 'b', &mut out);
        assert_eq!(out, vec!['a', 'b']);
        // Micro-flow 1 arrives early on lane 1: parked.
        m.offer(MfTag { id: 1, lane: 1, last: true }, 'd', &mut out);
        assert_eq!(out, vec!['a', 'b']);
        assert_eq!(m.buffered(), 1);
        // The close of micro-flow 0 releases both.
        m.offer(MfTag { id: 0, lane: 0, last: true }, 'c', &mut out);
        assert_eq!(out, vec!['a', 'b', 'c', 'd']);
        assert_eq!(m.counter(), 2);
        assert_eq!(m.buffered(), 0);
    }

    #[test]
    fn batch_size_one_is_per_packet_reordering() {
        // Degenerate case: every packet is its own micro-flow.
        let n = 100u64;
        let stream = tag_stream(n, 1, 4);
        // Deliver lanes round-robin shifted: worst-case interleave.
        let mut m = MergeCounter::new();
        let mut out = Vec::new();
        let mut shuffled = stream.clone();
        shuffled.sort_by_key(|(t, v)| (t.lane, *v));
        for (tag, v) in shuffled {
            m.offer(tag, v, &mut out);
        }
        assert_eq!(out, (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn drain_all_returns_parked_items() {
        let mut m = MergeCounter::new();
        let mut out = Vec::new();
        m.offer(MfTag { id: 3, lane: 1, last: true }, 'x', &mut out);
        assert!(out.is_empty());
        let drained = m.drain_all();
        assert_eq!(drained, vec!['x']);
        assert_eq!(m.buffered(), 0);
    }

    #[test]
    fn batch_merger_passes_untagged_flows_through() {
        let mut bm = BatchMerger::new(100);
        let skbs: Vec<Skb> = (0..5).map(|i| Skb::new(i, 0, 1514, 1448, i * 1448, 0)).collect();
        let out = bm.offer(skbs);
        assert_eq!(out.len(), 5);
        assert_eq!(bm.buffered(), 0);
    }

    #[test]
    fn batch_merger_reorders_tagged_flows_independently() {
        use mflow_netstack::MicroflowTag;
        let mut bm = BatchMerger::new(100);
        let mk = |flow: usize, seq: u64, id: u64, core: usize, last: bool| {
            let mut s = Skb::new(seq, flow, 1514, 1448, seq * 1448, 0);
            s.mf = Some(MicroflowTag {
                id,
                core,
                last_in_batch: last,
            });
            s
        };
        // Flow 0: mf 1 (lane 3) arrives before mf 0 (lane 2).
        let out = bm.offer(vec![mk(0, 2, 1, 3, true)]);
        assert!(out.is_empty());
        // Flow 1 is independent and in order.
        let out = bm.offer(vec![mk(1, 0, 0, 2, true)]);
        assert_eq!(out.len(), 1);
        // Flow 0's mf 0 releases both of its micro-flows.
        let out = bm.offer(vec![mk(0, 0, 0, 2, false), mk(0, 1, 0, 2, true)]);
        assert_eq!(out.len(), 3);
        let seqs: Vec<u64> = out.iter().map(|s| s.wire_seq).collect();
        assert_eq!(seqs, vec![0, 1, 2]);
        assert_eq!(bm.buffered(), 0);
    }

    #[test]
    fn merge_cost_is_constant_per_invocation() {
        let bm = BatchMerger::new(150);
        assert_eq!(bm.merge_cost_ns(1, 1), 150);
        assert_eq!(bm.merge_cost_ns(64, 0), 150);
    }
}
