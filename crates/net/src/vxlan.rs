//! VXLAN encapsulation header (RFC 7348).
//!
//! The container overlay network encapsulates each inner Ethernet frame in
//! `outer-IP / outer-UDP(dst 4789) / VXLAN / inner frame`. The VNI
//! identifies the tenant network (Docker's overlay driver allocates one per
//! network).

use crate::ParseError;

/// The IANA-assigned VXLAN UDP port.
pub const VXLAN_PORT: u16 = 4789;

/// A VXLAN header: 8 bytes, flags + 24-bit VNI.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct VxlanHeader {
    /// Virtual Network Identifier (24 bits).
    pub vni: u32,
}

impl VxlanHeader {
    /// Encoded size in bytes.
    pub const LEN: usize = 8;

    /// Creates a header for the given VNI.
    ///
    /// # Panics
    /// Panics if `vni` does not fit in 24 bits.
    pub fn new(vni: u32) -> Self {
        assert!(vni < (1 << 24), "VNI must be 24-bit");
        Self { vni }
    }

    /// Writes the header into `out`.
    pub fn encode(&self, out: &mut Vec<u8>) {
        out.push(0x08); // I flag set: VNI is valid
        out.extend_from_slice(&[0, 0, 0]); // reserved
        let vni = self.vni << 8;
        out.extend_from_slice(&vni.to_be_bytes());
    }

    /// Parses a header from the front of `buf`.
    pub fn parse(buf: &[u8]) -> Result<(Self, &[u8]), ParseError> {
        if buf.len() < Self::LEN {
            return Err(ParseError::Truncated);
        }
        if buf[0] & 0x08 == 0 {
            return Err(ParseError::Malformed("vxlan I flag"));
        }
        let vni = u32::from_be_bytes([0, buf[4], buf[5], buf[6]]);
        Ok((Self { vni }, &buf[Self::LEN..]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let h = VxlanHeader::new(0x123456);
        let mut buf = Vec::new();
        h.encode(&mut buf);
        assert_eq!(buf.len(), VxlanHeader::LEN);
        let (parsed, rest) = VxlanHeader::parse(&buf).unwrap();
        assert_eq!(parsed, h);
        assert!(rest.is_empty());
    }

    #[test]
    fn max_vni() {
        let h = VxlanHeader::new((1 << 24) - 1);
        let mut buf = Vec::new();
        h.encode(&mut buf);
        let (parsed, _) = VxlanHeader::parse(&buf).unwrap();
        assert_eq!(parsed.vni, (1 << 24) - 1);
    }

    #[test]
    #[should_panic(expected = "24-bit")]
    fn oversized_vni_panics() {
        VxlanHeader::new(1 << 24);
    }

    #[test]
    fn missing_i_flag_rejected() {
        let buf = [0u8; 8];
        assert!(matches!(
            VxlanHeader::parse(&buf),
            Err(ParseError::Malformed("vxlan I flag"))
        ));
    }

    #[test]
    fn truncated() {
        assert_eq!(VxlanHeader::parse(&[8; 7]).unwrap_err(), ParseError::Truncated);
    }
}
