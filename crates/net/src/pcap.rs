//! Minimal pcap (libpcap classic format) writer, so frames built by this
//! crate — or captured from the runtime pipeline — can be inspected with
//! Wireshark/tcpdump. No external dependencies; the format is 24 bytes of
//! global header plus 16 bytes per record.

use std::io::{self, Write};

/// Link type constant for Ethernet.
const LINKTYPE_ETHERNET: u32 = 1;
/// Classic pcap magic (microsecond timestamps, little-endian).
const MAGIC: u32 = 0xA1B2_C3D4;

/// Streams frames into any `Write` as a pcap capture.
pub struct PcapWriter<W: Write> {
    out: W,
    frames: u64,
}

impl<W: Write> PcapWriter<W> {
    /// Writes the global header and returns the writer.
    pub fn new(mut out: W) -> io::Result<Self> {
        out.write_all(&MAGIC.to_le_bytes())?;
        out.write_all(&2u16.to_le_bytes())?; // version major
        out.write_all(&4u16.to_le_bytes())?; // version minor
        out.write_all(&0i32.to_le_bytes())?; // thiszone
        out.write_all(&0u32.to_le_bytes())?; // sigfigs
        out.write_all(&65_535u32.to_le_bytes())?; // snaplen
        out.write_all(&LINKTYPE_ETHERNET.to_le_bytes())?;
        Ok(Self { out, frames: 0 })
    }

    /// Appends one frame with a nanosecond timestamp (stored with
    /// microsecond resolution, as the classic format requires).
    pub fn write_frame(&mut self, ts_ns: u64, frame: &[u8]) -> io::Result<()> {
        let secs = (ts_ns / 1_000_000_000) as u32;
        let usecs = ((ts_ns % 1_000_000_000) / 1_000) as u32;
        self.out.write_all(&secs.to_le_bytes())?;
        self.out.write_all(&usecs.to_le_bytes())?;
        let len = frame.len() as u32;
        self.out.write_all(&len.to_le_bytes())?; // captured length
        self.out.write_all(&len.to_le_bytes())?; // original length
        self.out.write_all(frame)?;
        self.frames += 1;
        Ok(())
    }

    /// Number of frames written so far.
    pub fn frames(&self) -> u64 {
        self.frames
    }

    /// Flushes and returns the underlying writer.
    pub fn finish(mut self) -> io::Result<W> {
        self.out.flush()?;
        Ok(self.out)
    }
}

/// Timestamped raw frames: `(ts_ns, frame)` pairs.
pub type PcapRecords = Vec<(u64, Vec<u8>)>;

/// Largest per-record capture length accepted, mirroring libpcap's
/// sanity guard: a `caplen` beyond this is a corrupt header, not a big
/// packet, and is rejected before any allocation is sized from it.
const MAX_CAPLEN: usize = 0x0400_0000; // 64 MiB

/// Parses the global header of a pcap byte stream, returning `(version,
/// linktype, records)` where records are `(ts_ns, frame)` pairs. Used by
/// the round-trip tests; not a general-purpose reader.
///
/// Total: no byte stream panics this function. Malformed input —
/// wrong magic, absurd `caplen` — is [`ParseError::Malformed`]; any
/// prefix of a valid capture that ends inside a record header or body is
/// [`ParseError::Truncated`]. All offset arithmetic is checked, so a
/// `caplen` near `usize::MAX` cannot wrap a bounds test into passing.
pub fn parse_pcap(data: &[u8]) -> Result<(u16, u32, PcapRecords), crate::ParseError> {
    let mut records = Vec::new();
    let (version, linktype) = visit_pcap_records(data, |ts_ns, frame| {
        records.push((ts_ns, frame.to_vec()));
    })?;
    Ok((version, linktype, records))
}

/// Streams a pcap byte stream record by record without copying: the
/// visitor receives `(ts_ns, frame)` with the frame borrowed from `data`,
/// so a replay path can build each record straight into a pooled buffer.
/// Returns `(version, linktype)`. [`parse_pcap`] is re-expressed over
/// this, so both share the same totality guarantees.
pub fn visit_pcap_records(
    data: &[u8],
    mut visit: impl FnMut(u64, &[u8]),
) -> Result<(u16, u32), crate::ParseError> {
    use crate::ParseError;
    if data.len() < 24 {
        return Err(ParseError::Truncated);
    }
    let magic = u32::from_le_bytes(data[0..4].try_into().unwrap());
    if magic != MAGIC {
        return Err(ParseError::Malformed("pcap magic"));
    }
    let version = u16::from_le_bytes(data[4..6].try_into().unwrap());
    let linktype = u32::from_le_bytes(data[20..24].try_into().unwrap());
    let mut off = 24usize;
    while off < data.len() {
        // A capture may not end inside a record header: that is a
        // truncated record, not a clean end of stream.
        let hdr_end = off.checked_add(16).ok_or(ParseError::Truncated)?;
        if hdr_end > data.len() {
            return Err(ParseError::Truncated);
        }
        let secs = u32::from_le_bytes(data[off..off + 4].try_into().unwrap()) as u64;
        let usecs = u32::from_le_bytes(data[off + 4..off + 8].try_into().unwrap()) as u64;
        let caplen = u32::from_le_bytes(data[off + 8..off + 12].try_into().unwrap()) as usize;
        if caplen > MAX_CAPLEN {
            return Err(ParseError::Malformed("pcap caplen"));
        }
        off = hdr_end;
        let body_end = off.checked_add(caplen).ok_or(ParseError::Truncated)?;
        if body_end > data.len() {
            return Err(ParseError::Truncated);
        }
        visit(secs * 1_000_000_000 + usecs * 1_000, &data[off..body_end]);
        off = body_end;
    }
    Ok((version, linktype))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::{build_overlay_frame, parse_overlay_frame, OverlayFrameSpec};

    #[test]
    fn roundtrip_frames_through_pcap() {
        let mut w = PcapWriter::new(Vec::new()).unwrap();
        let frames: Vec<Vec<u8>> = (0..5)
            .map(|i| {
                build_overlay_frame(&OverlayFrameSpec::example_tcp(
                    1,
                    i * 1448,
                    vec![i as u8; 100],
                ))
            })
            .collect();
        for (i, f) in frames.iter().enumerate() {
            w.write_frame(1_000_000_000 + i as u64 * 1_000, f).unwrap();
        }
        assert_eq!(w.frames(), 5);
        let bytes = w.finish().unwrap();
        let (version, linktype, records) = parse_pcap(&bytes).unwrap();
        assert_eq!(version, 2);
        assert_eq!(linktype, LINKTYPE_ETHERNET);
        assert_eq!(records.len(), 5);
        for (i, (ts, frame)) in records.iter().enumerate() {
            assert_eq!(*ts, 1_000_000_000 + i as u64 * 1_000);
            assert_eq!(frame, &frames[i]);
            // Frames survive the container format intact and still parse.
            assert!(parse_overlay_frame(frame).is_ok());
        }
    }

    #[test]
    fn header_is_24_bytes() {
        let w = PcapWriter::new(Vec::new()).unwrap();
        let bytes = w.finish().unwrap();
        assert_eq!(bytes.len(), 24);
        let (_, _, records) = parse_pcap(&bytes).unwrap();
        assert!(records.is_empty());
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = PcapWriter::new(Vec::new()).unwrap().finish().unwrap();
        bytes[0] = 0;
        assert!(parse_pcap(&bytes).is_err());
    }

    #[test]
    fn truncated_record_rejected() {
        let mut w = PcapWriter::new(Vec::new()).unwrap();
        w.write_frame(0, &[1, 2, 3, 4]).unwrap();
        let bytes = w.finish().unwrap();
        assert!(parse_pcap(&bytes[..bytes.len() - 2]).is_err());
    }

    #[test]
    fn trailing_partial_record_header_rejected() {
        // A capture cut inside a record *header* (not just the body) is
        // truncated, not a clean end of stream.
        let mut w = PcapWriter::new(Vec::new()).unwrap();
        w.write_frame(0, &[9; 8]).unwrap();
        let mut bytes = w.finish().unwrap();
        bytes.extend_from_slice(&[0u8; 7]); // 7 of 16 header bytes
        assert_eq!(
            parse_pcap(&bytes),
            Err(crate::ParseError::Truncated),
            "partial trailing header must not be silently ignored"
        );
    }

    #[test]
    fn absurd_caplen_rejected_as_malformed() {
        // caplen = u32::MAX: with unchecked arithmetic `off + caplen`
        // this is the overflow-to-small-panic edge; it must be reported
        // as malformed, never indexed.
        let mut bytes = PcapWriter::new(Vec::new()).unwrap().finish().unwrap();
        bytes.extend_from_slice(&0u32.to_le_bytes()); // secs
        bytes.extend_from_slice(&0u32.to_le_bytes()); // usecs
        bytes.extend_from_slice(&u32::MAX.to_le_bytes()); // caplen
        bytes.extend_from_slice(&u32::MAX.to_le_bytes()); // origlen
        assert_eq!(
            parse_pcap(&bytes),
            Err(crate::ParseError::Malformed("pcap caplen"))
        );
    }

    #[test]
    fn every_prefix_of_a_valid_capture_is_error_or_shorter() {
        // Deterministic companion to the proptest in
        // `tests/pcap_truncation.rs`: every byte-prefix either errors or
        // yields a prefix of the record list.
        let mut w = PcapWriter::new(Vec::new()).unwrap();
        for i in 0..4u8 {
            w.write_frame(i as u64 * 1_000, &vec![i; 3 + i as usize * 5]).unwrap();
        }
        let bytes = w.finish().unwrap();
        let full = parse_pcap(&bytes).unwrap().2;
        for cut in 0..bytes.len() {
            if let Ok((_, _, records)) = parse_pcap(&bytes[..cut]) {
                assert!(records.len() <= full.len());
                assert_eq!(records[..], full[..records.len()]);
            }
        }
    }
}
