//! Minimal pcap (libpcap classic format) writer, so frames built by this
//! crate — or captured from the runtime pipeline — can be inspected with
//! Wireshark/tcpdump. No external dependencies; the format is 24 bytes of
//! global header plus 16 bytes per record.

use std::io::{self, Write};

/// Link type constant for Ethernet.
const LINKTYPE_ETHERNET: u32 = 1;
/// Classic pcap magic (microsecond timestamps, little-endian).
const MAGIC: u32 = 0xA1B2_C3D4;

/// Streams frames into any `Write` as a pcap capture.
pub struct PcapWriter<W: Write> {
    out: W,
    frames: u64,
}

impl<W: Write> PcapWriter<W> {
    /// Writes the global header and returns the writer.
    pub fn new(mut out: W) -> io::Result<Self> {
        out.write_all(&MAGIC.to_le_bytes())?;
        out.write_all(&2u16.to_le_bytes())?; // version major
        out.write_all(&4u16.to_le_bytes())?; // version minor
        out.write_all(&0i32.to_le_bytes())?; // thiszone
        out.write_all(&0u32.to_le_bytes())?; // sigfigs
        out.write_all(&65_535u32.to_le_bytes())?; // snaplen
        out.write_all(&LINKTYPE_ETHERNET.to_le_bytes())?;
        Ok(Self { out, frames: 0 })
    }

    /// Appends one frame with a nanosecond timestamp (stored with
    /// microsecond resolution, as the classic format requires).
    pub fn write_frame(&mut self, ts_ns: u64, frame: &[u8]) -> io::Result<()> {
        let secs = (ts_ns / 1_000_000_000) as u32;
        let usecs = ((ts_ns % 1_000_000_000) / 1_000) as u32;
        self.out.write_all(&secs.to_le_bytes())?;
        self.out.write_all(&usecs.to_le_bytes())?;
        let len = frame.len() as u32;
        self.out.write_all(&len.to_le_bytes())?; // captured length
        self.out.write_all(&len.to_le_bytes())?; // original length
        self.out.write_all(frame)?;
        self.frames += 1;
        Ok(())
    }

    /// Number of frames written so far.
    pub fn frames(&self) -> u64 {
        self.frames
    }

    /// Flushes and returns the underlying writer.
    pub fn finish(mut self) -> io::Result<W> {
        self.out.flush()?;
        Ok(self.out)
    }
}

/// Timestamped raw frames: `(ts_ns, frame)` pairs.
pub type PcapRecords = Vec<(u64, Vec<u8>)>;

/// Parses the global header of a pcap byte stream, returning `(version,
/// linktype, records)` where records are `(ts_ns, frame)` pairs. Used by
/// the round-trip tests; not a general-purpose reader.
pub fn parse_pcap(data: &[u8]) -> Result<(u16, u32, PcapRecords), crate::ParseError> {
    use crate::ParseError;
    if data.len() < 24 {
        return Err(ParseError::Truncated);
    }
    let magic = u32::from_le_bytes(data[0..4].try_into().unwrap());
    if magic != MAGIC {
        return Err(ParseError::Malformed("pcap magic"));
    }
    let version = u16::from_le_bytes(data[4..6].try_into().unwrap());
    let linktype = u32::from_le_bytes(data[20..24].try_into().unwrap());
    let mut records = Vec::new();
    let mut off = 24;
    while off + 16 <= data.len() {
        let secs = u32::from_le_bytes(data[off..off + 4].try_into().unwrap()) as u64;
        let usecs = u32::from_le_bytes(data[off + 4..off + 8].try_into().unwrap()) as u64;
        let caplen = u32::from_le_bytes(data[off + 8..off + 12].try_into().unwrap()) as usize;
        off += 16;
        if off + caplen > data.len() {
            return Err(ParseError::Truncated);
        }
        records.push((secs * 1_000_000_000 + usecs * 1_000, data[off..off + caplen].to_vec()));
        off += caplen;
    }
    Ok((version, linktype, records))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::{build_overlay_frame, parse_overlay_frame, OverlayFrameSpec};

    #[test]
    fn roundtrip_frames_through_pcap() {
        let mut w = PcapWriter::new(Vec::new()).unwrap();
        let frames: Vec<Vec<u8>> = (0..5)
            .map(|i| {
                build_overlay_frame(&OverlayFrameSpec::example_tcp(
                    1,
                    i * 1448,
                    vec![i as u8; 100],
                ))
            })
            .collect();
        for (i, f) in frames.iter().enumerate() {
            w.write_frame(1_000_000_000 + i as u64 * 1_000, f).unwrap();
        }
        assert_eq!(w.frames(), 5);
        let bytes = w.finish().unwrap();
        let (version, linktype, records) = parse_pcap(&bytes).unwrap();
        assert_eq!(version, 2);
        assert_eq!(linktype, LINKTYPE_ETHERNET);
        assert_eq!(records.len(), 5);
        for (i, (ts, frame)) in records.iter().enumerate() {
            assert_eq!(*ts, 1_000_000_000 + i as u64 * 1_000);
            assert_eq!(frame, &frames[i]);
            // Frames survive the container format intact and still parse.
            assert!(parse_overlay_frame(frame).is_ok());
        }
    }

    #[test]
    fn header_is_24_bytes() {
        let w = PcapWriter::new(Vec::new()).unwrap();
        let bytes = w.finish().unwrap();
        assert_eq!(bytes.len(), 24);
        let (_, _, records) = parse_pcap(&bytes).unwrap();
        assert!(records.is_empty());
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = PcapWriter::new(Vec::new()).unwrap().finish().unwrap();
        bytes[0] = 0;
        assert!(parse_pcap(&bytes).is_err());
    }

    #[test]
    fn truncated_record_rejected() {
        let mut w = PcapWriter::new(Vec::new()).unwrap();
        w.write_frame(0, &[1, 2, 3, 4]).unwrap();
        let bytes = w.finish().unwrap();
        assert!(parse_pcap(&bytes[..bytes.len() - 2]).is_err());
    }
}
