//! RFC 1071 Internet checksum, used by IPv4, UDP and TCP.

/// Computes the one's-complement sum of `data` folded to 16 bits, starting
/// from `initial` (partial sum, host order; need not be pre-folded — the
/// final fold absorbs accumulated carries).
///
/// One's-complement addition is associative and commutative modulo
/// 0xFFFF, and 2^16 ≡ 1 there, so grouping the byte stream into any
/// word size yields the same folded sum as the RFC's 16-bit walk. The
/// hot loop therefore consumes 8 bytes per step as two big-endian u32
/// halves accumulated into a u64 (the same trick as the kernel's
/// `csum_partial`), which is ~4x faster than u16-at-a-time over packet
/// payloads; the tail falls back to the 16-bit walk. A positive sum can
/// never fold to zero, so the 0x0000/0xFFFF representative is identical
/// in both groupings.
pub fn ones_complement_sum(data: &[u8], initial: u32) -> u32 {
    let mut wide = initial as u64;
    let mut chunks8 = data.chunks_exact(8);
    for c in &mut chunks8 {
        let v = u64::from_be_bytes(c.try_into().expect("8-byte chunk"));
        wide += (v >> 32) + (v & 0xFFFF_FFFF);
    }
    wide = (wide >> 32) + (wide & 0xFFFF_FFFF);
    wide = (wide >> 32) + (wide & 0xFFFF_FFFF);
    let mut sum = ((wide >> 16) + (wide & 0xFFFF)) as u32;
    let mut chunks = chunks8.remainder().chunks_exact(2);
    for c in &mut chunks {
        sum += u16::from_be_bytes([c[0], c[1]]) as u32;
    }
    if let [last] = chunks.remainder() {
        sum += (*last as u32) << 8;
    }
    while sum >> 16 != 0 {
        sum = (sum & 0xFFFF) + (sum >> 16);
    }
    sum
}

/// Finalizes a folded sum into the checksum field value.
pub fn finish(sum: u32) -> u16 {
    !(sum as u16)
}

/// Computes the Internet checksum of a buffer in one call.
pub fn checksum(data: &[u8]) -> u16 {
    finish(ones_complement_sum(data, 0))
}

/// Builds the IPv4 pseudo-header partial sum used by UDP and TCP.
pub fn pseudo_header_sum(src: [u8; 4], dst: [u8; 4], proto: u8, len: u16) -> u32 {
    let mut sum = 0u32;
    sum += u16::from_be_bytes([src[0], src[1]]) as u32;
    sum += u16::from_be_bytes([src[2], src[3]]) as u32;
    sum += u16::from_be_bytes([dst[0], dst[1]]) as u32;
    sum += u16::from_be_bytes([dst[2], dst[3]]) as u32;
    sum += proto as u32;
    sum += len as u32;
    while sum >> 16 != 0 {
        sum = (sum & 0xFFFF) + (sum >> 16);
    }
    sum
}

/// Verifies a buffer whose checksum field is included: the folded sum of the
/// whole buffer must be `0xFFFF`.
pub fn verify(data: &[u8], pseudo: u32) -> bool {
    ones_complement_sum(data, pseudo) == 0xFFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc1071_reference_vector() {
        // Example from RFC 1071 §3: the sum of these words.
        let data = [0x00u8, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        let sum = ones_complement_sum(&data, 0);
        assert_eq!(sum, 0xddf2);
        assert_eq!(finish(sum), !0xddf2u16);
    }

    #[test]
    fn odd_length_pads_with_zero() {
        // [0x01, 0x02, 0x03] == words 0x0102, 0x0300
        assert_eq!(ones_complement_sum(&[1, 2, 3], 0), 0x0102 + 0x0300);
    }

    #[test]
    fn empty_buffer_checksum() {
        assert_eq!(checksum(&[]), 0xFFFF);
    }

    #[test]
    fn verify_roundtrip() {
        let mut buf = vec![0x45u8, 0x00, 0x00, 0x28, 0x1c, 0x46, 0x40, 0x00, 0x40, 0x06];
        buf.extend_from_slice(&[0x00, 0x00]); // checksum placeholder
        buf.extend_from_slice(&[10, 0, 0, 1, 10, 0, 0, 2]);
        let ck = checksum(&buf);
        buf[10..12].copy_from_slice(&ck.to_be_bytes());
        assert!(verify(&buf, 0));
        buf[0] ^= 0x10; // corrupt a nibble
        assert!(!verify(&buf, 0));
    }

    #[test]
    fn known_ipv4_header_checksum() {
        // Classic textbook example (Wikipedia IPv4 header checksum article).
        let hdr = [
            0x45u8, 0x00, 0x00, 0x73, 0x00, 0x00, 0x40, 0x00, 0x40, 0x11, 0x00, 0x00, 0xc0,
            0xa8, 0x00, 0x01, 0xc0, 0xa8, 0x00, 0xc7,
        ];
        assert_eq!(checksum(&hdr), 0xb861);
    }

    #[test]
    fn pseudo_header_folds() {
        let sum = pseudo_header_sum([192, 168, 0, 1], [192, 168, 0, 199], 17, 20);
        assert!(sum <= 0xFFFF);
    }
}
