//! `mflow-net` — network wire formats implemented from scratch.
//!
//! The simulator and the real-thread runtime operate on genuine packet
//! bytes: Ethernet II frames carrying IPv4, UDP, TCP and VXLAN (RFC 7348)
//! encapsulation, with real Internet checksums and the Toeplitz hash used
//! by RSS. This crate has no simulation logic; it is a standalone
//! encode/parse library.
//!
//! # Example
//!
//! ```
//! use mflow_net::frame::{OverlayFrameSpec, build_overlay_frame, parse_overlay_frame};
//! use mflow_net::flow::FlowKey;
//!
//! let spec = OverlayFrameSpec::example_tcp(1, 0, b"hello".to_vec());
//! let frame = build_overlay_frame(&spec);
//! let parsed = parse_overlay_frame(&frame).unwrap();
//! assert_eq!(parsed.payload, b"hello");
//! assert_eq!(parsed.inner_flow, FlowKey::from(&spec));
//! ```

pub mod checksum;
pub mod ethernet;
pub mod flow;
pub mod frame;
pub mod geneve;
pub mod ipv4;
pub mod pcap;
pub mod tcp;
pub mod toeplitz;
pub mod udp;
pub mod vxlan;

pub use ethernet::{EtherType, EthernetHeader, MacAddr};
pub use flow::FlowKey;
pub use ipv4::Ipv4Header;
pub use tcp::TcpHeader;
pub use udp::UdpHeader;
pub use vxlan::VxlanHeader;

/// Errors produced while parsing wire bytes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ParseError {
    /// Buffer shorter than the fixed header size.
    Truncated,
    /// A header field has an unsupported or inconsistent value.
    Malformed(&'static str),
    /// A checksum did not verify.
    BadChecksum(&'static str),
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::Truncated => write!(f, "buffer truncated"),
            ParseError::Malformed(what) => write!(f, "malformed {what}"),
            ParseError::BadChecksum(what) => write!(f, "bad checksum in {what}"),
        }
    }
}

impl std::error::Error for ParseError {}
