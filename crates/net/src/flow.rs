//! Flow identification: the 5-tuple key that steering policies hash.

use crate::frame::OverlayFrameSpec;
use crate::toeplitz;

/// Transport protocol of a flow.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Proto {
    Tcp,
    Udp,
}

/// A connection 5-tuple.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FlowKey {
    pub src_ip: [u8; 4],
    pub dst_ip: [u8; 4],
    pub src_port: u16,
    pub dst_port: u16,
    pub proto: Proto,
}

impl FlowKey {
    /// Creates a TCP flow key.
    pub fn tcp(src_ip: [u8; 4], src_port: u16, dst_ip: [u8; 4], dst_port: u16) -> Self {
        Self {
            src_ip,
            dst_ip,
            src_port,
            dst_port,
            proto: Proto::Tcp,
        }
    }

    /// Creates a UDP flow key.
    pub fn udp(src_ip: [u8; 4], src_port: u16, dst_ip: [u8; 4], dst_port: u16) -> Self {
        Self {
            src_ip,
            dst_ip,
            src_port,
            dst_port,
            proto: Proto::Udp,
        }
    }

    /// RSS (Toeplitz) hash of this flow's 4-tuple.
    pub fn rss_hash(&self) -> u32 {
        toeplitz::rss_hash_v4(self.src_ip, self.dst_ip, self.src_port, self.dst_port)
    }

    /// The reverse-direction key (for ACK traffic).
    pub fn reversed(&self) -> FlowKey {
        FlowKey {
            src_ip: self.dst_ip,
            dst_ip: self.src_ip,
            src_port: self.dst_port,
            dst_port: self.src_port,
            proto: self.proto,
        }
    }
}

impl From<&OverlayFrameSpec> for FlowKey {
    fn from(spec: &OverlayFrameSpec) -> Self {
        FlowKey {
            src_ip: spec.inner_src_ip,
            dst_ip: spec.inner_dst_ip,
            src_port: spec.inner_src_port,
            dst_port: spec.inner_dst_port,
            proto: spec.proto,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reversed_swaps_endpoints() {
        let k = FlowKey::tcp([1, 1, 1, 1], 10, [2, 2, 2, 2], 20);
        let r = k.reversed();
        assert_eq!(r.src_ip, [2, 2, 2, 2]);
        assert_eq!(r.dst_port, 10);
        assert_eq!(r.reversed(), k);
    }

    #[test]
    fn tcp_and_udp_keys_differ() {
        let t = FlowKey::tcp([1, 1, 1, 1], 10, [2, 2, 2, 2], 20);
        let u = FlowKey::udp([1, 1, 1, 1], 10, [2, 2, 2, 2], 20);
        assert_ne!(t, u);
    }

    #[test]
    fn hash_is_stable() {
        let k = FlowKey::udp([10, 1, 0, 5], 5353, [10, 1, 0, 6], 5353);
        assert_eq!(k.rss_hash(), k.rss_hash());
    }
}
