//! Toeplitz hash as used by NIC receive-side scaling (RSS).
//!
//! RSS computes this hash over the 4-tuple (src ip, dst ip, src port, dst
//! port) and indexes an indirection table with its low bits; all packets of
//! one flow therefore land on one core — the inter-flow parallelism whose
//! single-flow limitation motivates MFLOW.

/// The Microsoft-documented default 40-byte RSS key.
pub const MSFT_KEY: [u8; 40] = [
    0x6d, 0x5a, 0x56, 0xda, 0x25, 0x5b, 0x0e, 0xc2, 0x41, 0x67, 0x25, 0x3d, 0x43, 0xa3, 0x8f,
    0xb0, 0xd0, 0xca, 0x2b, 0xcb, 0xae, 0x7b, 0x30, 0xb4, 0x77, 0xcb, 0x2d, 0xa3, 0x80, 0x30,
    0xf2, 0x0c, 0x6a, 0x42, 0xb7, 0x3b, 0xbe, 0xac, 0x01, 0xfa,
];

/// Computes the Toeplitz hash of `input` with `key`.
///
/// For every bit set in the input (MSB first), the hash accumulates the
/// 32-bit window of the key starting at that bit position.
pub fn toeplitz_hash(key: &[u8], input: &[u8]) -> u32 {
    assert!(
        key.len() >= input.len() + 4,
        "key must cover input length + 32 bits"
    );
    let mut hash = 0u32;
    // Sliding 32-bit window of the key, starting at the first 4 bytes.
    let mut window = u32::from_be_bytes([key[0], key[1], key[2], key[3]]);
    let mut next_key_byte = 4usize;
    let mut next_bits = if next_key_byte < key.len() {
        key[next_key_byte] as u32
    } else {
        0
    };
    let mut bits_left = 8u32;
    for &byte in input {
        for bit in (0..8).rev() {
            if byte >> bit & 1 == 1 {
                hash ^= window;
            }
            // Shift the window left by one, pulling in the next key bit.
            window = (window << 1) | (next_bits >> (bits_left - 1) & 1);
            bits_left -= 1;
            if bits_left == 0 {
                next_key_byte += 1;
                next_bits = if next_key_byte < key.len() {
                    key[next_key_byte] as u32
                } else {
                    0
                };
                bits_left = 8;
            }
        }
    }
    hash
}

/// RSS hash over an IPv4 TCP/UDP 4-tuple using the Microsoft key.
pub fn rss_hash_v4(src_ip: [u8; 4], dst_ip: [u8; 4], src_port: u16, dst_port: u16) -> u32 {
    let mut input = [0u8; 12];
    input[0..4].copy_from_slice(&src_ip);
    input[4..8].copy_from_slice(&dst_ip);
    input[8..10].copy_from_slice(&src_port.to_be_bytes());
    input[10..12].copy_from_slice(&dst_port.to_be_bytes());
    toeplitz_hash(&MSFT_KEY, &input)
}

#[cfg(test)]
mod tests {
    use super::*;

    // Verification vectors from the Microsoft RSS documentation
    // ("Verifying the RSS Hash Calculation", IPv4 with TCP ports).
    #[test]
    fn msft_vector_1() {
        // 66.9.149.187:2794 -> 161.142.100.80:1766
        let h = rss_hash_v4([66, 9, 149, 187], [161, 142, 100, 80], 2794, 1766);
        assert_eq!(h, 0x51ccc178);
    }

    #[test]
    fn msft_vector_2() {
        // 199.92.111.2:14230 -> 65.69.140.83:4739
        let h = rss_hash_v4([199, 92, 111, 2], [65, 69, 140, 83], 14230, 4739);
        assert_eq!(h, 0xc626b0ea);
    }

    #[test]
    fn msft_vector_3() {
        // 24.19.198.95:12898 -> 12.22.207.184:38024
        let h = rss_hash_v4([24, 19, 198, 95], [12, 22, 207, 184], 12898, 38024);
        assert_eq!(h, 0x5c2b394a);
    }

    #[test]
    fn same_flow_same_hash() {
        let a = rss_hash_v4([10, 0, 0, 1], [10, 0, 0, 2], 1000, 2000);
        let b = rss_hash_v4([10, 0, 0, 1], [10, 0, 0, 2], 1000, 2000);
        assert_eq!(a, b);
    }

    #[test]
    fn different_port_different_hash() {
        let a = rss_hash_v4([10, 0, 0, 1], [10, 0, 0, 2], 1000, 2000);
        let b = rss_hash_v4([10, 0, 0, 1], [10, 0, 0, 2], 1001, 2000);
        assert_ne!(a, b);
    }

    #[test]
    fn zero_input_hashes_to_zero() {
        assert_eq!(toeplitz_hash(&MSFT_KEY, &[0u8; 12]), 0);
    }
}
