//! TCP header with pseudo-header checksum (no options beyond what the
//! simulator needs; window scale is applied out of band by the stack model).

use crate::checksum;
use crate::ipv4::PROTO_TCP;
use crate::ParseError;

/// TCP flag bits.
pub mod flags {
    pub const FIN: u8 = 0x01;
    pub const SYN: u8 = 0x02;
    pub const RST: u8 = 0x04;
    pub const PSH: u8 = 0x08;
    pub const ACK: u8 = 0x10;
}

/// A TCP header (data offset fixed at 5 words, no options).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TcpHeader {
    pub src_port: u16,
    pub dst_port: u16,
    pub seq: u32,
    pub ack: u32,
    pub flags: u8,
    pub window: u16,
    pub checksum: u16,
}

impl TcpHeader {
    /// Encoded size in bytes.
    pub const LEN: usize = 20;

    /// Builds a data segment header with a valid checksum.
    #[allow(clippy::too_many_arguments)] // mirrors the wire field order
    pub fn for_payload(
        src_port: u16,
        dst_port: u16,
        seq: u32,
        ack: u32,
        flags: u8,
        window: u16,
        src_ip: [u8; 4],
        dst_ip: [u8; 4],
        payload: &[u8],
    ) -> Self {
        let mut h = Self {
            src_port,
            dst_port,
            seq,
            ack,
            flags,
            window,
            checksum: 0,
        };
        let len = (Self::LEN + payload.len()) as u16;
        let pseudo = checksum::pseudo_header_sum(src_ip, dst_ip, PROTO_TCP, len);
        let mut bytes = Vec::with_capacity(Self::LEN + payload.len());
        h.encode(&mut bytes);
        bytes.extend_from_slice(payload);
        h.checksum = checksum::finish(checksum::ones_complement_sum(&bytes, pseudo));
        h
    }

    /// Writes the header into `out`.
    pub fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.src_port.to_be_bytes());
        out.extend_from_slice(&self.dst_port.to_be_bytes());
        out.extend_from_slice(&self.seq.to_be_bytes());
        out.extend_from_slice(&self.ack.to_be_bytes());
        out.push(5 << 4); // data offset = 5 words
        out.push(self.flags);
        out.extend_from_slice(&self.window.to_be_bytes());
        out.extend_from_slice(&self.checksum.to_be_bytes());
        out.extend_from_slice(&[0, 0]); // urgent pointer
    }

    /// Parses a header from the front of `buf`.
    pub fn parse(buf: &[u8]) -> Result<(Self, &[u8]), ParseError> {
        if buf.len() < Self::LEN {
            return Err(ParseError::Truncated);
        }
        let data_off = (buf[12] >> 4) as usize * 4;
        if data_off < Self::LEN || buf.len() < data_off {
            return Err(ParseError::Malformed("tcp data offset"));
        }
        Ok((
            Self {
                src_port: u16::from_be_bytes([buf[0], buf[1]]),
                dst_port: u16::from_be_bytes([buf[2], buf[3]]),
                seq: u32::from_be_bytes([buf[4], buf[5], buf[6], buf[7]]),
                ack: u32::from_be_bytes([buf[8], buf[9], buf[10], buf[11]]),
                flags: buf[13],
                window: u16::from_be_bytes([buf[14], buf[15]]),
                checksum: u16::from_be_bytes([buf[16], buf[17]]),
            },
            &buf[data_off..],
        ))
    }

    /// Verifies the checksum of header + payload against the pseudo-header.
    ///
    /// Allocation-free: the header's wire words are folded straight into
    /// the running sum (they are the same big-endian u16s `encode` would
    /// emit — including the `data offset | flags` word and the zero
    /// urgent pointer), and the payload is summed in place. The header
    /// is an even number of bytes, so the payload's word alignment is
    /// unchanged.
    pub fn verify(&self, src_ip: [u8; 4], dst_ip: [u8; 4], payload: &[u8]) -> bool {
        let len = (Self::LEN + payload.len()) as u16;
        let pseudo = checksum::pseudo_header_sum(src_ip, dst_ip, PROTO_TCP, len);
        let header = pseudo
            + self.src_port as u32
            + self.dst_port as u32
            + (self.seq >> 16)
            + (self.seq & 0xFFFF)
            + (self.ack >> 16)
            + (self.ack & 0xFFFF)
            + (((5u32 << 4) << 8) | self.flags as u32)
            + self.window as u32
            + self.checksum as u32;
        checksum::ones_complement_sum(payload, header) == 0xFFFF
    }

    /// True if the ACK flag is set.
    pub fn is_ack(&self) -> bool {
        self.flags & flags::ACK != 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: [u8; 4] = [172, 17, 0, 2];
    const DST: [u8; 4] = [172, 17, 0, 3];

    #[test]
    fn roundtrip_and_verify() {
        let payload = vec![0xAB; 1448];
        let h = TcpHeader::for_payload(
            45000,
            5001,
            123456,
            654321,
            flags::ACK | flags::PSH,
            0xFFFF,
            SRC,
            DST,
            &payload,
        );
        let mut buf = Vec::new();
        h.encode(&mut buf);
        assert_eq!(buf.len(), TcpHeader::LEN);
        let (parsed, rest) = TcpHeader::parse(&buf).unwrap();
        assert_eq!(parsed, h);
        assert!(rest.is_empty());
        assert!(parsed.verify(SRC, DST, &payload));
        assert!(parsed.is_ack());
    }

    #[test]
    fn corrupt_seq_fails_verify() {
        let h = TcpHeader::for_payload(1, 2, 100, 0, flags::ACK, 1000, SRC, DST, b"xyz");
        let mut tampered = h;
        tampered.seq += 1;
        assert!(!tampered.verify(SRC, DST, b"xyz"));
    }

    #[test]
    fn truncated_parse() {
        assert_eq!(TcpHeader::parse(&[0; 19]).unwrap_err(), ParseError::Truncated);
    }

    #[test]
    fn bad_data_offset_rejected() {
        let mut buf = vec![0u8; 20];
        buf[12] = 3 << 4; // offset 12 bytes < minimum 20
        assert!(matches!(
            TcpHeader::parse(&buf),
            Err(ParseError::Malformed("tcp data offset"))
        ));
    }

    #[test]
    fn seq_wraparound_encodes() {
        let h = TcpHeader::for_payload(1, 2, u32::MAX, 0, 0, 0, SRC, DST, &[]);
        let mut buf = Vec::new();
        h.encode(&mut buf);
        let (parsed, _) = TcpHeader::parse(&buf).unwrap();
        assert_eq!(parsed.seq, u32::MAX);
    }
}
