//! Whole-frame construction and parsing for the container overlay network.
//!
//! An overlay frame on the wire is:
//!
//! ```text
//! outer Ethernet / outer IPv4 / outer UDP (dst 4789) / VXLAN /
//!     inner Ethernet / inner IPv4 / TCP-or-UDP / payload
//! ```
//!
//! A native frame omits everything up to and including the VXLAN header.

use crate::ethernet::{EtherType, EthernetHeader, MacAddr};
use crate::flow::{FlowKey, Proto};
use crate::ipv4::{Ipv4Header, PROTO_TCP, PROTO_UDP};
use crate::tcp::{flags, TcpHeader};
use crate::geneve::{GeneveHeader, GENEVE_PORT};
use crate::udp::UdpHeader;
use crate::vxlan::{VxlanHeader, VXLAN_PORT};
use crate::ParseError;

/// Everything needed to build one overlay frame.
#[derive(Clone, Debug)]
pub struct OverlayFrameSpec {
    pub outer_src_mac: MacAddr,
    pub outer_dst_mac: MacAddr,
    pub outer_src_ip: [u8; 4],
    pub outer_dst_ip: [u8; 4],
    /// Outer UDP source port (VXLAN entropy port, derived from inner hash).
    pub outer_src_port: u16,
    pub vni: u32,
    pub inner_src_mac: MacAddr,
    pub inner_dst_mac: MacAddr,
    pub inner_src_ip: [u8; 4],
    pub inner_dst_ip: [u8; 4],
    pub inner_src_port: u16,
    pub inner_dst_port: u16,
    pub proto: Proto,
    /// TCP sequence number (ignored for UDP).
    pub tcp_seq: u32,
    pub payload: Vec<u8>,
}

impl OverlayFrameSpec {
    /// A ready-made TCP spec for tests and examples: container `a` on host
    /// 10.0.0.1 talking to container `b` on host 10.0.0.2, VNI 42.
    pub fn example_tcp(a: u64, seq: u32, payload: Vec<u8>) -> Self {
        Self {
            outer_src_mac: MacAddr::local(1000 + a),
            outer_dst_mac: MacAddr::local(2000),
            outer_src_ip: [10, 0, 0, 1],
            outer_dst_ip: [10, 0, 0, 2],
            outer_src_port: 49152 + a as u16,
            vni: 42,
            inner_src_mac: MacAddr::local(a),
            inner_dst_mac: MacAddr::local(99),
            inner_src_ip: [172, 17, 0, 2],
            inner_dst_ip: [172, 17, 0, 3],
            inner_src_port: 40000 + a as u16,
            inner_dst_port: 5201,
            proto: Proto::Tcp,
            tcp_seq: seq,
            payload,
        }
    }

    /// A ready-made UDP spec (same topology as [`Self::example_tcp`]).
    pub fn example_udp(a: u64, payload: Vec<u8>) -> Self {
        let mut s = Self::example_tcp(a, 0, payload);
        s.proto = Proto::Udp;
        s
    }
}

/// Total overlay header overhead in bytes (all headers, both layers).
pub const OVERLAY_HEADER_BYTES: usize = EthernetHeader::LEN
    + Ipv4Header::LEN
    + UdpHeader::LEN
    + VxlanHeader::LEN
    + EthernetHeader::LEN
    + Ipv4Header::LEN
    + TcpHeader::LEN;

/// Builds the inner frame (Ethernet/IPv4/transport/payload).
fn build_inner(spec: &OverlayFrameSpec) -> Vec<u8> {
    let mut inner = Vec::with_capacity(64 + spec.payload.len());
    EthernetHeader {
        dst: spec.inner_dst_mac,
        src: spec.inner_src_mac,
        ethertype: EtherType::Ipv4,
    }
    .encode(&mut inner);
    match spec.proto {
        Proto::Tcp => {
            let ip = Ipv4Header::simple(
                spec.inner_src_ip,
                spec.inner_dst_ip,
                PROTO_TCP,
                TcpHeader::LEN + spec.payload.len(),
            );
            ip.encode(&mut inner);
            TcpHeader::for_payload(
                spec.inner_src_port,
                spec.inner_dst_port,
                spec.tcp_seq,
                0,
                flags::ACK,
                0xFFFF,
                spec.inner_src_ip,
                spec.inner_dst_ip,
                &spec.payload,
            )
            .encode(&mut inner);
        }
        Proto::Udp => {
            let ip = Ipv4Header::simple(
                spec.inner_src_ip,
                spec.inner_dst_ip,
                PROTO_UDP,
                UdpHeader::LEN + spec.payload.len(),
            );
            ip.encode(&mut inner);
            UdpHeader::for_payload(
                spec.inner_src_port,
                spec.inner_dst_port,
                spec.inner_src_ip,
                spec.inner_dst_ip,
                &spec.payload,
            )
            .encode(&mut inner);
        }
    }
    inner.extend_from_slice(&spec.payload);
    inner
}

/// Builds a complete VXLAN-encapsulated overlay frame.
pub fn build_overlay_frame(spec: &OverlayFrameSpec) -> Vec<u8> {
    let mut frame = Vec::new();
    build_overlay_frame_into(spec, &mut frame);
    frame
}

/// Builds a VXLAN overlay frame into `out` (cleared first), so a caller
/// streaming frames into a buffer pool can reuse one scratch vector
/// instead of allocating per frame.
pub fn build_overlay_frame_into(spec: &OverlayFrameSpec, out: &mut Vec<u8>) {
    let mut tunnel_payload = Vec::new();
    VxlanHeader::new(spec.vni).encode(&mut tunnel_payload);
    encapsulate_into(spec, VXLAN_PORT, tunnel_payload, out);
}

/// Builds a Geneve-encapsulated overlay frame (RFC 8926) with the same
/// inner packet — MFLOW's stateless-path mechanisms are tunnel-agnostic.
pub fn build_geneve_frame(spec: &OverlayFrameSpec) -> Vec<u8> {
    let mut frame = Vec::new();
    build_geneve_frame_into(spec, &mut frame);
    frame
}

/// Geneve counterpart of [`build_overlay_frame_into`].
pub fn build_geneve_frame_into(spec: &OverlayFrameSpec, out: &mut Vec<u8>) {
    let mut tunnel_payload = Vec::new();
    GeneveHeader::new(spec.vni).encode(&mut tunnel_payload);
    encapsulate_into(spec, GENEVE_PORT, tunnel_payload, out);
}

/// Wraps the inner frame in outer Ethernet/IPv4/UDP around the given
/// tunnel header bytes, writing the wire frame into `out`.
fn encapsulate_into(
    spec: &OverlayFrameSpec,
    dst_port: u16,
    mut tunnel_payload: Vec<u8>,
    frame: &mut Vec<u8>,
) {
    let inner = build_inner(spec);
    tunnel_payload.extend_from_slice(&inner);

    frame.clear();
    frame.reserve(EthernetHeader::LEN + Ipv4Header::LEN + UdpHeader::LEN + tunnel_payload.len());
    EthernetHeader {
        dst: spec.outer_dst_mac,
        src: spec.outer_src_mac,
        ethertype: EtherType::Ipv4,
    }
    .encode(frame);
    Ipv4Header::simple(
        spec.outer_src_ip,
        spec.outer_dst_ip,
        PROTO_UDP,
        UdpHeader::LEN + tunnel_payload.len(),
    )
    .encode(frame);
    UdpHeader::for_payload(
        spec.outer_src_port,
        dst_port,
        spec.outer_src_ip,
        spec.outer_dst_ip,
        &tunnel_payload,
    )
    .encode(frame);
    frame.extend_from_slice(&tunnel_payload);
}

/// Builds a native (non-encapsulated) frame with the inner addressing.
pub fn build_native_frame(spec: &OverlayFrameSpec) -> Vec<u8> {
    build_inner(spec)
}

/// The result of parsing an overlay frame down to the application payload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParsedOverlay {
    pub outer_flow: FlowKey,
    /// Outer Ethernet addressing (the host NICs).
    pub outer_src_mac: MacAddr,
    pub outer_dst_mac: MacAddr,
    pub vni: u32,
    pub inner_flow: FlowKey,
    /// Inner Ethernet addressing (the veth endpoints; the virtual bridge
    /// forwards on `inner_dst_mac`).
    pub inner_src_mac: MacAddr,
    pub inner_dst_mac: MacAddr,
    /// TCP sequence number (zero for UDP).
    pub tcp_seq: u32,
    pub payload: Vec<u8>,
}

/// The borrowed view [`parse_overlay_frame_ref`] returns: identical header
/// fields to [`ParsedOverlay`], but the payload is a slice into the frame
/// buffer — the zero-copy shape the runtime's per-packet work runs on.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParsedOverlayRef<'a> {
    pub outer_flow: FlowKey,
    /// Outer Ethernet addressing (the host NICs).
    pub outer_src_mac: MacAddr,
    pub outer_dst_mac: MacAddr,
    pub vni: u32,
    pub inner_flow: FlowKey,
    /// Inner Ethernet addressing (the veth endpoints; the virtual bridge
    /// forwards on `inner_dst_mac`).
    pub inner_src_mac: MacAddr,
    pub inner_dst_mac: MacAddr,
    /// TCP sequence number (zero for UDP).
    pub tcp_seq: u32,
    /// The decapsulated application payload, borrowed from the frame.
    pub payload: &'a [u8],
}

impl ParsedOverlayRef<'_> {
    /// Copies the view into an owned [`ParsedOverlay`].
    pub fn to_parsed(&self) -> ParsedOverlay {
        ParsedOverlay {
            outer_flow: self.outer_flow,
            outer_src_mac: self.outer_src_mac,
            outer_dst_mac: self.outer_dst_mac,
            vni: self.vni,
            inner_flow: self.inner_flow,
            inner_src_mac: self.inner_src_mac,
            inner_dst_mac: self.inner_dst_mac,
            tcp_seq: self.tcp_seq,
            payload: self.payload.to_vec(),
        }
    }
}

/// Parses and fully verifies an overlay frame, allocating an owned copy of
/// the payload. Re-expressed over [`parse_overlay_frame_ref`]; callers on
/// a hot path should use the borrowed view directly.
pub fn parse_overlay_frame(frame: &[u8]) -> Result<ParsedOverlay, ParseError> {
    parse_overlay_frame_ref(frame).map(|r| r.to_parsed())
}

/// Parses and fully verifies an overlay frame without copying: outer IP
/// checksum, outer UDP checksum, tunnel header (VXLAN or Geneve, selected
/// by the outer UDP destination port), inner IP checksum, inner transport
/// checksum. The returned payload borrows from `frame`.
///
/// This is the byte-level ground truth the simulator's decapsulation stage
/// models the cost of.
pub fn parse_overlay_frame_ref(frame: &[u8]) -> Result<ParsedOverlayRef<'_>, ParseError> {
    let (outer_eth, rest) = EthernetHeader::parse(frame)?;
    if outer_eth.ethertype != EtherType::Ipv4 {
        return Err(ParseError::Malformed("outer ethertype"));
    }
    let (outer_ip, rest) = Ipv4Header::parse(rest)?;
    if outer_ip.protocol != PROTO_UDP {
        return Err(ParseError::Malformed("outer protocol"));
    }
    let (outer_udp, rest) = UdpHeader::parse(rest)?;
    let udp_payload_len = outer_udp.length as usize - UdpHeader::LEN;
    if rest.len() < udp_payload_len {
        return Err(ParseError::Truncated);
    }
    let udp_payload = &rest[..udp_payload_len];
    if !outer_udp.verify(outer_ip.src, outer_ip.dst, udp_payload) {
        return Err(ParseError::BadChecksum("outer udp"));
    }
    let (vni, inner) = match outer_udp.dst_port {
        VXLAN_PORT => {
            let (vxlan, inner) = VxlanHeader::parse(udp_payload)?;
            (vxlan.vni, inner)
        }
        GENEVE_PORT => {
            let (geneve, inner) = GeneveHeader::parse(udp_payload)?;
            (geneve.vni, inner)
        }
        _ => return Err(ParseError::Malformed("tunnel port")),
    };

    let (inner_eth, rest) = EthernetHeader::parse(inner)?;
    if inner_eth.ethertype != EtherType::Ipv4 {
        return Err(ParseError::Malformed("inner ethertype"));
    }
    let (inner_ip, rest) = Ipv4Header::parse(rest)?;
    let (inner_flow, tcp_seq, payload) = match inner_ip.protocol {
        PROTO_TCP => {
            let (tcp, payload) = TcpHeader::parse(rest)?;
            if !tcp.verify(inner_ip.src, inner_ip.dst, payload) {
                return Err(ParseError::BadChecksum("inner tcp"));
            }
            (
                FlowKey::tcp(inner_ip.src, tcp.src_port, inner_ip.dst, tcp.dst_port),
                tcp.seq,
                payload,
            )
        }
        PROTO_UDP => {
            let (udp, payload) = UdpHeader::parse(rest)?;
            let plen = udp.length as usize - UdpHeader::LEN;
            if payload.len() < plen {
                return Err(ParseError::Truncated);
            }
            let payload = &payload[..plen];
            if !udp.verify(inner_ip.src, inner_ip.dst, payload) {
                return Err(ParseError::BadChecksum("inner udp"));
            }
            (
                FlowKey::udp(inner_ip.src, udp.src_port, inner_ip.dst, udp.dst_port),
                0,
                payload,
            )
        }
        _ => return Err(ParseError::Malformed("inner protocol")),
    };
    Ok(ParsedOverlayRef {
        outer_flow: FlowKey::udp(
            outer_ip.src,
            outer_udp.src_port,
            outer_ip.dst,
            outer_udp.dst_port,
        ),
        outer_src_mac: outer_eth.src,
        outer_dst_mac: outer_eth.dst,
        vni,
        inner_flow,
        inner_src_mac: inner_eth.src,
        inner_dst_mac: inner_eth.dst,
        tcp_seq,
        payload,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tcp_overlay_roundtrip() {
        let spec = OverlayFrameSpec::example_tcp(3, 777, b"payload bytes".to_vec());
        let frame = build_overlay_frame(&spec);
        let parsed = parse_overlay_frame(&frame).unwrap();
        assert_eq!(parsed.vni, 42);
        assert_eq!(parsed.tcp_seq, 777);
        assert_eq!(parsed.payload, b"payload bytes");
        assert_eq!(parsed.inner_flow, FlowKey::from(&spec));
        assert_eq!(parsed.outer_flow.dst_port, VXLAN_PORT);
    }

    #[test]
    fn geneve_overlay_roundtrip() {
        let spec = OverlayFrameSpec::example_tcp(4, 99, b"geneve inner".to_vec());
        let frame = build_geneve_frame(&spec);
        let parsed = parse_overlay_frame(&frame).unwrap();
        assert_eq!(parsed.vni, 42);
        assert_eq!(parsed.tcp_seq, 99);
        assert_eq!(parsed.payload, b"geneve inner");
        assert_eq!(parsed.outer_flow.dst_port, crate::geneve::GENEVE_PORT);
        // Same inner packet, different tunnel: both formats coexist.
        let vxlan = build_overlay_frame(&spec);
        assert_eq!(parse_overlay_frame(&vxlan).unwrap().payload, parsed.payload);
    }

    #[test]
    fn udp_overlay_roundtrip() {
        let spec = OverlayFrameSpec::example_udp(5, vec![9u8; 1400]);
        let frame = build_overlay_frame(&spec);
        let parsed = parse_overlay_frame(&frame).unwrap();
        assert_eq!(parsed.payload.len(), 1400);
        assert_eq!(parsed.inner_flow.proto, Proto::Udp);
    }

    #[test]
    fn corrupting_any_byte_is_detected_or_changes_output() {
        let spec = OverlayFrameSpec::example_tcp(1, 1, b"integrity".to_vec());
        let frame = build_overlay_frame(&spec);
        let reference = parse_overlay_frame(&frame).unwrap();
        // Flipping a payload byte must fail a checksum.
        let mut bad = frame.clone();
        let n = bad.len();
        bad[n - 3] ^= 0xFF;
        match parse_overlay_frame(&bad) {
            Err(_) => {}
            Ok(p) => assert_ne!(p, reference, "corruption silently accepted"),
        }
    }

    #[test]
    fn ref_parser_agrees_with_owned_and_borrows_from_the_frame() {
        for build in [build_overlay_frame, build_geneve_frame] {
            let spec = OverlayFrameSpec::example_tcp(2, 55, b"zero copy".to_vec());
            let frame = build(&spec);
            let r = parse_overlay_frame_ref(&frame).unwrap();
            assert_eq!(r.to_parsed(), parse_overlay_frame(&frame).unwrap());
            // The payload is a true slice into the frame allocation.
            let base = frame.as_ptr() as usize;
            let p = r.payload.as_ptr() as usize;
            assert!(p >= base && p + r.payload.len() <= base + frame.len());
        }
    }

    #[test]
    fn build_into_reuses_the_scratch_vec() {
        let mut scratch = Vec::new();
        let a = OverlayFrameSpec::example_tcp(1, 1, vec![1; 32]);
        build_overlay_frame_into(&a, &mut scratch);
        assert_eq!(scratch, build_overlay_frame(&a));
        let b = OverlayFrameSpec::example_udp(9, vec![2; 1000]);
        build_geneve_frame_into(&b, &mut scratch);
        assert_eq!(scratch, build_geneve_frame(&b));
    }

    #[test]
    fn native_frame_is_smaller_by_overlay_overhead() {
        let spec = OverlayFrameSpec::example_tcp(1, 0, vec![0u8; 100]);
        let overlay = build_overlay_frame(&spec);
        let native = build_native_frame(&spec);
        let overhead = overlay.len() - native.len();
        // outer eth + outer ip + outer udp + vxlan = 14 + 20 + 8 + 8 = 50
        assert_eq!(overhead, 50);
    }

    #[test]
    fn truncated_frame_rejected() {
        let spec = OverlayFrameSpec::example_udp(1, vec![1u8; 64]);
        let frame = build_overlay_frame(&spec);
        for cut in [10, 30, 50, 70] {
            assert!(parse_overlay_frame(&frame[..cut]).is_err());
        }
    }

    #[test]
    fn wrong_vxlan_port_rejected() {
        let spec = OverlayFrameSpec::example_udp(1, vec![1u8; 8]);
        let mut frame = build_overlay_frame(&spec);
        // Outer UDP dst port lives right after eth(14)+ip(20)+src_port(2).
        frame[36] = 0x12;
        frame[37] = 0x34;
        assert!(parse_overlay_frame(&frame).is_err());
    }
}
