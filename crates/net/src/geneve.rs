//! Geneve encapsulation (RFC 8926) — the other mainstream overlay format
//! (OVN, newer OpenStack/NSX deployments). MFLOW's splitting mechanisms
//! are encapsulation-agnostic: everything between the driver and the
//! transport layer is stateless regardless of whether the tunnel header is
//! VXLAN or Geneve, so this crate supports both on the wire.

use crate::ParseError;

/// The IANA-assigned Geneve UDP port.
pub const GENEVE_PORT: u16 = 6081;

/// Ethernet protocol type carried by our Geneve frames (Trans-Ether
/// bridging, i.e. an inner Ethernet frame).
pub const PROTO_ETHERNET: u16 = 0x6558;

/// One Geneve TLV option.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GeneveOption {
    pub class: u16,
    pub option_type: u8,
    /// Payload; length must be a multiple of 4 bytes, at most 124.
    pub data: Vec<u8>,
}

/// A Geneve header: 8 fixed bytes, 24-bit VNI, variable-length options.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GeneveHeader {
    pub vni: u32,
    /// O bit: control packet.
    pub control: bool,
    /// C bit: options MUST be parsed.
    pub critical: bool,
    pub options: Vec<GeneveOption>,
}

impl GeneveHeader {
    /// Fixed header size in bytes (without options).
    pub const BASE_LEN: usize = 8;

    /// Creates a data header for the given VNI with no options.
    ///
    /// # Panics
    /// Panics if `vni` does not fit in 24 bits.
    pub fn new(vni: u32) -> Self {
        assert!(vni < (1 << 24), "VNI must be 24-bit");
        Self {
            vni,
            control: false,
            critical: false,
            options: Vec::new(),
        }
    }

    /// Adds a TLV option.
    ///
    /// # Panics
    /// Panics if the option payload is not 4-byte aligned or too long.
    pub fn with_option(mut self, class: u16, option_type: u8, data: Vec<u8>) -> Self {
        assert!(data.len().is_multiple_of(4) && data.len() <= 124, "bad option length");
        self.options.push(GeneveOption {
            class,
            option_type,
            data,
        });
        self
    }

    /// Encoded size including options.
    pub fn len(&self) -> usize {
        Self::BASE_LEN + self.options.iter().map(|o| 4 + o.data.len()).sum::<usize>()
    }

    /// True only for the (impossible) zero-size case; headers are never
    /// empty.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Writes the header into `out`.
    pub fn encode(&self, out: &mut Vec<u8>) {
        let opt_words = (self.len() - Self::BASE_LEN) / 4;
        assert!(opt_words < 64, "options exceed 6-bit length field");
        out.push(opt_words as u8); // version 0 in the top 2 bits
        let mut flags = 0u8;
        if self.control {
            flags |= 0x80;
        }
        if self.critical {
            flags |= 0x40;
        }
        out.push(flags);
        out.extend_from_slice(&PROTO_ETHERNET.to_be_bytes());
        let vni = self.vni << 8;
        out.extend_from_slice(&vni.to_be_bytes());
        for o in &self.options {
            out.extend_from_slice(&o.class.to_be_bytes());
            out.push(o.option_type);
            out.push((o.data.len() / 4) as u8);
            out.extend_from_slice(&o.data);
        }
    }

    /// Parses a header from the front of `buf`.
    pub fn parse(buf: &[u8]) -> Result<(Self, &[u8]), ParseError> {
        if buf.len() < Self::BASE_LEN {
            return Err(ParseError::Truncated);
        }
        if buf[0] >> 6 != 0 {
            return Err(ParseError::Malformed("geneve version"));
        }
        let opt_len = (buf[0] & 0x3F) as usize * 4;
        let control = buf[1] & 0x80 != 0;
        let critical = buf[1] & 0x40 != 0;
        let proto = u16::from_be_bytes([buf[2], buf[3]]);
        if proto != PROTO_ETHERNET {
            return Err(ParseError::Malformed("geneve protocol"));
        }
        let vni = u32::from_be_bytes([0, buf[4], buf[5], buf[6]]);
        if buf.len() < Self::BASE_LEN + opt_len {
            return Err(ParseError::Truncated);
        }
        let mut options = Vec::new();
        let mut rest = &buf[Self::BASE_LEN..Self::BASE_LEN + opt_len];
        while !rest.is_empty() {
            if rest.len() < 4 {
                return Err(ParseError::Malformed("geneve option header"));
            }
            let class = u16::from_be_bytes([rest[0], rest[1]]);
            let option_type = rest[2];
            let dlen = (rest[3] & 0x1F) as usize * 4;
            if rest.len() < 4 + dlen {
                return Err(ParseError::Malformed("geneve option length"));
            }
            options.push(GeneveOption {
                class,
                option_type,
                data: rest[4..4 + dlen].to_vec(),
            });
            rest = &rest[4 + dlen..];
        }
        Ok((
            Self {
                vni,
                control,
                critical,
                options,
            },
            &buf[Self::BASE_LEN + opt_len..],
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_no_options() {
        let h = GeneveHeader::new(0xABCDE);
        let mut buf = Vec::new();
        h.encode(&mut buf);
        assert_eq!(buf.len(), GeneveHeader::BASE_LEN);
        let (parsed, rest) = GeneveHeader::parse(&buf).unwrap();
        assert_eq!(parsed, h);
        assert!(rest.is_empty());
    }

    #[test]
    fn roundtrip_with_options() {
        let h = GeneveHeader::new(7)
            .with_option(0x0102, 0x80, vec![1, 2, 3, 4])
            .with_option(0x0103, 0x01, vec![9, 9, 9, 9, 8, 8, 8, 8]);
        let mut buf = Vec::new();
        h.encode(&mut buf);
        assert_eq!(buf.len(), 8 + 8 + 12);
        let (parsed, rest) = GeneveHeader::parse(&buf).unwrap();
        assert_eq!(parsed, h);
        assert!(rest.is_empty());
    }

    #[test]
    fn trailing_payload_passes_through() {
        let h = GeneveHeader::new(1);
        let mut buf = Vec::new();
        h.encode(&mut buf);
        buf.extend_from_slice(b"inner frame");
        let (_, rest) = GeneveHeader::parse(&buf).unwrap();
        assert_eq!(rest, b"inner frame");
    }

    #[test]
    fn wrong_version_rejected() {
        let mut buf = vec![0u8; 8];
        GeneveHeader::new(1).encode(&mut { buf.clear(); buf });
        let mut buf2 = Vec::new();
        GeneveHeader::new(1).encode(&mut buf2);
        buf2[0] |= 0x40; // version 1
        assert!(matches!(
            GeneveHeader::parse(&buf2),
            Err(ParseError::Malformed("geneve version"))
        ));
    }

    #[test]
    fn truncated_options_rejected() {
        let h = GeneveHeader::new(2).with_option(1, 2, vec![0; 8]);
        let mut buf = Vec::new();
        h.encode(&mut buf);
        assert!(GeneveHeader::parse(&buf[..10]).is_err());
    }

    #[test]
    #[should_panic(expected = "bad option length")]
    fn unaligned_option_panics() {
        GeneveHeader::new(1).with_option(1, 1, vec![0; 3]);
    }

    #[test]
    fn control_and_critical_flags_roundtrip() {
        let mut h = GeneveHeader::new(3);
        h.control = true;
        h.critical = true;
        let mut buf = Vec::new();
        h.encode(&mut buf);
        let (parsed, _) = GeneveHeader::parse(&buf).unwrap();
        assert!(parsed.control && parsed.critical);
    }
}
