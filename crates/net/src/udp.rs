//! UDP header with pseudo-header checksum (RFC 768).

use crate::checksum;
use crate::ipv4::PROTO_UDP;
use crate::ParseError;

/// A UDP header.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct UdpHeader {
    pub src_port: u16,
    pub dst_port: u16,
    /// Header + payload length.
    pub length: u16,
    pub checksum: u16,
}

impl UdpHeader {
    /// Encoded size in bytes.
    pub const LEN: usize = 8;

    /// Builds a header for `payload` and computes the checksum over the
    /// IPv4 pseudo-header, the header and the payload.
    pub fn for_payload(
        src_port: u16,
        dst_port: u16,
        src_ip: [u8; 4],
        dst_ip: [u8; 4],
        payload: &[u8],
    ) -> Self {
        let length = (Self::LEN + payload.len()) as u16;
        let mut h = Self {
            src_port,
            dst_port,
            length,
            checksum: 0,
        };
        let pseudo = checksum::pseudo_header_sum(src_ip, dst_ip, PROTO_UDP, length);
        let mut bytes = Vec::with_capacity(Self::LEN + payload.len());
        h.encode(&mut bytes);
        bytes.extend_from_slice(payload);
        let mut ck = checksum::finish(checksum::ones_complement_sum(&bytes, pseudo));
        if ck == 0 {
            ck = 0xFFFF; // RFC 768: zero checksum means "not computed"
        }
        h.checksum = ck;
        h
    }

    /// Writes the header into `out`.
    pub fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.src_port.to_be_bytes());
        out.extend_from_slice(&self.dst_port.to_be_bytes());
        out.extend_from_slice(&self.length.to_be_bytes());
        out.extend_from_slice(&self.checksum.to_be_bytes());
    }

    /// Parses a header from the front of `buf`.
    pub fn parse(buf: &[u8]) -> Result<(Self, &[u8]), ParseError> {
        if buf.len() < Self::LEN {
            return Err(ParseError::Truncated);
        }
        let h = Self {
            src_port: u16::from_be_bytes([buf[0], buf[1]]),
            dst_port: u16::from_be_bytes([buf[2], buf[3]]),
            length: u16::from_be_bytes([buf[4], buf[5]]),
            checksum: u16::from_be_bytes([buf[6], buf[7]]),
        };
        if (h.length as usize) < Self::LEN {
            return Err(ParseError::Malformed("udp length"));
        }
        Ok((h, &buf[Self::LEN..]))
    }

    /// Verifies the checksum of header + payload against the pseudo-header.
    ///
    /// Allocation-free: the header's wire words are folded straight into
    /// the running sum (they are the same big-endian u16s `encode` would
    /// emit), and the payload is summed in place. The header is an even
    /// number of bytes, so the payload's word alignment is unchanged.
    pub fn verify(&self, src_ip: [u8; 4], dst_ip: [u8; 4], payload: &[u8]) -> bool {
        if self.checksum == 0 {
            return true; // checksum not computed by sender
        }
        let pseudo = checksum::pseudo_header_sum(src_ip, dst_ip, PROTO_UDP, self.length);
        let header = pseudo
            + self.src_port as u32
            + self.dst_port as u32
            + self.length as u32
            + self.checksum as u32;
        checksum::ones_complement_sum(payload, header) == 0xFFFF
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: [u8; 4] = [192, 168, 10, 1];
    const DST: [u8; 4] = [192, 168, 10, 2];

    #[test]
    fn roundtrip_and_verify() {
        let payload = b"mflow udp payload";
        let h = UdpHeader::for_payload(4789, 4789, SRC, DST, payload);
        let mut buf = Vec::new();
        h.encode(&mut buf);
        let (parsed, rest) = UdpHeader::parse(&buf).unwrap();
        assert_eq!(parsed, h);
        assert!(rest.is_empty());
        assert!(parsed.verify(SRC, DST, payload));
    }

    #[test]
    fn corrupt_payload_fails_verify() {
        let payload = b"data".to_vec();
        let h = UdpHeader::for_payload(1, 2, SRC, DST, &payload);
        let mut bad = payload.clone();
        bad[0] ^= 0x01;
        assert!(!h.verify(SRC, DST, &bad));
    }

    #[test]
    fn zero_checksum_skips_verify() {
        let h = UdpHeader {
            src_port: 1,
            dst_port: 2,
            length: 8,
            checksum: 0,
        };
        assert!(h.verify(SRC, DST, &[]));
    }

    #[test]
    fn truncated_parse() {
        assert_eq!(UdpHeader::parse(&[0; 7]).unwrap_err(), ParseError::Truncated);
    }

    #[test]
    fn bad_length_rejected() {
        let buf = [0, 1, 0, 2, 0, 3, 0, 0]; // length=3 < 8
        assert!(matches!(
            UdpHeader::parse(&buf),
            Err(ParseError::Malformed("udp length"))
        ));
    }
}
