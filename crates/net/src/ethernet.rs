//! Ethernet II framing.

use crate::ParseError;

/// A 48-bit MAC address.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MacAddr(pub [u8; 6]);

impl MacAddr {
    /// The broadcast address `ff:ff:ff:ff:ff:ff`.
    pub const BROADCAST: MacAddr = MacAddr([0xFF; 6]);

    /// Deterministic locally-administered unicast address for entity `id`.
    pub fn local(id: u64) -> Self {
        let b = id.to_be_bytes();
        // 0x02 = locally administered, unicast.
        MacAddr([0x02, b[3], b[4], b[5], b[6], b[7]])
    }

    /// True for group (multicast/broadcast) addresses.
    pub fn is_multicast(&self) -> bool {
        self.0[0] & 0x01 != 0
    }
}

impl std::fmt::Display for MacAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let b = self.0;
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            b[0], b[1], b[2], b[3], b[4], b[5]
        )
    }
}

/// EtherType values this stack understands.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EtherType {
    Ipv4,
    Arp,
    Other(u16),
}

impl From<u16> for EtherType {
    fn from(v: u16) -> Self {
        match v {
            0x0800 => EtherType::Ipv4,
            0x0806 => EtherType::Arp,
            other => EtherType::Other(other),
        }
    }
}

impl From<EtherType> for u16 {
    fn from(t: EtherType) -> u16 {
        match t {
            EtherType::Ipv4 => 0x0800,
            EtherType::Arp => 0x0806,
            EtherType::Other(v) => v,
        }
    }
}

/// An Ethernet II header (no 802.1Q tag support; overlay frames don't use
/// VLAN tags in the paper's setup).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EthernetHeader {
    pub dst: MacAddr,
    pub src: MacAddr,
    pub ethertype: EtherType,
}

impl EthernetHeader {
    /// Encoded size in bytes.
    pub const LEN: usize = 14;

    /// Writes the header into `out`.
    pub fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.dst.0);
        out.extend_from_slice(&self.src.0);
        out.extend_from_slice(&u16::from(self.ethertype).to_be_bytes());
    }

    /// Parses a header from the front of `buf`, returning it and the rest.
    pub fn parse(buf: &[u8]) -> Result<(Self, &[u8]), ParseError> {
        if buf.len() < Self::LEN {
            return Err(ParseError::Truncated);
        }
        let mut dst = [0u8; 6];
        let mut src = [0u8; 6];
        dst.copy_from_slice(&buf[0..6]);
        src.copy_from_slice(&buf[6..12]);
        let ethertype = u16::from_be_bytes([buf[12], buf[13]]).into();
        Ok((
            Self {
                dst: MacAddr(dst),
                src: MacAddr(src),
                ethertype,
            },
            &buf[Self::LEN..],
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let h = EthernetHeader {
            dst: MacAddr::local(1),
            src: MacAddr::local(2),
            ethertype: EtherType::Ipv4,
        };
        let mut buf = Vec::new();
        h.encode(&mut buf);
        assert_eq!(buf.len(), EthernetHeader::LEN);
        let (parsed, rest) = EthernetHeader::parse(&buf).unwrap();
        assert_eq!(parsed, h);
        assert!(rest.is_empty());
    }

    #[test]
    fn truncated_fails() {
        assert_eq!(
            EthernetHeader::parse(&[0; 13]).unwrap_err(),
            ParseError::Truncated
        );
    }

    #[test]
    fn local_addresses_are_unicast_and_unique() {
        let a = MacAddr::local(7);
        let b = MacAddr::local(8);
        assert_ne!(a, b);
        assert!(!a.is_multicast());
        assert!(MacAddr::BROADCAST.is_multicast());
    }

    #[test]
    fn ethertype_mapping() {
        assert_eq!(EtherType::from(0x0800), EtherType::Ipv4);
        assert_eq!(u16::from(EtherType::Arp), 0x0806);
        assert_eq!(EtherType::from(0x1234), EtherType::Other(0x1234));
    }

    #[test]
    fn display_format() {
        assert_eq!(MacAddr([0, 1, 2, 0xab, 0xcd, 0xef]).to_string(), "00:01:02:ab:cd:ef");
    }
}
