//! IPv4 header encode/parse with real header checksums and fragmentation
//! helpers (UDP messages larger than the MTU fragment at the IP layer, which
//! the paper's 64 KB sockperf workloads exercise heavily).

use crate::checksum;
use crate::ParseError;

/// IP protocol numbers used by the stack.
pub const PROTO_TCP: u8 = 6;
pub const PROTO_UDP: u8 = 17;

/// An IPv4 header (no options).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Ipv4Header {
    pub src: [u8; 4],
    pub dst: [u8; 4],
    pub protocol: u8,
    pub ttl: u8,
    /// Total length: header + payload.
    pub total_len: u16,
    pub identification: u16,
    /// Don't-fragment flag.
    pub dont_fragment: bool,
    /// More-fragments flag.
    pub more_fragments: bool,
    /// Fragment offset in 8-byte units.
    pub fragment_offset: u16,
}

impl Ipv4Header {
    /// Encoded size in bytes (no options).
    pub const LEN: usize = 20;

    /// Creates a non-fragmented header.
    pub fn simple(src: [u8; 4], dst: [u8; 4], protocol: u8, payload_len: usize) -> Self {
        Self {
            src,
            dst,
            protocol,
            ttl: 64,
            total_len: (Self::LEN + payload_len) as u16,
            identification: 0,
            dont_fragment: false,
            more_fragments: false,
            fragment_offset: 0,
        }
    }

    /// Writes the header (with a valid checksum) into `out`.
    pub fn encode(&self, out: &mut Vec<u8>) {
        let start = out.len();
        out.push(0x45); // version 4, IHL 5
        out.push(0); // DSCP/ECN
        out.extend_from_slice(&self.total_len.to_be_bytes());
        out.extend_from_slice(&self.identification.to_be_bytes());
        let mut flags_frag = self.fragment_offset & 0x1FFF;
        if self.dont_fragment {
            flags_frag |= 0x4000;
        }
        if self.more_fragments {
            flags_frag |= 0x2000;
        }
        out.extend_from_slice(&flags_frag.to_be_bytes());
        out.push(self.ttl);
        out.push(self.protocol);
        out.extend_from_slice(&[0, 0]); // checksum placeholder
        out.extend_from_slice(&self.src);
        out.extend_from_slice(&self.dst);
        let ck = checksum::checksum(&out[start..start + Self::LEN]);
        out[start + 10..start + 12].copy_from_slice(&ck.to_be_bytes());
    }

    /// Parses and checksum-verifies a header from the front of `buf`.
    pub fn parse(buf: &[u8]) -> Result<(Self, &[u8]), ParseError> {
        if buf.len() < Self::LEN {
            return Err(ParseError::Truncated);
        }
        if buf[0] >> 4 != 4 {
            return Err(ParseError::Malformed("ip version"));
        }
        let ihl = (buf[0] & 0x0F) as usize * 4;
        if ihl < Self::LEN || buf.len() < ihl {
            return Err(ParseError::Malformed("ip header length"));
        }
        if checksum::checksum(&buf[..ihl]) != 0 {
            return Err(ParseError::BadChecksum("ipv4 header"));
        }
        let total_len = u16::from_be_bytes([buf[2], buf[3]]);
        if (total_len as usize) < ihl {
            return Err(ParseError::Malformed("ip total length"));
        }
        let flags_frag = u16::from_be_bytes([buf[6], buf[7]]);
        let mut src = [0u8; 4];
        let mut dst = [0u8; 4];
        src.copy_from_slice(&buf[12..16]);
        dst.copy_from_slice(&buf[16..20]);
        Ok((
            Self {
                src,
                dst,
                protocol: buf[9],
                ttl: buf[8],
                total_len,
                identification: u16::from_be_bytes([buf[4], buf[5]]),
                dont_fragment: flags_frag & 0x4000 != 0,
                more_fragments: flags_frag & 0x2000 != 0,
                fragment_offset: flags_frag & 0x1FFF,
            },
            &buf[ihl..],
        ))
    }

    /// True if this header describes a fragment (not a whole datagram).
    pub fn is_fragment(&self) -> bool {
        self.more_fragments || self.fragment_offset != 0
    }
}

/// Splits an IP payload into (offset-in-8-byte-units, chunk) fragments for
/// the given MTU. The MTU covers header + fragment payload; every fragment
/// except possibly the last carries a multiple of 8 payload bytes, as the
/// wire format requires.
pub fn fragment_payload(payload: &[u8], mtu: usize) -> Vec<(u16, &[u8])> {
    assert!(mtu > Ipv4Header::LEN + 8, "mtu too small to fragment");
    let max_chunk = (mtu - Ipv4Header::LEN) & !7; // round down to 8-byte units
    if payload.len() + Ipv4Header::LEN <= mtu {
        return vec![(0, payload)];
    }
    let mut frags = Vec::new();
    let mut off = 0usize;
    while off < payload.len() {
        let end = (off + max_chunk).min(payload.len());
        frags.push(((off / 8) as u16, &payload[off..end]));
        off = end;
    }
    frags
}

/// Reassembles fragments (offset-in-8-byte-units, chunk, more_fragments)
/// into the original payload. Fragments may arrive in any order. Returns
/// `None` until the datagram is complete.
#[derive(Clone, Debug, Default)]
pub struct FragmentReassembler {
    chunks: Vec<(u16, Vec<u8>)>,
    total_len: Option<usize>,
}

impl FragmentReassembler {
    /// Creates an empty reassembler for one datagram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Offers one fragment; returns the reassembled payload when complete.
    pub fn offer(&mut self, offset_units: u16, chunk: &[u8], more: bool) -> Option<Vec<u8>> {
        if !more {
            self.total_len = Some(offset_units as usize * 8 + chunk.len());
        }
        self.chunks.push((offset_units, chunk.to_vec()));
        let total = self.total_len?;
        let have: usize = self.chunks.iter().map(|(_, c)| c.len()).sum();
        if have < total {
            return None;
        }
        self.chunks.sort_by_key(|(off, _)| *off);
        let mut out = vec![0u8; total];
        for (off, c) in &self.chunks {
            let start = *off as usize * 8;
            out[start..start + c.len()].copy_from_slice(c);
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_simple() {
        let h = Ipv4Header::simple([10, 0, 0, 1], [10, 0, 0, 2], PROTO_UDP, 100);
        let mut buf = Vec::new();
        h.encode(&mut buf);
        assert_eq!(buf.len(), Ipv4Header::LEN);
        let (parsed, rest) = Ipv4Header::parse(&buf).unwrap();
        assert_eq!(parsed, h);
        assert!(rest.is_empty());
        assert!(!parsed.is_fragment());
    }

    #[test]
    fn corrupted_header_fails_checksum() {
        let h = Ipv4Header::simple([10, 0, 0, 1], [10, 0, 0, 2], PROTO_TCP, 0);
        let mut buf = Vec::new();
        h.encode(&mut buf);
        buf[8] ^= 0xFF; // flip TTL bits
        assert_eq!(
            Ipv4Header::parse(&buf).unwrap_err(),
            ParseError::BadChecksum("ipv4 header")
        );
    }

    #[test]
    fn fragment_flags_roundtrip() {
        let mut h = Ipv4Header::simple([1, 1, 1, 1], [2, 2, 2, 2], PROTO_UDP, 512);
        h.more_fragments = true;
        h.fragment_offset = 185;
        h.identification = 0xBEEF;
        let mut buf = Vec::new();
        h.encode(&mut buf);
        let (parsed, _) = Ipv4Header::parse(&buf).unwrap();
        assert!(parsed.is_fragment());
        assert!(parsed.more_fragments);
        assert_eq!(parsed.fragment_offset, 185);
        assert_eq!(parsed.identification, 0xBEEF);
    }

    #[test]
    fn small_payload_does_not_fragment() {
        let data = vec![7u8; 1000];
        let frags = fragment_payload(&data, 1500);
        assert_eq!(frags.len(), 1);
        assert_eq!(frags[0].0, 0);
        assert_eq!(frags[0].1.len(), 1000);
    }

    #[test]
    fn large_payload_fragments_on_8_byte_units() {
        let data: Vec<u8> = (0..65000u32).map(|i| i as u8).collect();
        let frags = fragment_payload(&data, 1500);
        assert!(frags.len() > 40);
        for (i, (off, chunk)) in frags.iter().enumerate() {
            if i + 1 < frags.len() {
                assert_eq!(chunk.len() % 8, 0, "non-final fragment not 8-aligned");
            }
            assert_eq!(*off as usize * 8, i * frags[0].1.len());
        }
        let total: usize = frags.iter().map(|(_, c)| c.len()).sum();
        assert_eq!(total, data.len());
    }

    #[test]
    fn reassembly_out_of_order() {
        let data: Vec<u8> = (0..10_000u32).map(|i| (i * 7) as u8).collect();
        let frags = fragment_payload(&data, 1500);
        let n = frags.len();
        let mut r = FragmentReassembler::new();
        // Offer in reverse order; completion only on the final piece.
        let mut done = None;
        for (i, (off, chunk)) in frags.iter().enumerate().rev() {
            let more = i + 1 != n;
            let res = r.offer(*off, chunk, more);
            if i == 0 {
                done = res;
            } else {
                assert!(res.is_none());
            }
        }
        assert_eq!(done.unwrap(), data);
    }

    #[test]
    fn parse_rejects_non_v4() {
        let h = Ipv4Header::simple([1, 2, 3, 4], [5, 6, 7, 8], PROTO_UDP, 0);
        let mut buf = Vec::new();
        h.encode(&mut buf);
        buf[0] = 0x65; // version 6
        assert!(matches!(
            Ipv4Header::parse(&buf),
            Err(ParseError::Malformed("ip version"))
        ));
    }
}
