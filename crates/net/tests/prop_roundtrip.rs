//! Property-based tests: every generated frame must parse back to exactly
//! the fields and payload it was built from, and corruption must never be
//! silently accepted as the original.

use mflow_net::flow::{FlowKey, Proto};
use mflow_net::frame::{build_overlay_frame, parse_overlay_frame, OverlayFrameSpec};
use mflow_net::ipv4::{fragment_payload, FragmentReassembler};
use mflow_net::toeplitz::rss_hash_v4;
use mflow_net::{EthernetHeader, Ipv4Header, MacAddr, TcpHeader, UdpHeader};
use proptest::prelude::*;

fn arb_spec() -> impl Strategy<Value = OverlayFrameSpec> {
    (
        any::<[u8; 4]>(),
        any::<[u8; 4]>(),
        1u16..u16::MAX,
        1u16..u16::MAX,
        any::<u32>(),
        0u32..(1 << 24),
        prop::collection::vec(any::<u8>(), 0..1500),
        any::<bool>(),
    )
        .prop_map(
            |(src_ip, dst_ip, sport, dport, seq, vni, payload, is_tcp)| OverlayFrameSpec {
                outer_src_mac: MacAddr::local(1),
                outer_dst_mac: MacAddr::local(2),
                outer_src_ip: [10, 0, 0, 1],
                outer_dst_ip: [10, 0, 0, 2],
                outer_src_port: 49152,
                vni,
                inner_src_mac: MacAddr::local(3),
                inner_dst_mac: MacAddr::local(4),
                inner_src_ip: src_ip,
                inner_dst_ip: dst_ip,
                inner_src_port: sport,
                inner_dst_port: dport,
                proto: if is_tcp { Proto::Tcp } else { Proto::Udp },
                tcp_seq: seq,
                payload,
            },
        )
}

proptest! {
    #[test]
    fn overlay_frame_roundtrips(spec in arb_spec()) {
        let frame = build_overlay_frame(&spec);
        let parsed = parse_overlay_frame(&frame).unwrap();
        prop_assert_eq!(parsed.payload, spec.payload.clone());
        prop_assert_eq!(parsed.vni, spec.vni);
        prop_assert_eq!(parsed.inner_flow, FlowKey::from(&spec));
        if spec.proto == Proto::Tcp {
            prop_assert_eq!(parsed.tcp_seq, spec.tcp_seq);
        }
    }

    #[test]
    fn single_byte_corruption_never_passes_silently(
        spec in arb_spec(),
        pos_seed in any::<u64>(),
        bit in 0u8..8,
    ) {
        let frame = build_overlay_frame(&spec);
        let reference = parse_overlay_frame(&frame).unwrap();
        let pos = (pos_seed % frame.len() as u64) as usize;
        let mut bad = frame.clone();
        bad[pos] ^= 1 << bit;
        match parse_overlay_frame(&bad) {
            Err(_) => {}
            // Fields not covered by any checksum (e.g. MAC addresses) may
            // change without error, but the result must differ from the
            // original parse — corruption is never invisible.
            Ok(p) => prop_assert_ne!(p, reference),
        }
    }

    #[test]
    fn ipv4_header_roundtrips(
        src in any::<[u8;4]>(), dst in any::<[u8;4]>(),
        proto in any::<u8>(), ttl in 1u8..255,
        id in any::<u16>(), frag_off in 0u16..0x1FFF,
        more in any::<bool>(), len in 0u16..1480,
    ) {
        let h = Ipv4Header {
            src, dst, protocol: proto, ttl,
            total_len: Ipv4Header::LEN as u16 + len,
            identification: id,
            dont_fragment: false,
            more_fragments: more,
            fragment_offset: frag_off,
        };
        let mut buf = Vec::new();
        h.encode(&mut buf);
        let (parsed, _) = Ipv4Header::parse(&buf).unwrap();
        prop_assert_eq!(parsed, h);
    }

    #[test]
    fn fragmentation_reassembles_in_any_order(
        payload in prop::collection::vec(any::<u8>(), 1..20_000),
        order_seed in any::<u64>(),
    ) {
        let frags = fragment_payload(&payload, 1500);
        let n = frags.len();
        // Deterministic shuffle of offer order.
        let mut order: Vec<usize> = (0..n).collect();
        let mut s = order_seed;
        for i in (1..n).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let j = (s >> 33) as usize % (i + 1);
            order.swap(i, j);
        }
        let mut r = FragmentReassembler::new();
        let mut result = None;
        let mut offered = 0;
        for &i in &order {
            let (off, chunk) = frags[i];
            let more = i + 1 != n;
            offered += 1;
            if let Some(out) = r.offer(off, chunk, more) {
                prop_assert_eq!(offered, n, "completed before all fragments offered");
                result = Some(out);
            }
        }
        prop_assert_eq!(result.unwrap(), payload);
    }

    #[test]
    fn udp_checksum_detects_any_payload_flip(
        payload in prop::collection::vec(any::<u8>(), 1..512),
        pos_seed in any::<u64>(),
    ) {
        let h = UdpHeader::for_payload(1111, 2222, [1,2,3,4], [5,6,7,8], &payload);
        prop_assert!(h.verify([1,2,3,4], [5,6,7,8], &payload));
        let mut bad = payload.clone();
        let pos = (pos_seed % bad.len() as u64) as usize;
        bad[pos] ^= 0x5A;
        prop_assert!(!h.verify([1,2,3,4], [5,6,7,8], &bad));
    }

    #[test]
    fn tcp_checksum_detects_any_payload_flip(
        payload in prop::collection::vec(any::<u8>(), 1..512),
        pos_seed in any::<u64>(),
        seq in any::<u32>(),
    ) {
        let h = TcpHeader::for_payload(3, 4, seq, 0, 0x10, 1000, [9,9,9,9], [8,8,8,8], &payload);
        prop_assert!(h.verify([9,9,9,9], [8,8,8,8], &payload));
        let mut bad = payload.clone();
        let pos = (pos_seed % bad.len() as u64) as usize;
        bad[pos] ^= 0xA5;
        prop_assert!(!h.verify([9,9,9,9], [8,8,8,8], &bad));
    }

    #[test]
    fn ethernet_roundtrips(dst in any::<[u8;6]>(), src in any::<[u8;6]>(), et in any::<u16>()) {
        let h = EthernetHeader {
            dst: MacAddr(dst),
            src: MacAddr(src),
            ethertype: et.into(),
        };
        let mut buf = Vec::new();
        h.encode(&mut buf);
        let (parsed, _) = EthernetHeader::parse(&buf).unwrap();
        prop_assert_eq!(parsed, h);
    }

    #[test]
    fn rss_hash_is_flow_stable_and_direction_sensitive(
        sip in any::<[u8;4]>(), dip in any::<[u8;4]>(),
        sp in any::<u16>(), dp in any::<u16>(),
    ) {
        let a = rss_hash_v4(sip, dip, sp, dp);
        let b = rss_hash_v4(sip, dip, sp, dp);
        prop_assert_eq!(a, b);
    }
}
