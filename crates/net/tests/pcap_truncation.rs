//! Property tests for `parse_pcap` hardening: no byte stream — valid,
//! truncated at any offset, or bit-corrupted — may panic the parser. A
//! truncated prefix of a valid capture must either error or return a
//! prefix of the original record list; it must never invent records.

use mflow_net::pcap::{parse_pcap, PcapWriter};
use proptest::prelude::*;

/// Builds a valid capture with `lens.len()` records of the given payload
/// lengths.
fn capture(lens: &[usize]) -> Vec<u8> {
    let mut w = PcapWriter::new(Vec::new()).unwrap();
    for (i, &len) in lens.iter().enumerate() {
        w.write_frame(i as u64 * 1_000, &vec![i as u8; len]).unwrap();
    }
    w.finish().unwrap()
}

proptest! {
    #[test]
    fn truncation_at_every_offset_never_panics(
        lens in prop::collection::vec(0usize..200, 0..8),
    ) {
        let bytes = capture(&lens);
        let full = parse_pcap(&bytes).unwrap().2;
        prop_assert_eq!(full.len(), lens.len());
        // Every prefix, byte by byte: error or a shorter (prefix) list.
        for cut in 0..=bytes.len() {
            if let Ok((version, _, records)) = parse_pcap(&bytes[..cut]) {
                prop_assert_eq!(version, 2);
                prop_assert!(records.len() <= full.len());
                prop_assert_eq!(&records[..], &full[..records.len()]);
                // A successful parse of a strict prefix can only happen
                // at a record boundary.
                if cut < bytes.len() {
                    prop_assert!(records.len() < full.len());
                }
            }
        }
    }

    #[test]
    fn corrupted_captures_never_panic(
        lens in prop::collection::vec(0usize..64, 1..5),
        pos_seed in any::<u64>(),
        byte in any::<u8>(),
    ) {
        // Overwrite one arbitrary byte (headers included): the parser may
        // reject or misread, but must return rather than panic.
        let mut bytes = capture(&lens);
        let pos = (pos_seed % bytes.len() as u64) as usize;
        bytes[pos] = byte;
        let _ = parse_pcap(&bytes);
    }

    #[test]
    fn arbitrary_bytes_never_panic(data in prop::collection::vec(any::<u8>(), 0..256)) {
        let _ = parse_pcap(&data);
    }
}
