//! State-compute replication (SCR): how the engines run the stateful
//! TCP stage.
//!
//! MFLOW's split/merge design stops at the stateless/stateful boundary —
//! micro-flows are merged back into wire order *before* TCP so the
//! per-flow state machine stays serial. SCR replicates that state
//! computation on every lane instead: each lane advances its own clone of
//! the flow state over the packets it sees and emits idempotent *delivery
//! records*; a downstream reconciler deduplicates the replicated
//! transitions and emits each in-order byte range exactly once. The
//! stateful work then scales with the lanes and only a cheap watermark
//! check remains serial.

/// Where the stateful (TCP) stage runs relative to the merge point.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum StatefulMode {
    /// The paper's design: merge micro-flows back into wire order first,
    /// then run the stateful stage once, serially, after the merge.
    #[default]
    MergeBeforeTcp,
    /// Replicate the stateful computation on every lane and reconcile
    /// the emitted delivery records downstream (PAPERS.md: state-compute
    /// replication).
    StateComputeReplication,
}

impl StatefulMode {
    /// Both modes, for sweeps and differential tests.
    pub const ALL: [StatefulMode; 2] = [
        StatefulMode::MergeBeforeTcp,
        StatefulMode::StateComputeReplication,
    ];

    /// Stable name used in telemetry and bench output.
    pub fn name(&self) -> &'static str {
        match self {
            StatefulMode::MergeBeforeTcp => "merge-before-tcp",
            StatefulMode::StateComputeReplication => "scr",
        }
    }

    /// Parses a CLI spelling. Accepts the stable names plus the obvious
    /// abbreviations.
    pub fn parse(s: &str) -> Option<StatefulMode> {
        match s {
            "merge-before-tcp" | "mbt" | "merge" => Some(StatefulMode::MergeBeforeTcp),
            "scr" | "state-compute-replication" | "replicate" => {
                Some(StatefulMode::StateComputeReplication)
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_the_paper_design() {
        assert_eq!(StatefulMode::default(), StatefulMode::MergeBeforeTcp);
    }

    #[test]
    fn names_round_trip_through_parse() {
        for m in StatefulMode::ALL {
            assert_eq!(StatefulMode::parse(m.name()), Some(m));
        }
        assert_eq!(StatefulMode::parse("bogus"), None);
    }
}
