//! Deterministic fault injection at the merge point.
//!
//! MFLOW's merging counter assumes every micro-flow eventually arrives,
//! complete and exactly once. Real overlay networks violate all three:
//! packets are lost, retransmitted copies duplicate micro-flows, and
//! stalled splitting cores deliver batches arbitrarily late. This module
//! perturbs the skb stream *entering the merge hook* so tests can prove
//! the merger degrades gracefully (flush-deadline recovery, late/duplicate
//! rejection) instead of wedging.
//!
//! Every decision is a pure hash of `(seed, flow, micro-flow id, wire
//! sequence)` — not a draw from mutable RNG state — so the same
//! configuration faults the same packets regardless of event interleaving.
//! Runs are reproducible bit-for-bit from the seed alone.

use crate::skb::Skb;

/// What to inject, all disabled by default.
#[derive(Clone, Debug)]
pub struct FaultConfig {
    /// Seed for the per-packet fault decisions (independent of the
    /// simulation's noise seed so faults can be varied in isolation).
    pub seed: u64,
    /// Probability that a micro-flow-tagged skb is dropped at the merge
    /// input.
    pub drop_rate: f64,
    /// Restrict random drops to batch-closing (`last_in_batch`) skbs —
    /// the worst case for the merging counter, which cannot advance
    /// without them.
    pub drop_last_only: bool,
    /// Probability that a tagged skb is duplicated (the copy arrives in
    /// the same batch, immediately after the original).
    pub dup_rate: f64,
    /// Probability that a tagged skb is held back and re-offered
    /// [`FaultConfig::delay_invocations`] merge invocations later.
    pub delay_rate: f64,
    /// How many merge invocations a delayed skb is held for.
    pub delay_invocations: u64,
    /// Targeted kills: every skb of these `(flow, micro-flow id)` pairs
    /// is dropped, deterministically losing whole micro-flows.
    pub kill_microflows: Vec<(usize, u64)>,
}

impl FaultConfig {
    /// No faults (the plan becomes a no-op).
    pub fn none() -> Self {
        Self {
            seed: 0,
            drop_rate: 0.0,
            drop_last_only: false,
            dup_rate: 0.0,
            delay_rate: 0.0,
            delay_invocations: 4,
            kill_microflows: Vec::new(),
        }
    }

    /// Whether any fault can ever fire.
    pub fn is_active(&self) -> bool {
        self.drop_rate > 0.0
            || self.dup_rate > 0.0
            || self.delay_rate > 0.0
            || !self.kill_microflows.is_empty()
    }
}

impl Default for FaultConfig {
    fn default() -> Self {
        Self::none()
    }
}

/// Counters of what the plan actually injected.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultCounts {
    /// Skbs deleted (random drops + targeted kills + skbs still held
    /// back when the run ended).
    pub drops: u64,
    /// Duplicate copies injected.
    pub dups: u64,
    /// Skbs delivered late (held and re-offered).
    pub delays: u64,
}

/// The executable fault plan: [`FaultConfig`] plus held-back skbs.
#[derive(Debug)]
pub struct FaultPlan {
    cfg: FaultConfig,
    counts: FaultCounts,
    /// Skbs held for late delivery, with the invocation they reappear at.
    held: Vec<(u64, Skb)>,
    invocation: u64,
}

impl FaultPlan {
    /// Builds a plan; inert configurations cost one branch per batch.
    pub fn new(cfg: FaultConfig) -> Self {
        Self {
            cfg,
            counts: FaultCounts::default(),
            held: Vec::new(),
            invocation: 0,
        }
    }

    /// What was injected so far.
    pub fn counts(&self) -> FaultCounts {
        self.counts
    }

    /// Perturbs one batch entering the merge point. Untagged skbs (flows
    /// that were never split) always pass through untouched — the fault
    /// model targets the micro-flow machinery, not the transport.
    pub fn apply(&mut self, skbs: Vec<Skb>) -> Vec<Skb> {
        self.invocation += 1;
        let mut out = Vec::with_capacity(skbs.len());
        // Release held skbs that have served their delay. They are
        // prepended so a delayed skb arrives *before* this batch — the
        // adversarial position for the per-lane FIFO assumption.
        let due = self.invocation;
        let mut still_held = Vec::with_capacity(self.held.len());
        for (at, skb) in self.held.drain(..) {
            if at <= due {
                self.counts.delays += 1;
                out.push(skb);
            } else {
                still_held.push((at, skb));
            }
        }
        self.held = still_held;
        for skb in skbs {
            let Some(mf) = skb.mf else {
                out.push(skb);
                continue;
            };
            if self.cfg.kill_microflows.contains(&(skb.flow, mf.id)) {
                self.counts.drops += 1;
                continue;
            }
            if self.decide(0xD709, skb.flow, mf.id, skb.wire_seq, self.cfg.drop_rate)
                && (!self.cfg.drop_last_only || mf.last_in_batch)
            {
                self.counts.drops += 1;
                continue;
            }
            if self.decide(0xDE1A, skb.flow, mf.id, skb.wire_seq, self.cfg.delay_rate) {
                self.held
                    .push((self.invocation + self.cfg.delay_invocations.max(1), skb));
                continue;
            }
            let dup = self.decide(0xD0B1, skb.flow, mf.id, skb.wire_seq, self.cfg.dup_rate);
            if dup {
                self.counts.dups += 1;
                out.push(skb.clone());
            }
            out.push(skb);
        }
        out
    }

    /// Ends the run: skbs still held back will never be delivered and are
    /// folded into the drop count. Returns how many there were.
    pub fn finish(&mut self) -> u64 {
        let lost = self.held.len() as u64;
        self.counts.drops += lost;
        self.held.clear();
        lost
    }

    /// Pure per-packet decision: true with probability `rate`.
    fn decide(&self, salt: u64, flow: usize, mf_id: u64, wire_seq: u64, rate: f64) -> bool {
        if rate <= 0.0 {
            return false;
        }
        if rate >= 1.0 {
            return true;
        }
        let mut x = self.cfg.seed ^ salt;
        for v in [flow as u64, mf_id, wire_seq] {
            // SplitMix64 finalizer over the accumulated key.
            x = x.wrapping_add(v).wrapping_add(0x9E37_79B9_7F4A_7C15);
            x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            x ^= x >> 31;
        }
        ((x >> 11) as f64) / ((1u64 << 53) as f64) < rate
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::skb::MicroflowTag;

    fn tagged(flow: usize, seq: u64, id: u64, last: bool) -> Skb {
        let mut s = Skb::new(seq, flow, 1514, 1448, seq * 1448, 0);
        s.mf = Some(MicroflowTag {
            id,
            core: 2,
            last_in_batch: last,
        });
        s
    }

    fn stream(n: u64) -> Vec<Skb> {
        (0..n).map(|i| tagged(0, i, i / 4, i % 4 == 3)).collect()
    }

    #[test]
    fn inert_plan_is_identity() {
        let mut p = FaultPlan::new(FaultConfig::none());
        let out = p.apply(stream(32));
        assert_eq!(out.len(), 32);
        assert_eq!(p.counts(), FaultCounts::default());
        assert_eq!(p.finish(), 0);
    }

    #[test]
    fn untagged_skbs_are_never_faulted() {
        let mut cfg = FaultConfig::none();
        cfg.drop_rate = 1.0;
        cfg.dup_rate = 1.0;
        let mut p = FaultPlan::new(cfg);
        let plain: Vec<Skb> = (0..8).map(|i| Skb::new(i, 0, 1514, 1448, i * 1448, 0)).collect();
        assert_eq!(p.apply(plain).len(), 8);
        assert_eq!(p.counts().drops, 0);
    }

    #[test]
    fn decisions_are_deterministic_and_seed_sensitive() {
        let mut cfg = FaultConfig::none();
        cfg.seed = 7;
        cfg.drop_rate = 0.3;
        let out_a: Vec<u64> = FaultPlan::new(cfg.clone())
            .apply(stream(256))
            .iter()
            .map(|s| s.wire_seq)
            .collect();
        let out_b: Vec<u64> = FaultPlan::new(cfg.clone())
            .apply(stream(256))
            .iter()
            .map(|s| s.wire_seq)
            .collect();
        assert_eq!(out_a, out_b, "same seed, same faults");
        cfg.seed = 8;
        let out_c: Vec<u64> = FaultPlan::new(cfg)
            .apply(stream(256))
            .iter()
            .map(|s| s.wire_seq)
            .collect();
        assert_ne!(out_a, out_c, "different seed, different faults");
    }

    #[test]
    fn drop_last_only_spares_mid_batch_skbs() {
        let mut cfg = FaultConfig::none();
        cfg.drop_rate = 1.0;
        cfg.drop_last_only = true;
        let mut p = FaultPlan::new(cfg);
        let out = p.apply(stream(16));
        // 16 skbs in micro-flows of 4: exactly the 4 closers die.
        assert_eq!(out.len(), 12);
        assert!(out.iter().all(|s| !s.mf.unwrap().last_in_batch));
        assert_eq!(p.counts().drops, 4);
    }

    #[test]
    fn targeted_kill_removes_the_whole_microflow() {
        let mut cfg = FaultConfig::none();
        cfg.kill_microflows = vec![(0, 1)];
        let mut p = FaultPlan::new(cfg);
        let out = p.apply(stream(16));
        assert_eq!(out.len(), 12);
        assert!(out.iter().all(|s| s.mf.unwrap().id != 1));
        assert_eq!(p.counts().drops, 4);
    }

    #[test]
    fn duplicates_double_the_chosen_skbs() {
        let mut cfg = FaultConfig::none();
        cfg.dup_rate = 1.0;
        let mut p = FaultPlan::new(cfg);
        let out = p.apply(stream(8));
        assert_eq!(out.len(), 16);
        assert_eq!(p.counts().dups, 8);
    }

    #[test]
    fn delayed_skbs_reappear_then_count_as_lost_at_finish() {
        let mut cfg = FaultConfig::none();
        cfg.delay_rate = 1.0;
        cfg.delay_invocations = 2;
        let mut p = FaultPlan::new(cfg);
        assert!(p.apply(stream(4)).is_empty(), "all held");
        assert!(p.apply(Vec::new()).is_empty(), "not due yet");
        let back = p.apply(Vec::new());
        assert_eq!(back.len(), 4, "released after the delay");
        assert_eq!(p.counts().delays, 4);
        // A second wave held at end-of-run becomes drops.
        assert!(p.apply(stream(4)).is_empty());
        assert_eq!(p.finish(), 4);
        assert_eq!(p.counts().drops, 4);
    }
}
