//! Simulation configuration: flows, load models, cores, noise.


use mflow_error::MflowError;
use mflow_sim::{CoreId, MS, US};

use crate::cost::CostModel;
use crate::faults::FaultConfig;
use crate::stage::{PathKind, Transport};

/// How a client offers load.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum LoadModel {
    /// Closed loop: keep `window_bytes` of unacknowledged data in flight
    /// (TCP throughput mode; the window models the paper's "outstanding
    /// packets").
    Closed { window_bytes: u64 },
    /// Open loop: one message every `interval_ns` (latency-under-load
    /// mode, paced just below capacity).
    Paced { interval_ns: u64 },
    /// Open loop at the client's maximum rate (UDP throughput mode; the
    /// receiver sheds overload at the ring).
    Saturate,
}

/// One sender→receiver flow.
#[derive(Clone, Debug)]
pub struct FlowSpec {
    pub transport: Transport,
    /// Application message size in bytes (sockperf's `--msg-size`).
    pub msg_bytes: u64,
    /// Destination socket index (several flows may share one socket, e.g.
    /// the paper's three UDP clients stressing one server).
    pub sock: usize,
    pub load: LoadModel,
    /// Sender-side cores cooperating on this flow's `sendmsg` path.
    ///
    /// The paper's conclusion names the sender as the next bottleneck and
    /// defers it to future work; this knob models an MFLOW-style TX split:
    /// the per-segment fragmentation/copy work parallelizes across
    /// `tx_cores` (with a coordination tax), the per-message syscall part
    /// does not (Amdahl).
    pub tx_cores: u32,
}

impl FlowSpec {
    /// A closed-loop TCP flow with the default 1 MB window.
    pub fn tcp(msg_bytes: u64, sock: usize) -> Self {
        Self {
            transport: Transport::Tcp,
            msg_bytes,
            sock,
            load: LoadModel::Closed {
                // ~2000 outstanding MTU packets (paper §III-A's example for
                // a ~30 Gbps sender).
                window_bytes: 3 << 20,
            },
            tx_cores: 1,
        }
    }

    /// A saturating UDP flow.
    pub fn udp(msg_bytes: u64, sock: usize) -> Self {
        Self {
            transport: Transport::Udp,
            msg_bytes,
            sock,
            load: LoadModel::Saturate,
            tx_cores: 1,
        }
    }
}

/// Background noise that perturbs core progress: the "concurrent kernel
/// tasks" of §III-B that make parallel branches drift and cause
/// out-of-order arrivals at the merge point.
#[derive(Clone, Copy, Debug)]
pub struct NoiseConfig {
    pub enabled: bool,
    /// Mean interval between interference bursts per core.
    pub period_ns: u64,
    /// Mean burst length.
    pub burst_ns: u64,
    /// Coefficient of variation applied multiplicatively to each batch's
    /// processing cost.
    pub cost_cv: f64,
}

impl Default for NoiseConfig {
    fn default() -> Self {
        Self {
            enabled: true,
            period_ns: 300 * US,
            burst_ns: 8 * US,
            cost_cv: 0.05,
        }
    }
}

impl NoiseConfig {
    /// No noise at all (for deterministic capacity calibration).
    pub fn off() -> Self {
        Self {
            enabled: false,
            ..Self::default()
        }
    }
}

/// Full configuration of one simulation run.
#[derive(Clone, Debug)]
pub struct StackConfig {
    pub path: PathKind,
    pub cost: CostModel,
    /// Kernel cores available for packet processing (indices into the
    /// simulated host's core space).
    pub kernel_cores: Vec<CoreId>,
    /// Application cores; socket `i` runs its copy thread on
    /// `app_cores[i % len]`.
    pub app_cores: Vec<CoreId>,
    pub flows: Vec<FlowSpec>,
    /// Number of receive sockets.
    pub n_socks: usize,
    /// NIC ring capacity in descriptors (per IRQ core).
    pub ring_capacity: usize,
    /// Socket receive buffer capacity in bytes.
    pub sock_capacity_bytes: u64,
    /// MTU payload per wire segment.
    pub mtu_payload: u32,
    pub noise: NoiseConfig,
    /// Record every core's busy intervals (see `RunReport::trace`).
    pub trace: bool,
    /// TCP retransmission timeout: if a closed-loop flow makes no ACK
    /// progress for this long, the sender collapses its congestion window
    /// and resends from the cumulative ACK.
    pub tcp_rto_ns: u64,
    pub seed: u64,
    /// Deterministic fault injection at the merge point (`None` or an
    /// inactive config runs the unperturbed stack).
    pub faults: Option<FaultConfig>,
    /// Total simulated time.
    pub duration_ns: u64,
    /// Statistics ignore everything before this point.
    pub warmup_ns: u64,
}

impl StackConfig {
    /// A single-flow configuration on the paper's core layout: app core 0,
    /// kernel cores 1..=5.
    pub fn single_flow(path: PathKind, flow: FlowSpec) -> Self {
        Self {
            path,
            cost: CostModel::calibrated(),
            kernel_cores: vec![1, 2, 3, 4, 5],
            app_cores: vec![0],
            flows: vec![flow],
            n_socks: 1,
            ring_capacity: 4096,
            sock_capacity_bytes: 8 << 20,
            mtu_payload: 1448,
            noise: NoiseConfig::default(),
            trace: false,
            tcp_rto_ns: 8 * MS,
            seed: 42,
            faults: None,
            duration_ns: 60 * MS,
            warmup_ns: 10 * MS,
        }
    }

    /// Total core index space needed (max referenced core + 1).
    pub fn n_cores(&self) -> usize {
        self.kernel_cores
            .iter()
            .chain(self.app_cores.iter())
            .copied()
            .max()
            .map_or(1, |m| m + 1)
    }

    /// Wire header bytes per segment for this path/transport.
    pub fn header_bytes(&self, transport: Transport) -> u32 {
        // eth(14)+ip(20)+tcp(20)/udp(8), plus 50 bytes of outer headers
        // (eth+ip+udp+vxlan) on the overlay path.
        let inner = match transport {
            Transport::Tcp => 54,
            Transport::Udp => 42,
        };
        match self.path {
            PathKind::Native => inner,
            PathKind::Overlay => inner + 50,
        }
    }

    /// Segments needed to carry one message of this flow.
    pub fn segs_per_msg(&self, msg_bytes: u64) -> u64 {
        msg_bytes.div_ceil(self.mtu_payload as u64).max(1)
    }

    /// Checks the structural invariants of the run configuration;
    /// [`crate::StackSim::try_run`] calls this so a malformed setup is
    /// reported instead of panicking mid-simulation.
    pub fn validate(&self) -> Result<(), MflowError> {
        if self.kernel_cores.is_empty() {
            return Err(MflowError::invalid("kernel_cores", "must not be empty"));
        }
        if self.app_cores.is_empty() {
            return Err(MflowError::invalid("app_cores", "must not be empty"));
        }
        if self.flows.is_empty() {
            return Err(MflowError::invalid("flows", "must not be empty"));
        }
        if self.n_socks < 1 {
            return Err(MflowError::invalid("n_socks", "must be at least 1"));
        }
        if let Some(f) = self.flows.iter().find(|f| f.sock >= self.n_socks) {
            return Err(MflowError::invalid(
                "flows",
                format!("flow references socket {} but n_socks is {}", f.sock, self.n_socks),
            ));
        }
        if self.ring_capacity < 1 {
            return Err(MflowError::invalid("ring_capacity", "must be at least 1"));
        }
        if self.sock_capacity_bytes < 1 {
            return Err(MflowError::invalid(
                "sock_capacity_bytes",
                "must be at least 1",
            ));
        }
        if self.mtu_payload < 1 {
            return Err(MflowError::invalid("mtu_payload", "must be at least 1"));
        }
        if self.warmup_ns >= self.duration_ns {
            return Err(MflowError::invalid(
                "warmup_ns",
                "warmup must end before the run does",
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_flow_defaults() {
        let c = StackConfig::single_flow(PathKind::Overlay, FlowSpec::tcp(65536, 0));
        assert_eq!(c.n_cores(), 6);
        assert_eq!(c.flows.len(), 1);
        assert!(c.warmup_ns < c.duration_ns);
    }

    #[test]
    fn header_bytes_by_path() {
        let mut c = StackConfig::single_flow(PathKind::Overlay, FlowSpec::tcp(100, 0));
        assert_eq!(c.header_bytes(Transport::Tcp), 104);
        assert_eq!(c.header_bytes(Transport::Udp), 92);
        c.path = PathKind::Native;
        assert_eq!(c.header_bytes(Transport::Tcp), 54);
        assert_eq!(c.header_bytes(Transport::Udp), 42);
    }

    #[test]
    fn validate_accepts_stock_and_rejects_malformed() {
        let good = StackConfig::single_flow(PathKind::Overlay, FlowSpec::tcp(65536, 0));
        good.validate().unwrap();

        let mut c = good.clone();
        c.kernel_cores.clear();
        assert_eq!(c.validate().unwrap_err().field(), Some("kernel_cores"));

        let mut c = good.clone();
        c.flows[0].sock = 7; // only 1 socket exists
        assert_eq!(c.validate().unwrap_err().field(), Some("flows"));

        let mut c = good.clone();
        c.warmup_ns = c.duration_ns;
        assert_eq!(c.validate().unwrap_err().field(), Some("warmup_ns"));

        let mut c = good;
        c.ring_capacity = 0;
        assert_eq!(c.validate().unwrap_err().field(), Some("ring_capacity"));
    }

    #[test]
    fn segs_per_msg_rounding() {
        let c = StackConfig::single_flow(PathKind::Native, FlowSpec::tcp(100, 0));
        assert_eq!(c.segs_per_msg(16), 1);
        assert_eq!(c.segs_per_msg(1448), 1);
        assert_eq!(c.segs_per_msg(1449), 2);
        assert_eq!(c.segs_per_msg(65536), 46);
    }
}
