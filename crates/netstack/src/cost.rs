//! The per-stage processing cost model.
//!
//! Every stage charges `per_batch + n_skbs * per_skb + n_segs * per_seg +
//! n_bytes * per_byte` nanoseconds to the core that executes it. The
//! constants below are calibrated (see `calibration.rs` and the integration
//! tests) so that the single-flow 64 KB results land on the paper's shape:
//! native TCP ~26.6 Gbps on one saturated core, vanilla overlay ~-40 % TCP
//! and ~-80 % UDP, MFLOW ~+81 % TCP / ~+139 % UDP over vanilla and above
//! native for TCP, limited by the single user-copy thread near ~30 Gbps.
//!
//! Where a constant models a specific kernel behaviour, the comment says
//! which one.


use crate::stage::{PathKind, Stage};

/// Cost coefficients of one stage.
#[derive(Clone, Copy, Debug, Default)]
pub struct StageCost {
    /// Fixed cost per executed batch (softirq entry, queue locking).
    pub per_batch: f64,
    /// Cost per skb processed (header parsing, lookups).
    pub per_skb: f64,
    /// Cost per original wire segment (work GRO cannot amortize).
    pub per_seg: f64,
    /// Cost per payload byte (copies, checksums).
    pub per_byte: f64,
}

impl StageCost {
    /// Cost in ns for a batch of `skbs` skbs carrying `segs` wire segments
    /// and `bytes` payload bytes.
    pub fn cost_ns(&self, skbs: u64, segs: u64, bytes: u64) -> u64 {
        (self.per_batch
            + self.per_skb * skbs as f64
            + self.per_seg * segs as f64
            + self.per_byte * bytes as f64)
            .round() as u64
    }
}

/// The full cost model of the simulated host.
#[derive(Clone, Debug)]
pub struct CostModel {
    pub driver_poll: StageCost,
    pub skb_alloc: StageCost,
    /// Outer-checksum validation per byte, paid in `SkbAlloc` on the
    /// overlay path only: VXLAN traffic misses the NIC's receive checksum
    /// offloads that the native path enjoys.
    pub overlay_csum_per_byte: f64,
    pub gro: StageCost,
    pub outer_ip: StageCost,
    pub vxlan_decap: StageCost,
    pub bridge: StageCost,
    pub veth: StageCost,
    pub inner_ip: StageCost,
    pub tcp_rx: StageCost,
    /// Extra cost per segment inserted into TCP's out-of-order queue — the
    /// expensive per-packet reordering MFLOW's batch reassembly avoids.
    pub tcp_ooo_insert: f64,
    /// Per-record cost of the state-compute-replication reconciler: a
    /// watermark compare plus a dedup-map touch, replacing the full
    /// `tcp_rx` stage on the merge core when SCR is active (the stateful
    /// work was already replicated on the lane cores).
    pub scr_reconcile_per_skb: f64,
    /// Cost of generating one ACK in `TcpRx`.
    pub tcp_ack_tx: f64,
    pub udp_rx: StageCost,
    pub user_copy: StageCost,
    /// Cost to send an IPI when kicking a remote core.
    pub ipi_send: f64,
    /// Latency until the kicked core notices the softirq.
    pub ipi_latency: f64,
    /// Multiplier (> 1) applied to a stage's cost when the skb's previous
    /// stage ran on a different core: cold-cache penalty. FALCON pays this
    /// at every pipeline hop; MFLOW only at split and merge boundaries.
    pub migration_penalty: f64,
    /// NAPI poll budget: max wire segments consumed per poll.
    pub napi_budget: u64,
    /// GRO caps: a merged super-skb holds at most this many segments /
    /// bytes (the kernel's 64 KB skb limit).
    pub gro_max_segs: u32,
    pub gro_max_bytes: u32,
    /// Client-side `sendmsg`: per message / per wire segment / per byte.
    /// TCP senders pay a tiny per-segment cost (TSO: the NIC segments);
    /// UDP senders pay the full software fragmentation cost per segment —
    /// which is why the paper needed three UDP clients to stress one
    /// receiver and why UDP clients throttle at 64 KB.
    pub send_per_msg: f64,
    pub send_per_seg_tcp: f64,
    pub send_per_seg_udp: f64,
    pub send_per_byte: f64,
    /// Client-side cost of processing one received ACK.
    pub client_ack_rx: f64,
    /// One-way propagation delay between the hosts.
    pub prop_delay_ns: u64,
    /// Link rate in Gbit/s.
    pub link_gbps: f64,
    /// Wake-up latency from socket enqueue to the app thread running.
    pub app_wake_ns: u64,
    /// NIC interrupt coalescing: when the ring is shallow, the IRQ is
    /// delayed this long so descriptors batch up (and GRO gets runs to
    /// merge). Mellanox adapters ship with adaptive coalescing on.
    pub irq_coalesce_ns: u64,
    /// Ring depth that fires the IRQ immediately despite coalescing.
    pub irq_kick_threshold: usize,
}

impl CostModel {
    /// The calibrated model used by every experiment.
    pub fn calibrated() -> Self {
        Self {
            driver_poll: StageCost {
                per_batch: 130.0,
                per_skb: 0.0,
                per_seg: 34.0,
                per_byte: 0.0,
            },
            skb_alloc: StageCost {
                per_batch: 0.0,
                per_skb: 0.0,
                per_seg: 282.0,
                per_byte: 0.0,
            },
            overlay_csum_per_byte: 0.086,
            gro: StageCost {
                per_batch: 0.0,
                per_skb: 34.0,
                per_seg: 51.0,
                per_byte: 0.0,
            },
            outer_ip: StageCost {
                per_batch: 0.0,
                per_skb: 300.0,
                per_seg: 7.0,
                per_byte: 0.0,
            },
            vxlan_decap: StageCost {
                per_batch: 0.0,
                per_skb: 1280.0,
                per_seg: 9.0,
                per_byte: 0.026,
            },
            bridge: StageCost {
                per_batch: 0.0,
                per_skb: 274.0,
                per_seg: 4.0,
                per_byte: 0.0,
            },
            veth: StageCost {
                per_batch: 0.0,
                per_skb: 410.0,
                per_seg: 7.0,
                per_byte: 0.0,
            },
            inner_ip: StageCost {
                per_batch: 0.0,
                per_skb: 111.0,
                per_seg: 5.0,
                per_byte: 0.0,
            },
            tcp_rx: StageCost {
                per_batch: 0.0,
                per_skb: 120.0,
                per_seg: 12.0,
                per_byte: 0.0,
            },
            tcp_ooo_insert: 120.0,
            scr_reconcile_per_skb: 30.0,
            tcp_ack_tx: 140.0,
            udp_rx: StageCost {
                per_batch: 0.0,
                per_skb: 222.0,
                per_seg: 0.0,
                per_byte: 0.0,
            },
            user_copy: StageCost {
                per_batch: 220.0,
                per_skb: 50.0,
                per_seg: 0.0,
                per_byte: 0.245,
            },
            ipi_send: 150.0,
            ipi_latency: 900.0,
            migration_penalty: 1.06,
            napi_budget: 64,
            gro_max_segs: 45,
            gro_max_bytes: 65_536,
            send_per_msg: 1100.0,
            send_per_seg_tcp: 30.0,
            send_per_seg_udp: 480.0,
            send_per_byte: 0.05,
            client_ack_rx: 250.0,
            prop_delay_ns: 2_000,
            link_gbps: 100.0,
            app_wake_ns: 1_000,
            irq_coalesce_ns: 15_000,
            irq_kick_threshold: 32,
        }
    }

    /// Cost of running `stage` over a batch, on the given path.
    ///
    /// `skbs`/`segs`/`bytes` describe the batch; `migrated_segs` counts the
    /// segments whose previous stage ran on a different core.
    pub fn stage_cost_ns(
        &self,
        stage: Stage,
        path: PathKind,
        skbs: u64,
        segs: u64,
        bytes: u64,
        migrated: bool,
    ) -> u64 {
        let base = match stage {
            Stage::DriverPoll => self.driver_poll.cost_ns(skbs, segs, bytes),
            Stage::SkbAlloc => {
                let mut c = self.skb_alloc.cost_ns(skbs, segs, bytes);
                if path == PathKind::Overlay {
                    c += (self.overlay_csum_per_byte * bytes as f64).round() as u64;
                }
                c
            }
            Stage::Gro => self.gro.cost_ns(skbs, segs, bytes),
            Stage::OuterIp => self.outer_ip.cost_ns(skbs, segs, bytes),
            Stage::VxlanDecap => self.vxlan_decap.cost_ns(skbs, segs, bytes),
            Stage::Bridge => self.bridge.cost_ns(skbs, segs, bytes),
            Stage::Veth => self.veth.cost_ns(skbs, segs, bytes),
            Stage::InnerIp => self.inner_ip.cost_ns(skbs, segs, bytes),
            Stage::TcpRx => self.tcp_rx.cost_ns(skbs, segs, bytes),
            Stage::UdpRx => self.udp_rx.cost_ns(skbs, segs, bytes),
            Stage::UserCopy => self.user_copy.cost_ns(skbs, segs, bytes),
        };
        if migrated {
            (base as f64 * self.migration_penalty).round() as u64
        } else {
            base
        }
    }

    /// Client-side cost of one `sendmsg` of `bytes` payload in `segs`
    /// wire segments.
    pub fn sendmsg_cost_ns(&self, transport: crate::stage::Transport, segs: u64, bytes: u64) -> u64 {
        self.sendmsg_cost_parallel_ns(transport, segs, bytes, 1)
    }

    /// `sendmsg` cost when `tx_cores` sender cores cooperate (the MFLOW-TX
    /// extension): the per-segment and per-byte work divides across cores
    /// with an 8 % coordination tax per extra core; the per-message
    /// syscall part stays serial (Amdahl's law).
    pub fn sendmsg_cost_parallel_ns(
        &self,
        transport: crate::stage::Transport,
        segs: u64,
        bytes: u64,
        tx_cores: u32,
    ) -> u64 {
        let per_seg = match transport {
            crate::stage::Transport::Tcp => self.send_per_seg_tcp,
            crate::stage::Transport::Udp => self.send_per_seg_udp,
        };
        let n = tx_cores.max(1) as f64;
        let parallel = per_seg * segs as f64 + self.send_per_byte * bytes as f64;
        let tax = 1.0 + 0.08 * (n - 1.0);
        (self.send_per_msg + parallel * tax / n).round() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_cost_is_linear() {
        let c = StageCost {
            per_batch: 100.0,
            per_skb: 10.0,
            per_seg: 5.0,
            per_byte: 0.5,
        };
        assert_eq!(c.cost_ns(2, 4, 100), 100 + 20 + 20 + 50);
    }

    #[test]
    fn overlay_pays_checksum_in_skb_alloc() {
        let m = CostModel::calibrated();
        let native = m.stage_cost_ns(Stage::SkbAlloc, PathKind::Native, 1, 1, 1448, false);
        let overlay = m.stage_cost_ns(Stage::SkbAlloc, PathKind::Overlay, 1, 1, 1448, false);
        assert!(overlay > native);
        let delta = overlay - native;
        assert_eq!(delta, (m.overlay_csum_per_byte * 1448.0).round() as u64);
    }

    #[test]
    fn migration_penalty_applies() {
        let m = CostModel::calibrated();
        let local = m.stage_cost_ns(Stage::VxlanDecap, PathKind::Overlay, 1, 1, 1448, false);
        let remote = m.stage_cost_ns(Stage::VxlanDecap, PathKind::Overlay, 1, 1, 1448, true);
        assert!(remote > local);
    }

    #[test]
    fn vxlan_is_the_heavyweight_overlay_device() {
        // The paper identifies VxLAN as the dominant overlay stage for a
        // single (non-GRO-amortized) packet.
        let m = CostModel::calibrated();
        let per_pkt = |s| m.stage_cost_ns(s, PathKind::Overlay, 1, 1, 1448, false);
        let vxlan = per_pkt(Stage::VxlanDecap);
        for s in [Stage::OuterIp, Stage::Bridge, Stage::Veth, Stage::InnerIp] {
            assert!(vxlan > per_pkt(s), "{s:?} heavier than vxlan");
        }
    }

    #[test]
    fn native_tcp_single_core_capacity_near_26_6_gbps() {
        // Back-of-envelope check of the calibration: with GRO factor 45,
        // the per-segment cost of the native TCP softirq core must sit
        // near 12000 bits / 26.6 Gbps = ~451 ns.
        let m = CostModel::calibrated();
        let g = 45u64;
        let seg_bytes = 1448u64;
        let batch = 64u64;
        let mut ns = 0u64;
        ns += m.stage_cost_ns(Stage::DriverPoll, PathKind::Native, batch, batch, 0, false);
        ns += m.stage_cost_ns(
            Stage::SkbAlloc,
            PathKind::Native,
            batch,
            batch,
            batch * seg_bytes,
            false,
        );
        ns += m.stage_cost_ns(Stage::Gro, PathKind::Native, batch / g + 1, batch, 0, false);
        ns += m.stage_cost_ns(Stage::InnerIp, PathKind::Native, batch / g + 1, batch, 0, false);
        ns += m.stage_cost_ns(Stage::TcpRx, PathKind::Native, batch / g + 1, batch, 0, false);
        let per_seg = ns as f64 / batch as f64;
        let gbps = (seg_bytes as f64 * 8.0) / per_seg;
        assert!(
            (20.0..33.0).contains(&gbps),
            "native single-core TCP estimate {gbps:.1} Gbps out of band"
        );
    }

    #[test]
    fn sendmsg_cost_scales_with_fragments_for_udp() {
        use crate::stage::Transport;
        let m = CostModel::calibrated();
        let small = m.sendmsg_cost_ns(Transport::Udp, 1, 16);
        let large = m.sendmsg_cost_ns(Transport::Udp, 45, 65536);
        assert!(large > 10 * small);
    }

    #[test]
    fn tcp_sender_is_much_cheaper_than_udp_at_64k() {
        use crate::stage::Transport;
        let m = CostModel::calibrated();
        let tcp = m.sendmsg_cost_ns(Transport::Tcp, 46, 65536);
        let udp = m.sendmsg_cost_ns(Transport::Udp, 46, 65536);
        // TSO vs software fragmentation: at least 2.5x apart.
        assert!(udp as f64 > tcp as f64 * 2.5, "udp {udp} vs tcp {tcp}");
    }
}
