//! Socket receive queues and the user-copy boundary.
//!
//! The kernel parks received data in a socket's receive queue until the
//! application's `recvmsg` thread (pinned to the app core) copies it to
//! user space. The paper's Figure 8b shows this single copy thread become
//! MFLOW's new bottleneck at ~30 Gbps.

use std::collections::VecDeque;

use mflow_sim::{CoreId, Time};

use crate::skb::{FlowId, MsgEnd};

/// One unit of data sitting in a socket receive queue.
#[derive(Clone, Debug)]
pub struct SockItem {
    pub flow: FlowId,
    pub payload_bytes: u64,
    pub segs: u32,
    pub msg_ends: Vec<MsgEnd>,
    /// When the item was enqueued (for queue-delay accounting).
    pub enq_ns: Time,
}

/// A receive socket bound to an application thread on `app_core`.
#[derive(Debug)]
pub struct Socket {
    pub app_core: CoreId,
    queue: VecDeque<SockItem>,
    queued_bytes: u64,
    capacity_bytes: u64,
    drops: u64,
    /// True while an `AppWake`/copy is in flight for this socket.
    pub app_busy: bool,
}

impl Socket {
    /// Creates a socket with the given receive-buffer byte capacity.
    pub fn new(app_core: CoreId, capacity_bytes: u64) -> Self {
        Self {
            app_core,
            queue: VecDeque::new(),
            queued_bytes: 0,
            capacity_bytes,
            drops: 0,
            app_busy: false,
        }
    }

    /// Enqueues an item; returns `false` (a drop, UDP semantics) when the
    /// receive buffer is full.
    pub fn push(&mut self, item: SockItem) -> bool {
        if self.queued_bytes + item.payload_bytes > self.capacity_bytes {
            self.drops += 1;
            return false;
        }
        self.queued_bytes += item.payload_bytes;
        self.queue.push_back(item);
        true
    }

    /// Dequeues up to `max_bytes` of data for one copy operation (always at
    /// least one item when non-empty).
    pub fn pop_batch(&mut self, max_bytes: u64) -> Vec<SockItem> {
        let mut out = Vec::new();
        let mut bytes = 0u64;
        while let Some(front) = self.queue.front() {
            if !out.is_empty() && bytes + front.payload_bytes > max_bytes {
                break;
            }
            let item = self.queue.pop_front().unwrap();
            bytes += item.payload_bytes;
            self.queued_bytes -= item.payload_bytes;
            out.push(item);
        }
        out
    }

    /// Bytes currently queued.
    pub fn queued_bytes(&self) -> u64 {
        self.queued_bytes
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Items dropped due to a full receive buffer.
    pub fn drops(&self) -> u64 {
        self.drops
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn item(bytes: u64) -> SockItem {
        SockItem {
            flow: 0,
            payload_bytes: bytes,
            segs: 1,
            msg_ends: Vec::new(),
            enq_ns: 0,
        }
    }

    #[test]
    fn push_pop_fifo() {
        let mut s = Socket::new(0, 10_000);
        s.push(item(100));
        s.push(item(200));
        let got = s.pop_batch(u64::MAX);
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].payload_bytes, 100);
        assert!(s.is_empty());
        assert_eq!(s.queued_bytes(), 0);
    }

    #[test]
    fn capacity_drops() {
        let mut s = Socket::new(0, 250);
        assert!(s.push(item(200)));
        assert!(!s.push(item(100)));
        assert_eq!(s.drops(), 1);
        assert_eq!(s.queued_bytes(), 200);
    }

    #[test]
    fn pop_batch_respects_byte_limit_but_returns_at_least_one() {
        let mut s = Socket::new(0, u64::MAX);
        s.push(item(500));
        s.push(item(500));
        s.push(item(500));
        let got = s.pop_batch(800);
        assert_eq!(got.len(), 1); // second item would exceed 800
        let got = s.pop_batch(1200);
        assert_eq!(got.len(), 2);
    }

    #[test]
    fn oversized_single_item_still_pops() {
        let mut s = Socket::new(0, u64::MAX);
        s.push(item(10_000));
        let got = s.pop_batch(100);
        assert_eq!(got.len(), 1);
    }
}
