//! The NIC receive ring buffer: a bounded descriptor queue between the DMA
//! engine and the driver's poll routine. When the softirq core cannot keep
//! up, the ring fills and the NIC drops frames — the overload signal the
//! paper's latency experiments stay just under.

use crate::skb::Skb;
use std::collections::VecDeque;

/// A bounded receive ring.
#[derive(Debug)]
pub struct RxRing {
    queue: VecDeque<Skb>,
    capacity: usize,
    drops: u64,
    enqueued: u64,
    high_watermark: usize,
}

impl RxRing {
    /// Creates a ring with room for `capacity` descriptors.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0);
        Self {
            queue: VecDeque::with_capacity(capacity.min(4096)),
            capacity,
            drops: 0,
            enqueued: 0,
            high_watermark: 0,
        }
    }

    /// Offers one frame; returns `false` (and counts a drop) when full.
    pub fn push(&mut self, skb: Skb) -> bool {
        if self.queue.len() >= self.capacity {
            self.drops += 1;
            return false;
        }
        self.queue.push_back(skb);
        self.enqueued += 1;
        self.high_watermark = self.high_watermark.max(self.queue.len());
        true
    }

    /// Takes up to `budget` descriptors for one poll.
    pub fn poll(&mut self, budget: usize) -> Vec<Skb> {
        let n = budget.min(self.queue.len());
        self.queue.drain(..n).collect()
    }

    /// Descriptors currently waiting.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// True when no descriptors are waiting.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Frames dropped because the ring was full.
    pub fn drops(&self) -> u64 {
        self.drops
    }

    /// Frames accepted in total.
    pub fn enqueued(&self) -> u64 {
        self.enqueued
    }

    /// Deepest occupancy observed.
    pub fn high_watermark(&self) -> usize {
        self.high_watermark
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn skb(seq: u64) -> Skb {
        Skb::new(seq, 0, 1514, 1448, seq * 1448, 0)
    }

    #[test]
    fn push_and_poll_fifo() {
        let mut r = RxRing::new(8);
        for i in 0..5 {
            assert!(r.push(skb(i)));
        }
        let got = r.poll(3);
        assert_eq!(got.len(), 3);
        assert_eq!(got[0].wire_seq, 0);
        assert_eq!(got[2].wire_seq, 2);
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn overflow_drops() {
        let mut r = RxRing::new(2);
        assert!(r.push(skb(0)));
        assert!(r.push(skb(1)));
        assert!(!r.push(skb(2)));
        assert_eq!(r.drops(), 1);
        assert_eq!(r.enqueued(), 2);
    }

    #[test]
    fn poll_respects_budget_and_emptiness() {
        let mut r = RxRing::new(4);
        assert!(r.poll(16).is_empty());
        r.push(skb(0));
        let got = r.poll(16);
        assert_eq!(got.len(), 1);
        assert!(r.is_empty());
    }

    #[test]
    fn high_watermark_tracks_peak() {
        let mut r = RxRing::new(10);
        for i in 0..7 {
            r.push(skb(i));
        }
        r.poll(5);
        for i in 7..9 {
            r.push(skb(i));
        }
        assert_eq!(r.high_watermark(), 7);
    }
}
