//! The stages of the simulated receive path and the pipelines that native
//! and overlay packets traverse.
//!
//! Each stage corresponds to a device or function of the Linux RX path; the
//! overlay path visits three softirq "devices" (pNIC, VxLAN, veth) exactly
//! as Figure 2 of the paper describes.

/// Transport protocol of a path.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Transport {
    Tcp,
    Udp,
}

/// Network path: native host networking or the VXLAN container overlay.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PathKind {
    Native,
    Overlay,
}

/// One processing stage of the receive path.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Stage {
    /// First half of the pNIC softirq: walk the completion queue and locate
    /// packet requests (descriptors). MFLOW's IRQ-splitting divides the
    /// softirq here.
    DriverPoll,
    /// Per-packet skb allocation + DMA sync + (overlay) outer checksum
    /// validation — the function the paper found impossible to parallelize
    /// with FALCON.
    SkbAlloc,
    /// Generic receive offload: merge contiguous same-flow TCP segments.
    Gro,
    /// Outer IP + outer UDP receive (overlay only).
    OuterIp,
    /// VXLAN decapsulation — the heavyweight overlay device.
    VxlanDecap,
    /// Virtual bridge forwarding (FDB lookup).
    Bridge,
    /// veth pair transmit/receive (raises the third softirq).
    Veth,
    /// Inner (or native) IP receive, including fragment reassembly.
    InnerIp,
    /// TCP receive: stateful, in-order; the stage MFLOW must merge before.
    TcpRx,
    /// UDP receive: socket demux and receive-queue append.
    UdpRx,
    /// Application-side copy from kernel to user space (`tcp_recvmsg` /
    /// `udp_recvmsg`), pinned to the application core.
    UserCopy,
}

/// All stages, in canonical pipeline order.
pub const ALL_STAGES: [Stage; 11] = [
    Stage::DriverPoll,
    Stage::SkbAlloc,
    Stage::Gro,
    Stage::OuterIp,
    Stage::VxlanDecap,
    Stage::Bridge,
    Stage::Veth,
    Stage::InnerIp,
    Stage::TcpRx,
    Stage::UdpRx,
    Stage::UserCopy,
];

impl Stage {
    /// Stable dense index (for per-core backlog arrays).
    pub fn index(self) -> usize {
        self as usize
    }

    /// Number of stages (backlog array size).
    pub const COUNT: usize = 11;

    /// Short label used in CPU-utilization breakdowns. Stages are grouped
    /// by the softirq/device they belong to, matching the paper's figures.
    pub fn tag(self) -> &'static str {
        match self {
            Stage::DriverPoll => "pnic.poll",
            Stage::SkbAlloc => "pnic.skb_alloc",
            Stage::Gro => "pnic.gro",
            Stage::OuterIp => "vxlan.outer_ip",
            Stage::VxlanDecap => "vxlan.decap",
            Stage::Bridge => "veth.bridge",
            Stage::Veth => "veth.xmit",
            Stage::InnerIp => "veth.inner_ip",
            Stage::TcpRx => "tcp_rx",
            Stage::UdpRx => "udp_rx",
            Stage::UserCopy => "user_copy",
        }
    }

    /// The softirq "device" this stage belongs to (pNIC / VxLAN / veth),
    /// `None` for transport and application stages.
    pub fn device(self) -> Option<&'static str> {
        match self {
            Stage::DriverPoll | Stage::SkbAlloc | Stage::Gro => Some("pnic"),
            Stage::OuterIp | Stage::VxlanDecap => Some("vxlan"),
            Stage::Bridge | Stage::Veth | Stage::InnerIp => Some("veth"),
            _ => None,
        }
    }

    /// Next stage along the given path/transport, or `None` after
    /// [`Stage::UserCopy`].
    pub fn next(self, path: PathKind, transport: Transport) -> Option<Stage> {
        use PathKind::*;
        use Stage::*;
        use Transport::*;
        Some(match (self, path, transport) {
            (DriverPoll, _, _) => SkbAlloc,
            // GRO is effective for TCP only (paper §II footnote 2).
            (SkbAlloc, _, Tcp) => Gro,
            (SkbAlloc, Native, Udp) => InnerIp,
            (SkbAlloc, Overlay, Udp) => OuterIp,
            (Gro, Native, _) => InnerIp,
            (Gro, Overlay, _) => OuterIp,
            (OuterIp, _, _) => VxlanDecap,
            (VxlanDecap, _, _) => Bridge,
            (Bridge, _, _) => Veth,
            (Veth, _, _) => InnerIp,
            (InnerIp, _, Tcp) => TcpRx,
            (InnerIp, _, Udp) => UdpRx,
            (TcpRx, _, _) | (UdpRx, _, _) => UserCopy,
            (UserCopy, _, _) => return None,
        })
    }

    /// The full pipeline for a path/transport, starting at `DriverPoll`.
    pub fn pipeline(path: PathKind, transport: Transport) -> Vec<Stage> {
        let mut v = vec![Stage::DriverPoll];
        while let Some(next) = v.last().unwrap().next(path, transport) {
            v.push(next);
        }
        v
    }

    /// True for stages that are stateless with respect to packet order —
    /// where MFLOW may split a flow (everything before the transport
    /// stage; `UserCopy` is past the stateful boundary for TCP).
    pub fn is_stateless(self) -> bool {
        !matches!(self, Stage::TcpRx | Stage::UserCopy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overlay_tcp_pipeline_matches_paper() {
        let p = Stage::pipeline(PathKind::Overlay, Transport::Tcp);
        assert_eq!(
            p,
            vec![
                Stage::DriverPoll,
                Stage::SkbAlloc,
                Stage::Gro,
                Stage::OuterIp,
                Stage::VxlanDecap,
                Stage::Bridge,
                Stage::Veth,
                Stage::InnerIp,
                Stage::TcpRx,
                Stage::UserCopy,
            ]
        );
    }

    #[test]
    fn overlay_udp_pipeline_has_no_gro() {
        let p = Stage::pipeline(PathKind::Overlay, Transport::Udp);
        assert!(!p.contains(&Stage::Gro));
        assert!(p.contains(&Stage::VxlanDecap));
        assert!(p.contains(&Stage::UdpRx));
    }

    #[test]
    fn native_pipelines_skip_overlay_devices() {
        for t in [Transport::Tcp, Transport::Udp] {
            let p = Stage::pipeline(PathKind::Native, t);
            assert!(!p.contains(&Stage::OuterIp));
            assert!(!p.contains(&Stage::VxlanDecap));
            assert!(!p.contains(&Stage::Bridge));
            assert!(!p.contains(&Stage::Veth));
        }
    }

    #[test]
    fn overlay_visits_three_devices() {
        // The paper: one IRQ and three softirqs (pNIC, VxLAN, veth).
        let p = Stage::pipeline(PathKind::Overlay, Transport::Tcp);
        let devices: std::collections::BTreeSet<_> =
            p.iter().filter_map(|s| s.device()).collect();
        assert_eq!(devices.len(), 3);
    }

    #[test]
    fn indices_are_dense_and_unique() {
        let mut seen = [false; Stage::COUNT];
        for s in ALL_STAGES {
            assert!(!seen[s.index()]);
            seen[s.index()] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn stateful_boundary() {
        assert!(Stage::VxlanDecap.is_stateless());
        assert!(Stage::UdpRx.is_stateless());
        assert!(!Stage::TcpRx.is_stateless());
        assert!(!Stage::UserCopy.is_stateless());
    }
}
