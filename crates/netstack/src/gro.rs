//! Generic Receive Offload: merging runs of contiguous same-flow segments
//! into super-skbs so later stages pay per-skb costs once per run.
//!
//! Two properties matter for MFLOW:
//! * GRO only merges *contiguous* segments, so interleaving micro-flows of
//!   the same flow on one core would break merges — MFLOW's batch sizes of
//!   256+ keep runs long and GRO effective (paper §III-A).
//! * GRO never merges across a micro-flow boundary here, so a merged skb
//!   stays inside one micro-flow and reassembly stays batch-granular.

use crate::skb::Skb;

/// Merges a batch in arrival order. Returns the merged skbs.
///
/// `max_segs` and `max_bytes` are the kernel's aggregation caps.
pub fn gro_merge(batch: Vec<Skb>, max_segs: u32, max_bytes: u32) -> Vec<Skb> {
    let mut out: Vec<Skb> = Vec::with_capacity(batch.len() / 4 + 1);
    for skb in batch {
        if let Some(head) = out.last_mut() {
            let same_mf = match (&head.mf, &skb.mf) {
                (None, None) => true,
                (Some(a), Some(b)) => a.id == b.id && a.core == b.core,
                _ => false,
            };
            if same_mf
                && head.is_contiguous_with(&skb)
                && head.segs + skb.segs <= max_segs
                && head.payload_bytes + skb.payload_bytes <= max_bytes
            {
                head.absorb(skb);
                continue;
            }
        }
        out.push(skb);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::skb::MicroflowTag;

    fn seg(seq: u64, flow: usize, byte_seq: u64, len: u32) -> Skb {
        Skb::new(seq, flow, len + 66, len, byte_seq, 0)
    }

    #[test]
    fn contiguous_run_merges_into_one() {
        let batch: Vec<Skb> = (0..10).map(|i| seg(i, 0, i * 1448, 1448)).collect();
        let merged = gro_merge(batch, 45, 65536);
        assert_eq!(merged.len(), 1);
        assert_eq!(merged[0].segs, 10);
        assert_eq!(merged[0].payload_bytes, 14480);
    }

    #[test]
    fn seg_cap_limits_merge() {
        let batch: Vec<Skb> = (0..100).map(|i| seg(i, 0, i * 1448, 1448)).collect();
        let merged = gro_merge(batch, 45, u32::MAX);
        assert_eq!(merged.len(), 3); // 45 + 45 + 10
        assert_eq!(merged[0].segs, 45);
        assert_eq!(merged[2].segs, 10);
    }

    #[test]
    fn byte_cap_limits_merge() {
        let batch: Vec<Skb> = (0..100).map(|i| seg(i, 0, i * 1448, 1448)).collect();
        let merged = gro_merge(batch, u32::MAX, 65536);
        // 65536 / 1448 = 45.2 -> 45 segments per super-skb.
        assert_eq!(merged[0].segs, 45);
    }

    #[test]
    fn interleaved_flows_break_runs() {
        let mut batch = Vec::new();
        for i in 0..10u64 {
            batch.push(seg(2 * i, 0, i * 1448, 1448));
            batch.push(seg(2 * i + 1, 1, i * 1448, 1448));
        }
        let merged = gro_merge(batch, 45, 65536);
        // Alternating flows: nothing merges.
        assert_eq!(merged.len(), 20);
    }

    #[test]
    fn gap_breaks_run() {
        let batch = vec![seg(0, 0, 0, 1448), seg(1, 0, 5000, 1448)];
        let merged = gro_merge(batch, 45, 65536);
        assert_eq!(merged.len(), 2);
    }

    #[test]
    fn never_merges_across_microflow_boundary() {
        let mut a = seg(0, 0, 0, 1448);
        a.mf = Some(MicroflowTag {
            id: 1,
            core: 2,
            last_in_batch: true,
        });
        let mut b = seg(1, 0, 1448, 1448);
        b.mf = Some(MicroflowTag {
            id: 2,
            core: 3,
            last_in_batch: false,
        });
        let merged = gro_merge(vec![a, b], 45, 65536);
        assert_eq!(merged.len(), 2);
    }

    #[test]
    fn merges_within_one_microflow() {
        let mk = |i: u64, last| {
            let mut s = seg(i, 0, i * 1448, 1448);
            s.mf = Some(MicroflowTag {
                id: 4,
                core: 2,
                last_in_batch: last,
            });
            s
        };
        let merged = gro_merge(vec![mk(0, false), mk(1, false), mk(2, true)], 45, 65536);
        assert_eq!(merged.len(), 1);
        assert!(merged[0].mf.unwrap().last_in_batch);
    }

    #[test]
    fn tagged_and_untagged_never_merge() {
        let a = seg(0, 0, 0, 1448);
        let mut b = seg(1, 0, 1448, 1448);
        b.mf = Some(MicroflowTag {
            id: 0,
            core: 2,
            last_in_batch: false,
        });
        assert_eq!(gro_merge(vec![a, b], 45, 65536).len(), 2);
    }
}
