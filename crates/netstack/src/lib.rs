//! `mflow-netstack` — an executable model of the Linux receive datapath
//! for container overlay networks, running on the `mflow-sim` engine.
//!
//! The model reproduces the structure the paper measures (Figure 1–3): a
//! NIC ring buffer drained by NAPI polls, per-packet skb allocation, GRO,
//! the VXLAN → bridge → veth overlay chain, IP and TCP/UDP receive, socket
//! queues and a per-socket user-copy thread pinned to the application
//! core. Per-stage costs come from a calibrated [`cost::CostModel`];
//! steering behaviour is injected via [`policy::PacketSteering`] so the
//! same stack runs vanilla, RPS, FALCON and MFLOW configurations.

pub mod config;
pub mod cost;
pub mod faults;
pub mod gro;
pub mod policy;
pub mod report;
pub mod ring;
pub mod scr;
pub mod skb;
pub mod socket;
pub mod stack;
pub mod stage;
pub mod tcp;

pub use config::{FlowSpec, LoadModel, NoiseConfig, StackConfig};
pub use mflow_error::MflowError;
pub use cost::CostModel;
pub use faults::{FaultConfig, FaultCounts, FaultPlan};
pub use policy::{FlowMerger, LoadView, PacketSteering, StayLocal};
pub use report::RunReport;
pub use scr::StatefulMode;
pub use skb::{FlowId, MicroflowTag, MsgEnd, Skb};
pub use stack::{Event, MergeSetup, StackSim};
pub use stage::{PathKind, Stage, Transport};
pub use tcp::FlowState;
